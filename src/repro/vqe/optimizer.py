"""Classical optimisers for the hybrid loop.

The paper uses gradient-free COBYLA with 200+ iterations (Sec. 4.3.2, 5.2);
:class:`CobylaOptimizer` wraps :func:`scipy.optimize.minimize` with that
method.  :class:`SPSAOptimizer` is provided as the standard
stochastic-approximation alternative used in the ablation benchmarks (it needs
only two function evaluations per iteration, which matters when every
evaluation is a hardware job).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np
from scipy.optimize import minimize

from repro.exceptions import VQEError


@dataclass
class OptimizerResult:
    """Outcome of a classical optimisation run."""

    optimal_parameters: np.ndarray
    optimal_value: float
    iterations: int
    history: list[float] = field(default_factory=list)

    @property
    def lowest_value(self) -> float:
        """Minimum objective value observed during optimisation."""
        return min(self.history) if self.history else self.optimal_value

    @property
    def highest_value(self) -> float:
        """Maximum objective value observed during optimisation."""
        return max(self.history) if self.history else self.optimal_value

    @property
    def value_range(self) -> float:
        """Spread of objective values over the run (the paper's "Energy Range")."""
        return self.highest_value - self.lowest_value


class CobylaOptimizer:
    """COBYLA wrapper with evaluation-history tracking."""

    def __init__(self, max_iterations: int = 200, rhobeg: float = 0.8, tol: float = 1e-4):
        if max_iterations <= 0:
            raise VQEError(f"max_iterations must be positive, got {max_iterations}")
        self.max_iterations = int(max_iterations)
        self.rhobeg = float(rhobeg)
        self.tol = float(tol)

    def minimize(self, objective: Callable[[np.ndarray], float], x0: np.ndarray) -> OptimizerResult:
        """Minimise ``objective`` starting from ``x0``."""
        history: list[float] = []
        best_x = np.array(x0, dtype=float)
        best_val = np.inf

        def wrapped(x: np.ndarray) -> float:
            nonlocal best_x, best_val
            value = float(objective(np.asarray(x, dtype=float)))
            history.append(value)
            if value < best_val:
                best_val = value
                best_x = np.array(x, dtype=float)
            return value

        result = minimize(
            wrapped,
            np.asarray(x0, dtype=float),
            method="COBYLA",
            options={"maxiter": self.max_iterations, "rhobeg": self.rhobeg, "tol": self.tol},
        )
        # Prefer the best point seen over scipy's final iterate: with a noisy
        # (shot-sampled) objective the last iterate is not necessarily best.
        final_x = best_x if best_val <= float(result.fun) else np.asarray(result.x, dtype=float)
        final_val = min(best_val, float(result.fun))
        return OptimizerResult(
            optimal_parameters=final_x,
            optimal_value=final_val,
            iterations=len(history),
            history=history,
        )


class SPSAOptimizer:
    """Simultaneous-perturbation stochastic approximation (ablation baseline)."""

    def __init__(
        self,
        max_iterations: int = 100,
        a: float = 0.2,
        c: float = 0.15,
        alpha: float = 0.602,
        gamma: float = 0.101,
        seed: int = 0,
    ):
        if max_iterations <= 0:
            raise VQEError(f"max_iterations must be positive, got {max_iterations}")
        self.max_iterations = int(max_iterations)
        self.a = float(a)
        self.c = float(c)
        self.alpha = float(alpha)
        self.gamma = float(gamma)
        self.seed = int(seed)

    def minimize(self, objective: Callable[[np.ndarray], float], x0: np.ndarray) -> OptimizerResult:
        """Minimise ``objective`` with SPSA updates."""
        rng = np.random.default_rng(self.seed)
        x = np.array(x0, dtype=float)
        history: list[float] = []
        best_x = x.copy()
        best_val = np.inf
        for k in range(1, self.max_iterations + 1):
            ak = self.a / k**self.alpha
            ck = self.c / k**self.gamma
            delta = rng.choice([-1.0, 1.0], size=x.shape)
            plus = float(objective(x + ck * delta))
            minus = float(objective(x - ck * delta))
            history.extend([plus, minus])
            grad = (plus - minus) / (2.0 * ck) * delta
            x = x - ak * grad
            current = min(plus, minus)
            if current < best_val:
                best_val = current
                best_x = x.copy()
        return OptimizerResult(
            optimal_parameters=best_x,
            optimal_value=best_val,
            iterations=self.max_iterations,
            history=history,
        )
