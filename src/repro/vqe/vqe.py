"""The two-stage VQE driver used to fold one protein fragment.

Stage 1 (optimisation): a parameterised EfficientSU2 ansatz is sampled on the
backend, the diagonal folding Hamiltonian's expectation value is estimated
from the measured bitstrings, and COBYLA updates the parameters (Sec. 4.3.2).
The lowest and highest expectation values observed along the way are the
"Lowest Energy" / "Highest Energy" columns of Tables 1–3.

Stage 2 (sampling): the optimised parameters are frozen, the circuit is
sampled with a large shot count (100,000 on hardware), and the measured
bitstrings are decoded; the lowest-energy *valid* conformation becomes the
predicted structure (Sec. 5.2).

Register choice
---------------
The interaction/slack qubits of the hardware encoding never influence the
diagonal energy, so by default the driver simulates only the configuration
register (``register="configuration"``), which keeps 100-qubit fragments
cheap.  ``register="full"`` simulates the complete register exactly as sized
on hardware; resource metadata (qubit count, depth) always reports the full
hardware register either way.
"""

from __future__ import annotations

import numpy as np

from repro.config import PipelineConfig
from repro.exceptions import VQEError
from repro.lattice.decoder import ConformationDecoder
from repro.lattice.encoding import circuit_depth_for_qubits
from repro.lattice.hamiltonian import LatticeHamiltonian
from repro.quantum.ansatz import EfficientSU2
from repro.quantum.backend import Backend, counts_from_samples
from repro.utils.rng import rng_for
from repro.vqe.expectation import DiagonalExpectation
from repro.vqe.optimizer import CobylaOptimizer, OptimizerResult
from repro.vqe.result import VQEResult


class VQE:
    """Two-stage VQE folding driver for one fragment Hamiltonian."""

    def __init__(
        self,
        hamiltonian: LatticeHamiltonian,
        backend: Backend | None = None,
        config: PipelineConfig | None = None,
        optimizer: CobylaOptimizer | None = None,
        register: str = "configuration",
        seed: int | None = None,
    ):
        if register not in ("configuration", "full"):
            raise VQEError(f"register must be 'configuration' or 'full', got {register!r}")
        self.hamiltonian = hamiltonian
        self.encoding = hamiltonian.encoding
        self.config = config or PipelineConfig()
        if backend is None:
            # Resolved by name (config.backend) through the engine's registry;
            # imported lazily because the engine package imports this module.
            from repro.engine.registry import make_backend

            backend = make_backend(self.config.backend, self.config)
        self.backend = backend
        self.optimizer = optimizer
        self.register = register
        self.seed = self.config.seed if seed is None else int(seed)
        self.expectation = DiagonalExpectation(
            hamiltonian, max_entries=self.config.expectation_cache_entries
        )
        self.decoder = ConformationDecoder(hamiltonian)

        width = (
            self.encoding.configuration_qubits
            if register == "configuration"
            else self.encoding.total_qubits
        )
        self.ansatz = EfficientSU2(width, reps=self.config.ansatz_reps, entanglement="linear")
        if self.optimizer is None:
            # COBYLA needs at least num_vars + 2 evaluations to build its
            # initial simplex; never hand it fewer.
            iterations = max(self.config.vqe_iterations, self.ansatz.num_parameters + 2)
            self.optimizer = CobylaOptimizer(max_iterations=iterations)

    # -- shot budgets -------------------------------------------------------------

    def effective_final_shots(self) -> int:
        """Stage-2 shot count, scaled with the size of the conformational space.

        Longer fragments have exponentially more conformations, so the final
        sampling budget grows with the configuration-register width (capped at
        ``config.max_final_shots``, the paper's 100,000).
        """
        free_turns = self.encoding.num_free_turns
        multiplier = max(1, min(48, 4**free_turns // 2000))
        return int(min(self.config.max_final_shots, self.config.final_shots * multiplier))

    # -- objective ---------------------------------------------------------------

    def _objective(self, parameters: np.ndarray, rng: np.random.Generator) -> float:
        samples = self._sample(parameters, self.config.optimisation_shots, rng)
        return self.expectation.cvar_from_samples(samples, alpha=self.config.cvar_alpha)

    def _sample(self, parameters, shots: int, rng: np.random.Generator) -> np.ndarray:
        """Sample the ansatz at ``parameters`` through the backend's plan-reuse path.

        ``sample_parameterised`` is bit-identical to binding and calling
        ``sample_array`` — backends without a compiled path fall back to
        exactly that — so enabling/disabling plan reuse never changes results.
        """
        if self.config.quantum_compiled_plans:
            return self.backend.sample_parameterised(self.ansatz.circuit, parameters, shots, rng)
        return self.backend.sample_array(self.ansatz.bound(parameters), shots, rng)

    def initial_point(self, rng: np.random.Generator) -> np.ndarray:
        """Initial parameters: uniform-superposition RY angles plus small noise.

        Setting every RY angle to π/2 makes the initial sampling distribution
        uniform over conformations, which is the standard unbiased starting
        point for a diagonal-cost VQE.
        """
        n = self.ansatz.num_parameters
        point = np.zeros(n)
        params = self.ansatz.circuit.parameters
        for i, p in enumerate(params):
            if p.name.startswith("ry"):
                point[i] = np.pi / 2.0
        point += rng.normal(scale=0.05, size=n)
        return point

    # -- run -----------------------------------------------------------------------

    def run(self) -> VQEResult:
        """Execute both stages and return the folded result."""
        rng_opt = rng_for(self.seed, "vqe-optimise", str(self.hamiltonian.sequence))
        rng_final = rng_for(self.seed, "vqe-final-sampling", str(self.hamiltonian.sequence))

        x0 = self.initial_point(rng_opt)
        opt_result: OptimizerResult = self.optimizer.minimize(
            lambda x: self._objective(x, rng_opt), x0
        )

        # Stage 2: freeze parameters, sample with the production shot count.
        final_shots = self.effective_final_shots()
        final_samples = self._sample(opt_result.optimal_parameters, final_shots, rng_final)
        final_counts = counts_from_samples(final_samples)
        best = self.decoder.decode_counts(final_counts)

        total_qubits = self.encoding.total_qubits
        return VQEResult(
            sequence=str(self.hamiltonian.sequence),
            num_qubits=total_qubits,
            configuration_qubits=self.encoding.configuration_qubits,
            circuit_depth=circuit_depth_for_qubits(total_qubits),
            optimal_parameters=np.asarray(opt_result.optimal_parameters, dtype=float),
            optimal_energy=float(opt_result.optimal_value),
            lowest_energy=float(min(opt_result.lowest_value, best.energy)),
            highest_energy=float(opt_result.highest_value),
            iterations=opt_result.iterations,
            energy_history=list(opt_result.history),
            final_counts=final_counts,
            best_conformation=best,
            final_shots=final_shots,
            backend_name=getattr(self.backend, "name", type(self.backend).__name__),
            ansatz_reps=self.config.ansatz_reps,
            expectation_cache=self.expectation.cache_info(),
        )
