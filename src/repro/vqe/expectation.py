"""Sampled expectation values of diagonal Hamiltonians.

The folding Hamiltonian is diagonal in the computational basis, so the
expectation value ⟨ψ(θ)|H|ψ(θ)⟩ is estimated by sampling bitstrings from the
ansatz and averaging their classical energies — exactly the estimator the
paper's hybrid workflow uses on hardware.  Energies are cached per distinct
configuration-register value, so repeated evaluation across optimiser
iterations stays cheap even with large shot counts.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import VQEError
from repro.lattice.hamiltonian import LatticeHamiltonian
from repro.quantum.backend import samples_to_bitstrings


class DiagonalExpectation:
    """Estimates ⟨H⟩ from sampled bitstrings for a diagonal folding Hamiltonian."""

    def __init__(self, hamiltonian: LatticeHamiltonian, max_entries: int | None = None):
        if max_entries is not None and int(max_entries) <= 0:
            raise VQEError(f"max_entries must be positive or None, got {max_entries}")
        self.hamiltonian = hamiltonian
        self.encoding = hamiltonian.encoding
        self.max_entries = int(max_entries) if max_entries is not None else None
        self._cache: dict[str, float] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def cache_size(self) -> int:
        """Number of distinct configuration bitstrings currently cached."""
        return len(self._cache)

    def cache_info(self) -> dict[str, int | None]:
        """Hit/miss/eviction counters for the energy cache.

        Eviction never changes results — an evicted configuration that
        reappears is simply re-decoded to the same energy — so the cap only
        trades CPU for bounded memory on wide (100-qubit) fragments.
        """
        return {
            "entries": len(self._cache),
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "max_entries": self.max_entries,
        }

    def energy_of_bits(self, bits: str) -> float:
        """Energy of one bitstring (configuration register prefix), cached.

        The cache is capped at ``max_entries`` (when set) with FIFO eviction:
        dict insertion order is the arrival order, so the oldest configuration
        is dropped first.
        """
        key = bits[: self.encoding.configuration_qubits]
        cached = self._cache.get(key)
        if cached is None:
            self._misses += 1
            cached = self.hamiltonian.energy_of_bits(key)
            self._cache[key] = cached
            if self.max_entries is not None:
                while len(self._cache) > self.max_entries:
                    self._cache.pop(next(iter(self._cache)))
                    self._evictions += 1
        else:
            self._hits += 1
        return cached

    def estimate_from_counts(self, counts: dict[str, int]) -> float:
        """Shot-weighted mean energy of a counts dictionary."""
        if not counts:
            raise VQEError("cannot estimate an expectation value from empty counts")
        total = 0
        acc = 0.0
        for bits, freq in counts.items():
            if freq < 0:
                raise VQEError(f"negative count for bitstring {bits!r}")
            acc += self.energy_of_bits(bits) * freq
            total += freq
        if total == 0:
            raise VQEError("counts dictionary has zero total shots")
        return acc / total

    def _unique_config_energies(
        self, samples: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group a sample array by configuration register and decode each row once.

        Returns ``(energies, inverse, counts)`` where ``energies[i]`` is the
        energy of the i-th distinct configuration row, ``inverse`` maps every
        shot back to its row, and ``counts`` is the multiplicity of each row.
        Grouping keeps the Python-level decoding work proportional to the
        number of distinct conformations rather than the shot count.
        """
        samples = np.asarray(samples, dtype=np.uint8)
        if samples.ndim != 2 or samples.shape[0] == 0:
            raise VQEError(f"samples must be a non-empty 2-D array, got shape {samples.shape}")
        width = self.encoding.configuration_qubits
        if samples.shape[1] < width:
            raise VQEError(
                f"samples have {samples.shape[1]} qubits, but the configuration "
                f"register needs {width}"
            )
        config = samples[:, :width]
        if width <= 63:
            # Pack each configuration row into one MSB-first integer code: a
            # 1-D unique is far cheaper than np.unique(axis=0)'s row sort, and
            # numeric order of the codes IS lexicographic order of the rows,
            # so the grouping (and the energy cache's insertion order) is
            # unchanged bit for bit.
            shifts = np.arange(width - 1, -1, -1, dtype=np.int64)
            codes = config.astype(np.int64) @ (np.int64(1) << shifts)
            uniq_codes, inverse, counts = np.unique(
                codes, return_inverse=True, return_counts=True
            )
            uniq = ((uniq_codes[:, None] >> shifts) & 1).astype(np.uint8)
        else:
            uniq, inverse, counts = np.unique(
                config, axis=0, return_inverse=True, return_counts=True
            )
        energies = np.array(
            [self.energy_of_bits(bits) for bits in samples_to_bitstrings(uniq)]
        )
        return energies, np.ravel(inverse), counts

    def estimate_from_samples(self, samples: np.ndarray) -> float:
        """Mean energy of a (shots, n) sample array."""
        energies, _, counts = self._unique_config_energies(samples)
        return float(np.dot(energies, counts) / counts.sum())

    def cvar_from_samples(self, samples: np.ndarray, alpha: float = 0.2) -> float:
        """Conditional value-at-risk of the sampled energies (CVaR-VQE objective).

        For a diagonal Hamiltonian the quantity of interest is the *best*
        measurable bitstring, not the mean, so optimising the mean of the
        lowest ``alpha`` fraction of sampled energies (Barkoutsos et al. 2020)
        converges far faster at equal shot budget.  ``alpha = 1`` recovers the
        plain expectation value.
        """
        if not 0.0 < alpha <= 1.0:
            raise VQEError(f"alpha must be in (0, 1], got {alpha}")
        energies = self.per_shot_energies(samples)
        energies.sort()
        k = max(1, int(np.ceil(alpha * energies.size)))
        return float(energies[:k].mean())

    def per_shot_energies(self, samples: np.ndarray) -> np.ndarray:
        """Energy of every individual shot (used for distribution diagnostics)."""
        energies, inverse, _ = self._unique_config_energies(samples)
        return energies[inverse]
