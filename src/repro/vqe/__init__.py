"""Variational Quantum Eigensolver framework for the folding Hamiltonian."""

from repro.vqe.expectation import DiagonalExpectation
from repro.vqe.optimizer import CobylaOptimizer, SPSAOptimizer, OptimizerResult
from repro.vqe.result import VQEResult
from repro.vqe.vqe import VQE

__all__ = [
    "DiagonalExpectation",
    "CobylaOptimizer",
    "SPSAOptimizer",
    "OptimizerResult",
    "VQEResult",
    "VQE",
]
