"""Result container for one VQE folding run."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lattice.decoder import DecodedConformation


@dataclass
class VQEResult:
    """Everything produced by one two-stage VQE run on one fragment.

    The fields mirror the quantum-prediction metadata stored per entry in the
    dataset (Sec. 4.2): qubit count, circuit depth, the lowest / highest
    energies observed during optimisation, and the decoded conformation.
    """

    sequence: str
    num_qubits: int
    configuration_qubits: int
    circuit_depth: int
    optimal_parameters: np.ndarray
    optimal_energy: float
    lowest_energy: float
    highest_energy: float
    iterations: int
    energy_history: list[float] = field(default_factory=list)
    final_counts: dict[str, int] = field(default_factory=dict)
    best_conformation: DecodedConformation | None = None
    final_shots: int = 0
    backend_name: str = ""
    ansatz_reps: int = 1
    #: Hit/miss/eviction counters of the energy cache (diagnostics only).
    #: Deliberately NOT part of :meth:`metadata` — cached fold payloads must
    #: not depend on how the expectation cache happened to be exercised.
    expectation_cache: dict | None = None

    @property
    def energy_range(self) -> float:
        """Spread between the highest and lowest observed energies."""
        return self.highest_energy - self.lowest_energy

    def metadata(self) -> dict:
        """JSON-serialisable quantum metadata (the dataset's per-entry JSON file)."""
        return {
            "sequence": self.sequence,
            "qubits": int(self.num_qubits),
            "configuration_qubits": int(self.configuration_qubits),
            "circuit_depth": int(self.circuit_depth),
            "lowest_energy": float(self.lowest_energy),
            "highest_energy": float(self.highest_energy),
            "energy_range": float(self.energy_range),
            "optimal_energy": float(self.optimal_energy),
            "iterations": int(self.iterations),
            "final_shots": int(self.final_shots),
            "backend": self.backend_name,
            "ansatz_reps": int(self.ansatz_reps),
            "best_bitstring": self.best_conformation.bitstring if self.best_conformation else None,
            "best_conformation_energy": (
                float(self.best_conformation.energy) if self.best_conformation else None
            ),
            "best_conformation_valid": (
                bool(self.best_conformation.valid) if self.best_conformation else None
            ),
        }
