"""Deep-learning baseline predictors (AlphaFold2- and AlphaFold3-like).

AlphaFold2/3 cannot be executed offline, so the comparison baselines are
*accuracy-profile simulators* of prior-biased predictors (see DESIGN.md).  The
mechanism mirrors the paper's argument for why deep-learning models struggle
on short, context-free fragments:

* the predictor's output is a blend between a **generic secondary-structure
  prior** (an ideal helix or extended strand chosen from Chou–Fasman-style
  residue propensities — what a model falls back to when the fragment carries
  little contextual signal) and the **true structure** (what a model recovers
  when its learned prior does apply);
* the blend weight and the residual coordinate noise depend on the method
  (AF3-like recovers more of the true structure than AF2-like) and on fragment
  length (longer fragments carry more context, so the deep-learning baselines
  improve with length — which is why AF3 closes the RMSD gap on the L group in
  the paper's Sec. 6.2).

The output is a full-backbone, centred structure exactly like the quantum
pipeline produces, so the downstream docking / RMSD evaluation treats every
method identically.

Engine-job entry point
----------------------
Baseline folds are first-class engine jobs (``kind="baseline_fold"``, see
:class:`repro.engine.jobs.BaselineFoldSpec`): :func:`baseline_fold_fragment`
is the module-level executor entry point — it resolves the method name
(``"AF2"`` / ``"AF3"``) through :data:`BASELINE_PREDICTORS`, runs the blend
against a reference generator keyed on ``config.seed``, and returns the
prediction together with the blended Cα trace.  That trace is what the
engine's persistent cache stores; :meth:`repro.engine.jobs.JobResult`
re-derives the full structure from it deterministically, so a cache hit is
bit-identical to a fresh baseline prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.amino_acids import get as get_aa
from repro.bio.geometry import superimpose
from repro.bio.reference import ReferenceStructureGenerator
from repro.bio.sequence import ProteinSequence
from repro.config import PipelineConfig
from repro.exceptions import EngineError
from repro.folding.predictor import FoldingPrediction
from repro.lattice.reconstruction import reconstruct_structure
from repro.utils.rng import rng_for

#: Chou–Fasman-style helix propensities (relative scale; >1 favours helix).
_HELIX_PROPENSITY: dict[str, float] = {
    "A": 1.42, "C": 0.70, "D": 1.01, "E": 1.51, "F": 1.13, "G": 0.57, "H": 1.00,
    "I": 1.08, "K": 1.16, "L": 1.21, "M": 1.45, "N": 0.67, "P": 0.57, "Q": 1.11,
    "R": 0.98, "S": 0.77, "T": 0.83, "V": 1.06, "W": 1.08, "Y": 0.69,
}


def ideal_helix_ca(length: int) -> np.ndarray:
    """Cα trace of an ideal alpha helix (rise 1.5 Å, 100° per residue, r = 2.3 Å)."""
    t = np.arange(length)
    angle = np.deg2rad(100.0) * t
    return np.column_stack([2.3 * np.cos(angle), 2.3 * np.sin(angle), 1.5 * t])


def extended_strand_ca(length: int) -> np.ndarray:
    """Cα trace of an extended (beta-strand-like) chain with a gentle pleat."""
    t = np.arange(length)
    return np.column_stack([3.3 * t, 0.9 * ((-1.0) ** t), np.zeros(length)])


def secondary_structure_prior(sequence: str) -> np.ndarray:
    """The generic prior trace a data-driven model falls back to for a fragment."""
    mean_propensity = float(np.mean([_HELIX_PROPENSITY[c] for c in sequence]))
    if mean_propensity >= 1.0:
        return ideal_helix_ca(len(sequence))
    return extended_strand_ca(len(sequence))


def _enforce_ca_separation(ca: np.ndarray, min_separation: float = 3.4, iterations: int = 20) -> np.ndarray:
    """Push apart Cα pairs closer than ``min_separation`` (deep-learning
    predictors never emit sterically impossible traces, and leaving such
    artefacts in would hand the baselines artificially dense binding clefts)."""
    ca = np.array(ca, dtype=float)
    n = ca.shape[0]
    for _ in range(iterations):
        diff = ca[:, None, :] - ca[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        np.fill_diagonal(dist, np.inf)
        too_close = dist < min_separation
        if not too_close.any():
            break
        i_idx, j_idx = np.nonzero(np.triu(too_close, k=1))
        for i, j in zip(i_idx.tolist(), j_idx.tolist()):
            direction = ca[i] - ca[j]
            norm = np.linalg.norm(direction)
            direction = direction / norm if norm > 1e-9 else np.array([1.0, 0.0, 0.0])
            push = 0.5 * (min_separation - dist[i, j] if np.isfinite(dist[i, j]) else min_separation)
            ca[i] += push * direction
            ca[j] -= push * direction
    return ca


@dataclass(frozen=True)
class AccuracyProfile:
    """Blend / noise parameters of one prior-biased baseline."""

    prior_weight_short: float  # weight of the generic prior for 5-8 residue fragments
    prior_weight_medium: float  # 9-12 residues
    prior_weight_long: float  # 13+ residues
    noise_short: float  # residual coordinate noise (Å std-dev)
    noise_medium: float
    noise_long: float

    def parameters_for_length(self, length: int) -> tuple[float, float]:
        """(prior_weight, noise_sigma) for a fragment of the given length."""
        if length <= 8:
            return self.prior_weight_short, self.noise_short
        if length <= 12:
            return self.prior_weight_medium, self.noise_medium
        return self.prior_weight_long, self.noise_long


class PriorBiasedPredictor:
    """Common machinery of the AF2-like and AF3-like baselines."""

    method_name = "PriorBiased"

    def __init__(
        self,
        profile: AccuracyProfile,
        reference_generator: ReferenceStructureGenerator | None = None,
        master_seed: int = 11,
    ):
        self.profile = profile
        self.reference_generator = reference_generator or ReferenceStructureGenerator()
        self.master_seed = int(master_seed)

    def predict(self, pdb_id: str, sequence: ProteinSequence | str, start_seq_id: int = 1) -> FoldingPrediction:
        """Predict one fragment with this baseline's accuracy profile."""
        prediction, _ = self.predict_with_coords(pdb_id, sequence, start_seq_id=start_seq_id)
        return prediction

    def predict_with_coords(
        self, pdb_id: str, sequence: ProteinSequence | str, start_seq_id: int = 1
    ) -> tuple[FoldingPrediction, np.ndarray]:
        """Predict one fragment and also return the blended Cα trace.

        The trace is the minimal datum the engine's result cache persists:
        re-running the (deterministic) reconstruction over it reproduces the
        returned structure exactly.
        """
        seq = sequence if isinstance(sequence, ProteinSequence) else ProteinSequence(str(sequence))
        reference = self.reference_generator.generate(pdb_id, seq, start_seq_id=start_seq_id)
        prior_weight, noise_sigma = self.profile.parameters_for_length(len(seq))
        rng = rng_for(self.master_seed, self.method_name, pdb_id.lower(), str(seq))

        prior = secondary_structure_prior(str(seq))
        # Put the prior into the reference frame before blending.
        prior_aligned, _rot, _t = superimpose(prior, reference.ca_coords)
        blended = prior_weight * prior_aligned + (1.0 - prior_weight) * reference.ca_coords
        blended = blended + rng.normal(scale=noise_sigma, size=blended.shape)
        blended = _enforce_ca_separation(blended)

        structure = reconstruct_structure(
            seq,
            blended,
            structure_id=f"{pdb_id.lower()}_{self.method_name.lower()}",
            start_seq_id=start_seq_id,
            center=True,
        )
        metadata = {
            "pdb_id": pdb_id.lower(),
            "method": self.method_name,
            "prior_weight": prior_weight,
            "noise_sigma": noise_sigma,
            "prior_type": "helix" if np.mean([_HELIX_PROPENSITY[c] for c in str(seq)]) >= 1.0 else "extended",
        }
        prediction = FoldingPrediction(
            pdb_id=pdb_id.lower(),
            sequence=str(seq),
            method=self.method_name,
            structure=structure,
            metadata=metadata,
        )
        return prediction, blended

    def predict_many(self, fragments: list[tuple[str, str]]) -> list[FoldingPrediction]:
        """Predict a batch of ``(pdb_id, sequence)`` fragments serially."""
        return [self.predict(pdb_id, seq) for pdb_id, seq in fragments]


class AF2LikePredictor(PriorBiasedPredictor):
    """AlphaFold2-like accuracy profile: strong prior bias on short fragments."""

    method_name = "AF2"

    def __init__(self, reference_generator: ReferenceStructureGenerator | None = None, master_seed: int = 11):
        super().__init__(
            AccuracyProfile(
                prior_weight_short=0.70,
                prior_weight_medium=0.62,
                prior_weight_long=0.56,
                noise_short=1.3,
                noise_medium=1.5,
                noise_long=1.7,
            ),
            reference_generator=reference_generator,
            master_seed=master_seed,
        )


class AF3LikePredictor(PriorBiasedPredictor):
    """AlphaFold3-like accuracy profile: weaker prior bias, strongest on long fragments."""

    method_name = "AF3"

    def __init__(self, reference_generator: ReferenceStructureGenerator | None = None, master_seed: int = 13):
        super().__init__(
            AccuracyProfile(
                prior_weight_short=0.55,
                prior_weight_medium=0.45,
                prior_weight_long=0.40,
                noise_short=1.0,
                noise_medium=1.1,
                noise_long=1.2,
            ),
            reference_generator=reference_generator,
            master_seed=master_seed,
        )


#: Baseline predictors by method name — the registry the engine's
#: ``baseline_fold`` jobs resolve their method through.
BASELINE_PREDICTORS: dict[str, type[PriorBiasedPredictor]] = {
    AF2LikePredictor.method_name: AF2LikePredictor,
    AF3LikePredictor.method_name: AF3LikePredictor,
}


def baseline_fold_fragment(
    method: str,
    pdb_id: str,
    sequence: ProteinSequence | str,
    config: PipelineConfig | None = None,
    start_seq_id: int = 1,
    reference_generator: ReferenceStructureGenerator | None = None,
) -> tuple[FoldingPrediction, np.ndarray]:
    """Run one baseline fold (the engine's ``baseline_fold`` job executor).

    Resolves ``method`` through :data:`BASELINE_PREDICTORS` and predicts with
    a reference generator keyed on ``config.seed`` (the same keying the
    dataset batch pipeline uses), so the result depends only on the fragment
    identity, the method and the master seed.  Returns the prediction plus
    the blended Cα trace the persistent cache stores.
    """
    config = config or PipelineConfig()
    predictor_cls = BASELINE_PREDICTORS.get(method)
    if predictor_cls is None:
        raise EngineError(
            f"unknown baseline method {method!r}; available: {sorted(BASELINE_PREDICTORS)}"
        )
    generator = reference_generator or ReferenceStructureGenerator(master_seed=config.seed)
    predictor = predictor_cls(reference_generator=generator)
    return predictor.predict_with_coords(pdb_id, sequence, start_seq_id=start_seq_id)
