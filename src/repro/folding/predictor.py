"""Fragment structure predictors built on the lattice + VQE stack.

:class:`QuantumFoldingPredictor` is the paper's pipeline: encode the fragment,
run the two-stage VQE on a quantum backend (simulator or Eagle emulator),
decode the best conformation and reconstruct a docking-ready structure.
:class:`ClassicalFoldingPredictor` replaces the VQE with the exact /
simulated-annealing classical solver and is used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bio.sequence import ProteinSequence
from repro.bio.structure import Structure
from repro.config import PipelineConfig
from repro.hardware.cost import CostModel
from repro.hardware.timing import ExecutionTimeModel
from repro.lattice.classical import ClassicalFoldingSolver
from repro.lattice.hamiltonian import HamiltonianWeights, LatticeHamiltonian
from repro.lattice.reconstruction import reconstruct_structure
from repro.quantum.backend import Backend
from repro.utils.rng import child_seed
from repro.vqe.optimizer import CobylaOptimizer
from repro.vqe.vqe import VQE


@dataclass
class FoldingPrediction:
    """A predicted fragment structure plus its provenance metadata."""

    pdb_id: str
    sequence: str
    method: str
    structure: Structure
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def length(self) -> int:
        """Number of residues in the fragment."""
        return len(self.sequence)


class QuantumFoldingPredictor:
    """Sequence → structure via lattice encoding + two-stage VQE (the paper's method)."""

    method_name = "QDock"

    def __init__(
        self,
        config: PipelineConfig | None = None,
        backend: Backend | None = None,
        weights: HamiltonianWeights | None = None,
        register: str = "configuration",
        timing_model: ExecutionTimeModel | None = None,
        cost_model: CostModel | None = None,
    ):
        self.config = config or PipelineConfig()
        self.backend = backend
        self.weights = weights
        self.register = register
        self.timing_model = timing_model or ExecutionTimeModel()
        self.cost_model = cost_model or CostModel()

    def predict(
        self,
        pdb_id: str,
        sequence: ProteinSequence | str,
        start_seq_id: int = 1,
    ) -> FoldingPrediction:
        """Fold one fragment and return the reconstructed structure."""
        seq = sequence if isinstance(sequence, ProteinSequence) else ProteinSequence(str(sequence))
        hamiltonian = LatticeHamiltonian(seq, weights=self.weights)
        seed = child_seed(self.config.seed, "quantum-fold", pdb_id.lower(), str(seq))
        vqe = VQE(
            hamiltonian,
            backend=self.backend,
            config=self.config,
            optimizer=CobylaOptimizer(max_iterations=self.config.vqe_iterations),
            register=self.register,
            seed=seed,
        )
        result = vqe.run()
        assert result.best_conformation is not None
        structure = reconstruct_structure(
            seq,
            result.best_conformation.ca_coords,
            structure_id=f"{pdb_id.lower()}_qdock",
            start_seq_id=start_seq_id,
            center=True,
        )

        estimate = self.timing_model.estimate(
            pdb_id, result.num_qubits, result.circuit_depth
        )
        cost = self.cost_model.fragment_cost(estimate)
        metadata = result.metadata()
        metadata.update(
            {
                "pdb_id": pdb_id.lower(),
                "method": self.method_name,
                "execution_time_s": estimate.total_seconds,
                "qpu_time_s": estimate.qpu_seconds,
                "queue_time_s": estimate.queue_seconds,
                "estimated_cost_usd": cost.total_usd,
            }
        )
        return FoldingPrediction(
            pdb_id=pdb_id.lower(),
            sequence=str(seq),
            method=self.method_name,
            structure=structure,
            metadata=metadata,
        )

    def predict_many(self, fragments: list[tuple[str, str]]) -> list[FoldingPrediction]:
        """Predict a batch of ``(pdb_id, sequence)`` fragments serially."""
        return [self.predict(pdb_id, seq) for pdb_id, seq in fragments]


class ClassicalFoldingPredictor:
    """Sequence → structure via the exact / annealed classical solver (ablation baseline)."""

    method_name = "ClassicalLattice"

    def __init__(self, config: PipelineConfig | None = None, weights: HamiltonianWeights | None = None):
        self.config = config or PipelineConfig()
        self.weights = weights

    def predict(self, pdb_id: str, sequence: ProteinSequence | str, start_seq_id: int = 1) -> FoldingPrediction:
        """Fold one fragment with the classical solver."""
        seq = sequence if isinstance(sequence, ProteinSequence) else ProteinSequence(str(sequence))
        hamiltonian = LatticeHamiltonian(seq, weights=self.weights)
        solver = ClassicalFoldingSolver(hamiltonian)
        result = solver.solve(seed=self.config.seed)
        structure = reconstruct_structure(
            seq,
            result.ca_coords,
            structure_id=f"{pdb_id.lower()}_classical",
            start_seq_id=start_seq_id,
            center=True,
        )
        metadata = {
            "pdb_id": pdb_id.lower(),
            "method": self.method_name,
            "energy": result.energy,
            "exact": result.exact,
            "evaluations": result.evaluations,
        }
        return FoldingPrediction(
            pdb_id=pdb_id.lower(),
            sequence=str(seq),
            method=self.method_name,
            structure=structure,
            metadata=metadata,
        )
