"""Fragment structure predictors built on the lattice + VQE stack.

:func:`fold_fragment` is the single implementation of the paper's pipeline:
encode the fragment, run the two-stage VQE on a quantum backend (simulator or
Eagle emulator), decode the best conformation and reconstruct a docking-ready
structure.  :class:`QuantumFoldingPredictor` wraps it in a predictor API and
routes batch work through the job engine (:mod:`repro.engine`), which adds
parallel fan-out and persistent result caching.
:class:`ClassicalFoldingPredictor` replaces the VQE with the exact /
simulated-annealing classical solver and is used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.bio.sequence import ProteinSequence
from repro.bio.structure import Structure
from repro.config import PipelineConfig
from repro.hardware.cost import CostModel
from repro.hardware.timing import ExecutionTimeModel
from repro.lattice.classical import ClassicalFoldingSolver
from repro.lattice.hamiltonian import HamiltonianWeights, LatticeHamiltonian
from repro.lattice.reconstruction import reconstruct_structure
from repro.quantum.backend import Backend
from repro.utils.rng import child_seed
from repro.vqe.optimizer import CobylaOptimizer
from repro.vqe.vqe import VQE


@dataclass
class FoldingPrediction:
    """A predicted fragment structure plus its provenance metadata."""

    pdb_id: str
    sequence: str
    method: str
    structure: Structure
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def length(self) -> int:
        """Number of residues in the fragment."""
        return len(self.sequence)


#: Method label attached to quantum predictions (the dataset's primary rows).
QUANTUM_METHOD_NAME = "QDock"


def fold_fragment(
    pdb_id: str,
    sequence: ProteinSequence | str,
    config: PipelineConfig | None = None,
    weights: HamiltonianWeights | None = None,
    register: str = "configuration",
    start_seq_id: int = 1,
    backend: Backend | None = None,
    timing_model: ExecutionTimeModel | None = None,
    cost_model: CostModel | None = None,
) -> tuple[FoldingPrediction, np.ndarray]:
    """Fold one fragment with the two-stage VQE pipeline.

    This is the single fold implementation shared by
    :class:`QuantumFoldingPredictor` and the job engine's workers.  Returns
    the prediction plus the raw lattice Cα trace of the decoded conformation
    (what the engine's result cache persists).  The VQE seed derives from the
    master seed and the fragment identity only, so the result is independent
    of where (and how often) the job runs.
    """
    config = config or PipelineConfig()
    seq = sequence if isinstance(sequence, ProteinSequence) else ProteinSequence(str(sequence))
    hamiltonian = LatticeHamiltonian(seq, weights=weights)
    seed = child_seed(config.seed, "quantum-fold", pdb_id.lower(), str(seq))
    vqe = VQE(
        hamiltonian,
        backend=backend,
        config=config,
        optimizer=CobylaOptimizer(max_iterations=config.vqe_iterations),
        register=register,
        seed=seed,
    )
    result = vqe.run()
    assert result.best_conformation is not None
    conformation_coords = np.asarray(result.best_conformation.ca_coords, dtype=float)
    structure = reconstruct_structure(
        seq,
        conformation_coords,
        structure_id=f"{pdb_id.lower()}_qdock",
        start_seq_id=start_seq_id,
        center=True,
    )

    timing_model = timing_model or ExecutionTimeModel()
    cost_model = cost_model or CostModel()
    estimate = timing_model.estimate(pdb_id, result.num_qubits, result.circuit_depth)
    cost = cost_model.fragment_cost(estimate)
    metadata = result.metadata()
    metadata.update(
        {
            "pdb_id": pdb_id.lower(),
            "method": QUANTUM_METHOD_NAME,
            "execution_time_s": estimate.total_seconds,
            "qpu_time_s": estimate.qpu_seconds,
            "queue_time_s": estimate.queue_seconds,
            "estimated_cost_usd": cost.total_usd,
        }
    )
    prediction = FoldingPrediction(
        pdb_id=pdb_id.lower(),
        sequence=str(seq),
        method=QUANTUM_METHOD_NAME,
        structure=structure,
        metadata=metadata,
    )
    return prediction, conformation_coords


class QuantumFoldingPredictor:
    """Sequence → structure via lattice encoding + two-stage VQE (the paper's method)."""

    method_name = QUANTUM_METHOD_NAME

    def __init__(
        self,
        config: PipelineConfig | None = None,
        backend: Backend | None = None,
        weights: HamiltonianWeights | None = None,
        register: str = "configuration",
        timing_model: ExecutionTimeModel | None = None,
        cost_model: CostModel | None = None,
    ):
        self.config = config or PipelineConfig()
        self.backend = backend
        self.weights = weights
        self.register = register
        self.timing_model = timing_model or ExecutionTimeModel()
        self.cost_model = cost_model or CostModel()
        # Jobs can only be shipped to the engine (workers, cache) when the
        # predictor carries no caller-supplied stateful components.
        self._engine_compatible = backend is None and timing_model is None and cost_model is None
        self._default_engine = None

    def _engine(self, processes: int | None = None, cache=None):
        """The engine to route jobs through.

        With default arguments the predictor reuses one lazily created engine,
        so cache hit/miss statistics accumulate across ``predict`` calls
        (``predictor.engine.stats()``) and the cache directory is only set up
        once.  Explicit ``processes``/``cache`` arguments get a fresh engine.
        """
        from repro.engine.core import Engine

        if processes is None and cache is None:
            if self._default_engine is None:
                self._default_engine = Engine(config=self.config)
            return self._default_engine
        return Engine(config=self.config, cache=cache, processes=processes)

    @property
    def engine(self):
        """The predictor's default engine (stats, cache introspection)."""
        return self._engine()

    def predict(
        self,
        pdb_id: str,
        sequence: ProteinSequence | str,
        start_seq_id: int = 1,
    ) -> FoldingPrediction:
        """Fold one fragment and return the reconstructed structure.

        Routed through the job engine (and its result cache, when
        ``config.cache_dir`` is set) unless a custom backend or timing / cost
        model was supplied, in which case the fold runs locally with them.
        """
        if not self._engine_compatible:
            prediction, _ = fold_fragment(
                pdb_id,
                sequence,
                config=self.config,
                weights=self.weights,
                register=self.register,
                start_seq_id=start_seq_id,
                backend=self.backend,
                timing_model=self.timing_model,
                cost_model=self.cost_model,
            )
            return prediction
        return self._engine().fold(
            pdb_id, str(sequence), start_seq_id=start_seq_id,
            weights=self.weights, register=self.register,
        )

    def predict_many(
        self,
        fragments: list[tuple[str, str]],
        processes: int | None = None,
        cache=None,
    ) -> list[FoldingPrediction]:
        """Predict a batch of ``(pdb_id, sequence)`` fragments via the engine.

        ``processes`` of ``None`` uses ``config.engine_workers``; ``cache``
        accepts a :class:`~repro.engine.cache.ResultCache` or a directory path
        (``None`` falls back to ``config.cache_dir``).  Falls back to a serial
        in-process loop when the predictor holds a custom backend or model.
        """
        if not self._engine_compatible:
            return [self.predict(pdb_id, seq) for pdb_id, seq in fragments]
        engine = self._engine(processes=processes, cache=cache)
        specs = [
            engine.spec(pdb_id, str(seq), weights=self.weights, register=self.register)
            for pdb_id, seq in fragments
        ]
        return [result.prediction for result in engine.run(specs)]


class ClassicalFoldingPredictor:
    """Sequence → structure via the exact / annealed classical solver (ablation baseline)."""

    method_name = "ClassicalLattice"

    def __init__(self, config: PipelineConfig | None = None, weights: HamiltonianWeights | None = None):
        self.config = config or PipelineConfig()
        self.weights = weights

    def predict(self, pdb_id: str, sequence: ProteinSequence | str, start_seq_id: int = 1) -> FoldingPrediction:
        """Fold one fragment with the classical solver."""
        seq = sequence if isinstance(sequence, ProteinSequence) else ProteinSequence(str(sequence))
        hamiltonian = LatticeHamiltonian(seq, weights=self.weights)
        solver = ClassicalFoldingSolver(hamiltonian)
        result = solver.solve(seed=self.config.seed)
        structure = reconstruct_structure(
            seq,
            result.ca_coords,
            structure_id=f"{pdb_id.lower()}_classical",
            start_seq_id=start_seq_id,
            center=True,
        )
        metadata = {
            "pdb_id": pdb_id.lower(),
            "method": self.method_name,
            "energy": result.energy,
            "exact": result.exact,
            "evaluations": result.evaluations,
        }
        return FoldingPrediction(
            pdb_id=pdb_id.lower(),
            sequence=str(seq),
            method=self.method_name,
            structure=structure,
            metadata=metadata,
        )
