"""Folding core: the quantum fragment predictor and the baseline predictors."""

from repro.folding.predictor import FoldingPrediction, QuantumFoldingPredictor, ClassicalFoldingPredictor
from repro.folding.baselines import AF2LikePredictor, AF3LikePredictor, PriorBiasedPredictor

__all__ = [
    "FoldingPrediction",
    "QuantumFoldingPredictor",
    "ClassicalFoldingPredictor",
    "AF2LikePredictor",
    "AF3LikePredictor",
    "PriorBiasedPredictor",
]
