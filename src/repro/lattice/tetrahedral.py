"""Tetrahedral (diamond) lattice geometry for coarse-grained protein backbones.

Following the paper's Sec. 4.3.1, each residue is a node on a tetrahedral
lattice: every site has four possible extension directions, a fixed virtual
bond length and a bond angle of ~109.47 degrees, matching the stereochemistry
of the Cα trace.  The diamond lattice has two sublattices (A and B); a chain
alternates between them, so steps from even-index residues use one set of four
direction vectors and steps from odd-index residues use their negatives — this
is what produces the tetrahedral bond angle automatically.

A *conformation* of an ``L``-residue fragment is a sequence of ``L-1`` turn
indices in ``{0, 1, 2, 3}``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import LatticeError

#: Cα–Cα virtual bond length in Angstroms.
CA_VIRTUAL_BOND: float = 3.8

#: The four tetrahedral directions of the A sublattice (unnormalised).
_DIRECTIONS_A = np.array(
    [
        [1.0, 1.0, 1.0],
        [1.0, -1.0, -1.0],
        [-1.0, 1.0, -1.0],
        [-1.0, -1.0, 1.0],
    ]
)
#: B-sublattice directions are the negatives of the A directions.
_DIRECTIONS_B = -_DIRECTIONS_A

#: Ideal tetrahedral bond angle in degrees.
TETRAHEDRAL_ANGLE_DEG: float = 109.4712206


class TetrahedralLattice:
    """Geometry helper exposing step vectors and conformation utilities."""

    def __init__(self, bond_length: float = CA_VIRTUAL_BOND):
        if bond_length <= 0:
            raise LatticeError(f"bond length must be positive, got {bond_length}")
        self.bond_length = float(bond_length)
        scale = self.bond_length / np.sqrt(3.0)
        self._steps_a = _DIRECTIONS_A * scale
        self._steps_b = _DIRECTIONS_B * scale

    def step_vectors(self, step_index: int) -> np.ndarray:
        """The four candidate step vectors for step ``step_index`` (0-based)."""
        return self._steps_a if step_index % 2 == 0 else self._steps_b

    def turns_to_coords(self, turns: np.ndarray | list[int]) -> np.ndarray:
        """Convert a turn sequence into (L, 3) Cα coordinates starting at the origin."""
        return turns_to_coords(turns, bond_length=self.bond_length)

    def num_conformations(self, length: int) -> int:
        """Total number of (not necessarily self-avoiding) conformations with the
        first two turns fixed."""
        free_turns = max(0, length - 3)
        return 4**free_turns


def turns_to_coords(turns: np.ndarray | list[int], bond_length: float = CA_VIRTUAL_BOND) -> np.ndarray:
    """Vectorised conversion of a turn sequence to Cα coordinates.

    ``turns`` has ``L - 1`` entries in ``{0,1,2,3}``; the returned array has
    shape ``(L, 3)`` with the first residue at the origin.
    """
    turns = np.asarray(turns, dtype=int)
    if turns.ndim != 1:
        raise LatticeError(f"turns must be a 1-D sequence, got shape {turns.shape}")
    if turns.size == 0:
        raise LatticeError("a conformation needs at least one turn")
    if np.any((turns < 0) | (turns > 3)):
        raise LatticeError("turn indices must be in {0, 1, 2, 3}")

    scale = bond_length / np.sqrt(3.0)
    n_steps = turns.size
    parities = np.arange(n_steps) % 2
    # steps[k] = +/- direction[turns[k]] depending on parity
    dirs = _DIRECTIONS_A[turns] * scale
    signs = np.where(parities == 0, 1.0, -1.0)[:, None]
    steps = dirs * signs
    coords = np.zeros((n_steps + 1, 3))
    np.cumsum(steps, axis=0, out=coords[1:])
    return coords


def is_self_avoiding(coords: np.ndarray, tol: float = 1e-6) -> bool:
    """True when no two residues occupy the same lattice site."""
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2 or coords.shape[1] != 3:
        raise LatticeError(f"coords must have shape (L, 3), got {coords.shape}")
    diff = coords[:, None, :] - coords[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    iu = np.triu_indices(coords.shape[0], k=1)
    return bool(np.all(dist2[iu] > tol))


def overlap_count(coords: np.ndarray, tol: float = 1e-6) -> int:
    """Number of residue pairs occupying the same lattice site."""
    coords = np.asarray(coords, dtype=float)
    diff = coords[:, None, :] - coords[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    iu = np.triu_indices(coords.shape[0], k=1)
    return int(np.count_nonzero(dist2[iu] <= tol))


def contact_pairs(coords: np.ndarray, bond_length: float = CA_VIRTUAL_BOND, tol: float = 1e-3) -> list[tuple[int, int]]:
    """Non-bonded residue pairs sitting on adjacent lattice sites.

    A *contact* is a pair ``(i, j)`` with ``j >= i + 3`` whose Cα–Cα distance
    equals the lattice bond length (nearest-neighbour sites).  These pairs are
    the ones that contribute Miyazawa–Jernigan interaction energy in ``H_i``.
    """
    coords = np.asarray(coords, dtype=float)
    n = coords.shape[0]
    diff = coords[:, None, :] - coords[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    pairs: list[tuple[int, int]] = []
    close = np.abs(dist - bond_length) < max(tol, 1e-6)
    idx_i, idx_j = np.nonzero(np.triu(close, k=3))
    for i, j in zip(idx_i.tolist(), idx_j.tolist()):
        pairs.append((i, j))
    return pairs


def backtracking_count(turns: np.ndarray | list[int]) -> int:
    """Number of immediate reversals (two consecutive identical turn indices).

    On the diamond lattice, step ``k`` with turn ``t`` and step ``k+1`` with the
    same turn ``t`` point in exactly opposite directions, i.e. the chain walks
    straight back onto the previous site.
    """
    turns = np.asarray(turns, dtype=int)
    if turns.size < 2:
        return 0
    return int(np.count_nonzero(turns[1:] == turns[:-1]))


def random_self_avoiding_turns(
    length: int, rng: np.random.Generator, max_attempts: int = 2000
) -> np.ndarray:
    """Sample a self-avoiding conformation (turn sequence) by rejection + growth."""
    if length < 2:
        raise LatticeError("need at least 2 residues")
    n_turns = length - 1
    for _ in range(max_attempts):
        turns = np.empty(n_turns, dtype=int)
        turns[0] = 0
        if n_turns > 1:
            turns[1] = 1
        ok = True
        for k in range(2, n_turns):
            candidates = [t for t in range(4) if t != turns[k - 1]]
            rng.shuffle(candidates)
            placed = False
            for t in candidates:
                turns[k] = t
                coords = turns_to_coords(turns[: k + 1])
                if is_self_avoiding(coords):
                    placed = True
                    break
            if not placed:
                ok = False
                break
        if ok and is_self_avoiding(turns_to_coords(turns)):
            return turns
    raise LatticeError(f"failed to sample a self-avoiding walk of length {length}")
