"""The folding Hamiltonian  H_t = λc H_c + λg H_g + λd H_d + λi H_i.

Following Sec. 4.3.1 of the paper, the total energy of a lattice conformation
is the weighted sum of four terms:

* ``H_c`` — chirality constraints (here: a symmetry-breaking penalty on
  left-handed local triads so that mirror-image conformations are not
  degenerate);
* ``H_g`` — geometric backbone constraints (penalty on immediate backtracking,
  which is the only way a diamond-lattice walk can violate the tetrahedral
  bond-angle geometry);
* ``H_d`` — steric clash penalty (pairs of residues occupying the same site);
* ``H_i`` — Miyazawa–Jernigan pairwise interaction energies of non-bonded
  nearest-neighbour contacts.

The Hamiltonian is *diagonal in the computational basis*: each measured
bitstring maps to a conformation whose energy is evaluated classically.  This
is exactly the structure exploited by the paper's VQE workflow (sample
bitstrings, average their energies).

Energy calibration
------------------
The paper reports absolute energies that grow steeply with fragment size
(Sec. 4.2: S ≈ 10–1800, M ≈ 1400–14000, L ≈ 16000–24000).  Those magnitudes
come from the authors' penalty prefactors, which scale with the size of the
encoded problem.  We reproduce the same behaviour by adding a per-fragment
*encoding offset* ``E0(q) = 0.00135 · q^3.6`` (``q`` = total qubits) and by
scaling the penalty weights with the same offset.  The *physics* (which
conformation is the ground state) is unaffected: the offset is constant and
the penalty scaling preserves ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.miyazawa_jernigan import interaction_matrix_for_sequence
from repro.bio.sequence import ProteinSequence
from repro.exceptions import HamiltonianError
from repro.lattice.encoding import FragmentEncoding
from repro.lattice.tetrahedral import (
    CA_VIRTUAL_BOND,
    backtracking_count,
    turns_to_coords,
)

#: Calibration constants of the encoding offset (see module docstring).
OFFSET_COEFF = 0.00135
OFFSET_EXPONENT = 3.6


def encoding_offset(total_qubits: int) -> float:
    """Constant energy offset contributed by the hardware encoding."""
    if total_qubits <= 0:
        raise HamiltonianError(f"qubit count must be positive, got {total_qubits}")
    return OFFSET_COEFF * float(total_qubits) ** OFFSET_EXPONENT


@dataclass(frozen=True)
class HamiltonianWeights:
    """The λ weights of the four Hamiltonian terms (paper default: all 1)."""

    chirality: float = 1.0
    geometric: float = 1.0
    clash: float = 1.0
    interaction: float = 1.0


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-term energies of one conformation."""

    chirality: float
    geometric: float
    clash: float
    interaction: float
    offset: float

    @property
    def total(self) -> float:
        """Total energy including the encoding offset."""
        return self.chirality + self.geometric + self.clash + self.interaction + self.offset

    @property
    def physical(self) -> float:
        """Energy without the constant encoding offset."""
        return self.chirality + self.geometric + self.clash + self.interaction

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view used by the metadata JSON files."""
        return {
            "chirality": self.chirality,
            "geometric": self.geometric,
            "clash": self.clash,
            "interaction": self.interaction,
            "offset": self.offset,
            "physical": self.physical,
            "total": self.total,
        }


class LatticeHamiltonian:
    """Diagonal folding Hamiltonian for one fragment sequence.

    Parameters
    ----------
    sequence:
        Fragment sequence (5–14 residues in the dataset, any length >= 3 here).
    weights:
        The λ coefficients; the paper sets all four to 1.
    bond_length:
        Cα–Cα virtual bond length of the lattice.
    """

    def __init__(
        self,
        sequence: ProteinSequence | str,
        weights: HamiltonianWeights | None = None,
        bond_length: float = CA_VIRTUAL_BOND,
    ):
        self.sequence = (
            sequence if isinstance(sequence, ProteinSequence) else ProteinSequence(str(sequence))
        )
        if len(self.sequence) < 3:
            raise HamiltonianError("the folding Hamiltonian needs at least 3 residues")
        self.weights = weights or HamiltonianWeights()
        self.bond_length = float(bond_length)
        self.encoding = FragmentEncoding.for_sequence(self.sequence)
        self.offset = encoding_offset(self.encoding.total_qubits)
        # Penalty prefactors scale with the encoding offset so that invalid
        # conformations are always well separated from physical ones, and so
        # the observed energy spread follows the paper's per-group gradient.
        self._clash_penalty = 0.08 * self.offset + 10.0
        self._geometric_penalty = 0.05 * self.offset + 5.0
        self._chirality_penalty = 0.01 * self.offset + 1.0
        self._interaction_scale = 0.02 * self.offset + 1.0
        self._mj = interaction_matrix_for_sequence(str(self.sequence))
        # Hydrophobic-burial field (part of H_i): hydrophobic residues prefer
        # the core of the fold.  Scaled well below the contact energies, its
        # role is to make the ground state sequence-specific (and unique) even
        # for fragments too short to form any non-local contact.
        from repro.bio.amino_acids import get as _get_aa

        self._hydropathy = np.array(
            [_get_aa(c).hydropathy / 4.5 for c in str(self.sequence)]
        )

    # -- per-term evaluation ---------------------------------------------------

    def _clash_energy(self, coords: np.ndarray) -> float:
        diff = coords[:, None, :] - coords[None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", diff, diff)
        iu = np.triu_indices(coords.shape[0], k=1)
        overlaps = int(np.count_nonzero(dist2[iu] < 1e-6))
        return self.weights.clash * self._clash_penalty * overlaps

    def _geometric_energy(self, turns: np.ndarray) -> float:
        return self.weights.geometric * self._geometric_penalty * backtracking_count(turns)

    def _chirality_energy(self, coords: np.ndarray) -> float:
        """Symmetry-breaking term: penalise left-handed consecutive triads."""
        if coords.shape[0] < 4:
            return 0.0
        v1 = coords[1:-2] - coords[:-3]
        v2 = coords[2:-1] - coords[1:-2]
        v3 = coords[3:] - coords[2:-1]
        handedness = np.einsum("ij,ij->i", np.cross(v1, v2), v3)
        left_handed = int(np.count_nonzero(handedness < -1e-9))
        return self.weights.chirality * self._chirality_penalty * left_handed

    def _interaction_energy(self, coords: np.ndarray) -> float:
        diff = coords[:, None, :] - coords[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        contact = np.abs(dist - self.bond_length) < 1e-3
        # Only non-bonded pairs separated by >= 3 along the chain.
        n = coords.shape[0]
        sep = np.abs(np.arange(n)[:, None] - np.arange(n)[None, :])
        mask = np.triu(contact & (sep >= 3), k=3)
        energy = float(np.sum(self._mj[mask]))
        # Hydrophobic burial field: positive-hydropathy residues are penalised
        # for sitting far from the fold's centroid.
        centroid = coords.mean(axis=0)
        dist_to_centroid = np.linalg.norm(coords - centroid, axis=1) / self.bond_length
        energy += 0.05 * float(np.dot(self._hydropathy, dist_to_centroid))
        return self.weights.interaction * self._interaction_scale * energy

    # -- public API ------------------------------------------------------------

    def breakdown(self, turns: np.ndarray | list[int]) -> EnergyBreakdown:
        """Evaluate all four terms (plus offset) for a turn sequence."""
        turns = np.asarray(turns, dtype=int)
        if turns.size != len(self.sequence) - 1:
            raise HamiltonianError(
                f"expected {len(self.sequence) - 1} turns, got {turns.size}"
            )
        coords = turns_to_coords(turns, bond_length=self.bond_length)
        return EnergyBreakdown(
            chirality=self._chirality_energy(coords),
            geometric=self._geometric_energy(turns),
            clash=self._clash_energy(coords),
            interaction=self._interaction_energy(coords),
            offset=self.offset,
        )

    def energy(self, turns: np.ndarray | list[int]) -> float:
        """Total (offset-included) energy of a conformation."""
        return self.breakdown(turns).total

    def energy_of_bits(self, bits: str) -> float:
        """Total energy of the conformation encoded by a configuration bitstring."""
        return self.energy(self.encoding.turns_from_bits(bits))

    def energies_of_bitstrings(self, bitstrings: list[str]) -> np.ndarray:
        """Vector of energies for a batch of bitstrings (used by VQE sampling)."""
        return np.array([self.energy_of_bits(b) for b in bitstrings], dtype=float)

    def is_valid(self, turns: np.ndarray | list[int]) -> bool:
        """True when the conformation has no clashes and no backtracking."""
        b = self.breakdown(turns)
        return b.clash == 0.0 and b.geometric == 0.0
