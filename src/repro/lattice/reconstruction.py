"""Atomic reconstruction of coarse-grained lattice conformations.

Sec. 4.3.3 of the paper: the predicted coarse-grained structure is refined by
applying standard amino-acid templates, backbone atoms are placed at standard
bond lengths, and the structure is centred before docking.  This module wires
the lattice decoder output into :mod:`repro.bio.templates` and produces a
docking-ready :class:`~repro.bio.structure.Structure`.
"""

from __future__ import annotations

import numpy as np

from repro.bio.sequence import ProteinSequence
from repro.bio.structure import Structure
from repro.bio.templates import build_backbone_from_ca
from repro.exceptions import StructureError


def reconstruct_structure(
    sequence: ProteinSequence | str,
    ca_coords: np.ndarray,
    structure_id: str = "FRAG",
    start_seq_id: int = 1,
    center: bool = True,
    jitter: float = 0.0,
    rng: np.random.Generator | None = None,
) -> Structure:
    """Build a full-backbone structure from a Cα trace.

    Parameters
    ----------
    sequence, ca_coords:
        The fragment sequence and its (L, 3) Cα coordinates.
    center:
        Centre the structure on the origin (the paper centres structures to
        facilitate docking).
    jitter:
        Optional Gaussian off-lattice perturbation (Angstroms, std-dev) applied
        to the Cα trace before templating.  Used by the reference-structure
        generator to emulate the deviation of a real crystal structure from an
        ideal lattice; the quantum pipeline itself uses ``jitter=0``.
    rng:
        Generator for the jitter; required when ``jitter > 0``.
    """
    seq = sequence if isinstance(sequence, ProteinSequence) else ProteinSequence(str(sequence))
    # Copy: atoms keep views of the rows handed to them, and centring
    # translates atoms in place — without the copy the caller's coordinate
    # array (e.g. a DecodedConformation's Cα trace) would be mutated.
    ca = np.array(ca_coords, dtype=float)
    if ca.shape != (len(seq), 3):
        raise StructureError(
            f"expected ({len(seq)}, 3) CA coordinates, got {ca.shape}"
        )
    if jitter > 0.0:
        if rng is None:
            raise StructureError("jitter > 0 requires an explicit rng")
        ca = ca + rng.normal(scale=jitter, size=ca.shape)
    structure = build_backbone_from_ca(str(seq), ca, structure_id=structure_id, start_seq_id=start_seq_id)
    if center:
        structure.center()
    return structure
