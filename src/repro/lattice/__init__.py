"""Coarse-grained tetrahedral-lattice protein model and its quantum encoding."""

from repro.lattice.tetrahedral import (
    TetrahedralLattice,
    CA_VIRTUAL_BOND,
    turns_to_coords,
    is_self_avoiding,
    contact_pairs,
)
from repro.lattice.encoding import FragmentEncoding, qubit_count_for_length, circuit_depth_for_qubits
from repro.lattice.hamiltonian import HamiltonianWeights, LatticeHamiltonian
from repro.lattice.decoder import ConformationDecoder, DecodedConformation
from repro.lattice.reconstruction import reconstruct_structure
from repro.lattice.classical import ClassicalFoldingSolver

__all__ = [
    "TetrahedralLattice",
    "CA_VIRTUAL_BOND",
    "turns_to_coords",
    "is_self_avoiding",
    "contact_pairs",
    "FragmentEncoding",
    "qubit_count_for_length",
    "circuit_depth_for_qubits",
    "HamiltonianWeights",
    "LatticeHamiltonian",
    "ConformationDecoder",
    "DecodedConformation",
    "reconstruct_structure",
    "ClassicalFoldingSolver",
]
