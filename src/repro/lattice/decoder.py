"""Decoding measured bitstrings into lattice conformations and Cα traces.

The second stage of the paper's hardware workflow (Sec. 5.2) fixes the
optimised circuit parameters, measures 100,000 shots and maps the resulting
low-energy bitstrings to 3D structures.  :class:`ConformationDecoder`
implements that mapping: it scores every distinct measured bitstring with the
diagonal Hamiltonian, discards physically invalid conformations (clashes /
backtracking) when possible, and returns the best decoded conformation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import LatticeError
from repro.lattice.hamiltonian import LatticeHamiltonian
from repro.lattice.tetrahedral import turns_to_coords


@dataclass(frozen=True)
class DecodedConformation:
    """A decoded conformation with its provenance."""

    turns: tuple[int, ...]
    ca_coords: np.ndarray
    energy: float
    bitstring: str
    valid: bool

    @property
    def length(self) -> int:
        """Number of residues."""
        return self.ca_coords.shape[0]


class ConformationDecoder:
    """Maps measurement outcomes of one fragment's circuit to conformations."""

    def __init__(self, hamiltonian: LatticeHamiltonian):
        self.hamiltonian = hamiltonian
        self.encoding = hamiltonian.encoding

    def decode_bitstring(self, bits: str) -> DecodedConformation:
        """Decode one bitstring into a conformation (no validity filtering)."""
        turns = self.encoding.turns_from_bits(bits)
        coords = turns_to_coords(np.asarray(turns), bond_length=self.hamiltonian.bond_length)
        breakdown = self.hamiltonian.breakdown(turns)
        return DecodedConformation(
            turns=tuple(turns),
            ca_coords=coords,
            energy=breakdown.total,
            bitstring=bits[: self.encoding.configuration_qubits],
            valid=(breakdown.clash == 0.0 and breakdown.geometric == 0.0),
        )

    def decode_counts(self, counts: dict[str, int]) -> DecodedConformation:
        """Decode a whole counts dictionary and return the best conformation.

        Preference order: the lowest-energy *valid* conformation; if every
        measured bitstring decodes to an invalid conformation, the lowest-energy
        invalid one is returned (mirroring the pragmatic behaviour needed on
        noisy hardware).
        """
        if not counts:
            raise LatticeError("cannot decode an empty counts dictionary")
        best_valid: DecodedConformation | None = None
        best_any: DecodedConformation | None = None
        # Deduplicate on the configuration register to avoid re-decoding
        # bitstrings that differ only in interaction-register bits.
        seen: set[str] = set()
        width = self.encoding.configuration_qubits

        def better(candidate: DecodedConformation, incumbent: DecodedConformation | None) -> bool:
            # Degenerate ground states are resolved by the lexicographically
            # smallest turn sequence, the same tie-break the classical solver
            # uses, so quantum and classical pipelines agree on ties.
            if incumbent is None:
                return True
            if candidate.energy < incumbent.energy - 1e-9:
                return True
            if abs(candidate.energy - incumbent.energy) <= 1e-9:
                return candidate.turns < incumbent.turns
            return False

        for bits in counts:
            key = bits[:width]
            if key in seen:
                continue
            seen.add(key)
            conf = self.decode_bitstring(bits)
            if better(conf, best_any):
                best_any = conf
            if conf.valid and better(conf, best_valid):
                best_valid = conf
        assert best_any is not None
        return best_valid if best_valid is not None else best_any

    def decode_many(self, bitstrings: list[str]) -> list[DecodedConformation]:
        """Decode a list of bitstrings (no deduplication, order preserved)."""
        return [self.decode_bitstring(b) for b in bitstrings]
