"""Turn-based qubit encoding and resource accounting for fragment folding.

Each of the ``L - 1`` backbone turns takes one of four directions and is
encoded in two qubits.  The first two turns are fixed to remove the global
rotation/translation redundancy of the lattice, leaving ``2 (L - 3)``
*configuration qubits* that determine the conformation.  On top of those, the
resource-efficient encoding used on hardware carries *interaction qubits* —
slack registers, one block per candidate non-local contact — plus the ancilla
margin of Sec. 5.3.  Only the configuration qubits affect the decoded
structure; the interaction register enters the resource accounting (qubit
count, circuit depth, runtime, cost).

The paper reports, for every fragment, the total qubit count and the
transpiled circuit depth (Tables 1–3).  Both follow simple laws which this
module reproduces exactly:

* total qubits per length: 5→12, 6→23, 7→38, 8→46, 9→54, 10→63, 11→72,
  12→82, 13→92, 14→102 (``PAPER_QUBIT_TABLE``);
* transpiled depth = ``4 * qubits + 5`` for every row of Tables 1–3
  (:func:`circuit_depth_for_qubits`).

For lengths outside the paper's 5–14 range a principled fallback is used
(configuration + interaction-pair count).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.sequence import ProteinSequence
from repro.exceptions import EncodingError

#: Total qubit count per fragment length, as reported in Tables 1-3.
PAPER_QUBIT_TABLE: dict[int, int] = {
    5: 12,
    6: 23,
    7: 38,
    8: 46,
    9: 54,
    10: 63,
    11: 72,
    12: 82,
    13: 92,
    14: 102,
}

#: Depth of the transpiled, parameterised circuit as a function of qubit count.
DEPTH_SLOPE = 4
DEPTH_OFFSET = 5

#: Qubits per encoded turn.
QUBITS_PER_TURN = 2

#: Number of leading turns fixed to break lattice symmetries.
FIXED_TURNS = 2


def configuration_qubits_for_length(length: int) -> int:
    """Number of qubits that parameterise the conformation (2 per free turn)."""
    if length < 2:
        raise EncodingError(f"cannot encode a fragment of length {length}")
    free_turns = max(1, length - 1 - FIXED_TURNS)
    return QUBITS_PER_TURN * free_turns


def interaction_qubits_for_length(length: int) -> int:
    """Interaction / slack qubits carried by the hardware encoding."""
    total = qubit_count_for_length(length)
    return max(0, total - configuration_qubits_for_length(length))


def qubit_count_for_length(length: int) -> int:
    """Total qubit count for a fragment of ``length`` residues.

    Uses the paper's calibrated table for lengths 5–14 and a principled
    formula (configuration qubits plus one slack qubit per candidate
    non-local contact pair ``|i - j| >= 3``) outside that range.
    """
    if length < 2:
        raise EncodingError(f"cannot encode a fragment of length {length}")
    if length in PAPER_QUBIT_TABLE:
        return PAPER_QUBIT_TABLE[length]
    config = configuration_qubits_for_length(length)
    # Candidate non-local contacts: pairs with separation >= 3.
    contacts = max(0, (length - 3) * (length - 2) // 2)
    return config + contacts


def circuit_depth_for_qubits(num_qubits: int) -> int:
    """Transpiled parameterised-circuit depth; matches Tables 1–3 exactly."""
    if num_qubits <= 0:
        raise EncodingError(f"qubit count must be positive, got {num_qubits}")
    return DEPTH_SLOPE * num_qubits + DEPTH_OFFSET


@dataclass(frozen=True)
class FragmentEncoding:
    """Resource description of one encoded fragment.

    Attributes
    ----------
    sequence:
        The fragment sequence.
    configuration_qubits:
        Qubits whose measurement outcomes determine the backbone turns.
    interaction_qubits:
        Additional slack qubits carried by the hardware encoding.
    total_qubits:
        ``configuration_qubits + interaction_qubits`` — the value reported in
        the paper's tables.
    circuit_depth:
        Depth of the transpiled, parameterised ansatz on the target device.
    """

    sequence: ProteinSequence
    configuration_qubits: int
    interaction_qubits: int
    total_qubits: int
    circuit_depth: int

    @classmethod
    def for_sequence(cls, sequence: ProteinSequence | str) -> "FragmentEncoding":
        """Build the encoding for a fragment sequence."""
        seq = sequence if isinstance(sequence, ProteinSequence) else ProteinSequence(str(sequence))
        length = len(seq)
        config = configuration_qubits_for_length(length)
        total = qubit_count_for_length(length)
        return cls(
            sequence=seq,
            configuration_qubits=config,
            interaction_qubits=total - config,
            total_qubits=total,
            circuit_depth=circuit_depth_for_qubits(total),
        )

    @property
    def num_free_turns(self) -> int:
        """Number of turns encoded in the configuration register."""
        return self.configuration_qubits // QUBITS_PER_TURN

    @property
    def length(self) -> int:
        """Fragment length in residues."""
        return len(self.sequence)

    def turns_from_bits(self, bits: str) -> list[int]:
        """Decode a configuration-register bitstring into the full turn sequence.

        ``bits`` must contain at least ``configuration_qubits`` characters; only
        the first ``configuration_qubits`` are used (extra interaction-register
        bits are ignored).  The first two turns are fixed to ``0`` and ``1``.
        """
        if len(bits) < self.configuration_qubits:
            raise EncodingError(
                f"bitstring of length {len(bits)} is shorter than the "
                f"{self.configuration_qubits}-qubit configuration register"
            )
        turns: list[int] = [0, 1][: self.length - 1]
        for k in range(self.num_free_turns):
            chunk = bits[2 * k : 2 * k + 2]
            turns.append(int(chunk, 2))
        return turns[: self.length - 1]

    def bits_from_turns(self, turns: list[int]) -> str:
        """Inverse of :meth:`turns_from_bits` (configuration register only)."""
        if len(turns) != self.length - 1:
            raise EncodingError(
                f"expected {self.length - 1} turns, got {len(turns)}"
            )
        free = turns[FIXED_TURNS:] if self.length - 1 > FIXED_TURNS else turns[-1:]
        free = free[: self.num_free_turns]
        # Pad in case of very short fragments where num_free_turns > available.
        while len(free) < self.num_free_turns:
            free.append(0)
        return "".join(format(t, "02b") for t in free)
