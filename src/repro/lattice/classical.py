"""Classical ground-state solvers for the lattice folding Hamiltonian.

Two roles:

* provide the *reference* conformations used by the synthetic
  "experimental X-ray" structure generator (the crystal structure is, by
  definition, the free-energy minimum of the physical model);
* serve as a classical baseline against which the quantum (VQE) pipeline can
  be compared in the ablation benchmarks.

Two strategies are implemented behind one interface:

* exhaustive enumeration of all ``4^(L-3)`` conformations for short fragments
  (exact ground state);
* simulated annealing with single-turn moves for longer fragments
  (deterministic given the seed, near-optimal in practice).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lattice.hamiltonian import LatticeHamiltonian
from repro.lattice.tetrahedral import turns_to_coords
from repro.utils.rng import rng_for


@dataclass(frozen=True)
class ClassicalFoldingResult:
    """Outcome of a classical ground-state search."""

    turns: tuple[int, ...]
    energy: float
    ca_coords: np.ndarray
    exact: bool
    evaluations: int


class ClassicalFoldingSolver:
    """Exact / annealed classical solver for :class:`LatticeHamiltonian`.

    Parameters
    ----------
    hamiltonian:
        The fragment Hamiltonian to minimise.
    exact_max_free_turns:
        Exhaustive enumeration is used when the number of free turns is at
        most this value (``4^n`` conformations; the default 7 caps the search
        at 16,384 evaluations).
    """

    def __init__(self, hamiltonian: LatticeHamiltonian, exact_max_free_turns: int = 7):
        self.hamiltonian = hamiltonian
        self.encoding = hamiltonian.encoding
        self.exact_max_free_turns = int(exact_max_free_turns)

    # -- exhaustive search -----------------------------------------------------

    def _iter_turn_sequences(self):
        n_free = self.encoding.num_free_turns
        length = self.encoding.length
        fixed = [0, 1][: length - 1]
        n_fixed = len(fixed)
        total_turns = length - 1
        for code in range(4**n_free):
            free = []
            c = code
            for _ in range(n_free):
                free.append(c & 3)
                c >>= 2
            turns = (fixed + free)[:total_turns]
            yield turns

    def solve_exact(self) -> ClassicalFoldingResult:
        """Enumerate every conformation and return the exact ground state.

        Degenerate ground states are resolved by the lexicographically smallest
        turn sequence (the same tie-break the quantum decoder applies).
        """
        best_turns: list[int] | None = None
        best_energy = np.inf
        count = 0
        for turns in self._iter_turn_sequences():
            count += 1
            e = self.hamiltonian.energy(turns)
            if e < best_energy - 1e-9 or (
                abs(e - best_energy) <= 1e-9 and best_turns is not None and tuple(turns) < tuple(best_turns)
            ):
                best_energy = min(e, best_energy)
                best_turns = list(turns)
        assert best_turns is not None
        return ClassicalFoldingResult(
            turns=tuple(best_turns),
            energy=float(best_energy),
            ca_coords=turns_to_coords(best_turns, bond_length=self.hamiltonian.bond_length),
            exact=True,
            evaluations=count,
        )

    # -- simulated annealing ---------------------------------------------------

    def solve_annealing(
        self,
        seed: int = 0,
        sweeps: int = 400,
        t_start: float | None = None,
        t_end: float | None = None,
    ) -> ClassicalFoldingResult:
        """Simulated annealing over single-turn moves.

        Temperatures default to fractions of the Hamiltonian's clash penalty so
        the schedule adapts to the per-fragment energy scale.
        """
        rng = rng_for(seed, "classical-annealing", str(self.hamiltonian.sequence))
        length = self.encoding.length
        n_turns = length - 1
        n_free = self.encoding.num_free_turns
        first_free = n_turns - n_free

        scale = self.hamiltonian._clash_penalty  # noqa: SLF001 - intentional reuse of the scale
        t_start = scale * 0.5 if t_start is None else t_start
        t_end = scale * 0.005 if t_end is None else t_end

        turns = np.array(([0, 1][: n_turns]) + [0] * n_free, dtype=int)[:n_turns]
        # Start from an alternating pattern which is always backtrack-free.
        for k in range(first_free, n_turns):
            turns[k] = (k % 2) * 2  # 0, 2, 0, 2 ... never equal to the previous index
        current_e = self.hamiltonian.energy(turns)
        best_turns = turns.copy()
        best_e = current_e
        evaluations = 1

        temperatures = np.geomspace(max(t_start, 1e-9), max(t_end, 1e-9), num=max(1, sweeps))
        for temp in temperatures:
            for pos in range(first_free, n_turns):
                old = turns[pos]
                new = int(rng.integers(0, 4))
                if new == old:
                    continue
                turns[pos] = new
                e = self.hamiltonian.energy(turns)
                evaluations += 1
                accept = e <= current_e or rng.random() < np.exp(-(e - current_e) / temp)
                if accept:
                    current_e = e
                    if e < best_e:
                        best_e = e
                        best_turns = turns.copy()
                else:
                    turns[pos] = old
        return ClassicalFoldingResult(
            turns=tuple(int(t) for t in best_turns),
            energy=float(best_e),
            ca_coords=turns_to_coords(best_turns, bond_length=self.hamiltonian.bond_length),
            exact=False,
            evaluations=evaluations,
        )

    # -- combined entry point ----------------------------------------------------

    def solve(self, seed: int = 0, sweeps: int = 400) -> ClassicalFoldingResult:
        """Exact enumeration when feasible, annealing otherwise."""
        if self.encoding.num_free_turns <= self.exact_max_free_turns:
            return self.solve_exact()
        return self.solve_annealing(seed=seed, sweeps=sweeps)
