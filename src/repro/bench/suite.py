"""The fixed ``repro-bench`` benchmark suite.

Each benchmark is a module-level function taking ``(config, smoke)`` and
returning ``{metric_name: value}`` for **one** repeat; :func:`run_suite`
executes every benchmark ``config.bench_repeats`` times and summarises each
metric as median/p10/p90.  The suite covers the engine's hot paths:

* ``vqe.objective_evals_per_sec.{compiled,rebuild}`` — one CVaR objective
  evaluation through the compiled replay plan vs per-iteration circuit
  rebuild (bind + simulate from scratch);
* ``quantum.statevector_gates_per_sec.{run,compiled}`` — raw gate throughput
  of the statevector simulator vs a compiled plan replay;
* ``docking.poses_scored_per_sec.{batch,scalar}`` — Vina scoring throughput,
  one ``score_coords_batch`` call vs a per-pose ``score_coords`` loop (the
  batch self-checks bit-identity against the scalar scores);
* ``docking.searches_per_sec`` — complete multi-seed Monte-Carlo dock
  searches (each seed is one full search over every pocket);
* ``dataset.build_seconds.{cold,warm}`` — one-fragment dataset build against
  an empty vs freshly warmed result cache;
* ``transport.ms_per_job.{serial,pool,filequeue}`` — per-job wall overhead of
  a small baseline-fold batch on each executor transport (worker spawn and
  spool polling included: that *is* the overhead being measured);
* ``transport.ms_per_job.{filequeue_cached,filequeue_stub}`` and
  ``transport.spool_result_bytes_per_job.{filequeue_cached,filequeue_stub}``
  — the same file-queue batch with a result cache attached: full payloads
  through the spool vs payload-free completion stubs (workers write the
  cache tier directly).  Wall clock stays flat on a local disk; the bytes
  metrics capture the shared-filesystem traffic stubs eliminate;
* ``cache.remote_roundtrip_ops_per_sec`` — ``RemoteTier`` lookups against an
  in-process ``repro-serve`` cache tier (one framed request/reply round trip
  per op).

Smoke mode shrinks repeat counts and workload sizes so the whole suite runs
in well under a minute; the derived speedup ratios stay meaningful because
the pose batch size and circuit shapes are unchanged.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import tempfile
import time

import numpy as np

from repro.bench.trajectory import summarize
from repro.bio.geometry import random_rotation
from repro.bio.reference import ReferenceStructureGenerator
from repro.config import PipelineConfig
from repro.docking.ligand import SyntheticLigandGenerator
from repro.docking.pocket import find_pocket
from repro.docking.scoring import VinaScoringFunction
from repro.docking.vina import DockingEngine
from repro.exceptions import ReproError
from repro.lattice.hamiltonian import LatticeHamiltonian
from repro.quantum.ansatz import EfficientSU2
from repro.quantum.backend import StatevectorBackend
from repro.quantum.statevector import StatevectorSimulator
from repro.utils.rng import rng_for
from repro.vqe.expectation import DiagonalExpectation

#: Fragment used by the quantum/docking micro-benchmarks (smallest S-group).
_BENCH_PDB = "3eax"
_BENCH_SEQUENCE = "RYRDV"

#: Distinct baseline-fold jobs for the transport benchmark (pdb, sequence).
_TRANSPORT_FRAGMENTS = (
    ("3ckz", "VKDRS"),
    ("3eax", "RYRDV"),
    ("4mo4", "NIGGF"),
    ("1e2k", "DGPHGM"),
    ("1hdq", "SIHSYS"),
    ("2v25", "ATFTIT"),
)


def _bench_receptor_ligand():
    record = ReferenceStructureGenerator().generate(_BENCH_PDB, _BENCH_SEQUENCE)
    ligand = SyntheticLigandGenerator().generate(record).centered()
    return record, ligand


def _timed(fn, repetitions: int) -> float:
    """Wall seconds for ``repetitions`` calls of ``fn`` (at least one)."""
    repetitions = max(1, repetitions)
    start = time.perf_counter()
    for _ in range(repetitions):
        fn()
    return time.perf_counter() - start


def bench_docking_scoring(config: PipelineConfig, smoke: bool) -> dict[str, float]:
    """Vina scoring throughput: one batched call vs a scalar per-pose loop."""
    record, ligand = _bench_receptor_ligand()
    scorer = VinaScoringFunction(record.structure, ligand)
    pocket = find_pocket(record.structure)
    rng = rng_for(config.seed, "bench-docking-scoring")
    pose_batch = max(2, int(config.bench_pose_batch))
    coords = np.stack(
        [
            ligand.transformed(random_rotation(rng), pocket.center + rng.normal(scale=4.0, size=3))
            for _ in range(pose_batch)
        ]
    )
    batch_loops = 2 if smoke else 5
    elapsed_batch = _timed(lambda: scorer.score_coords_batch(coords), batch_loops)
    batch_scores = scorer.score_coords_batch(coords)

    def scalar_pass():
        return [scorer.score_coords(pose) for pose in coords]

    elapsed_scalar = _timed(scalar_pass, 1)
    scalar_scores = np.array(scalar_pass())
    if not np.array_equal(batch_scores, scalar_scores):
        raise ReproError("batched docking scores diverged from the scalar path")
    return {
        "docking.poses_scored_per_sec.batch": pose_batch * batch_loops / elapsed_batch,
        "docking.poses_scored_per_sec.scalar": pose_batch / elapsed_scalar,
    }


def bench_docking_search(config: PipelineConfig, smoke: bool) -> dict[str, float]:
    """Complete multi-seed dock searches per second (batched walkers)."""
    record, ligand = _bench_receptor_ligand()
    seeds = 2 if smoke else max(2, min(4, config.docking_seeds))
    steps = 60 if smoke else max(60, min(150, config.docking_mc_steps))
    engine = DockingEngine(
        num_seeds=seeds,
        num_poses=min(5, config.docking_poses),
        mc_steps=steps,
        master_seed=config.seed,
        batch=config.docking_batch,
    )
    elapsed = _timed(
        lambda: engine.dock(record.structure, ligand, receptor_id=f"{_BENCH_PDB}:BENCH"), 1
    )
    return {"docking.searches_per_sec": seeds / elapsed}


def bench_vqe_objective(config: PipelineConfig, smoke: bool) -> dict[str, float]:
    """CVaR objective evaluations per second: compiled plan vs circuit rebuild."""
    hamiltonian = LatticeHamiltonian(_BENCH_SEQUENCE)
    width = hamiltonian.encoding.configuration_qubits
    ansatz = EfficientSU2(width, reps=config.ansatz_reps)
    backend = StatevectorBackend()
    expectation = DiagonalExpectation(hamiltonian)
    shots = 128 if smoke else max(128, min(512, config.optimisation_shots))
    evals = 20 if smoke else 80
    rng_params = rng_for(config.seed, "bench-vqe-params")
    points = [rng_params.normal(scale=0.4, size=ansatz.num_parameters) for _ in range(evals)]

    def eval_compiled(values, rng):
        samples = backend.sample_parameterised(ansatz.circuit, values, shots, rng)
        return expectation.cvar_from_samples(samples, alpha=config.cvar_alpha)

    def eval_rebuild(values, rng):
        samples = backend.sample_array(ansatz.bound(values), shots, rng)
        return expectation.cvar_from_samples(samples, alpha=config.cvar_alpha)

    # Same parameter points and RNG streams through both paths; spot-check
    # that the compiled objective is bit-identical before timing it.
    check = points[0]
    if eval_compiled(check, rng_for(config.seed, "bench-vqe-check")) != eval_rebuild(
        check, rng_for(config.seed, "bench-vqe-check")
    ):
        raise ReproError("compiled VQE objective diverged from the rebuild path")

    rng_a = rng_for(config.seed, "bench-vqe-sample")
    start = time.perf_counter()
    for values in points:
        eval_compiled(values, rng_a)
    elapsed_compiled = time.perf_counter() - start
    rng_b = rng_for(config.seed, "bench-vqe-sample")
    start = time.perf_counter()
    for values in points:
        eval_rebuild(values, rng_b)
    elapsed_rebuild = time.perf_counter() - start
    return {
        "vqe.objective_evals_per_sec.compiled": evals / elapsed_compiled,
        "vqe.objective_evals_per_sec.rebuild": evals / elapsed_rebuild,
    }


def bench_statevector(config: PipelineConfig, smoke: bool) -> dict[str, float]:
    """Raw statevector gate throughput: simulator runs vs compiled replay."""
    ansatz = EfficientSU2(10, reps=2)
    simulator = StatevectorSimulator()
    rng = rng_for(config.seed, "bench-statevector")
    values = rng.normal(scale=0.4, size=ansatz.num_parameters)
    bound = ansatz.bound(values)
    plan = simulator.compile(ansatz.circuit)
    gates = len(bound)
    runs = 10 if smoke else 50
    elapsed_run = _timed(lambda: simulator.run(bound), runs)
    elapsed_plan = _timed(lambda: plan.statevector(values), runs)
    return {
        "quantum.statevector_gates_per_sec.run": gates * runs / elapsed_run,
        "quantum.statevector_gates_per_sec.compiled": gates * runs / elapsed_plan,
    }


def _dataset_bench_config(config: PipelineConfig, smoke: bool) -> PipelineConfig:
    iterations = 6 if smoke else 12
    return config.with_updates(
        vqe_iterations=iterations,
        optimisation_shots=48 if smoke else 96,
        final_shots=128 if smoke else 256,
        docking_seeds=2,
        docking_mc_steps=40 if smoke else 80,
        docking_poses=3,
        cache_dir=None,
        session_dir=None,
        transport="serial",
    )


def bench_dataset_build(config: PipelineConfig, smoke: bool) -> dict[str, float]:
    """Cold vs warm one-fragment dataset build wall time (seconds)."""
    from repro.dataset.builder import DatasetBuilder

    build_config = _dataset_bench_config(config, smoke)
    fragments = DatasetBuilder.select_fragments(pdb_ids=[_BENCH_PDB])
    tmp = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        builder = DatasetBuilder(config=build_config, processes=0, cache_dir=tmp)
        cold = _timed(lambda: builder.build(fragments, include_baselines=True), 1)
        warm = _timed(lambda: builder.build(fragments, include_baselines=True), 1)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "dataset.build_seconds.cold": cold,
        "dataset.build_seconds.warm": warm,
    }


def bench_transport_overhead(config: PipelineConfig, smoke: bool) -> dict[str, float]:
    """Per-job wall overhead (ms) of one baseline-fold batch per transport."""
    from repro.engine.core import Engine

    jobs = _TRANSPORT_FRAGMENTS[: 3 if smoke else len(_TRANSPORT_FRAGMENTS)]
    base = _dataset_bench_config(config, smoke)
    results: dict[str, float] = {}

    def run_batch(engine: Engine) -> float:
        specs = [
            engine.baseline_spec(pdb_id, sequence, "AF2")
            for pdb_id, sequence in jobs
        ]
        return _timed(lambda: engine.run(specs), 1)

    serial = Engine(config=base.with_updates(transport="serial"), cache=None, processes=0)
    results["transport.ms_per_job.serial"] = run_batch(serial) * 1000.0 / len(jobs)

    pool = Engine(config=base.with_updates(transport="pool"), cache=None, processes=2)
    results["transport.ms_per_job.pool"] = run_batch(pool) * 1000.0 / len(jobs)

    spool = tempfile.mkdtemp(prefix="repro-bench-spool-")
    try:
        filequeue = Engine(
            config=base.with_updates(
                transport="filequeue",
                spool_dir=spool,
                transport_workers=2,
                transport_poll_interval=0.02,
            ),
            cache=None,
            processes=2,
        )
        results["transport.ms_per_job.filequeue"] = run_batch(filequeue) * 1000.0 / len(jobs)
    finally:
        shutil.rmtree(spool, ignore_errors=True)

    # The same file-queue batch with a result cache attached, both completion
    # modes.  Fresh spool + cache directories per variant keep every run cold
    # (the cache write path is part of what is being measured).
    for suffix, spool_payloads in (("filequeue_cached", True), ("filequeue_stub", False)):
        spool = tempfile.mkdtemp(prefix="repro-bench-spool-")
        cache_dir = tempfile.mkdtemp(prefix="repro-bench-tier-")
        try:
            engine = Engine(
                config=base.with_updates(
                    transport="filequeue",
                    spool_dir=spool,
                    transport_workers=2,
                    transport_poll_interval=0.02,
                    cache_dir=cache_dir,
                    spool_payloads=spool_payloads,
                ),
                processes=2,
            )
            results[f"transport.ms_per_job.{suffix}"] = run_batch(engine) * 1000.0 / len(jobs)
            # The bytes that crossed the spool per completion — the shared
            # filesystem traffic stub mode exists to eliminate.  Result files
            # stay on disk after harvest, so sum them directly.
            results_dir = os.path.join(spool, "results")
            spool_bytes = sum(
                entry.stat().st_size
                for entry in os.scandir(results_dir)
                if entry.name.endswith(".json")
            )
            results[f"transport.spool_result_bytes_per_job.{suffix}"] = (
                spool_bytes / len(jobs)
            )
        finally:
            shutil.rmtree(spool, ignore_errors=True)
            shutil.rmtree(cache_dir, ignore_errors=True)
    return results


def bench_cache_remote(config: PipelineConfig, smoke: bool) -> dict[str, float]:
    """``RemoteTier`` lookup round trips per second against a live server tier."""
    from repro.engine.cache import LocalDirTier, RemoteTier
    from repro.serve.server import ReproServer

    ops = 40 if smoke else 200
    keys = 8
    root = tempfile.mkdtemp(prefix="repro-bench-remote-")
    try:
        local = LocalDirTier(root)
        payloads = {}
        for i in range(keys):
            key = hashlib.sha256(f"bench-remote-{i}".encode("utf-8")).hexdigest()
            payloads[key] = {"spec_hash": key, "schema": "bench/v1", "pad": "x" * 512}
            local.put(key, payloads[key])
        with ReproServer(workers=0, cache=local) as server:
            tier = RemoteTier("127.0.0.1", server.port, timeout=10.0)
            try:
                key_list = list(payloads)
                first = tier.get(key_list[0])  # connect + handshake outside the clock
                if first != payloads[key_list[0]]:
                    raise ReproError("remote tier returned a wrong or missing payload")
                start = time.perf_counter()
                for i in range(ops):
                    if tier.get(key_list[i % keys]) is None:
                        raise ReproError("remote tier missed a warmed key")
                elapsed = time.perf_counter() - start
            finally:
                tier.close()
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {"cache.remote_roundtrip_ops_per_sec": ops / elapsed}


#: Metric name -> unit, for every metric the suite can emit.
METRIC_UNITS: dict[str, str] = {
    "vqe.objective_evals_per_sec.compiled": "evals/s",
    "vqe.objective_evals_per_sec.rebuild": "evals/s",
    "quantum.statevector_gates_per_sec.run": "gates/s",
    "quantum.statevector_gates_per_sec.compiled": "gates/s",
    "docking.poses_scored_per_sec.batch": "poses/s",
    "docking.poses_scored_per_sec.scalar": "poses/s",
    "docking.searches_per_sec": "searches/s",
    "dataset.build_seconds.cold": "s",
    "dataset.build_seconds.warm": "s",
    "transport.ms_per_job.serial": "ms",
    "transport.ms_per_job.pool": "ms",
    "transport.ms_per_job.filequeue": "ms",
    "transport.ms_per_job.filequeue_cached": "ms",
    "transport.ms_per_job.filequeue_stub": "ms",
    "transport.spool_result_bytes_per_job.filequeue_cached": "bytes",
    "transport.spool_result_bytes_per_job.filequeue_stub": "bytes",
    "cache.remote_roundtrip_ops_per_sec": "ops/s",
}

#: The fixed suite, in execution order (cheap micro-benchmarks first).
BENCHMARKS: tuple[tuple[str, object], ...] = (
    ("docking-scoring", bench_docking_scoring),
    ("statevector", bench_statevector),
    ("vqe-objective", bench_vqe_objective),
    ("docking-search", bench_docking_search),
    ("cache-remote", bench_cache_remote),
    ("dataset-build", bench_dataset_build),
    ("transport-overhead", bench_transport_overhead),
)


def derived_metrics(results: dict[str, dict]) -> dict[str, float]:
    """Machine-portable speedup ratios derived from the metric medians."""
    derived: dict[str, float] = {}

    def ratio(name: str, numerator: str, denominator: str) -> None:
        num = results.get(numerator, {}).get("median")
        den = results.get(denominator, {}).get("median")
        if num and den:
            derived[name] = num / den

    ratio(
        "docking.batch_speedup",
        "docking.poses_scored_per_sec.batch",
        "docking.poses_scored_per_sec.scalar",
    )
    ratio(
        "vqe.compiled_speedup",
        "vqe.objective_evals_per_sec.compiled",
        "vqe.objective_evals_per_sec.rebuild",
    )
    ratio(
        "quantum.compiled_gate_speedup",
        "quantum.statevector_gates_per_sec.compiled",
        "quantum.statevector_gates_per_sec.run",
    )
    ratio(
        "dataset.warm_cache_speedup",
        "dataset.build_seconds.cold",
        "dataset.build_seconds.warm",
    )
    # Stub completions trade payload bytes through the spool (the shared
    # filesystem) for direct cache-tier writes; wall clock stays flat on a
    # local disk, so the portable ratio is the spool-traffic shrink.
    ratio(
        "transport.filequeue_stub_spool_shrink",
        "transport.spool_result_bytes_per_job.filequeue_cached",
        "transport.spool_result_bytes_per_job.filequeue_stub",
    )
    return derived


def run_suite(
    config: PipelineConfig | None = None,
    smoke: bool = False,
    repeats: int | None = None,
    only: str | None = None,
    progress=None,
) -> tuple[dict[str, dict], dict[str, float]]:
    """Run the suite and return ``(benchmark_results, derived_metrics)``.

    ``benchmark_results`` maps metric name to ``{unit, repeats, values,
    median, p10, p90}``.  ``only`` filters benchmarks by substring of their
    suite name; ``progress`` (when given) receives one line per benchmark.
    """
    config = config or PipelineConfig()
    if repeats is None:
        repeats = 2 if smoke else max(1, config.bench_repeats)
    repeats = max(1, int(repeats))
    selected = [
        (name, fn) for name, fn in BENCHMARKS if only is None or only in name
    ]
    if not selected:
        raise ReproError(f"no benchmark matches {only!r}")
    collected: dict[str, list[float]] = {}
    for name, fn in selected:
        start = time.perf_counter()
        for _ in range(repeats):
            for metric, value in fn(config, smoke).items():
                collected.setdefault(metric, []).append(float(value))
        if progress is not None:
            progress(f"{name}: {repeats} repeats in {time.perf_counter() - start:.1f}s")
    results = {
        metric: {
            "unit": METRIC_UNITS.get(metric, ""),
            "repeats": len(values),
            "values": values,
            **summarize(values),
        }
        for metric, values in collected.items()
    }
    return results, derived_metrics(results)
