"""The ``repro-bench`` benchmark suite and ``BENCH_<n>.json`` trajectory."""

from repro.bench.suite import BENCHMARKS, run_suite
from repro.bench.trajectory import (
    BENCH_SCHEMA_VERSION,
    build_report,
    compare_reports,
    find_previous_report,
    load_report,
    machine_fingerprint,
    medians_comparable,
    next_bench_id,
    regressions,
    validate_report,
    write_report,
)

__all__ = [
    "BENCHMARKS",
    "BENCH_SCHEMA_VERSION",
    "build_report",
    "compare_reports",
    "find_previous_report",
    "load_report",
    "machine_fingerprint",
    "medians_comparable",
    "next_bench_id",
    "regressions",
    "run_suite",
    "validate_report",
    "write_report",
]
