"""The benchmark trajectory: schema, machine fingerprint, comparison, gating.

Every ``repro-bench`` run emits one schema-versioned report.  Committed at the
repo root as ``BENCH_<n>.json`` (one file per PR that touches performance),
the reports form a *trajectory*: each records the machine it ran on,
median/p10/p90 per benchmark over N repeats, a set of derived speedup ratios,
and deltas against the previous report.

Report layout (``bench/v1``)
----------------------------
::

    {
      "schema": "bench/v1",
      "bench_id": 6,
      "generated_at": "2026-08-07T12:00:00Z",
      "smoke": false,
      "machine": {"platform": ..., "machine": ..., "python": ...,
                  "numpy": ..., "cpu_count": ...},
      "config": {"repeats": 5, "pose_batch": 128},
      "benchmarks": {
        "docking.poses_scored_per_sec.batch": {
            "unit": "poses/s", "repeats": 5, "values": [...],
            "median": ..., "p10": ..., "p90": ...},
        ...
      },
      "derived": {"docking.batch_speedup": ..., "vqe.compiled_speedup": ...},
      "comparison": {"previous": "BENCH_5.json", "deltas": {...}}   # optional
    }

Comparison semantics
--------------------
Absolute throughput/latency numbers are machine- and workload-dependent, so
deltas and the regression gate only compare them when both reports carry the
*same* machine fingerprint **and** the same ``smoke`` flag (smoke mode shrinks
the workloads, which skews fixed-overhead metrics like per-job transport
latency).  The ``derived`` speedup ratios (batched vs scalar, compiled vs
rebuild) are dimensionless and portable across machines and modes, so they
are always compared — that is what lets CI gate a smoke report generated on a
different machine against the committed full-mode trajectory.
"""

from __future__ import annotations

import json
import platform
import re
import time
from pathlib import Path

import numpy as np

BENCH_SCHEMA_VERSION = "bench/v1"

#: Units whose metrics improve downward (latencies, wall times).
_LOWER_IS_BETTER_UNITS = ("s", "ms", "us", "bytes")

_BENCH_FILE_RE = re.compile(r"^BENCH_(\d+)\.json$")


def lower_is_better(unit: str) -> bool:
    """Whether smaller values of a metric with this unit are better."""
    return unit in _LOWER_IS_BETTER_UNITS


def machine_fingerprint() -> dict:
    """Identity of the benchmark machine (decides delta comparability)."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": __import__("os").cpu_count(),
    }


def summarize(values: list[float]) -> dict:
    """Median / p10 / p90 summary of one benchmark's repeat values."""
    arr = np.asarray(values, dtype=float)
    return {
        "median": float(np.median(arr)),
        "p10": float(np.percentile(arr, 10)),
        "p90": float(np.percentile(arr, 90)),
    }


def build_report(
    bench_id: int,
    results: dict[str, dict],
    derived: dict[str, float],
    repeats: int,
    pose_batch: int,
    smoke: bool,
) -> dict:
    """Assemble the schema-versioned report body (without comparison)."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "bench_id": int(bench_id),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "smoke": bool(smoke),
        "machine": machine_fingerprint(),
        "config": {"repeats": int(repeats), "pose_batch": int(pose_batch)},
        "benchmarks": results,
        "derived": {k: float(v) for k, v in sorted(derived.items())},
    }


def find_previous_report(root: str | Path, before_id: int | None = None) -> Path | None:
    """The highest-numbered ``BENCH_<n>.json`` under ``root`` (below ``before_id``)."""
    best: tuple[int, Path] | None = None
    for path in Path(root).glob("BENCH_*.json"):
        match = _BENCH_FILE_RE.match(path.name)
        if not match:
            continue
        n = int(match.group(1))
        if before_id is not None and n >= before_id:
            continue
        if best is None or n > best[0]:
            best = (n, path)
    return best[1] if best else None


def next_bench_id(root: str | Path) -> int:
    """One past the highest committed trajectory number (1 when none exist)."""
    previous = find_previous_report(root)
    if previous is None:
        return 1
    return int(_BENCH_FILE_RE.match(previous.name).group(1)) + 1


def same_machine(a: dict, b: dict) -> bool:
    """Whether two reports carry identical machine fingerprints."""
    return a.get("machine") == b.get("machine")


def medians_comparable(a: dict, b: dict) -> bool:
    """Whether two reports' absolute medians can be meaningfully compared.

    Requires the same machine fingerprint *and* the same ``smoke`` flag: smoke
    mode shrinks each benchmark's workload, so fixed-overhead metrics (e.g.
    per-job transport latency) are not comparable against a full-mode run even
    on the same hardware.  Derived ratios never need this test.
    """
    return same_machine(a, b) and bool(a.get("smoke")) == bool(b.get("smoke"))


def compare_reports(current: dict, previous: dict, previous_name: str) -> dict:
    """Per-metric deltas of ``current`` against ``previous``.

    ``ratio`` is current/previous of the median; ``improved`` honours the
    metric's direction.  Machine-dependent benchmark medians are only listed
    when the reports are median-comparable (same machine, same smoke mode);
    derived ratios are always listed.
    """
    comparable = medians_comparable(current, previous)
    deltas: dict[str, dict] = {}
    if comparable:
        prev_benchmarks = previous.get("benchmarks", {})
        for name, entry in current.get("benchmarks", {}).items():
            prev = prev_benchmarks.get(name)
            if not prev or not prev.get("median"):
                continue
            ratio = entry["median"] / prev["median"]
            better_down = lower_is_better(entry.get("unit", ""))
            deltas[name] = {
                "previous_median": prev["median"],
                "ratio": ratio,
                "improved": ratio < 1.0 if better_down else ratio > 1.0,
            }
    prev_derived = previous.get("derived", {})
    for name, value in current.get("derived", {}).items():
        prev_value = prev_derived.get(name)
        if not prev_value:
            continue
        ratio = value / prev_value
        deltas[f"derived.{name}"] = {
            "previous": prev_value,
            "ratio": ratio,
            "improved": ratio > 1.0,
        }
    return {
        "previous": previous_name,
        "same_machine": same_machine(current, previous),
        "medians_compared": comparable,
        "deltas": deltas,
    }


def validate_report(report: object) -> list[str]:
    """Validate a report against the ``bench/v1`` schema; returns error strings."""
    errors: list[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema") != BENCH_SCHEMA_VERSION:
        errors.append(f"schema is {report.get('schema')!r}, expected {BENCH_SCHEMA_VERSION!r}")
    for field, kind in (("bench_id", int), ("smoke", bool), ("machine", dict),
                        ("config", dict), ("benchmarks", dict), ("derived", dict)):
        if not isinstance(report.get(field), kind):
            errors.append(f"missing or mistyped field {field!r} (want {kind.__name__})")
    if not isinstance(report.get("generated_at"), str):
        errors.append("missing or mistyped field 'generated_at' (want str)")
    benchmarks = report.get("benchmarks")
    if isinstance(benchmarks, dict):
        if not benchmarks:
            errors.append("benchmarks section is empty")
        for name, entry in benchmarks.items():
            if not isinstance(entry, dict):
                errors.append(f"benchmark {name!r} is not an object")
                continue
            if not isinstance(entry.get("unit"), str):
                errors.append(f"benchmark {name!r} has no unit")
            values = entry.get("values")
            if not isinstance(values, list) or not values:
                errors.append(f"benchmark {name!r} has no repeat values")
            for stat in ("median", "p10", "p90"):
                if not isinstance(entry.get(stat), (int, float)):
                    errors.append(f"benchmark {name!r} is missing {stat}")
    derived = report.get("derived")
    if isinstance(derived, dict):
        for name, value in derived.items():
            if not isinstance(value, (int, float)) or value <= 0:
                errors.append(f"derived metric {name!r} must be a positive number")
    return errors


def regressions(current: dict, previous: dict, max_ratio: float) -> list[str]:
    """Metrics of ``current`` that are worse than ``previous`` by > ``max_ratio``.

    Benchmark medians participate only when the reports are median-comparable
    (same machine fingerprint and same smoke mode); the portable derived
    ratios always participate.  Returns human-readable descriptions, empty
    when the gate passes.
    """
    failures: list[str] = []
    if medians_comparable(current, previous):
        prev_benchmarks = previous.get("benchmarks", {})
        for name, entry in current.get("benchmarks", {}).items():
            prev = prev_benchmarks.get(name)
            if not prev or not prev.get("median") or not entry.get("median"):
                continue
            if lower_is_better(entry.get("unit", "")):
                worsening = entry["median"] / prev["median"]
            else:
                worsening = prev["median"] / entry["median"]
            if worsening > max_ratio:
                failures.append(
                    f"{name}: {worsening:.2f}x worse than previous "
                    f"({entry['median']:.4g} vs {prev['median']:.4g} {entry.get('unit', '')})"
                )
    prev_derived = previous.get("derived", {})
    for name, value in current.get("derived", {}).items():
        prev_value = prev_derived.get(name)
        if not prev_value or not value:
            continue
        worsening = prev_value / value  # derived speedups improve upward
        if worsening > max_ratio:
            failures.append(
                f"derived.{name}: {worsening:.2f}x worse than previous "
                f"({value:.3g}x vs {prev_value:.3g}x)"
            )
    return failures


def load_report(path: str | Path) -> dict:
    """Read one trajectory file."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_report(path: str | Path, report: dict) -> Path:
    """Write one trajectory file (stable key order, trailing newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path
