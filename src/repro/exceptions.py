"""Exception hierarchy for the repro package.

Every subsystem raises a subclass of :class:`ReproError` so that callers can
catch pipeline failures at the granularity they care about (a single fragment,
a docking run, a transpilation) without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SequenceError(ReproError):
    """Invalid protein sequence (unknown residue code, bad length, ...)."""


class StructureError(ReproError):
    """Invalid or inconsistent molecular structure."""


class PDBFormatError(StructureError):
    """A PDB file or record could not be parsed or written."""


class LatticeError(ReproError):
    """Invalid lattice conformation or encoding."""


class EncodingError(LatticeError):
    """A sequence cannot be encoded onto the lattice / qubit register."""


class HamiltonianError(ReproError):
    """Inconsistent Hamiltonian construction."""


class CircuitError(ReproError):
    """Invalid quantum circuit operation."""


class BackendError(ReproError):
    """A quantum backend could not execute the requested job."""


class TranspilerError(ReproError):
    """Circuit could not be mapped onto the target device."""


class VQEError(ReproError):
    """VQE optimisation failure."""


class DockingError(ReproError):
    """Docking engine failure (no poses, bad ligand, ...)."""


class EngineError(ReproError):
    """Job engine failure (unhashable job, bad specification, ...)."""


class DatasetError(ReproError):
    """Dataset construction / loading failure."""


class AnalysisError(ReproError):
    """Analysis or report-generation failure."""
