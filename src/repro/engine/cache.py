"""Content-addressed on-disk result cache for the execution engine.

Each cached result lives in its own JSON file named by the job's content hash
(sharded by the first two hex characters to keep directories small), so the
cache is safe to share between concurrent builder processes: writes of the
same key produce identical bytes and a torn read is treated as a miss.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.utils.io import read_json, write_json


@dataclass
class CacheStats:
    """Hit / miss / write counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view for logs and reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "hit_rate": self.hit_rate,
        }


class ResultCache:
    """Content-addressed JSON store keyed by job hash."""

    def __init__(self, root: str | Path):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the payload stored under ``key``, or ``None`` on a miss.

        Unreadable or mismatched files (torn writes, stale schema) count as
        misses rather than errors so a damaged cache degrades to recompute.
        """
        path = self._path(key)
        try:
            payload = read_json(path)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self.stats.misses += 1
            return None
        if not isinstance(payload, dict) or payload.get("spec_hash") != key:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``key``."""
        write_json(self._path(key), payload)
        self.stats.writes += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns the number of files removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        return removed
