"""Job-oriented execution engine (typed jobs, registries, fan-out, result cache).

The single entry point for all expensive work — quantum folds, baseline
folds and docking searches are one typed job family::

    from repro.engine import Engine

    engine = Engine(config=PipelineConfig.fast(), cache="qdockbank_cache")
    jobs = [
        engine.spec("2bok", "EDACQGDSGG"),                  # kind="fold"
        engine.baseline_spec("2bok", "EDACQGDSGG", "AF2"),  # kind="baseline_fold"
    ]
    results = engine.run(jobs, processes=4)
    print(engine.stats())   # executed_by_kind, cache hit/miss counters

Long sweeps stream instead of blocking: ``engine.submit(jobs)`` returns a
:class:`~repro.engine.session.Session` yielding ``(spec, outcome)`` pairs as
they complete, with progress callbacks, journalled per-job status, isolated
:class:`~repro.engine.session.JobFailure` records and crash/interrupt resume.

Where jobs *run* is a pluggable executor transport
(``config.transport = "serial" | "pool" | "filequeue" | "network"``):
in-process, on a local process pool, across a fleet of independent
``repro-worker`` daemons coordinating over a shared spool directory, or on a
long-running ``repro-serve`` daemon reached over a socket — bit-identical
results on every transport.

See :mod:`repro.engine.core` for the execution model, :mod:`repro.engine.jobs`
for the job kinds and content hashing, :mod:`repro.engine.session` for
sessions/journals/resume, :mod:`repro.engine.registry` for named backends and
per-kind executors, :mod:`repro.engine.transports` for the transport layer,
:mod:`repro.engine.cache` for the persistent (optionally LRU-bounded) store,
and :mod:`repro.cli.cache` / :mod:`repro.cli.session` /
:mod:`repro.cli.worker` for the ``repro-cache``, ``repro-session`` and
``repro-worker`` tools.
"""

from repro.engine.cache import (
    CacheEntry,
    CacheStats,
    CacheTier,
    LocalDirTier,
    RemoteTier,
    ResultCache,
    TieredCache,
    parse_tier_spec,
    resolve_cache,
)
from repro.engine.jobs import (
    BASELINE_SCHEMA_VERSION,
    DOCK_SCHEMA_VERSION,
    ENGINE_SCHEMA_VERSION,
    FOLD_SCHEMA_VERSION,
    JOB_KINDS,
    BaselineFoldSpec,
    DockJobResult,
    DockSpec,
    JobResult,
    JobSpec,
    config_fingerprint,
    result_from_payload,
)
from repro.engine.registry import (
    backend_names,
    executor_for,
    executor_kinds,
    make_backend,
    register_backend,
    register_executor,
)
from repro.engine.scheduler import (
    DurationTracker,
    PendingTask,
    capabilities_match,
    desired_fleet_size,
    job_priority,
    job_requirements,
    parse_tags,
    require_tags,
    set_priority,
)
from repro.engine.session import (
    SESSION_SCHEMA_VERSION,
    JobFailure,
    Session,
    SessionJournal,
    SessionProgress,
)
from repro.engine.transports import (
    FileQueueSpool,
    FileQueueTransport,
    FileQueueWorker,
    NetworkTransport,
    PoolTransport,
    RemoteJobError,
    SerialTransport,
    Transport,
    TransportCapabilities,
    make_transport,
    register_transport,
    transport_names,
)
from repro.engine.core import (
    Engine,
    execute_baseline_job,
    execute_dock_job,
    execute_fold_job,
    execute_job,
)

__all__ = [
    "BASELINE_SCHEMA_VERSION",
    "DOCK_SCHEMA_VERSION",
    "ENGINE_SCHEMA_VERSION",
    "FOLD_SCHEMA_VERSION",
    "JOB_KINDS",
    "SESSION_SCHEMA_VERSION",
    "BaselineFoldSpec",
    "CacheEntry",
    "CacheStats",
    "CacheTier",
    "DockJobResult",
    "DockSpec",
    "DurationTracker",
    "Engine",
    "FileQueueSpool",
    "FileQueueTransport",
    "FileQueueWorker",
    "JobFailure",
    "JobResult",
    "JobSpec",
    "LocalDirTier",
    "NetworkTransport",
    "PendingTask",
    "PoolTransport",
    "RemoteJobError",
    "RemoteTier",
    "ResultCache",
    "SerialTransport",
    "Session",
    "SessionJournal",
    "SessionProgress",
    "TieredCache",
    "Transport",
    "TransportCapabilities",
    "backend_names",
    "capabilities_match",
    "config_fingerprint",
    "desired_fleet_size",
    "execute_baseline_job",
    "execute_dock_job",
    "execute_fold_job",
    "execute_job",
    "executor_for",
    "executor_kinds",
    "job_priority",
    "job_requirements",
    "make_backend",
    "make_transport",
    "parse_tags",
    "parse_tier_spec",
    "register_backend",
    "register_executor",
    "require_tags",
    "resolve_cache",
    "register_transport",
    "result_from_payload",
    "set_priority",
    "transport_names",
]
