"""Job-oriented execution engine (backend registry, fan-out, result cache).

The single entry point for fold work::

    from repro.engine import Engine, JobSpec

    engine = Engine(config=PipelineConfig.fast(), cache="qdockbank_cache")
    results = engine.run([engine.spec("2bok", "EDACQGDSGG")], processes=4)

See :mod:`repro.engine.core` for the execution model, :mod:`repro.engine.jobs`
for content hashing, :mod:`repro.engine.registry` for named backends and
:mod:`repro.engine.cache` for the persistent store.
"""

from repro.engine.cache import CacheStats, ResultCache
from repro.engine.jobs import ENGINE_SCHEMA_VERSION, JobResult, JobSpec, config_fingerprint
from repro.engine.registry import backend_names, make_backend, register_backend
from repro.engine.core import Engine, execute_job

__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "CacheStats",
    "Engine",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "backend_names",
    "config_fingerprint",
    "execute_job",
    "make_backend",
    "register_backend",
]
