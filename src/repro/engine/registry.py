"""Backend registry: execution backends constructed by name from the config.

Call sites used to hand-wire simulator objects (``AutoBackend(...)``,
``EagleEmulatorBackend(...)``) wherever a circuit needed sampling.  The
registry replaces that with a single factory, ``make_backend(name, config)``,
so the backend is a *configuration choice* (``PipelineConfig.backend``) rather
than code: the same pipeline runs on the exact statevector simulator, the MPS
engine, the width-dispatching auto backend or the noisy Eagle emulator by
changing one string.

Third-party backends can be added at runtime with :func:`register_backend`;
builders receive the :class:`~repro.config.PipelineConfig` and pull whatever
knobs they need from it.
"""

from __future__ import annotations

from typing import Callable

from repro.config import PipelineConfig
from repro.exceptions import BackendError
from repro.quantum.backend import AutoBackend, Backend, MPSBackend, StatevectorBackend

BackendBuilder = Callable[[PipelineConfig], Backend]

_REGISTRY: dict[str, BackendBuilder] = {}


def register_backend(name: str, builder: BackendBuilder, overwrite: bool = False) -> None:
    """Register ``builder`` under ``name`` (lower-cased).

    Raises :class:`BackendError` if the name is already taken, unless
    ``overwrite`` is set (useful for tests that stub a backend out).

    The engine replicates the registry into its worker processes (spawn-based
    start methods do not inherit parent module state), so builders must be
    picklable — define them at module level, not as lambdas or closures — for
    parallel runs to see them.
    """
    key = name.strip().lower()
    if not key:
        raise BackendError("backend name must be a non-empty string")
    if key in _REGISTRY and not overwrite:
        raise BackendError(f"backend {key!r} is already registered")
    _REGISTRY[key] = builder


def backend_names() -> tuple[str, ...]:
    """The names currently registered, sorted alphabetically."""
    return tuple(sorted(_REGISTRY))


def registry_snapshot() -> dict[str, BackendBuilder]:
    """A copy of the current registry (shipped to engine worker processes)."""
    return dict(_REGISTRY)


def restore_registry(builders: dict[str, BackendBuilder]) -> None:
    """Merge ``builders`` into the registry (worker-process initializer)."""
    _REGISTRY.update(builders)


def make_backend(name: str | None = None, config: PipelineConfig | None = None) -> Backend:
    """Build the backend registered under ``name``, configured from ``config``.

    ``name`` of ``None`` uses ``config.backend`` (the pipeline's configured
    default); ``config`` of ``None`` uses the default :class:`PipelineConfig`.
    """
    config = config or PipelineConfig()
    key = (name or config.backend).strip().lower()
    builder = _REGISTRY.get(key)
    if builder is None:
        raise BackendError(
            f"unknown backend {key!r}; registered backends: {', '.join(backend_names())}"
        )
    return builder(config)


def _build_statevector(config: PipelineConfig) -> Backend:
    # An explicit statevector choice should not be capped below the simulator's
    # own default limit just because the auto-dispatch threshold is small.
    return StatevectorBackend(max_qubits=max(24, config.max_statevector_qubits))


def _build_mps(config: PipelineConfig) -> Backend:
    return MPSBackend(max_bond_dimension=config.mps_bond_dimension)


def _build_auto(config: PipelineConfig) -> Backend:
    return AutoBackend(
        max_statevector_qubits=config.max_statevector_qubits,
        max_bond_dimension=config.mps_bond_dimension,
    )


def _build_eagle(config: PipelineConfig) -> Backend:
    # Imported lazily: the hardware layer pulls in the full topology /
    # transpiler stack, which most simulator-only runs never need.
    from repro.hardware.eagle import EagleEmulatorBackend

    return EagleEmulatorBackend(
        ancilla_margin=config.ancilla_margin,
        max_bond_dimension=config.mps_bond_dimension,
        noise_enabled=config.noise_enabled,
    )


register_backend("statevector", _build_statevector)
register_backend("mps", _build_mps)
register_backend("auto", _build_auto)
register_backend("eagle", _build_eagle)
register_backend("eagle_emulator", _build_eagle)
