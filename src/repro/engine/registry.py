"""Backend and executor registries: execution strategy resolved by name.

Call sites used to hand-wire simulator objects (``AutoBackend(...)``,
``EagleEmulatorBackend(...)``) wherever a circuit needed sampling.  The
backend registry replaces that with a single factory,
``make_backend(name, config)``, so the backend is a *configuration choice*
(``PipelineConfig.backend``) rather than code: the same pipeline runs on the
exact statevector simulator, the MPS engine, the width-dispatching auto
backend or the noisy Eagle emulator by changing one string.

The *executor registry* is the same idea one level up: every job kind
(``fold``, ``baseline_fold``, ``dock`` — see :mod:`repro.engine.jobs`) maps to
the module-level function that executes one spec of that kind.
:func:`repro.engine.core.execute_job` dispatches through it, which is what
lets one :class:`~repro.engine.core.Engine` run a heterogeneous batch.

Third-party backends and executors can be added at runtime with
:func:`register_backend` / :func:`register_executor`; backend builders receive
the :class:`~repro.config.PipelineConfig` and pull whatever knobs they need
from it.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.config import PipelineConfig
from repro.exceptions import BackendError, EngineError
from repro.quantum.backend import AutoBackend, Backend, MPSBackend, StatevectorBackend

BackendBuilder = Callable[[PipelineConfig], Backend]

#: A job executor: one spec of the registered kind in, its result out.
JobExecutor = Callable[[Any], Any]

_REGISTRY: dict[str, BackendBuilder] = {}

_EXECUTORS: dict[str, JobExecutor] = {}


def register_executor(kind: str, executor: JobExecutor, overwrite: bool = False) -> None:
    """Register the executor function for one job ``kind``.

    Raises :class:`EngineError` if the kind is already taken, unless
    ``overwrite`` is set.  Like backend builders, executors must be picklable
    module-level functions for parallel runs to ship them to workers.
    """
    key = kind.strip().lower()
    if not key:
        raise EngineError("job kind must be a non-empty string")
    if key in _EXECUTORS and not overwrite:
        raise EngineError(f"executor for job kind {key!r} is already registered")
    _EXECUTORS[key] = executor


def executor_kinds() -> tuple[str, ...]:
    """The job kinds currently registered, sorted alphabetically."""
    return tuple(sorted(_EXECUTORS))


def executor_for(kind: str) -> JobExecutor:
    """The executor registered for ``kind`` (raising a clear error when absent).

    Normalised the same way :func:`register_executor` stores kinds, so a
    mixed-case kind resolves to its registration.
    """
    executor = _EXECUTORS.get(kind.strip().lower())
    if executor is None:
        raise EngineError(
            f"no executor registered for job kind {kind!r}; "
            f"registered kinds: {', '.join(executor_kinds())}"
        )
    return executor


def executor_snapshot() -> dict[str, JobExecutor]:
    """A copy of the current executor registry (shipped to worker processes)."""
    return dict(_EXECUTORS)


def restore_registries(
    backends: dict[str, BackendBuilder], executors: dict[str, JobExecutor]
) -> None:
    """Merge both registries into this process (worker-process initializer)."""
    _REGISTRY.update(backends)
    _EXECUTORS.update(executors)


def register_backend(name: str, builder: BackendBuilder, overwrite: bool = False) -> None:
    """Register ``builder`` under ``name`` (lower-cased).

    Raises :class:`BackendError` if the name is already taken, unless
    ``overwrite`` is set (useful for tests that stub a backend out).

    The engine replicates the registry into its worker processes (spawn-based
    start methods do not inherit parent module state), so builders must be
    picklable — define them at module level, not as lambdas or closures — for
    parallel runs to see them.
    """
    key = name.strip().lower()
    if not key:
        raise BackendError("backend name must be a non-empty string")
    if key in _REGISTRY and not overwrite:
        raise BackendError(f"backend {key!r} is already registered")
    _REGISTRY[key] = builder


def backend_names() -> tuple[str, ...]:
    """The names currently registered, sorted alphabetically."""
    return tuple(sorted(_REGISTRY))


def registry_snapshot() -> dict[str, BackendBuilder]:
    """A copy of the current registry (shipped to engine worker processes)."""
    return dict(_REGISTRY)


def restore_registry(builders: dict[str, BackendBuilder]) -> None:
    """Merge ``builders`` into the registry (worker-process initializer)."""
    _REGISTRY.update(builders)


def make_backend(name: str | None = None, config: PipelineConfig | None = None) -> Backend:
    """Build the backend registered under ``name``, configured from ``config``.

    ``name`` of ``None`` uses ``config.backend`` (the pipeline's configured
    default); ``config`` of ``None`` uses the default :class:`PipelineConfig`.
    """
    config = config or PipelineConfig()
    key = (name or config.backend).strip().lower()
    builder = _REGISTRY.get(key)
    if builder is None:
        raise BackendError(
            f"unknown backend {key!r}; registered backends: {', '.join(backend_names())}"
        )
    return builder(config)


def _plan_cache_size(config: PipelineConfig) -> int:
    # A zero-sized plan cache disables the compiled replay path entirely; the
    # statevector backend then falls back to bind-and-sample.
    return 64 if config.quantum_compiled_plans else 0


def _build_statevector(config: PipelineConfig) -> Backend:
    # An explicit statevector choice should not be capped below the simulator's
    # own default limit just because the auto-dispatch threshold is small.
    return StatevectorBackend(
        max_qubits=max(24, config.max_statevector_qubits),
        plan_cache_size=_plan_cache_size(config),
    )


def _build_mps(config: PipelineConfig) -> Backend:
    return MPSBackend(max_bond_dimension=config.mps_bond_dimension)


def _build_auto(config: PipelineConfig) -> Backend:
    return AutoBackend(
        max_statevector_qubits=config.max_statevector_qubits,
        max_bond_dimension=config.mps_bond_dimension,
        plan_cache_size=_plan_cache_size(config),
    )


def _build_eagle(config: PipelineConfig) -> Backend:
    # Imported lazily: the hardware layer pulls in the full topology /
    # transpiler stack, which most simulator-only runs never need.
    from repro.hardware.eagle import EagleEmulatorBackend

    return EagleEmulatorBackend(
        ancilla_margin=config.ancilla_margin,
        max_bond_dimension=config.mps_bond_dimension,
        noise_enabled=config.noise_enabled,
    )


register_backend("statevector", _build_statevector)
register_backend("mps", _build_mps)
register_backend("auto", _build_auto)
register_backend("eagle", _build_eagle)
register_backend("eagle_emulator", _build_eagle)
