"""An ordered stack of cache tiers behind the single-tier interface.

:class:`TieredCache` composes tiers the way a CPU cache hierarchy does:

* **reads** are local-first — the first tier to hold a key wins, and a hit in
  a later (slower) tier is *promoted* into every earlier tier so the next
  lookup stays local;
* **writes** go through every tier (write-through), so a result computed
  anywhere becomes visible everywhere a tier is shared.

The write-through honours the ``stored_in`` skip individually per member: a
worker that already wrote a payload into the shared remote tier makes the
session's put skip that member (no redundant socket round trip) while still
filling the purely local tiers.  :meth:`covers` is deliberately the *all*
quantifier — a tiered cache only tells callers "don't bother writing" when
**every** member already holds the payload, because a skipped put is lost
forever for the members that did not.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.engine.cache.base import CacheEntry, CacheStats, CacheTier, LocationToken
from repro.exceptions import EngineError


class TieredCache:
    """Compose an ordered list of cache tiers; see the module docstring."""

    def __init__(self, tiers: Iterable[CacheTier]):
        self.tiers: tuple[CacheTier, ...] = tuple(tiers)
        if not self.tiers:
            raise EngineError("TieredCache needs at least one tier")
        self.stats = CacheStats()

    @property
    def location(self) -> LocationToken:
        """Composite token: the member tokens in order."""
        return ("tiered",) + tuple(t.location for t in self.tiers)

    def covers(self, token: LocationToken | None) -> bool:
        """``True`` only when *every* member covers ``token`` (see module doc)."""
        return token is not None and all(t.covers(token) for t in self.tiers)

    def get(self, key: str) -> dict[str, Any] | None:
        """First tier holding ``key`` wins; later-tier hits are promoted."""
        for position, tier in enumerate(self.tiers):
            payload = tier.get(key)
            if payload is None:
                continue
            self.stats.hits += 1
            for earlier in self.tiers[:position]:
                earlier.put(key, payload)
            return payload
        self.stats.misses += 1
        return None

    def peek(self, key: str) -> dict[str, Any] | None:
        """Stat-neutral lookup across the stack — no counters, no promotion."""
        for tier in self.tiers:
            payload = tier.peek(key)
            if payload is not None:
                return payload
        return None

    def put(self, key: str, payload: dict[str, Any], stored_in: LocationToken | None = None) -> bool:
        """Write through every tier; ``True`` when all of them hold it."""
        stored = True
        for tier in self.tiers:
            stored = tier.put(key, payload, stored_in=stored_in) and stored
        self.stats.writes += 1
        return stored

    # -- introspection / maintenance ---------------------------------------------------

    def entries(self) -> list[CacheEntry]:
        """Union of member entries, deduplicated by key (earliest tier wins)."""
        seen: dict[str, CacheEntry] = {}
        for tier in self.tiers:
            for entry in tier.entries():
                seen.setdefault(entry.key, entry)
        return sorted(seen.values(), key=lambda e: (e.mtime, e.key))

    def total_bytes(self) -> int:
        """Total bytes across all locally enumerable member entries."""
        return sum(e.size_bytes for e in self.entries())

    def prune(self, max_bytes: int | None = None) -> list[str]:
        """Prune every member to its own (or the given) bound; evicted keys."""
        evicted: list[str] = []
        for tier in self.tiers:
            evicted.extend(tier.prune(max_bytes))
        return evicted

    def verify(self, delete: bool = False) -> tuple[list[str], list[tuple[str, str]]]:
        """Combined audit of every member tier."""
        valid: list[str] = []
        corrupt: list[tuple[str, str]] = []
        for tier in self.tiers:
            tier_valid, tier_corrupt = tier.verify(delete=delete)
            valid.extend(tier_valid)
            corrupt.extend(tier_corrupt)
        return valid, corrupt

    def __contains__(self, key: str) -> bool:
        return any(key in tier for tier in self.tiers)

    def __len__(self) -> int:
        return len({entry.key for tier in self.tiers for entry in tier.entries()})

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"TieredCache({list(self.tiers)!r})"
