"""The :class:`CacheTier` protocol and the bookkeeping types tiers share.

A *cache tier* is any store that maps a job's content hash to its canonical
JSON payload.  The engine, the session layer, the transports and the
``repro-cache`` CLI all speak this one protocol; whether the bytes live in a
local sharded directory (:class:`~repro.engine.cache.local.LocalDirTier`), on
the other end of a ``repro-serve`` socket
(:class:`~repro.engine.cache.remote.RemoteTier`), or across an ordered stack
of both (:class:`~repro.engine.cache.tiered.TieredCache`) is invisible to
them — that invisibility is asserted bit-for-bit by the determinism harness's
cache-topology clause.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Protocol, runtime_checkable


@dataclass
class CacheStats:
    """Hit / miss / write / eviction counters of one cache instance."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of ``get`` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view for logs and reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
        }


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk cache entry's bookkeeping view (no payload)."""

    key: str
    path: Path
    size_bytes: int
    mtime: float
    #: Nanosecond mtime, for change detection: float ``st_mtime`` loses
    #: precision and coarse-granularity filesystems (1s, 2s on exFAT) make
    #: same-tick rewrites indistinguishable by ``mtime`` alone.
    mtime_ns: int = 0


#: A tier's identity token, e.g. ``("local", "/abs/cache/dir")`` or
#: ``("remote", "10.0.0.5", 7777)``.  Transports attach the token of the tier
#: a worker already wrote a payload into (``outcome.stored_in``) so the
#: session can skip redundant write-through puts via :meth:`CacheTier.covers`.
LocationToken = tuple[Any, ...]


@runtime_checkable
class CacheTier(Protocol):
    """What every cache tier provides; see the module docstring.

    ``entries``/``prune``/``verify`` are maintenance surface: tiers without
    local state (a remote client) implement them as documented no-ops rather
    than raising, so tier-generic tooling never needs isinstance checks.
    """

    stats: CacheStats

    @property
    def location(self) -> LocationToken:
        """This tier's identity token (see :data:`LocationToken`)."""
        ...

    def covers(self, token: LocationToken | None) -> bool:
        """Whether a payload stored at ``token`` is already stored *here*."""
        ...

    def get(self, key: str) -> dict[str, Any] | None:
        """The payload under ``key`` or ``None``; counts a hit or miss."""
        ...

    def peek(self, key: str) -> dict[str, Any] | None:
        """Stat-neutral ``get``: no counters, no recency refresh."""
        ...

    def put(self, key: str, payload: dict[str, Any], stored_in: LocationToken | None = None) -> bool:
        """Store ``payload`` under ``key``; ``True`` when it is durably held.

        ``stored_in`` names a tier that already holds this payload — a tier
        that :meth:`covers` it skips the write and still reports ``True``.
        """
        ...

    def entries(self) -> list[CacheEntry]:
        """Locally enumerable entries, eviction order first (``[]`` if none)."""
        ...

    def prune(self, max_bytes: int | None = None) -> list[str]:
        """Evict down to ``max_bytes`` where supported; evicted keys."""
        ...

    def verify(self, delete: bool = False) -> tuple[list[str], list[tuple[str, str]]]:
        """Audit locally held entries: ``(valid_keys, corrupt_pairs)``."""
        ...
