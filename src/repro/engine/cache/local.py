"""Content-addressed on-disk cache tier — the original ``ResultCache``.

Each cached result lives in its own JSON file named by the job's content hash
(sharded by the first two hex characters to keep directories small), so the
cache is safe to share between concurrent builder processes: writes of the
same key produce identical bytes and a torn read is treated as a miss.

The cache can be *size-bounded*: with ``max_bytes`` set, every write enforces
the bound by evicting entries in recency order.  Two eviction policies exist:

* ``"lru"`` (default) — a hit refreshes the entry's file mtime, so eviction
  removes the least-recently-*used* entries first;
* ``"fifo"`` — hits leave mtimes untouched, so eviction removes the oldest
  *written* entries first.

Eviction only ever costs recompute time, never correctness: an evicted job
re-executes to a bit-identical result.  :meth:`LocalDirTier.prune` applies
the bound on demand and :meth:`LocalDirTier.verify` audits entry integrity —
both are surfaced by the ``repro-cache`` command-line tool
(:mod:`repro.cli.cache`).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

from repro.engine.cache.base import CacheEntry, CacheStats, LocationToken
from repro.exceptions import EngineError
from repro.utils.io import read_json, write_json

#: Eviction policies understood by :class:`LocalDirTier`.
EVICTION_POLICIES: tuple[str, ...] = ("lru", "fifo")

#: When a write overflows the bound, evict down to this fraction of it so a
#: cache sitting at its bound does not pay a full directory scan per write.
LOW_WATER_FRACTION = 0.9


class LocalDirTier:
    """Content-addressed JSON store keyed by job hash, optionally size-bounded.

    Parameters
    ----------
    root:
        Cache directory (created if absent).
    max_bytes:
        Total size bound enforced after every write; ``None`` disables
        bounding.  Mapped from ``PipelineConfig.cache_max_bytes`` when the
        engine opens a cache by path.
    eviction:
        ``"lru"`` or ``"fifo"`` (see module docstring).  Mapped from
        ``PipelineConfig.cache_eviction``.
    """

    def __init__(self, root: str | Path, max_bytes: int | None = None, eviction: str = "lru"):
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        if eviction not in EVICTION_POLICIES:
            raise EngineError(
                f"unknown cache eviction policy {eviction!r}; choose one of {EVICTION_POLICIES}"
            )
        if max_bytes is not None and int(max_bytes) < 0:
            raise EngineError(f"cache max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.eviction = eviction
        self.stats = CacheStats()
        # Running size total so bound enforcement on put() stays O(1) instead
        # of rescanning the directory per write; initialised lazily and
        # resynchronised by every prune() scan (concurrent writers can make it
        # drift between prunes — the bound is enforcement, not accounting).
        self._tracked_total: int | None = None
        # Test-only crash-consistency hook: called with each CacheEntry just
        # before prune() considers evicting it, so tests can interleave a
        # concurrent writer/pruner at the exact race window.
        self._before_evict = None

    @property
    def location(self) -> LocationToken:
        """Identity token of this tier: the resolved cache directory."""
        return ("local", str(self.root.resolve()))

    def covers(self, token: LocationToken | None) -> bool:
        """Whether ``token`` names *this* directory (same resolved path)."""
        return token is not None and tuple(token) == self.location

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the payload stored under ``key``, or ``None`` on a miss.

        Unreadable or mismatched files (torn writes, stale schema) count as
        misses rather than errors so a damaged cache degrades to recompute.
        Under the LRU policy a hit refreshes the entry's mtime.
        """
        payload = self.peek(key)
        if payload is None:
            self.stats.misses += 1
            return None
        if self.eviction == "lru":
            try:
                os.utime(self._path(key))
            except OSError:
                pass  # a concurrent prune may have removed the file; the payload is already read
        self.stats.hits += 1
        return payload

    def peek(self, key: str) -> dict[str, Any] | None:
        """Stat-neutral :meth:`get`: no hit/miss counted, no LRU mtime refresh.

        Used by the session layer's journal-aware planning — a resumed
        session checks whether a journalled-complete job still has its cached
        payload without skewing the hit-rate counters or the eviction order
        of lookups the resumed run never asked for.
        """
        path = self._path(key)
        try:
            payload = read_json(path)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("spec_hash") != key:
            return None
        return payload

    def put(self, key: str, payload: dict[str, Any], stored_in: LocationToken | None = None) -> bool:
        """Store ``payload`` under ``key``, then enforce the size bound.

        ``stored_in`` is the write-through skip: when it names this very
        directory the payload is already on disk (a worker wrote it here
        directly) and the write is elided.
        """
        if self.covers(stored_in):
            return True
        path = self._path(key)
        if self.max_bytes is None:
            write_json(path, payload)
            self.stats.writes += 1
            return True
        try:
            old_size = path.stat().st_size
        except OSError:
            old_size = 0
        write_json(path, payload)
        self.stats.writes += 1
        try:
            new_size = path.stat().st_size
        except OSError:
            new_size = 0
        if self._tracked_total is None:
            self._tracked_total = self.total_bytes()
        else:
            self._tracked_total += new_size - old_size
        if self._tracked_total > self.max_bytes:
            self.prune(int(self.max_bytes * LOW_WATER_FRACTION))
        return True

    # -- introspection / maintenance ---------------------------------------------------

    def entries(self) -> list[CacheEntry]:
        """Every entry on disk, least recently touched first (eviction order)."""
        found = []
        for path in self.root.glob("*/*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue  # racing writer/pruner
            found.append(CacheEntry(
                key=path.stem, path=path, size_bytes=stat.st_size,
                mtime=stat.st_mtime, mtime_ns=stat.st_mtime_ns,
            ))
        return sorted(found, key=lambda e: (e.mtime, e.key))

    def total_bytes(self) -> int:
        """Total size of all cached entries in bytes."""
        return sum(e.size_bytes for e in self.entries())

    def prune(self, max_bytes: int | None = None) -> list[str]:
        """Evict entries in recency order until the cache fits ``max_bytes``.

        ``None`` uses the configured bound (a no-op when that is also
        ``None``).  Returns the evicted keys, oldest first.

        The cache is shared between concurrent builder processes, so the scan
        is re-validated per entry at eviction time: an entry that *vanished*
        since the scan (a concurrent pruner evicted it) is skipped without
        counting an eviction here, and an entry *re-written or refreshed*
        since the scan (its mtime moved — a concurrent writer just produced
        or touched it) is spared rather than evicting bytes the scan never
        saw.  Either way the freshly written payload survives and the
        running total stays honest.
        """
        bound = self.max_bytes if max_bytes is None else int(max_bytes)
        if bound is None:
            return []
        if bound < 0:
            raise EngineError(f"cache prune bound must be >= 0, got {bound}")
        entries = self.entries()
        total = sum(e.size_bytes for e in entries)
        evicted: list[str] = []
        for entry in entries:
            if total <= bound:
                break
            if self._before_evict is not None:
                self._before_evict(entry)
            try:
                current = entry.path.stat()
            except OSError:
                total -= entry.size_bytes  # vanished under a concurrent pruner
                continue
            if (current.st_mtime_ns, current.st_size) != (entry.mtime_ns, entry.size_bytes):
                # Re-written (or LRU-refreshed) since the scan: keep it, and
                # account for its current size instead of the stale one.
                # Nanosecond mtime plus size, not float st_mtime: on coarse
                # filesystems a same-tick rewrite is invisible to st_mtime
                # and the fresh payload would be evicted anyway.
                total += current.st_size - entry.size_bytes
                continue
            try:
                entry.path.unlink()
            except OSError:
                total -= entry.size_bytes  # lost the unlink race; already gone
                continue
            total -= entry.size_bytes
            evicted.append(entry.key)
            self.stats.evictions += 1
        self._tracked_total = total
        return evicted

    def verify(self, delete: bool = False) -> tuple[list[str], list[tuple[str, str]]]:
        """Audit every entry: parseable JSON whose ``spec_hash`` matches its key.

        Returns ``(valid_keys, corrupt)`` where ``corrupt`` pairs each bad key
        with the reason.  With ``delete`` set, corrupt entries are removed so
        subsequent lookups recompute them cleanly.
        """
        valid: list[str] = []
        corrupt: list[tuple[str, str]] = []
        corrupt_paths: list[Path] = []
        for entry in self.entries():
            reason: str | None = None
            try:
                payload = read_json(entry.path)
            except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
                reason = f"unreadable: {type(exc).__name__}"
            else:
                if not isinstance(payload, dict):
                    reason = "payload is not a JSON object"
                elif payload.get("spec_hash") != entry.key:
                    reason = "spec_hash does not match file name"
                elif "schema" not in payload:
                    reason = "payload has no schema"
            if reason is None:
                valid.append(entry.key)
            else:
                corrupt.append((entry.key, reason))
                # The scanned path, not _path(key): a file in the wrong shard
                # directory must still be the one deleted.
                corrupt_paths.append(entry.path)
        if delete and corrupt_paths:
            for path in corrupt_paths:
                path.unlink(missing_ok=True)
            self._tracked_total = None  # resync on next bound check
        return valid, corrupt

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns the number of files removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            path.unlink(missing_ok=True)
            removed += 1
        self._tracked_total = 0
        return removed


#: Historical name, kept as the public alias: ``ResultCache`` predates the
#: tier protocol and every caller that opened a cache by path still gets
#: exactly this class with identical on-disk format and eviction semantics.
ResultCache = LocalDirTier
