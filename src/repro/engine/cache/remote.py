"""A cache tier on the other end of a ``repro-serve`` socket.

:class:`RemoteTier` speaks three small request/reply frame pairs over the
same length-prefixed pickle protocol the network transport uses
(:mod:`repro.serve.protocol`): ``cache_get`` -> ``cache_payload``,
``cache_put`` -> ``cache_ack`` and ``cache_stats`` -> ``cache_stats``.  The
server answers them against its own local tier, so N machines share one
cache without sharing a filesystem.

Failure is always a *miss, never a crash*: the tier keeps one lazy
connection, and any socket error mid-request drops it and retries exactly
once on a fresh connection — which is what lets a client survive a server
restart mid-lookup.  If the retry also fails, ``get``/``peek`` return
``None`` (the job recomputes) and ``put`` reports ``False`` (the caller
falls back to another tier or an embedded payload).  A degraded remote tier
therefore costs recompute time, never correctness — the same contract local
eviction already has.
"""

from __future__ import annotations

import socket
import threading
import uuid
from typing import Any

from repro.engine.cache.base import CacheEntry, CacheStats, LocationToken
from repro.exceptions import EngineError
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Seconds allowed for connect + handshake and for each request round trip.
DEFAULT_TIMEOUT = 30.0


class RemoteTier:
    """Read-through / write-through cache client for one ``repro-serve``.

    Parameters
    ----------
    host, port:
        The ``repro-serve`` endpoint answering cache frames.
    timeout:
        Per-request socket timeout in seconds; a request that cannot finish
        within it counts as a miss.
    """

    def __init__(self, host: str, port: int, timeout: float = DEFAULT_TIMEOUT):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.client_id = f"cache-{uuid.uuid4().hex[:12]}"
        self.stats = CacheStats()
        self.server_id: str | None = None
        self._sock: socket.socket | None = None
        self._lock = threading.Lock()
        self._degraded = False  # only warn once per outage, not once per key

    @property
    def location(self) -> LocationToken:
        """Identity token of this tier: the server address it talks to."""
        return ("remote", self.host, self.port)

    def covers(self, token: LocationToken | None) -> bool:
        """Whether ``token`` names this same server address (textually)."""
        return token is not None and tuple(token) == self.location

    # -- wire plumbing ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        # Lazy protocol import: repro.serve.server imports this package, so a
        # module-level import here would be a cycle.
        from repro.serve.protocol import PROTOCOL_VERSION, recv_message, send_message

        sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.timeout)
            send_message(sock, {
                "type": "hello", "client_id": self.client_id, "protocol": PROTOCOL_VERSION,
            })
            welcome = recv_message(sock)
            if welcome.get("type") != "welcome":
                raise EngineError(f"expected a welcome frame, got {welcome.get('type')!r}")
            if welcome.get("protocol") != PROTOCOL_VERSION:
                raise EngineError(
                    f"server speaks protocol {welcome.get('protocol')!r}, "
                    f"this client speaks {PROTOCOL_VERSION}"
                )
        except BaseException:
            sock.close()
            raise
        self.server_id = welcome.get("server_id")
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _request(self, message: dict[str, Any], reply_type: str) -> dict[str, Any] | None:
        """One synchronous round trip; ``None`` when the server is unreachable.

        Any failure drops the cached connection and retries exactly once on a
        fresh one — a server restart between requests (or mid-request) costs
        one reconnect, not an exception.
        """
        from repro.serve.protocol import recv_message, send_message

        with self._lock:
            for attempt in (1, 2):
                try:
                    if self._sock is None:
                        self._sock = self._connect()
                    send_message(self._sock, message)
                    reply = recv_message(self._sock)
                except (OSError, EngineError) as exc:
                    self._drop()
                    if attempt == 1:
                        continue
                    if not self._degraded:
                        self._degraded = True
                        logger.warning(
                            "remote cache tier %s:%d unreachable (%s: %s); "
                            "treating lookups as misses until it returns",
                            self.host, self.port, type(exc).__name__, exc,
                        )
                    return None
                if reply.get("type") != reply_type:
                    # An unrelated frame means we are talking to a confused
                    # peer; drop the connection rather than desynchronise.
                    self._drop()
                    logger.warning(
                        "remote cache tier %s:%d answered %r to a %r request",
                        self.host, self.port, reply.get("type"), message.get("type"),
                    )
                    return None
                self._degraded = False
                return reply
        return None

    def close(self) -> None:
        """Drop the connection (the tier reconnects on the next request)."""
        with self._lock:
            self._drop()

    # -- the tier protocol --------------------------------------------------------------

    def get(self, key: str) -> dict[str, Any] | None:
        """The payload under ``key`` from the server's tier, or ``None``."""
        reply = self._request({"type": "cache_get", "key": key}, "cache_payload")
        payload = reply.get("payload") if reply else None
        if not isinstance(payload, dict) or payload.get("spec_hash") != key:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def peek(self, key: str) -> dict[str, Any] | None:
        """Stat-neutral ``get``: no counters here, no recency refresh there."""
        reply = self._request({"type": "cache_get", "key": key, "peek": True}, "cache_payload")
        payload = reply.get("payload") if reply else None
        if not isinstance(payload, dict) or payload.get("spec_hash") != key:
            return None
        return payload

    def put(self, key: str, payload: dict[str, Any], stored_in: LocationToken | None = None) -> bool:
        """Write ``payload`` through to the server's tier.

        Returns ``True`` only when the server acknowledged storing it — a
        dropped put is how a degraded remote tier reports itself, so callers
        (the stub-completion worker path) can fall back instead of silently
        publishing a result nobody can fetch.
        """
        if self.covers(stored_in):
            return True
        reply = self._request({"type": "cache_put", "key": key, "payload": payload}, "cache_ack")
        if reply is None or not reply.get("stored"):
            return False
        self.stats.writes += 1
        return True

    def remote_stats(self) -> dict[str, Any] | None:
        """The *server-side* tier's stats dict, or ``None`` when unreachable."""
        reply = self._request({"type": "cache_stats"}, "cache_stats")
        return reply.get("stats") if reply else None

    def entries(self) -> list[CacheEntry]:
        """No locally enumerable entries — maintenance happens server-side."""
        return []

    def prune(self, max_bytes: int | None = None) -> list[str]:
        """No-op: eviction is the server tier's policy, not the client's."""
        return []

    def verify(self, delete: bool = False) -> tuple[list[str], list[tuple[str, str]]]:
        """No-op audit: the server audits its own tier (``repro-cache verify``)."""
        return [], []

    def __contains__(self, key: str) -> bool:
        return self.peek(key) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"RemoteTier({self.host!r}, {self.port})"
