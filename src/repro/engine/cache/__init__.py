"""The engine's result cache, structured as composable tiers.

Public surface:

* :class:`ResultCache` / :class:`LocalDirTier` — the content-addressed
  on-disk store (one JSON file per content hash, sharded, optionally
  size-bounded).  ``ResultCache`` is the historical name; both are the same
  class and the on-disk format is unchanged.
* :class:`RemoteTier` — the same interface over a ``repro-serve`` socket
  (``cache_get``/``cache_put``/``cache_stats`` frames), so N machines share
  one cache without a shared filesystem.
* :class:`TieredCache` — an ordered stack of tiers: local-first reads,
  promote-on-remote-hit, write-through.
* :class:`CacheTier` — the protocol all of the above implement
  (``get/peek/put/entries/prune/verify/stats`` plus the
  ``location``/``covers`` write-through bookkeeping).

Tiers are *configuration*: :func:`parse_tier_spec` turns a spec string — a
directory path, ``local:DIR`` or ``remote:HOST:PORT`` — into a tier, and
:func:`resolve_cache` maps ``PipelineConfig.cache_tiers`` /
``cache_remote`` / ``cache_dir`` (or an explicit ``Engine(cache=...)``
argument) onto a single tier or a :class:`TieredCache`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

from repro.engine.cache.base import CacheEntry, CacheStats, CacheTier, LocationToken
from repro.engine.cache.local import (
    EVICTION_POLICIES,
    LOW_WATER_FRACTION,
    LocalDirTier,
    ResultCache,
)
from repro.engine.cache.remote import RemoteTier
from repro.engine.cache.tiered import TieredCache
from repro.exceptions import EngineError

__all__ = [
    "EVICTION_POLICIES",
    "LOW_WATER_FRACTION",
    "CacheEntry",
    "CacheStats",
    "CacheTier",
    "LocalDirTier",
    "LocationToken",
    "RemoteTier",
    "ResultCache",
    "TieredCache",
    "parse_tier_spec",
    "resolve_cache",
]


def parse_tier_spec(spec: str | Path, config: Any = None) -> CacheTier:
    """Build one cache tier from a spec string.

    * ``remote:HOST:PORT`` (``remote://HOST:PORT`` also accepted) — a
      :class:`RemoteTier` against that ``repro-serve`` endpoint;
    * ``local:DIR`` or a plain directory path — a :class:`LocalDirTier`.

    With ``config`` given, local tiers inherit its ``cache_max_bytes`` /
    ``cache_eviction``; without it they are unbounded LRU (the right default
    for worker-side write-through, where eviction policy belongs to the
    owning session, not to every writer).
    """
    text = str(spec).strip()
    if not text:
        raise EngineError("cache tier spec must be a non-empty string")
    if text.startswith("remote:"):
        address = text[len("remote:"):].lstrip("/")
        host, sep, port = address.rpartition(":")
        if not sep or not port.isdigit():
            raise EngineError(
                f"cannot parse cache tier spec {text!r}: expected remote:HOST:PORT"
            )
        return RemoteTier(host or "127.0.0.1", int(port))
    if text.startswith("local:"):
        text = text[len("local:"):]
        if not text:
            raise EngineError("cache tier spec 'local:' is missing its directory")
    if config is not None:
        return LocalDirTier(
            text,
            max_bytes=getattr(config, "cache_max_bytes", None),
            eviction=getattr(config, "cache_eviction", "lru"),
        )
    return LocalDirTier(text)


def resolve_cache(config: Any, cache: Any = None) -> CacheTier | None:
    """Resolve the engine's ``cache`` argument + config knobs into one tier.

    ``cache`` may be ``None`` (use the config: ``cache_tiers`` if set, else
    ``cache_dir``, appending ``cache_remote`` as the outermost tier), a spec
    string / path (one tier), a sequence of specs or tier instances (a
    :class:`TieredCache`), or an already built tier (returned as-is).
    Returns ``None`` for a cacheless engine.
    """
    if cache is None:
        tiers = getattr(config, "cache_tiers", None)
        if tiers:
            specs = [str(s) for s in tiers]
        else:
            cache_dir = getattr(config, "cache_dir", None)
            specs = [str(cache_dir)] if cache_dir else []
        remote = getattr(config, "cache_remote", None)
        if remote:
            remote_spec = str(remote)
            if not remote_spec.startswith("remote:"):
                remote_spec = f"remote:{remote_spec}"
            if remote_spec not in specs:
                specs.append(remote_spec)
        if not specs:
            return None
        if len(specs) == 1:
            return parse_tier_spec(specs[0], config=config)
        cache = specs
    if isinstance(cache, (str, Path)):
        return parse_tier_spec(cache, config=config)
    if isinstance(cache, Sequence):
        members = [
            parse_tier_spec(item, config=config) if isinstance(item, (str, Path)) else item
            for item in cache
        ]
        return TieredCache(members)
    return cache
