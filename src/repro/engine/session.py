"""Streaming engine sessions: incremental results, on-disk journals, resume.

:meth:`Engine.run` is a blocking batch call — fine for short batches, but a
paper-fidelity sweep runs hundreds of fold/baseline/dock jobs for hours, and
one crashed job (or a killed process) used to lose the whole batch with no
progress signal.  A :class:`Session` restructures that into a stream:

* ``Engine.submit(jobs)`` returns a :class:`Session` that yields
  ``(spec, outcome)`` pairs *as they complete* — cache hits first (in
  submission order), then executor-transport completions (in completion
  order; the transport — in-process, process pool, or a distributed
  ``repro-worker`` fleet — is ``config.transport``, see
  :mod:`repro.engine.transports`);
* every completed job is recorded to an append-only on-disk **journal**
  (:class:`SessionJournal`) next to the result cache, so a crashed or
  interrupted sweep can be resumed — by ``Session.resume()`` in-process, or by
  re-submitting with the same ``session_id`` (or via ``repro-session resume``)
  from a brand-new process — executing **only** the jobs that never completed;
* a failing job is *isolated* as a :class:`JobFailure` record (exception type,
  message, spec hash) instead of aborting the batch
  (``on_error="isolate"``, the default; ``"raise"`` restores the old
  fail-fast behaviour);
* an optional ``progress`` callback receives a :class:`SessionProgress` event
  after every outcome.

Determinism is preserved: each job's result depends only on its spec (never on
scheduling), so a stream consumed serially, in parallel, from a warm cache, or
interrupted-and-resumed produces bit-identical per-job results, and
:meth:`Session.results` returns them in submission order.

The journal format
------------------

One session writes two files under ``session_dir``:

* ``<session_id>.jsonl`` — append-only JSON lines.  The first record is the
  session header (schema version, spec hashes in submission order); every
  completed or failed job appends one ``job`` record; each resume appends a
  ``resume`` marker.  A torn trailing line (the process died mid-write) is
  ignored on re-open, so a crash can never corrupt the journal.
* ``<session_id>.specs.pkl`` — the pickled job specs, written once at session
  creation.  This is what lets a *new process* resume a journal without the
  caller reconstructing the job list.  (Pickles are trusted local state, like
  the result cache: do not resume journals from untrusted directories.)

A job marked completed in the journal is *served from the result cache* on
resume; if its cache payload was evicted or the engine has no cache, the job
re-executes (with a warning) — the journal is bookkeeping, the cache is the
source of results, and losing either only ever costs recompute time.
"""

from __future__ import annotations

import json
import os
import pickle
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.engine.jobs import result_from_payload
from repro.exceptions import EngineError
from repro.utils.io import utcnow_iso
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Schema version of the journal header; bump on incompatible format changes.
SESSION_SCHEMA_VERSION = "session/v1"

#: The error-handling policies a session understands.
ON_ERROR_POLICIES: tuple[str, ...] = ("isolate", "raise")


def new_session_id() -> str:
    """A fresh, filesystem-safe session identifier."""
    return uuid.uuid4().hex[:12]


@dataclass(frozen=True)
class JobFailure:
    """One isolated job failure: what crashed, how, and which job it was.

    Takes the failed job's slot in :meth:`Session.results` under
    ``on_error="isolate"`` so the rest of the batch still completes; the
    journal records it as ``failed`` and :meth:`Session.resume` re-runs it.
    """

    spec_hash: str
    kind: str
    error_type: str
    error_message: str

    #: Failures are never cache hits; mirrors the result types' attribute so
    #: consumers can test ``outcome.from_cache`` uniformly.
    from_cache: bool = False

    def shallow_copy(self, from_cache: bool | None = None) -> "JobFailure":
        """Failures are immutable; duplicates share the record."""
        return self

    def as_dict(self) -> dict[str, Any]:
        """Plain-dict view (journal record / CLI output)."""
        return {
            "spec_hash": self.spec_hash,
            "kind": self.kind,
            "error_type": self.error_type,
            "error_message": self.error_message,
        }


@dataclass(frozen=True)
class SessionProgress:
    """One progress event: the outcome that just landed plus running totals."""

    session_id: str
    spec_hash: str
    kind: str
    #: ``"cached"`` | ``"executed"`` | ``"failed"`` | ``"duplicate"``
    status: str
    done: int
    total: int
    cached: int
    executed: int
    failed: int

    @property
    def fraction(self) -> float:
        """Completed fraction of the session (0.0 when empty)."""
        return self.done / self.total if self.total else 0.0


class SessionJournal:
    """Append-only on-disk record of one session's per-job status.

    See the module docstring for the file format.  All mutation goes through
    :meth:`record_job` / :meth:`mark_resumed`, each of which appends one
    flushed line — the journal is always consistent up to the last fully
    written record, whatever kills the process.
    """

    def __init__(self, root: str | Path, session_id: str):
        self.root = Path(root).expanduser()
        self.session_id = session_id
        self.path = self.root / f"{session_id}.jsonl"
        self.specs_path = self.root / f"{session_id}.specs.pkl"
        self.created_at: str | None = None
        self.spec_hashes: list[str] = []
        self.completed: dict[str, dict[str, Any]] = {}
        self.failed: dict[str, dict[str, Any]] = {}
        self.resumes = 0
        #: Set by :meth:`open` when the file ends in a torn (newline-less)
        #: record; the next append starts a fresh line so it cannot corrupt
        #: the new record too.
        self._repair_newline = False

    # -- creation / loading ----------------------------------------------------------

    @classmethod
    def exists(cls, root: str | Path, session_id: str) -> bool:
        """Whether a journal for ``session_id`` is present under ``root``."""
        return (Path(root).expanduser() / f"{session_id}.jsonl").is_file()

    @classmethod
    def create(cls, root: str | Path, session_id: str, jobs: Sequence[Any]) -> "SessionJournal":
        """Start a new journal: write the spec pickle and the header record."""
        journal = cls(root, session_id)
        if journal.path.exists():
            raise EngineError(
                f"session journal {journal.path} already exists; "
                "resume it (or pick a different session_id) instead of recreating it"
            )
        journal.root.mkdir(parents=True, exist_ok=True)
        journal.spec_hashes = [job.content_hash() for job in jobs]
        journal.created_at = utcnow_iso()
        with journal.specs_path.open("wb") as fh:
            pickle.dump(list(jobs), fh)
        journal._append(
            {
                "record": "session",
                "schema": SESSION_SCHEMA_VERSION,
                "session_id": session_id,
                "created_at": journal.created_at,
                "total_jobs": len(journal.spec_hashes),
                "spec_hashes": journal.spec_hashes,
            }
        )
        return journal

    @classmethod
    def open(cls, root: str | Path, session_id: str) -> "SessionJournal":
        """Re-open an existing journal, replaying its records.

        Undecodable lines (a torn trailing write from a killed process) are
        skipped; a ``completed`` record always wins over a ``failed`` one for
        the same job (a resume re-ran it successfully).
        """
        journal = cls(root, session_id)
        try:
            raw = journal.path.read_bytes()
        except OSError as exc:
            raise EngineError(
                f"no session journal {journal.path}: {exc}"
            ) from exc
        # Decode permissively: a torn write can leave arbitrary bytes on the
        # tail, and undecodable garbage must invalidate only the lines it
        # lands on (they fail JSON parsing below), never the whole journal.
        text = raw.decode("utf-8", errors="replace")
        journal._repair_newline = bool(text) and not text.endswith("\n")
        saw_header = False
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing write; the journal is consistent up to here
            if not isinstance(record, dict):
                continue
            kind = record.get("record")
            if kind == "session":
                schema = record.get("schema")
                if schema != SESSION_SCHEMA_VERSION:
                    raise EngineError(
                        f"session journal {journal.path} has schema {schema!r}; "
                        f"this build reads {SESSION_SCHEMA_VERSION!r}"
                    )
                saw_header = True
                journal.created_at = record.get("created_at")
                journal.spec_hashes = list(record.get("spec_hashes", []))
            elif kind == "job":
                spec_hash = record.get("spec_hash")
                if not spec_hash:
                    continue
                if record.get("status") == "completed":
                    journal.completed[spec_hash] = record
                    journal.failed.pop(spec_hash, None)
                elif record.get("status") == "failed" and spec_hash not in journal.completed:
                    journal.failed[spec_hash] = record
            elif kind == "resume":
                journal.resumes += 1
            elif kind == "compact":
                # A compaction rewrote the file, folding its resume markers
                # into one record so the audit count survives the rewrite.
                journal.resumes += int(record.get("resumes", 0) or 0)
        if not saw_header:
            raise EngineError(
                f"session journal {journal.path} has no readable header record"
            )
        return journal

    @classmethod
    def list_sessions(cls, root: str | Path) -> list["SessionJournal"]:
        """Every readable journal under ``root``, oldest first."""
        journals = []
        for path in sorted(Path(root).expanduser().glob("*.jsonl")):
            try:
                journals.append(cls.open(path.parent, path.stem))
            except EngineError:
                continue  # not a session journal (or unreadably damaged)
        journals.sort(key=lambda j: (j.created_at or "", j.session_id))
        return journals

    def load_specs(self) -> list[Any]:
        """The job specs this journal was created with (for cross-process resume)."""
        try:
            with self.specs_path.open("rb") as fh:
                return list(pickle.load(fh))
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ImportError) as exc:
            raise EngineError(
                f"cannot load the job specs of session {self.session_id!r} "
                f"from {self.specs_path}: {type(exc).__name__}: {exc}"
            ) from exc

    # -- recording -------------------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        prefix = "\n" if self._repair_newline else ""
        self._repair_newline = False
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(prefix + json.dumps(record, sort_keys=True) + "\n")
            fh.flush()

    def record_job(
        self,
        spec_hash: str,
        status: str,
        kind: str,
        from_cache: bool = False,
        error_type: str | None = None,
        error_message: str | None = None,
    ) -> None:
        """Append one job outcome (``status`` is ``"completed"`` or ``"failed"``)."""
        record: dict[str, Any] = {
            "record": "job",
            "spec_hash": spec_hash,
            "status": status,
            "kind": kind,
            "from_cache": bool(from_cache),
        }
        if error_type is not None:
            record["error_type"] = error_type
        if error_message is not None:
            record["error_message"] = error_message
        self._append(record)
        if status == "completed":
            self.completed[spec_hash] = record
            self.failed.pop(spec_hash, None)
        elif spec_hash not in self.completed:
            self.failed[spec_hash] = record

    def mark_resumed(self) -> None:
        """Append a resume marker (kept for audit; resume logic keys off job records)."""
        self.resumes += 1
        self._append({"record": "resume", "resumed_at": utcnow_iso()})

    # -- maintenance -----------------------------------------------------------------

    def compact(self) -> dict[str, int]:
        """Rewrite the journal keeping only the latest record per job.

        A long-lived sweep resumed many times accretes one ``job`` line per
        re-submission — the journal grows without bound while carrying no
        more information than its final state.  Compaction rewrites the file
        as: the header, one ``compact`` record folding the accumulated
        resume markers (so :attr:`resumes` survives), then the latest record
        of each unique job (``completed`` beats ``failed``, exactly the
        precedence :meth:`open` applies).  The rewrite is atomic
        (tmp + ``os.replace``), so a crash mid-compaction leaves the old
        journal intact.  Returns before/after record and byte counts.
        """
        if self.created_at is None:
            raise EngineError(
                f"session journal {self.path} must be open()ed or create()d "
                "before it can be compacted"
            )
        try:
            before = self.path.stat().st_size
        except OSError as exc:
            raise EngineError(f"cannot stat session journal {self.path}: {exc}") from exc
        records_before = sum(
            1 for line in self.path.read_text(encoding="utf-8", errors="replace").splitlines()
            if line.strip()
        )
        records: list[dict[str, Any]] = [{
            "record": "session",
            "schema": SESSION_SCHEMA_VERSION,
            "session_id": self.session_id,
            "created_at": self.created_at,
            "total_jobs": len(self.spec_hashes),
            "spec_hashes": self.spec_hashes,
        }]
        if self.resumes:
            records.append({
                "record": "compact",
                "resumes": self.resumes,
                "compacted_at": utcnow_iso(),
            })
        for spec_hash in dict.fromkeys(self.spec_hashes):
            latest = self.completed.get(spec_hash) or self.failed.get(spec_hash)
            if latest is not None:
                records.append(latest)
        tmp = self.path.with_name(f".{self.path.name}.compact-{os.getpid()}")
        tmp.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n" for r in records),
            encoding="utf-8",
        )
        os.replace(tmp, self.path)
        self._repair_newline = False
        after = self.path.stat().st_size
        return {
            "records_before": records_before,
            "records_after": len(records),
            "bytes_before": before,
            "bytes_after": after,
        }

    # -- reporting -------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Counts for ``repro-session ls`` / ``status`` (unique jobs, not submissions).

        ``completed`` + ``failed`` + ``pending`` partitions ``total_unique``:
        ``pending`` counts jobs with no journal record at all.  A resume
        re-runs both the ``failed`` and the ``pending`` jobs.
        """
        unique = list(dict.fromkeys(self.spec_hashes))
        completed = sum(1 for h in unique if h in self.completed)
        failed = sum(1 for h in unique if h in self.failed)
        return {
            "session_id": self.session_id,
            "created_at": self.created_at,
            "total_submitted": len(self.spec_hashes),
            "total_unique": len(unique),
            "completed": completed,
            "failed": failed,
            "pending": len(unique) - completed - failed,
            "resumes": self.resumes,
        }


class Session:
    """A streaming view of one batch of engine jobs.

    Iterating the session yields ``(spec, outcome)`` pairs as they complete,
    where ``outcome`` is the job's result or a :class:`JobFailure` (under
    ``on_error="isolate"``).  :meth:`results` consumes the stream (if it has
    not been consumed already) and returns outcomes in submission order.

    Sessions are built by :meth:`Engine.submit`; construct directly only in
    tests.
    """

    def __init__(
        self,
        engine,
        jobs: Sequence[Any],
        session_id: str | None = None,
        journal: SessionJournal | None = None,
        on_error: str = "isolate",
        progress: Callable[[SessionProgress], None] | None = None,
        processes: int | None = None,
        prior: dict[str, Any] | None = None,
    ):
        if on_error not in ON_ERROR_POLICIES:
            raise EngineError(
                f"unknown on_error policy {on_error!r}; choose one of {ON_ERROR_POLICIES}"
            )
        self.engine = engine
        self.jobs = list(jobs)
        self.session_id = session_id or new_session_id()
        self.journal = journal
        self.on_error = on_error
        self.progress = progress
        self.processes = engine.processes if processes is None else int(processes)
        self.keys = [job.content_hash() for job in self.jobs]
        #: Results carried over from a previous in-process generation of this
        #: session (``resume()``) — served without touching cache or pool.
        self._prior = dict(prior or {})
        self._outcomes: list[Any] = [None] * len(self.jobs)
        self._state = "new"  # new -> running -> finished
        self._stream_gen: Iterator[tuple[Any, Any]] | None = None
        #: The executor transport of the running stream (set when execution
        #: starts; exposed so tests and tools can inspect/steer the fleet).
        self.transport: Any = None
        #: The transport's own counters (reclaimed leases, speculated shadow
        #: tasks, elastic spawns, ...), captured when the stream drains.
        self.transport_stats: dict[str, Any] | None = None
        self.cached = 0
        self.executed = 0
        self.failed = 0
        self.duplicates = 0
        self.done = 0

    # -- streaming -------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        """Iterate outcomes as they complete.

        One underlying stream per session: breaking out of a ``for`` loop
        suspends it, and a later iteration (or :meth:`results`) drains it
        from where it stopped.  A finished session re-yields its stored
        outcomes in submission order.
        """
        if self._state == "finished":
            return iter(list(zip(self.jobs, self._outcomes)))
        if self._state == "closed":
            raise EngineError(
                f"session {self.session_id!r} was closed before finishing; "
                "resume() it to complete the batch"
            )
        if self._stream_gen is None:
            self._state = "running"
            self._stream_gen = self._stream()
        return self._stream_gen

    def _stream(self) -> Iterator[tuple[Any, Any]]:
        # An abnormal termination — on_error="raise", or a transport error
        # such as the filequeue stop-sentinel / respawn-exhausted raise —
        # must leave the session *closed*: a later results() call on the
        # dead generator would otherwise return a list with silent None
        # holes instead of raising the closed-before-finishing error.
        try:
            yield from self._run_stream()
        except BaseException:
            self._state = "closed"
            raise
        self._state = "finished"

    def _run_stream(self) -> Iterator[tuple[Any, Any]]:
        engine = self.engine
        primary: dict[str, int] = {}
        duplicates_of: dict[int, list[int]] = {}
        served: list[int] = []
        pending: list[int] = []
        journalled_done = self.journal.completed if self.journal is not None else {}

        for i, key in enumerate(self.keys):
            if key in primary:
                duplicates_of.setdefault(primary[key], []).append(i)
                continue
            primary[key] = i
            outcome = self._lookup(self.jobs[i], key, journalled_done)
            if outcome is not None:
                self._outcomes[i] = outcome
                served.append(i)
            else:
                pending.append(i)

        if pending:
            self.transport = engine.transport_for(self.processes)
            logger.info(
                "session %s: executing %d/%d jobs (%d reusable, %d duplicate) "
                "on the %s transport (%d processes)",
                self.session_id, len(pending), len(self.jobs), len(served),
                len(self.jobs) - len(served) - len(pending),
                self.transport.name, max(1, self.processes),
            )

        # Cache hits first, in submission order ...
        for i in served:
            yield from self._deliver(i, "cached", duplicates_of)

        # ... then transport completions, in completion order (the serial
        # transport degrades to submission order).  The journal and cache are
        # updated *before* each yield, so breaking out of the stream can
        # never lose a finished result; the transport's own teardown cancels
        # whatever never completed.
        if pending:
            stream = self.transport.stream([self.jobs[i] for i in pending])
            for pos, result, exc in stream:
                i = pending[pos]
                key = self.keys[i]
                kind = getattr(self.jobs[i], "kind", "fold")
                if exc is None:
                    if engine.cache is not None:
                        # A remote transport may have already written the
                        # payload into a cache tier (a filequeue stub, or the
                        # serve daemon's own cache); skip the redundant
                        # write-through when *every* tier we hold is covered,
                        # and otherwise let each tier skip itself.
                        stored = getattr(result, "stored_in", None)
                        covers = getattr(engine.cache, "covers", None)
                        if stored is None or covers is None or not covers(stored):
                            engine.cache.put(key, result.to_payload(), stored_in=stored)
                    if self.journal is not None:
                        self.journal.record_job(key, "completed", kind)
                    engine.executed_jobs += 1
                    engine.executed_by_kind[kind] = engine.executed_by_kind.get(kind, 0) + 1
                    self.executed += 1
                    self._outcomes[i] = result
                    yield from self._deliver(i, "executed", duplicates_of)
                else:
                    # Remote transports report failures as data; preserve the
                    # original error type/message they carried.
                    error_type = getattr(exc, "error_type", type(exc).__name__)
                    error_message = getattr(exc, "error_message", str(exc))
                    if self.journal is not None:
                        self.journal.record_job(
                            key, "failed", kind,
                            error_type=error_type, error_message=error_message,
                        )
                    engine.failed_jobs += 1
                    self.failed += 1
                    if self.on_error == "raise":
                        raise exc
                    self._outcomes[i] = JobFailure(
                        spec_hash=key,
                        kind=kind,
                        error_type=error_type,
                        error_message=error_message,
                    )
                    yield from self._deliver(i, "failed", duplicates_of)
            stats = getattr(self.transport, "stats", None)
            if callable(stats):
                try:
                    self.transport_stats = stats()
                except Exception:  # diagnostics only: never fail a finished batch
                    self.transport_stats = None

    def _lookup(self, job: Any, key: str, journalled_done: dict[str, Any]) -> Any | None:
        """Resolve a job without executing it: prior generation, then cache."""
        prior = self._prior.get(key)
        if prior is not None:
            return prior.shallow_copy(from_cache=True)
        cache = self.engine.cache
        if cache is not None:
            payload = cache.get(key)
            if payload is not None:
                return result_from_payload(payload)
        if key in journalled_done:
            # Journal-aware degradation: the journal promises this job is done,
            # but its payload is gone (cache evicted/disabled) — re-execute.
            logger.warning(
                "session %s: job %s is journalled complete but its cached payload "
                "is unavailable; re-executing",
                self.session_id, key[:16],
            )
        return None

    def _deliver(
        self, i: int, status: str, duplicates_of: dict[int, list[int]]
    ) -> Iterator[tuple[Any, Any]]:
        """Yield outcome ``i`` (journalling cache reuse), then its duplicates."""
        outcome = self._outcomes[i]
        key = self.keys[i]
        kind = getattr(self.jobs[i], "kind", "fold")
        if status == "cached":
            self.cached += 1
            if self.journal is not None and key not in self.journal.completed:
                self.journal.record_job(key, "completed", kind, from_cache=True)
        failed = isinstance(outcome, JobFailure)
        if not failed:
            self.engine.completed_jobs += 1
        self.done += 1
        self._emit(key, kind, status)
        yield self.jobs[i], outcome
        for j in duplicates_of.get(i, ()):
            self._outcomes[j] = outcome.shallow_copy()
            self.duplicates += 1
            self.done += 1
            if not failed:
                self.engine.completed_jobs += 1
            self._emit(self.keys[j], kind, "duplicate")
            yield self.jobs[j], self._outcomes[j]

    def _emit(self, key: str, kind: str, status: str) -> None:
        if self.progress is None:
            return
        self.progress(
            SessionProgress(
                session_id=self.session_id,
                spec_hash=key,
                kind=kind,
                status=status,
                done=self.done,
                total=len(self.jobs),
                cached=self.cached,
                executed=self.executed,
                failed=self.failed,
            )
        )

    # -- blocking views --------------------------------------------------------------

    def results(self) -> list[Any]:
        """All outcomes in submission order, consuming the stream if needed.

        Works on a partially consumed session too: the suspended stream is
        drained from where the last ``for`` loop stopped.
        """
        if self._state != "finished":
            for _ in self:
                pass
        return list(self._outcomes)

    def close(self) -> None:
        """Shut down a partially consumed session's stream (and worker pool).

        A no-op on new or finished sessions.  The journal keeps its records
        and a closed session can still :meth:`resume`; iterating it or
        calling :meth:`results` raises instead of returning a result list
        with silent ``None`` holes.
        """
        if self._stream_gen is not None and self._state == "running":
            self._stream_gen.close()
            self._state = "closed"

    def failures(self) -> list[JobFailure]:
        """The isolated failures among the outcomes so far, one per failed job.

        In-batch duplicates share their primary's failure record, so the list
        is deduplicated by spec hash — its length matches the ``failed``
        counter and the journal's failed set.
        """
        unique: dict[str, JobFailure] = {}
        for outcome in self._outcomes:
            if isinstance(outcome, JobFailure):
                unique.setdefault(outcome.spec_hash, outcome)
        return list(unique.values())

    # -- resume ----------------------------------------------------------------------

    def resume(self) -> "Session":
        """A new session over the same jobs that runs only unfinished work.

        Outcomes already produced by *this* session object are reused in
        memory; jobs completed in an earlier process are served from the
        result cache via the journal; failed and never-started jobs execute.
        The old session's stream is closed — the resumed session replaces it.
        """
        self.close()
        journal = self.journal
        if journal is not None:
            # Re-read from disk so resume sees exactly what a new process would.
            journal = SessionJournal.open(journal.root, self.session_id)
            journal.mark_resumed()
        prior = dict(self._prior)
        for key, outcome in zip(self.keys, self._outcomes):
            if outcome is not None and not isinstance(outcome, JobFailure):
                prior[key] = outcome
        return Session(
            self.engine,
            self.jobs,
            session_id=self.session_id,
            journal=journal,
            on_error=self.on_error,
            progress=self.progress,
            processes=self.processes,
            prior=prior,
        )

    # -- reporting -------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """This session's counters (journal-independent, reflects this pass only)."""
        summary = {
            "session_id": self.session_id,
            "total": len(self.jobs),
            "done": self.done,
            "cached": self.cached,
            "executed": self.executed,
            "failed": self.failed,
            "duplicates": self.duplicates,
            "failures": [f.as_dict() for f in self.failures()],
        }
        if self.transport_stats is not None:
            summary["transport"] = self.transport_stats
        return summary
