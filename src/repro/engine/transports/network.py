"""The ``network`` transport: submit jobs to a running ``repro-serve``.

The client half of :mod:`repro.serve`: one batch's specs travel to the
server as pickled ``job`` frames, spool-format result records stream back,
and the session loop sees the same ``(index, outcome | RemoteJobError)``
completions every other transport produces — so caching, journaling and
resume need no network awareness at all.

Three behaviours matter beyond the happy path:

* **Windowing.** The server's ``welcome`` frame advertises its per-client
  admission cap; the transport keeps at most ``min(own cap, server cap)``
  jobs in flight and tops the window up as results land, so a well-behaved
  client never triggers the server's quota rejection.  ``busy`` frames (the
  server-wide backlog filled up) re-queue the job with bounded retries.
* **Failures are completions, not hangs.**  A server that dies mid-batch
  surfaces as one :class:`RemoteJobError` *per outstanding job* — the batch
  finishes, the session journals the failures under ``on_error="isolate"``,
  and ``Session.resume()`` against a restarted server re-runs exactly the
  jobs that never completed.  A server that is not running at submit time
  raises :class:`EngineError` immediately with the command to start one.
* **Bit-identity.**  Result records are the spool's canonical JSON, rebuilt
  through the same :func:`~repro.engine.jobs.result_from_payload` path as
  file-queue completions — network runs are byte-identical to serial runs.

Like ``filequeue``, this transport is never auto-selected: it needs a
server address, so it is an explicit ``config.transport = "network"``
choice (with ``serve_host``/``serve_port`` naming the server).
"""

from __future__ import annotations

import os
import socket
import time
import uuid
from collections import deque
from typing import Any, Sequence

from repro.engine.transports.base import (
    Completion,
    RemoteJobError,
    Transport,
    TransportCapabilities,
    register_transport,
)
from repro.exceptions import EngineError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    FrameBuffer,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Default per-batch in-flight window (clamped by the server's advertisement).
DEFAULT_MAX_INFLIGHT = 32

#: How many times one job may be re-queued after a ``busy`` rejection before
#: it resolves as a failed completion instead of retrying forever.
_MAX_BUSY_RETRIES = 100


class NetworkTransport(Transport):
    """Execute one batch on a remote ``repro-serve`` over a socket."""

    name = "network"
    capabilities = TransportCapabilities(ordered=False, remote=True, shared_registry=False)

    def __init__(
        self,
        host: str,
        port: int,
        client_id: str | None = None,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        connect_timeout: float = 10.0,
        poll_interval: float = 0.05,
    ):
        self.host = host
        self.port = int(port)
        self.client_id = client_id or f"client-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.max_inflight = max(1, int(max_inflight))
        self.connect_timeout = float(connect_timeout)
        self.poll_interval = max(0.005, float(poll_interval))
        self.server_id: str | None = None
        self._sock: socket.socket | None = None
        self._frames = FrameBuffer()
        self._specs: list[Any] = []
        self._unsent: deque[int] = deque()
        self._inflight: dict[int, Any] = {}
        self._busy_retries: dict[int, int] = {}
        #: Per-job backoff deadlines after ``busy`` rejections.  Scoped to the
        #: rejected index on purpose: one slow job backing off must not
        #: head-of-line block sends of every *other* unsent job while the
        #: window has room.
        self._retry_at: dict[int, float] = {}
        self._window = self.max_inflight
        self._submitted = False
        self._cancelled = False
        self._dead: str | None = None  # why the connection is unusable

    # -- submission ------------------------------------------------------------------

    def submit(self, specs: Sequence[Any]) -> int:
        if self._submitted:
            raise EngineError("a transport instance serves exactly one batch")
        self._submitted = True
        self._specs = list(specs)
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError as exc:
            raise EngineError(
                f"cannot reach repro-serve at {self.host}:{self.port}: {exc}; "
                f"start one with: repro-serve --host {self.host} --port {self.port}"
            ) from exc
        try:
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass
        try:
            send_message(self._sock, {
                "type": "hello",
                "client_id": self.client_id,
                "protocol": PROTOCOL_VERSION,
            })
            welcome = recv_message(self._sock)
        except (OSError, ProtocolError) as exc:
            self._close_socket()
            raise EngineError(
                f"handshake with repro-serve at {self.host}:{self.port} failed: {exc}"
            ) from exc
        if welcome.get("type") == "error":
            self._close_socket()
            raise EngineError(
                f"repro-serve at {self.host}:{self.port} rejected the "
                f"connection: {welcome.get('reason')}"
            )
        if welcome.get("type") != "welcome" or welcome.get("protocol") != PROTOCOL_VERSION:
            self._close_socket()
            raise EngineError(
                f"unexpected handshake reply from {self.host}:{self.port}: {welcome!r}"
            )
        self.server_id = welcome.get("server_id")
        advertised = welcome.get("max_inflight")
        if isinstance(advertised, int) and advertised > 0:
            self._window = min(self.max_inflight, advertised)
        self._unsent = deque(range(len(self._specs)))
        self._pump()
        logger.info(
            "network batch: %d job(s) to %s at %s:%d (window %d)",
            len(self._specs), self.server_id, self.host, self.port, self._window,
        )
        return len(self._specs)

    def _pump(self) -> None:
        """Top the in-flight window up from the unsent queue.

        Jobs inside their per-index busy backoff are held back (and re-queued
        behind everything else); every other job keeps flowing — the backoff
        paces the rejected job, not the whole batch.
        """
        now = time.monotonic()
        held: list[int] = []
        while self._unsent and len(self._inflight) < self._window and self._dead is None:
            index = self._unsent.popleft()
            if self._retry_at.get(index, 0.0) > now:
                held.append(index)
                continue
            self._retry_at.pop(index, None)
            try:
                send_message(self._sock, {
                    "type": "job", "index": index, "spec": self._specs[index],
                })
            except (OSError, ProtocolError) as exc:
                self._unsent.appendleft(index)
                self._unsent.extend(held)
                self._mark_dead(f"cannot send job to server: {exc}")
                return
            self._inflight[index] = self._specs[index]
        self._unsent.extend(held)

    # -- harvesting ------------------------------------------------------------------

    def poll(self, timeout: float | None = None) -> list[Completion]:
        if self.outstanding() == 0:
            return []
        if self._dead is not None:
            return self._fail_outstanding()
        deadline = None if timeout is None else time.monotonic() + timeout
        completions: list[Completion] = []
        while True:
            self._drain_frames(completions)
            if self._dead is not None:
                completions.extend(self._fail_outstanding())
                return completions
            if completions or self.outstanding() == 0:
                self._pump()
                return completions
            slice_ = self.poll_interval
            if deadline is not None:
                slice_ = min(slice_, deadline - time.monotonic())
                if slice_ <= 0:
                    return completions
            # Everything in flight may have been busy-rejected; the timeout
            # slice is the retry pacing before the window refills.
            self._pump()
            self._sock.settimeout(max(0.005, slice_))
            try:
                data = self._sock.recv(1 << 20)
            except (socket.timeout, TimeoutError):
                continue
            except OSError as exc:
                self._mark_dead(f"connection error: {exc}")
                continue
            if not data:
                self._mark_dead("server closed the connection")
                continue
            self._frames.feed(data)

    def _drain_frames(self, completions: list[Completion]) -> None:
        while True:
            try:
                message = self._frames.next_message()
            except ProtocolError as exc:
                self._mark_dead(str(exc))
                return
            if message is None:
                return
            kind = message.get("type")
            if kind == "result":
                index = message.get("index")
                if index in self._inflight:
                    del self._inflight[index]
                    self._busy_retries.pop(index, None)
                    self._retry_at.pop(index, None)
                    completions.append(self._completion(index, message.get("record") or {}))
            elif kind == "busy":
                index = message.get("index")
                if index in self._inflight:
                    del self._inflight[index]
                    retries = self._busy_retries.get(index, 0) + 1
                    if retries > _MAX_BUSY_RETRIES:
                        completions.append((
                            index, None,
                            RemoteJobError(
                                "ServerBusy",
                                f"server rejected the job {retries} times: "
                                f"{message.get('reason')}",
                                self.server_id,
                            ),
                        ))
                    else:
                        self._busy_retries[index] = retries
                        self._unsent.append(index)
                        # Linear backoff before re-offering *this* job: a
                        # full server rejects at wire speed, and retrying in
                        # a tight loop would burn the whole retry budget
                        # before any capacity can possibly free up.  Scoped
                        # per index — other jobs are not paced by it.
                        self._retry_at[index] = time.monotonic() + min(
                            1.0, 4 * self.poll_interval * retries
                        )
            elif kind == "error":
                self._mark_dead(f"server reported a protocol error: {message.get('reason')}")
                return

    def _completion(self, index: int, record: dict[str, Any]) -> Completion:
        server = record.get("server_id") or self.server_id
        if record.get("status") == "completed":
            from repro.engine.jobs import result_from_payload

            try:
                outcome = result_from_payload(record["payload"])
            except Exception as exc:
                return (
                    index, None,
                    RemoteJobError(
                        "ServeError",
                        f"cannot rebuild result of job {index}: "
                        f"{type(exc).__name__}: {exc}",
                        server,
                    ),
                )
            # Executed (or served from the *server's* cache) remotely: the
            # session caches and journals it exactly like a pool completion.
            outcome.from_cache = False
            if record.get("stored") or record.get("cached"):
                # The server's own tier already holds the payload; a
                # RemoteTier pointed at the same host:port covers this token
                # (textual address match) and skips its write-through put.
                outcome.stored_in = ("remote", self.host, self.port)
            return (index, outcome, None)
        return (
            index, None,
            RemoteJobError(
                record.get("error_type") or "Error",
                record.get("error_message") or "remote job failed",
                server,
            ),
        )

    def _fail_outstanding(self) -> list[Completion]:
        """Resolve every outstanding job as a failure — never a hang.

        The session journals these as ``JobFailure`` records; resuming the
        session against a restarted server re-runs exactly these jobs.
        """
        reason = self._dead or "connection lost"
        completions = [
            (index, None, RemoteJobError(
                "ServerDisconnected",
                f"repro-serve at {self.host}:{self.port} became unreachable "
                f"with the job outstanding: {reason}",
                self.server_id,
            ))
            for index in sorted(set(self._inflight) | set(self._unsent))
        ]
        if completions:
            logger.warning(
                "network batch: lost repro-serve at %s:%d (%s); failing %d "
                "outstanding job(s) for resume",
                self.host, self.port, reason, len(completions),
            )
        self._inflight.clear()
        self._unsent.clear()
        self._retry_at.clear()
        return completions

    # -- lifecycle -------------------------------------------------------------------

    def outstanding(self) -> int:
        return len(self._inflight) + len(self._unsent)

    def cancel(self) -> None:
        if self._cancelled:
            return
        self._cancelled = True
        if self._sock is not None and self._dead is None:
            try:
                send_message(self._sock, {"type": "bye"})
            except (OSError, ProtocolError):
                pass
        self._close_socket()
        self._inflight.clear()
        self._unsent.clear()
        self._retry_at.clear()

    def _mark_dead(self, reason: str) -> None:
        if self._dead is None:
            self._dead = reason
        self._close_socket()

    def _close_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None


def _build_network(config: Any, processes: int) -> NetworkTransport:
    """Factory for ``transport="network"``: server address from the config."""
    port = getattr(config, "serve_port", 0)
    if not port:
        raise EngineError(
            "transport 'network' needs a server address: set config.serve_port "
            "(and serve_host) to a running repro-serve"
        )
    return NetworkTransport(
        getattr(config, "serve_host", "127.0.0.1") or "127.0.0.1",
        port,
        max_inflight=getattr(config, "serve_max_inflight", DEFAULT_MAX_INFLIGHT),
        poll_interval=getattr(config, "transport_poll_interval", 0.05) or 0.05,
    )


register_transport("network", _build_network)
