"""Distributed file-queue transport: N worker daemons over a shared spool dir.

The registry/job hashing has been transport-agnostic since PR 1 and the
session journal (PR 3) provides checkpointing; what was missing is a way to
run one engine batch across *independent processes* — worker daemons started
by an operator (or spawned locally by the transport) that share nothing with
the submitting engine but a directory.  This module is that coordination
protocol, built entirely on atomic filesystem operations so it needs no
broker, no sockets and no new dependencies:

``spool/``
    ``tasks/<task_id>.task``
        One pending job: a one-line JSON scheduling header (priority,
        capability requirements — readable without unpickling the spec)
        followed by a pickled envelope holding the spec (trusted local
        state, like the session spec pickle).  Written atomically
        (tmp + ``os.replace``), so a worker never sees a torn task.
        Headerless files (pre-scheduler spools) still load, with default
        scheduling metadata.  Workers drain the queue in the fleet's claim
        order (:mod:`repro.engine.scheduler`): priority descending, then
        oldest envelope mtime first — *not* name order, because task names
        start with a random per-batch prefix.
    ``claims/<task_id>.claim``
        A **lease**.  A worker claims a task by ``os.rename``-ing it from
        ``tasks/`` into ``claims/`` — rename is atomic, so exactly one
        claimant wins a race.  The winner immediately touches the claim
        (rename preserves the enqueue-time mtime; the lease clock must start
        at *claim* time, or a task that queued longer than the lease timeout
        would be born stale) and records its worker id in a tiny
        ``<task_id>.owner`` sidecar.
        While executing, the worker's heartbeat thread touches the claim
        file; its mtime *is* the lease.  A claim whose mtime is older than
        the lease timeout belongs to a dead worker and is **reclaimed**:
        renamed back into ``tasks/`` (again atomic, one reclaimer wins), so a
        SIGKILLed worker's in-flight job is replayed by the surviving fleet
        exactly once.  Heartbeat and release are ownership-checked: a worker
        whose lease was reclaimed and re-claimed neither refreshes nor
        unlinks the new owner's claim.
    ``results/<task_id>.json``
        The outcome: the result's cache payload (``to_payload()``) on
        success, or the error type/message on failure — written atomically,
        after which the claim is released.  The submitting transport polls
        this directory, rebuilds results with
        :func:`~repro.engine.jobs.result_from_payload`, and hands them to the
        session loop, which persists them through the existing
        :class:`~repro.engine.cache.ResultCache` and session journal — so
        crash/resume semantics are identical to the local transports.

        With ``PipelineConfig.spool_payloads = False`` the task envelope
        carries a cache-tier spec every worker can reach (see
        :func:`~repro.engine.cache.parse_tier_spec`): the worker writes the
        payload *directly into that tier* and publishes only a tiny
        **completion stub** (``task_id``, ``content_hash``, status, the tier
        spec under ``stored``) through the spool.  ``_harvest`` resolves the
        payload back out of the tier and marks the rebuilt outcome with the
        tier's location token (``outcome.stored_in``) so the session's
        write-through can skip the redundant put.  A worker that cannot
        reach the tier falls back to embedding the full payload — stub mode
        degrades to payload mode, never to a lost result.
    ``log/<worker_id>.jsonl``
        One record per *finished* execution (appended after the result file
        lands).  A job is executed-to-completion exactly once, so CI can
        assert zero duplicates by grepping these logs.
    ``stop``
        Operator sentinel: workers exit between jobs when this file exists.

Exactly-once argument: a task is either in ``tasks/`` (runnable), ``claims/``
(leased to one live worker, or stale and reclaimable), or has a result.
Claim and reclaim are both single-winner renames; a worker re-checks for an
existing result after claiming (covering the crash window between result
write and claim release); and the session journal records each completion
once, when the transport yields it.  A worker crash before the result write
leaves only a stale claim — replayed once; a crash after it leaves a result
and a stale claim — the claim is dropped, the result stands.  Determinism
makes even the pathological double-execution harmless: both executions would
produce identical bytes.

Speculative re-dispatch extends the argument rather than weakening it: when
a claim outlives ``k ×`` the fleet's rolling median job duration
(``PipelineConfig.transport_speculate``), the submitting transport *clones*
the claim's envelope back into ``tasks/`` as a shadow copy of the same task
id — the straggler keeps executing.  Result publication is create-exclusive
(:meth:`FileQueueSpool.publish_result`): the first finisher wins the result
file, the loser's publish is refused and logged as ``superseded`` (never
``executed``-to-completion twice), and its release is already ownership-
checked.  Both copies would produce identical bytes anyway.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import threading
import time
import uuid
from pathlib import Path
from typing import Any, Callable, ClassVar, Sequence

from repro.engine.scheduler import (
    DEFAULT_PRIORITY,
    MIN_SPECULATION_SAMPLES,
    DurationTracker,
    PendingTask,
    capabilities_match,
    desired_fleet_size,
    job_priority,
    job_requirements,
    order_pending,
    speculation_threshold,
)
from repro.engine.transports.base import (
    Completion,
    RemoteJobError,
    Transport,
    TransportCapabilities,
    register_transport,
)
from repro.exceptions import EngineError
from repro.utils.io import utcnow_iso
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Default lease timeout (seconds): a claim untouched this long is considered
#: abandoned by a dead worker and its task is requeued.
DEFAULT_LEASE_TIMEOUT = 30.0

#: Default worker scan interval (seconds) between empty queue polls.
DEFAULT_WORKER_POLL_INTERVAL = 0.2

#: Consecutive unreadable reads of an existing result file before the
#: transport surfaces it as a failure instead of polling forever.
_MAX_BAD_RESULT_READS = 50

#: Seconds without any sign of fleet progress (no completions landing, no
#: live claims) before the polling transport logs a stall warning — and the
#: interval at which it repeats while the stall lasts.
_STALL_WARN_INTERVAL = 15.0

#: Measured spool clock offsets smaller than this are treated as zero: local
#: filesystems stamp with the local clock (any measured difference is write
#: latency / coarse-mtime noise), and an offset this small cannot matter
#: against lease timeouts of tens of seconds.
_CLOCK_OFFSET_IGNORE = 1.0

#: Leads every task file: one JSON line of scheduling metadata (priority,
#: capability requirements) a scanning worker can read without unpickling
#: the spec.  Files without it (pre-scheduler spools) load with defaults.
_TASK_HEADER_MAGIC = b"#qtask/v1 "


class FileQueueSpool:
    """The on-disk queue: every operation is a single atomic rename/replace."""

    def __init__(self, root: str | Path):
        self.root = Path(root).expanduser()
        self.tasks_dir = self.root / "tasks"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"
        self.log_dir = self.root / "log"
        for directory in (self.tasks_dir, self.claims_dir, self.results_dir, self.log_dir):
            directory.mkdir(parents=True, exist_ok=True)
        #: Seconds the spool filesystem's clock runs *ahead of* this process's
        #: ``time.time()``.  On a network filesystem, mtimes are stamped by
        #: the file server; comparing them against an unskewed local clock
        #: can reclaim a whole fleet of live leases at once (file server
        #: behind: every fresh claim is born "stale") or never expire a dead
        #: one (file server ahead).  Measured once at startup via a probe
        #: touch and folded into every staleness comparison.
        self.clock_offset = self._measure_clock_offset()
        #: task_id -> (priority, requires), memoised per spool instance: a
        #: task's scheduling header never changes for a given id (reclaims
        #: rename the same bytes back), so each worker reads it at most once
        #: per task instead of once per poll.  Pruned to the ids currently
        #: pending, so it cannot grow without bound.
        self._meta_cache: dict[str, tuple[int, frozenset[str]]] = {}

    def _measure_clock_offset(self) -> float:
        """One probe write: how far the spool's mtime clock is from ours."""
        probe = self.root / f".clock-probe-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        try:
            before = time.time()
            probe.write_bytes(b"")
            stamped = probe.stat().st_mtime
            after = time.time()
        except OSError:
            return 0.0  # cannot probe: assume synchronised clocks
        finally:
            try:
                probe.unlink()
            except OSError:
                pass
        # The file server stamped the probe somewhere inside [before, after];
        # the midpoint bounds the offset error by half the write latency.
        offset = stamped - (before + after) / 2.0
        if abs(offset) < _CLOCK_OFFSET_IGNORE:
            return 0.0
        logger.warning(
            "spool %s: filesystem clock is %+.1fs from the local clock; "
            "lease staleness will be judged in spool time",
            self.root, offset,
        )
        return offset

    def lease_age(self, mtime: float, now: float | None = None) -> float:
        """Seconds since ``mtime`` on the *spool's* clock (skew-corrected)."""
        now = time.time() if now is None else now
        return (now + self.clock_offset) - mtime

    # -- paths -----------------------------------------------------------------------

    def task_path(self, task_id: str) -> Path:
        return self.tasks_dir / f"{task_id}.task"

    def claim_path(self, task_id: str) -> Path:
        return self.claims_dir / f"{task_id}.claim"

    def owner_path(self, task_id: str) -> Path:
        """Ownership sidecar: just the claimant's worker id, a few bytes —
        so heartbeat/release ownership checks never re-read the spec pickle."""
        return self.claims_dir / f"{task_id}.owner"

    def result_path(self, task_id: str) -> Path:
        return self.results_dir / f"{task_id}.json"

    @property
    def stop_path(self) -> Path:
        return self.root / "stop"

    def stop_requested(self) -> bool:
        """Whether the operator asked the worker fleet to wind down."""
        return self.stop_path.exists()

    # -- enqueue / claim / release ---------------------------------------------------

    def _atomic_write(self, path: Path, data: bytes) -> None:
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:6]}")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    def enqueue(
        self,
        task_id: str,
        spec: Any,
        cache_spec: str | None = None,
        priority: int = DEFAULT_PRIORITY,
        requires: Any = (),
    ) -> None:
        """Publish one task (atomically: a worker never sees a torn pickle).

        ``cache_spec`` (stub-completion mode) names the cache tier the
        claiming worker should write the result payload into instead of
        embedding it in the spool record.  ``priority`` and ``requires``
        are the scheduling header (see :mod:`repro.engine.scheduler`):
        claim precedence and the capability tags a worker must declare to
        claim this task.  Both are orchestration metadata — they never
        enter the spec or its content hash.
        """
        envelope: dict[str, Any] = {"task_id": task_id, "spec": spec}
        if cache_spec:
            envelope["cache"] = str(cache_spec)
        header = json.dumps(
            {"priority": int(priority), "requires": sorted(str(r) for r in requires)},
            sort_keys=True,
        ).encode("utf-8")
        self._atomic_write(
            self.task_path(task_id),
            _TASK_HEADER_MAGIC + header + b"\n" + pickle.dumps(envelope),
        )

    @staticmethod
    def load_envelope(data: bytes) -> Any:
        """The pickled envelope of a task file, scheduling header stripped.

        Accepts headerless files too (pre-scheduler spools, hand-written
        test fixtures): the whole content is then the pickle.
        """
        if data.startswith(_TASK_HEADER_MAGIC):
            data = data.split(b"\n", 1)[1] if b"\n" in data else b""
        return pickle.loads(data)

    def _task_meta(self, task_id: str) -> tuple[int, frozenset[str]]:
        """``(priority, requires)`` from the task's scheduling header.

        Defaults — claimable by anyone at priority 0 — when the header is
        missing (old-format file) or unreadable: a genuinely corrupt task
        still gets claimed and poisoned into a failed result as before,
        instead of being silently unschedulable.
        """
        cached = self._meta_cache.get(task_id)
        if cached is not None:
            return cached
        priority, requires = DEFAULT_PRIORITY, frozenset()
        try:
            with self.task_path(task_id).open("rb") as fh:
                first = fh.readline(65536)
            if first.startswith(_TASK_HEADER_MAGIC) and first.endswith(b"\n"):
                header = json.loads(first[len(_TASK_HEADER_MAGIC):])
                priority = int(header.get("priority", DEFAULT_PRIORITY))
                requires = frozenset(str(r) for r in header.get("requires", ()))
        except (OSError, ValueError, TypeError):
            pass  # claimed under us, or an unreadable header: use defaults
        meta = (priority, requires)
        self._meta_cache[task_id] = meta
        return meta

    def pending(self) -> list[PendingTask]:
        """Claimable tasks in the fleet's claim order.

        Highest priority class first; within a class, oldest envelope mtime
        first (age on the *spool's* clock via :meth:`lease_age` — the
        measured clock offset is a constant shift, so it cannot reorder
        tasks, it only expresses their ages in spool time); task id as the
        deterministic tie-break.  One directory scan plus one memoised
        header read per never-seen task.
        """
        entries: list[PendingTask] = []
        now = time.time()
        seen: set[str] = set()
        try:
            with os.scandir(self.tasks_dir) as it:
                for entry in it:
                    if not entry.name.endswith(".task"):
                        continue
                    task_id = entry.name[: -len(".task")]
                    try:
                        mtime = entry.stat().st_mtime
                    except OSError:
                        continue  # claimed under us mid-scan
                    seen.add(task_id)
                    priority, requires = self._task_meta(task_id)
                    entries.append(PendingTask(
                        task_id=task_id,
                        priority=priority,
                        requires=requires,
                        age=self.lease_age(mtime, now=now),
                    ))
        except OSError:
            return []
        # Keep the memo bounded by what is actually queued; a task that
        # reappears (stale-lease reclaim) re-reads its unchanged header.
        self._meta_cache = {t: m for t, m in self._meta_cache.items() if t in seen}
        return order_pending(entries)

    def pending_count(self) -> int:
        """How many tasks are runnable right now (one cheap directory scan)."""
        try:
            with os.scandir(self.tasks_dir) as it:
                return sum(1 for entry in it if entry.name.endswith(".task"))
        except OSError:
            return 0

    def task_ids(self) -> list[str]:
        """Pending task ids in claim order: priority desc, then oldest first.

        Age-ordered, *not* name-sorted: task ids begin with a random batch
        prefix, so name order across concurrent batches is arbitrary and a
        later batch could starve an earlier one (the pre-scheduler bug).
        """
        return [task.task_id for task in self.pending()]

    def claim_ids(self) -> list[str]:
        return sorted(path.stem for path in self.claims_dir.glob("*.claim"))

    def claim(self, task_id: str, owner: str | None = None) -> Path | None:
        """Lease ``task_id``: atomic rename out of ``tasks/``; ``None`` if lost.

        Exactly one concurrent claimant can win — everyone else's rename
        raises ``FileNotFoundError``.  The rename preserves the task file's
        mtime (the *enqueue* time), so the lease clock is restarted here:
        a task that waited in the queue longer than the lease timeout must
        not be born stale and reclaimed out from under its live claimant.
        With ``owner`` given, the claimant's id is written to an ownership
        sidecar so :meth:`heartbeat` and :meth:`release` can refuse to act on
        a lease that was reclaimed and now belongs to another worker.
        """
        source = self.task_path(task_id)
        target = self.claim_path(task_id)
        try:
            os.rename(source, target)
        except OSError:
            return None
        try:
            os.utime(target)  # one syscall: the born-stale window is minimal
        except OSError:
            # The claim vanished in the rename→touch window: a reclaimer saw
            # the preserved enqueue mtime as stale and requeued the task (or
            # the batch was cancelled).  The lease is lost — processing the
            # dangling path would publish a spurious "cannot load task
            # envelope" failure for a perfectly runnable task.
            return None
        if owner is not None:
            self._atomic_write(self.owner_path(task_id), owner.encode("utf-8"))
        return target

    def claim_owner(self, task_id: str) -> str | None:
        """The worker id in the ownership sidecar, or ``None`` when it is
        missing, unreadable, or the claim was taken without an owner."""
        try:
            return self.owner_path(task_id).read_text(encoding="utf-8") or None
        except (OSError, UnicodeDecodeError):
            return None

    def _owned_by_someone_else(self, task_id: str, owner: str | None) -> bool:
        if owner is None:
            return False
        current = self.claim_owner(task_id)
        return current is not None and current != owner

    def heartbeat(self, task_id: str, owner: str | None = None) -> bool:
        """Refresh the lease (claim mtime); False when the claim vanished or
        (with ``owner`` given) was reclaimed and re-claimed by another worker —
        a zombie claimant must not keep the new owner's lease alive."""
        if self._owned_by_someone_else(task_id, owner):
            return False
        try:
            os.utime(self.claim_path(task_id))
        except OSError:
            return False
        return True

    def release(self, task_id: str, owner: str | None = None) -> bool:
        """Drop the lease after the result is safely on disk.

        With ``owner`` given, the claim is only unlinked while this worker
        still owns it: if the lease was reclaimed mid-job and another worker
        holds it now, unlinking would destroy the *new* owner's live claim
        and invite a third execution.  Returns whether the claim was dropped.
        """
        if self._owned_by_someone_else(task_id, owner):
            return False
        self.claim_path(task_id).unlink(missing_ok=True)
        self.owner_path(task_id).unlink(missing_ok=True)
        return True

    def reclaim_stale(self, lease_timeout: float, now: float | None = None) -> list[str]:
        """Requeue every claim whose lease expired; returns the requeued ids.

        A stale claim with a result is a worker that died *after* finishing —
        the claim is dropped and the result stands.  A stale claim without
        one is a worker that died mid-job — the task goes back to ``tasks/``
        (single-winner rename, so concurrent reclaimers cannot double-queue).
        Staleness is judged in spool time (:meth:`lease_age`): claim mtimes
        are stamped by the spool's filesystem, whose clock may be skewed
        from this process's.
        """
        now = time.time() if now is None else now
        requeued: list[str] = []
        for claim in self.claims_dir.glob("*.claim"):
            try:
                age = self.lease_age(claim.stat().st_mtime, now=now)
            except OSError:
                continue  # released under us
            if age <= lease_timeout:
                continue
            task_id = claim.stem
            if self.result_path(task_id).exists():
                claim.unlink(missing_ok=True)
                self.owner_path(task_id).unlink(missing_ok=True)
                continue
            try:
                os.rename(claim, self.task_path(task_id))
            except OSError:
                continue  # another reclaimer (or the worker finishing) won
            # Drop the dead claimant's ownership sidecar: the next claimant
            # writes its own, and a stale one must not linger if it crashes
            # before that.
            self.owner_path(task_id).unlink(missing_ok=True)
            requeued.append(task_id)
        return requeued

    # -- results and logs ------------------------------------------------------------

    def write_result(self, task_id: str, record: dict[str, Any]) -> None:
        """Publish one outcome atomically (readers see all of it or none).

        Encoded like the result cache's own files (numpy scalars/arrays in a
        payload serialise cleanly), so any kind that caches also transports.
        """
        from repro.utils.io import _NumpyJSONEncoder

        data = json.dumps(record, sort_keys=True, cls=_NumpyJSONEncoder).encode("utf-8")
        self._atomic_write(self.result_path(task_id), data)

    def publish_result(self, task_id: str, record: dict[str, Any]) -> bool:
        """Publish one outcome *exclusively*: the first publisher wins.

        The speculative-execution guarantee: when a straggler and its shadow
        copy both finish, exactly one result file is created (atomic
        ``os.link``, which fails with ``FileExistsError`` on a loser) and the
        loser learns it lost — returns ``False`` — so it can log
        ``superseded`` instead of a second completion.  On filesystems
        without hard links it degrades to a checked atomic replace, which
        with determinism still yields identical bytes either way.
        """
        from repro.utils.io import _NumpyJSONEncoder

        data = json.dumps(record, sort_keys=True, cls=_NumpyJSONEncoder).encode("utf-8")
        target = self.result_path(task_id)
        tmp = target.with_name(f".{target.name}.pub-{os.getpid()}-{uuid.uuid4().hex[:6]}")
        tmp.write_bytes(data)
        try:
            os.link(tmp, target)
        except FileExistsError:
            return False
        except OSError:
            if target.exists():
                return False
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)
        return True

    def read_result(self, task_id: str) -> dict[str, Any] | None:
        """The outcome of ``task_id``, or ``None`` when absent/unreadable."""
        try:
            text = self.result_path(task_id).read_text(encoding="utf-8")
            record = json.loads(text)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def quarantine_result(self, task_id: str) -> Path | None:
        """Move a permanently unreadable result aside as ``<task_id>.json.bad``.

        Called when the submitting transport gives up on a corrupt result
        file: leaving it in ``results/`` would make a worker's
        result-exists check (and ``reclaim_stale``'s result-stands rule)
        treat the task as resolved while the submitter reported it failed.
        The claim and ownership sidecar are dropped with it.  Returns the
        quarantine path, or ``None`` when the rename failed (already
        quarantined by a racing submitter, or the file vanished).
        """
        source = self.result_path(task_id)
        target = source.with_name(source.name + ".bad")
        try:
            os.replace(source, target)
        except OSError:
            return None
        self.claim_path(task_id).unlink(missing_ok=True)
        self.owner_path(task_id).unlink(missing_ok=True)
        return target

    def remove_task(self, task_id: str) -> None:
        self.task_path(task_id).unlink(missing_ok=True)

    def log(self, worker_id: str, record: dict[str, Any]) -> None:
        """Append one execution record to the worker's JSONL log."""
        path = self.log_dir / f"{worker_id}.jsonl"
        with path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()


class _LeaseHeartbeat:
    """Touches a claim file periodically while its job executes."""

    def __init__(
        self,
        spool: FileQueueSpool,
        task_id: str,
        interval: float,
        owner: str | None = None,
    ):
        self._spool = spool
        self._task_id = task_id
        self._owner = owner
        self._interval = max(0.01, float(interval))
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"lease-heartbeat-{task_id[:12]}", daemon=True
        )

    def __enter__(self) -> "_LeaseHeartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if not self._spool.heartbeat(self._task_id, owner=self._owner):
                return  # claim vanished (batch cancelled / lease reclaimed)


class FileQueueWorker:
    """One worker: claim a task, execute it, publish the result, repeat.

    The same loop serves the ``repro-worker`` daemon (via :meth:`serve`) and
    in-process tests (via :meth:`run_once`).  ``execute`` is injectable so
    tests can steer timing and failures; the default resolves each spec's
    registered executor through :func:`repro.engine.core.execute_job`.

    ``tags`` declares this worker's capabilities (``repro-worker --tags``):
    a tagged worker only claims tasks whose declared requirements it covers
    (:func:`repro.engine.scheduler.capabilities_match`) — it skips the rest
    instead of claiming and poisoning them; ``None`` (untagged, the default)
    claims anything.  ``throttle`` sleeps that many seconds before each
    execution — a testing/staging aid for simulating a slow fleet member
    (the lease keeps heartbeating through the sleep).
    """

    def __init__(
        self,
        spool: FileQueueSpool | str | Path,
        worker_id: str | None = None,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        heartbeat_interval: float | None = None,
        poll_interval: float = DEFAULT_WORKER_POLL_INTERVAL,
        execute: Callable[[Any], Any] | None = None,
        tags: Any = None,
        throttle: float = 0.0,
    ):
        self.spool = spool if isinstance(spool, FileQueueSpool) else FileQueueSpool(spool)
        self.worker_id = worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.lease_timeout = float(lease_timeout)
        if self.lease_timeout <= 0:
            raise EngineError(f"lease_timeout must be positive, got {lease_timeout}")
        self.heartbeat_interval = (
            min(1.0, self.lease_timeout / 4.0)
            if heartbeat_interval is None
            else float(heartbeat_interval)
        )
        self.poll_interval = float(poll_interval)
        self._execute = execute
        self.tags = None if tags is None else frozenset(str(t) for t in tags)
        self.throttle = max(0.0, float(throttle))
        self.executed = 0
        self.failed = 0
        #: Executions whose publish lost the first-publisher race to a
        #: speculative twin (or a prior owner): the work ran but the result
        #: on disk is someone else's identical bytes.
        self.superseded = 0
        #: Tasks skipped because their requirements exceed this worker's tags.
        self.skipped = 0
        #: cache-tier spec -> tier, memoised across tasks so a fleet worker
        #: keeps one remote connection instead of a handshake per job.
        self._tiers: dict[str, Any] = {}

    def _run_spec(self, spec: Any) -> Any:
        if self._execute is not None:
            return self._execute(spec)
        from repro.engine.core import execute_job  # late: registers built-in kinds

        return execute_job(spec)

    def _cache_tier(self, cache_spec: str) -> Any:
        tier = self._tiers.get(cache_spec)
        if tier is None:
            from repro.engine.cache import parse_tier_spec

            # No config: local tiers open unbounded — eviction policy belongs
            # to the owning session's cache instance, not to every writer.
            tier = parse_tier_spec(cache_spec)
            self._tiers[cache_spec] = tier
        return tier

    def _store_payload(
        self, envelope: Any, record: dict[str, Any], payload: dict[str, Any]
    ) -> str | None:
        """Write ``payload`` into the envelope's cache tier (stub mode).

        Returns the tier spec on success — the stub record advertises it
        under ``stored`` so the submitter knows where to look — or ``None``
        when no tier is requested or the write failed, in which case the
        caller embeds the payload in the spool record as usual.
        """
        cache_spec = envelope.get("cache") if isinstance(envelope, dict) else None
        key = record.get("spec_hash")
        if not cache_spec or not key:
            return None
        try:
            tier = self._cache_tier(cache_spec)
            if not tier.put(key, payload):
                raise EngineError(f"tier {cache_spec!r} did not acknowledge the write")
        except Exception as exc:
            logger.warning(
                "worker %s: cannot write result %s into cache tier %r (%s: %s); "
                "falling back to a spool payload",
                self.worker_id, key[:16], cache_spec, type(exc).__name__, exc,
            )
            return None
        return cache_spec

    def run_once(self) -> str | None:
        """Claim and fully process one task; returns its id (None when idle).

        Tasks are tried in the fleet's claim order — priority descending,
        then oldest envelope first (:meth:`FileQueueSpool.pending`) — and a
        tagged worker skips, without claiming, any task whose requirements
        it does not cover, leaving it runnable for a capable fleet member.
        """
        for task in self.spool.pending():
            if not capabilities_match(task.requires, self.tags):
                self.skipped += 1
                continue  # not capable: leave it for a worker that is
            task_id = task.task_id
            claim = self.spool.claim(task_id, owner=self.worker_id)
            if claim is None:
                continue  # lost the race to another worker
            if self.spool.read_result(task_id) is not None:
                # A previous owner died between writing the result and
                # releasing the claim, and the task was reclaimed: the result
                # stands, nothing re-executes.
                self.spool.release(task_id, owner=self.worker_id)
                continue
            self._process(task_id, claim)
            return task_id
        return None

    def _process(self, task_id: str, claim: Path) -> None:
        started = time.time()
        record: dict[str, Any] = {"task_id": task_id, "worker_id": self.worker_id}
        spec = None
        try:
            envelope = self.spool.load_envelope(claim.read_bytes())
            spec = envelope["spec"]
        except Exception as exc:
            # A poison task (unpicklable spec, unknown class in this worker's
            # environment) must produce a *result*, or it would bounce between
            # reclamation and claiming forever.
            record.update(
                status="failed",
                error_type=type(exc).__name__,
                error_message=f"cannot load task envelope: {exc}",
            )
        if spec is not None:
            try:
                record["spec_hash"] = getattr(spec, "content_hash", lambda: task_id)()
                record["kind"] = getattr(spec, "kind", "fold")
            except Exception as exc:
                # A spec that unpickles but cannot be fingerprinted (a
                # content_hash that raises in this worker's environment — e.g.
                # an unserialisable config.extra, or version drift in the spec
                # class) is poison too: before this guard, the exception
                # escaped the worker *before any heartbeat*, the lease went
                # stale, the next claimant died the same way, and a spawned
                # fleet burned its whole respawn_limit on one task.
                spec = None
                record.update(
                    status="failed",
                    error_type=type(exc).__name__,
                    error_message=f"cannot fingerprint task spec: {exc}",
                )
        if spec is not None:
            with _LeaseHeartbeat(
                self.spool, task_id, self.heartbeat_interval, owner=self.worker_id
            ):
                try:
                    if self.throttle:
                        time.sleep(self.throttle)
                    outcome = self._run_spec(spec)
                    payload = outcome.to_payload()
                except Exception as exc:
                    record.update(
                        status="failed",
                        error_type=type(exc).__name__,
                        error_message=str(exc),
                    )
                else:
                    stored = self._store_payload(envelope, record, payload)
                    if stored is not None:
                        # Payload-free stub: the bytes live in the cache tier;
                        # the spool carries only identity + status.
                        record.update(
                            status="completed",
                            content_hash=record.get("spec_hash"),
                            stored=stored,
                        )
                    else:
                        record.update(status="completed", payload=payload)
        # Stamped on the *result* record, not just the worker log: the
        # submitting transport feeds these into its rolling-median duration
        # tracker, which is what arms straggler re-dispatch.
        record["duration_s"] = round(time.time() - started, 6)
        try:
            published = self.spool.publish_result(task_id, record)
        except (TypeError, ValueError) as exc:
            # An unserialisable payload must still resolve the task, exactly
            # like a poison task — otherwise the write failure would kill the
            # worker and the reclaimed task would kill the next one too.
            record = {
                "task_id": task_id,
                "worker_id": self.worker_id,
                "spec_hash": record.get("spec_hash"),
                "kind": record.get("kind"),
                "status": "failed",
                "error_type": type(exc).__name__,
                "error_message": f"result payload is not JSON-serialisable: {exc}",
                "duration_s": record.get("duration_s"),
            }
            published = self.spool.publish_result(task_id, record)
        if not published:
            # Lost the first-publisher race: a speculative twin (or a prior
            # owner that died after writing) already resolved this task with
            # identical bytes.  The execution is *discarded*, not counted —
            # a job is executed-to-completion exactly once in the logs.
            record = dict(record, status="superseded")
            self.superseded += 1
        elif record["status"] == "completed":
            self.executed += 1
        else:
            self.failed += 1
        self.spool.log(
            self.worker_id,
            {
                "event": "executed",
                "worker_id": self.worker_id,
                "task_id": task_id,
                "spec_hash": record.get("spec_hash"),
                "kind": record.get("kind"),
                "status": record["status"],
                "duration_s": round(time.time() - started, 6),
                "finished_at": utcnow_iso(),
            },
        )
        # Ownership-checked: if the lease was reclaimed mid-job and another
        # worker holds it now, leave the new owner's claim alone — the result
        # written above still resolves the task for both of us.
        self.spool.release(task_id, owner=self.worker_id)

    def serve(
        self, max_jobs: int | None = None, idle_exit: float | None = None
    ) -> int:
        """Process tasks until told to stop; returns the number processed.

        Stops when the spool's ``stop`` sentinel appears, after ``max_jobs``
        tasks, or after ``idle_exit`` seconds without work.  Between tasks the
        worker also reclaims stale leases, so any member of the fleet can
        recover another member's crash.
        """
        processed = 0
        idle_since = time.monotonic()
        while True:
            if self.spool.stop_requested():
                logger.info("worker %s: stop sentinel found, exiting", self.worker_id)
                break
            if max_jobs is not None and processed >= max_jobs:
                break
            task_id = self.run_once()
            if task_id is not None:
                processed += 1
                idle_since = time.monotonic()
                continue
            if self.spool.reclaim_stale(self.lease_timeout):
                continue
            if idle_exit is not None and time.monotonic() - idle_since > idle_exit:
                logger.info("worker %s: idle for %.1fs, exiting", self.worker_id, idle_exit)
                break
            time.sleep(self.poll_interval)
        return processed


class FileQueueTransport(Transport):
    """Submit one engine batch to the spool and harvest the fleet's results.

    ``workers > 0`` spawns that many local ``repro-worker`` daemons for the
    batch's lifetime (and respawns members that die while work remains, up to
    ``respawn_limit``); ``workers == 0`` relies entirely on externally
    launched daemons watching the same spool.

    ``cache_spec`` switches the batch to payload-free stub completions:
    every task envelope carries the spec of a cache tier the whole fleet can
    reach, workers write payloads straight into it, and harvesting resolves
    them back out (see the module docstring).  Derived from
    ``PipelineConfig.spool_payloads = False`` by the transport factory.

    Scheduling (all from :mod:`repro.engine.scheduler`, all hash-neutral):
    ``default_priority`` is the envelope priority of specs nobody stamped
    with ``set_priority`` (``PipelineConfig.transport_priority``);
    ``speculate`` re-dispatches a shadow copy of any task claimed for longer
    than that multiple of the fleet's rolling median job duration
    (``transport_speculate``; ``None`` disables); ``max_workers`` lets
    ``_maintain`` grow the spawned fleet with queue depth up to that ceiling
    and retire idle extras (``transport_max_workers``; ``None`` pins the
    fleet at ``workers``).
    """

    name: ClassVar[str] = "filequeue"
    capabilities: ClassVar[TransportCapabilities] = TransportCapabilities(
        ordered=False, remote=True, shared_registry=False
    )

    def __init__(
        self,
        spool_dir: str | Path,
        workers: int = 0,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        poll_interval: float = 0.05,
        respawn_limit: int = 5,
        cache_spec: str | None = None,
        default_priority: int = DEFAULT_PRIORITY,
        speculate: float | None = None,
        max_workers: int | None = None,
    ):
        self.spool = FileQueueSpool(spool_dir)
        self.cache_spec = str(cache_spec) if cache_spec else None
        self._stub_tiers: dict[str, Any] = {}
        self.worker_count = max(0, int(workers))
        self.lease_timeout = float(lease_timeout)
        self.poll_interval = max(0.005, float(poll_interval))
        self.respawn_limit = int(respawn_limit)
        self.default_priority = int(default_priority)
        self.speculate = float(speculate) if speculate else None
        self.max_workers = (
            None if max_workers is None else max(self.worker_count, int(max_workers))
        )
        self.batch_id = uuid.uuid4().hex[:8]
        self.workers: list[subprocess.Popen] = []
        self.reclaimed = 0
        self.respawned = 0
        #: Rolling job durations harvested from this batch's result records —
        #: the straggler detector's baseline for "how long jobs take here".
        self.durations = DurationTracker()
        #: Task ids already shadow-dispatched (at most one shadow per task).
        self._speculated: set[str] = set()
        self.speculated = 0
        self.elastic_spawned = 0
        self.retired = 0
        self._outstanding: dict[str, int] = {}
        self._bad_reads: dict[str, int] = {}
        self._log_handles: list[Any] = []
        self._submitted = False
        self._cancelled = False
        self._last_activity = time.monotonic()

    # -- submission ------------------------------------------------------------------

    def submit(self, specs: Sequence[Any]) -> int:
        if self._submitted:
            raise EngineError("a transport serves one batch; submit() was already called")
        if self.spool.stop_requested():
            # Submitting against a stopped spool can never finish: standing
            # workers exit on the sentinel and spawned ones die immediately.
            raise EngineError(
                f"spool {self.spool.root} has a 'stop' sentinel; remove "
                f"{self.spool.stop_path} before submitting new batches"
            )
        self._submitted = True
        for index, spec in enumerate(specs):
            task_id = f"{self.batch_id}-{index:05d}-{spec.content_hash()[:16]}"
            # Scheduling metadata rides the envelope header, never the hash:
            # per-spec priority (Engine.submit(priority=...) / set_priority)
            # over the config default, plus the capability tags a claiming
            # worker must declare.
            self.spool.enqueue(
                task_id, spec,
                cache_spec=self.cache_spec,
                priority=job_priority(spec, self.default_priority),
                requires=job_requirements(spec),
            )
            self._outstanding[task_id] = index
        for _ in range(self.worker_count):
            self._spawn_worker()
        if self._outstanding:
            logger.info(
                "filequeue %s: enqueued %d tasks under %s (%d spawned workers)",
                self.batch_id, len(self._outstanding), self.spool.root, len(self.workers),
            )
            if self.worker_count == 0:
                # An innocuous config (engine_workers=0, no external daemons)
                # would otherwise block in poll() forever with no diagnostics.
                logger.warning(
                    "filequeue %s: no local workers spawned — the batch relies "
                    "entirely on external repro-worker daemons watching %s; "
                    "start one with: repro-worker %s",
                    self.batch_id, self.spool.root, self.spool.root,
                )
        self._last_activity = time.monotonic()
        return len(self._outstanding)

    def _spawn_worker(self, idle_exit: float | None = None) -> None:
        import repro

        worker_id = f"{self.batch_id}-w{len(self.workers)}-{uuid.uuid4().hex[:4]}"
        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        args = [
            sys.executable, "-m", "repro.cli.worker", str(self.spool.root),
            "--worker-id", worker_id,
            "--lease-timeout", str(self.lease_timeout),
            "--poll-interval", str(max(0.02, min(self.poll_interval, 0.5))),
        ]
        if idle_exit is not None:
            # Elastic extras retire themselves when the queue drains; the
            # fleet tender then drops their clean exit without charging the
            # respawn cap.
            args += ["--idle-exit", str(idle_exit)]
        log = (self.spool.log_dir / f"{worker_id}.out").open("ab")
        self._log_handles.append(log)
        proc = subprocess.Popen(args, env=env, stdout=log, stderr=subprocess.STDOUT)
        self.workers.append(proc)

    # -- harvesting ------------------------------------------------------------------

    def poll(self, timeout: float | None = None) -> list[Completion]:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            completions = self._harvest()
            if completions or not self._outstanding:
                return completions
            self._maintain()
            if deadline is not None and time.monotonic() >= deadline:
                return []
            time.sleep(self.poll_interval)

    def _harvest(self) -> list[Completion]:
        completions: list[Completion] = []
        # One directory scan per cycle, not an open()+stat() per outstanding
        # task: a large sweep over a network filesystem (the natural home of
        # a shared spool) would otherwise pay thousands of round-trips per
        # poll interval just to learn that nothing landed yet.
        try:
            with os.scandir(self.spool.results_dir) as entries:
                landed = {e.name[: -len(".json")] for e in entries if e.name.endswith(".json")}
        except OSError:
            landed = set()
        for task_id in list(self._outstanding):
            if task_id not in landed:
                continue
            record = self.spool.read_result(task_id)
            if record is None:
                # Atomic writes make this near-impossible; cap the retries
                # so a hand-corrupted result cannot hang the batch.
                self._bad_reads[task_id] = self._bad_reads.get(task_id, 0) + 1
                if self._bad_reads[task_id] >= _MAX_BAD_RESULT_READS:
                    index = self._outstanding.pop(task_id)
                    # Quarantine the corrupt file (results/<id>.json.bad):
                    # left in place, a worker's result-exists check and the
                    # reclaimer's result-stands rule would treat the task as
                    # resolved forever while we just reported it failed.
                    quarantined = self.spool.quarantine_result(task_id)
                    logger.warning(
                        "filequeue %s: giving up on unreadable result for %s "
                        "after %d reads; quarantined to %s",
                        self.batch_id, task_id, _MAX_BAD_RESULT_READS,
                        quarantined or "<vanished>",
                    )
                    completions.append((
                        index, None,
                        RemoteJobError("SpoolError", f"unreadable result file for {task_id}"),
                    ))
                continue
            index = self._outstanding.pop(task_id)
            # Feed the straggler detector: the rolling median of completed
            # jobs is what "claimed for suspiciously long" is measured
            # against.
            self.durations.add(record.get("duration_s"))
            if task_id in self._speculated:
                # The result landed while a shadow copy sat unclaimed in
                # tasks/ — withdraw it so no worker runs the twin for
                # nothing.  (A *claimed* shadow has no task file; its
                # publisher loses the create-exclusive result write and logs
                # "superseded".)
                self.spool.remove_task(task_id)
            completions.append(self._completion(index, task_id, record))
        if completions:
            self._last_activity = time.monotonic()
        return completions

    def _stub_tier(self, cache_spec: str) -> Any:
        """The tier a stub record points at, memoised; ``None`` on a bad spec."""
        if cache_spec not in self._stub_tiers:
            from repro.engine.cache import parse_tier_spec

            try:
                self._stub_tiers[cache_spec] = parse_tier_spec(cache_spec)
            except Exception as exc:
                logger.warning(
                    "filequeue %s: cannot open cache tier %r from a stub record: %s",
                    self.batch_id, cache_spec, exc,
                )
                self._stub_tiers[cache_spec] = None
        return self._stub_tiers[cache_spec]

    def _completion(self, index: int, task_id: str, record: dict[str, Any]) -> Completion:
        worker = record.get("worker_id")
        if record.get("status") == "completed":
            from repro.engine.jobs import result_from_payload

            payload = record.get("payload")
            tier = None
            if payload is None:
                # Payload-free stub: the worker wrote the payload into a
                # shared cache tier; fetch it from there.
                stored = record.get("stored")
                key = record.get("content_hash") or record.get("spec_hash")
                tier = self._stub_tier(str(stored)) if stored else None
                if tier is not None and key:
                    payload = tier.get(key)
                if payload is None:
                    return (
                        index, None,
                        RemoteJobError(
                            "SpoolError",
                            f"result of {task_id} was announced in cache tier "
                            f"{stored!r} but its payload cannot be fetched "
                            "(tier unreachable or entry evicted); resume the "
                            "session to re-run it",
                            worker,
                        ),
                    )
            try:
                outcome = result_from_payload(payload)
            except Exception as exc:
                return (
                    index, None,
                    RemoteJobError(
                        "SpoolError",
                        f"cannot rebuild result of {task_id}: {type(exc).__name__}: {exc}",
                        worker,
                    ),
                )
            # Executed remotely, not served from the result cache: the session
            # caches and journals it exactly like a pool completion.
            outcome.from_cache = False
            if tier is not None:
                # Where the payload already durably lives, so the session's
                # write-through can skip the tiers that cover it.
                outcome.stored_in = tier.location
            return (index, outcome, None)
        return (
            index, None,
            RemoteJobError(
                record.get("error_type") or "Error",
                record.get("error_message") or "remote job failed",
                worker,
            ),
        )

    def _maintain(self) -> None:
        """Between harvests: recover stale leases, keep the spawned fleet
        alive, and complain loudly instead of hanging silently."""
        self.reclaimed += len(self.spool.reclaim_stale(self.lease_timeout))
        if not self._outstanding:
            return
        if self.spool.stop_requested():
            # Workers (spawned and external alike) exit between jobs on the
            # sentinel, so the rest of the batch can provably never finish —
            # and spawned replacements would exit immediately too, burning
            # respawn_limit on a misleading "workers died" error.
            raise EngineError(
                f"filequeue {self.batch_id}: spool {self.spool.root} was "
                f"stopped by an operator ({self.spool.stop_path} exists) with "
                f"{len(self._outstanding)} tasks outstanding; remove the "
                "sentinel and resume the session to finish the batch"
            )
        self._warn_if_stalled()
        self._speculate_stragglers()
        self._tend_fleet()

    def _speculate_stragglers(self) -> None:
        """Clone tasks claimed for > k× the rolling median into shadow tasks.

        The shadow is a byte-identical copy of the claim placed back into
        ``tasks/`` under the same task id: any idle worker claims it and runs
        the job a second time.  Whichever twin publishes first wins the
        (create-exclusive) result file; the loser logs ``superseded``.  The
        straggler keeps its claim — this *copies*, never renames — so if the
        shadow is the one that crashes, nothing was lost.
        """
        if not self.speculate or len(self.durations) < MIN_SPECULATION_SAMPLES:
            return
        threshold = speculation_threshold(self.speculate, self.durations.median())
        if threshold is None:
            return
        now = time.time()
        for task_id in list(self._outstanding):
            if task_id in self._speculated:
                continue  # one shadow per task: twins, never triplets
            claim = self.spool.claim_path(task_id)
            try:
                # The claim's own mtime is heartbeat-refreshed (it IS the
                # lease), so it cannot measure how long the job has run; the
                # ownership sidecar is written once at claim time and never
                # touched again — its age is the claim's age.
                age = self.spool.lease_age(
                    self.spool.owner_path(task_id).stat().st_mtime, now=now
                )
            except OSError:
                continue  # unclaimed, or released under us
            if age <= threshold:
                continue
            if self.spool.result_path(task_id).exists():
                continue  # finished; the next harvest collects it
            if self.spool.task_path(task_id).exists():
                continue  # already back in tasks/ (reclaimed lease)
            try:
                claim_bytes = claim.read_bytes()
            except OSError:
                continue  # finished/released between the stat and the read
            self.spool._atomic_write(self.spool.task_path(task_id), claim_bytes)
            self._speculated.add(task_id)
            self.speculated += 1
            logger.warning(
                "filequeue %s: task %s claimed for %.1fs (> %.1fs threshold); "
                "re-dispatched a shadow copy",
                self.batch_id, task_id, age, threshold,
            )

    def _tend_fleet(self) -> None:
        """Reap exited workers (respawn crashes, retire clean surplus exits)
        and grow the fleet toward the queue-depth-desired size."""
        if not self.workers and self.max_workers is None:
            return  # external fleet: nothing spawned, nothing to tend
        desired = desired_fleet_size(
            self.spool.pending_count(),
            minimum=self.worker_count,
            maximum=self.max_workers,
        )
        for i, proc in enumerate(self.workers):
            if proc.poll() is None:
                continue
            if proc.returncode == 0 and len(self.workers) > desired:
                # A surplus elastic extra retired itself (idle-exit after the
                # queue drained): planned shrinkage, not a crash — it does
                # not charge the respawn cap.
                del self.workers[i]
                self.retired += 1
                logger.info(
                    "filequeue %s: retired a surplus worker (%d left, %d desired)",
                    self.batch_id, len(self.workers), desired,
                )
                return  # list mutated; the next _maintain pass checks the rest
            self.respawned += 1
            if self.respawned > self.respawn_limit:
                raise EngineError(
                    f"filequeue {self.batch_id}: spawned workers died "
                    f"{self.respawned} times (exit code {proc.returncode}); "
                    f"see {self.spool.log_dir} for worker output"
                )
            logger.warning(
                "filequeue %s: worker exited with code %s while %d tasks remain; respawning",
                self.batch_id, proc.returncode, len(self._outstanding),
            )
            del self.workers[i]
            self._spawn_worker()
            return  # list mutated; the next _maintain pass checks the rest
        if len(self.workers) < desired:
            # Grow by at most one per pass: queue depth is re-measured each
            # cycle, so a burst that drains quickly never over-spawns.
            self._spawn_worker(idle_exit=max(2.0, 10 * self.poll_interval))
            self.elastic_spawned += 1
            logger.info(
                "filequeue %s: queue depth grew the fleet to %d workers (%d desired)",
                self.batch_id, len(self.workers), desired,
            )

    def _warn_if_stalled(self) -> None:
        """Log (periodically) when nothing is completing *and* nothing is
        claimed — the signature of a fleet that is not there at all."""
        now = time.monotonic()
        if now - self._last_activity < _STALL_WARN_INTERVAL:
            return
        if self.spool.claim_ids():
            self._last_activity = now  # a worker is mid-job: that is progress
            return
        logger.warning(
            "filequeue %s: no progress for %.0fs — %d tasks pending, no live "
            "claims, %d spawned workers; are repro-worker daemons watching %s?",
            self.batch_id, now - self._last_activity, len(self._outstanding),
            len(self.workers), self.spool.root,
        )
        self._last_activity = now  # re-arm: repeat the warning, don't spam it

    def outstanding(self) -> int:
        return len(self._outstanding)

    # -- teardown --------------------------------------------------------------------

    def cancel(self) -> None:
        """Withdraw unfinished tasks and stop the workers this batch spawned.

        Results already on disk stay (they are an audit trail, and identical
        bytes would be regenerated anyway); external daemons keep serving
        other batches.
        """
        if self._cancelled:
            return
        self._cancelled = True
        for task_id in self._outstanding:
            self.spool.remove_task(task_id)
            self.spool.release(task_id)
        self._outstanding.clear()
        for task_id in self._speculated:
            # Shadow copies of withdrawn tasks must not outlive the batch.
            self.spool.remove_task(task_id)
        self._speculated.clear()
        for proc in self.workers:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.workers:
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        for handle in self._log_handles:
            try:
                handle.close()
            except OSError:
                pass
        self._log_handles.clear()

    def stats(self) -> dict[str, Any]:
        """Batch-level counters (for logs and the transport test battery)."""
        return {
            "batch_id": self.batch_id,
            "outstanding": len(self._outstanding),
            "reclaimed": self.reclaimed,
            "respawned": self.respawned,
            "spawned_workers": len(self.workers),
            "speculated": self.speculated,
            "elastic_spawned": self.elastic_spawned,
            "retired": self.retired,
        }


def _build_filequeue(config: Any, processes: int) -> FileQueueTransport:
    spool_dir = getattr(config, "spool_dir", None)
    if not spool_dir:
        raise EngineError(
            "transport 'filequeue' needs a spool directory: set config.spool_dir"
        )
    workers = getattr(config, "transport_workers", None)
    if workers is None:
        workers = max(0, int(processes))
    cache_spec = None
    if not getattr(config, "spool_payloads", True):
        # Stub completions need one tier every worker can reach.  Preference
        # order: the explicit shared endpoint, then the outermost (most
        # shared) configured tier, then the engine's own cache directory.
        remote = getattr(config, "cache_remote", None)
        tiers = getattr(config, "cache_tiers", None)
        if remote:
            cache_spec = str(remote)
            if not cache_spec.startswith("remote:"):
                cache_spec = f"remote:{cache_spec}"
        elif tiers:
            cache_spec = str(tuple(tiers)[-1])
        elif getattr(config, "cache_dir", None):
            cache_spec = str(config.cache_dir)
        else:
            raise EngineError(
                "spool_payloads=False needs a cache tier every worker can "
                "reach: set config.cache_remote, cache_tiers or cache_dir"
            )
    return FileQueueTransport(
        spool_dir,
        workers=workers,
        lease_timeout=getattr(config, "transport_lease_timeout", DEFAULT_LEASE_TIMEOUT),
        poll_interval=getattr(config, "transport_poll_interval", 0.05),
        cache_spec=cache_spec,
        default_priority=getattr(config, "transport_priority", DEFAULT_PRIORITY),
        speculate=getattr(config, "transport_speculate", None),
        max_workers=getattr(config, "transport_max_workers", None),
    )


register_transport("filequeue", _build_filequeue)
