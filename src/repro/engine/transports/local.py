"""Local transports: in-process serial execution and the process pool.

``SerialTransport`` runs each job in the calling process — the reference
execution every other transport must reproduce bit-identically, and the one
unit tests default to.  ``PoolTransport`` fans the batch out over a
:class:`concurrent.futures.ProcessPoolExecutor` (one future per spec, no
chunking, completions in completion order), replicating the parent's
backend/executor registries into every worker the way the PR 3 session loop
did — spawn-based start methods do not inherit parent module state, and
unpicklable registry entries are dropped with a one-time warning rather than
failing the fan-out.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from typing import Any, ClassVar, Sequence

from repro.engine.transports.base import (
    Completion,
    Transport,
    TransportCapabilities,
    register_transport,
)
from repro.exceptions import EngineError
from repro.utils.parallel import serial_stream


def _execute(spec: Any) -> Any:
    # Late import: transports are imported by repro.engine.core at module
    # load, so the executor dispatch must resolve lazily.
    from repro.engine.core import execute_job

    return execute_job(spec)


class SerialTransport(Transport):
    """Execute jobs one at a time in the calling process (submission order)."""

    name: ClassVar[str] = "serial"
    capabilities: ClassVar[TransportCapabilities] = TransportCapabilities(
        ordered=True, remote=False, shared_registry=True
    )

    def __init__(self) -> None:
        self._stream: Any = None
        self._remaining = 0
        self._submitted = False

    def submit(self, specs: Sequence[Any]) -> int:
        if self._submitted:
            raise EngineError("a transport serves one batch; submit() was already called")
        self._submitted = True
        specs = list(specs)
        self._remaining = len(specs)
        self._stream = serial_stream(_execute, specs)
        return self._remaining

    def poll(self, timeout: float | None = None) -> list[Completion]:
        """Execute the next queued job and return its completion."""
        if self._remaining <= 0:
            return []
        try:
            completion = next(self._stream)
        except StopIteration:
            self._remaining = 0
            return []
        self._remaining -= 1
        return [completion]

    def cancel(self) -> None:
        self._remaining = 0
        if self._stream is not None:
            self._stream.close()

    def outstanding(self) -> int:
        return self._remaining


class PoolTransport(Transport):
    """Fan the batch out over a process pool; completions in completion order."""

    name: ClassVar[str] = "pool"
    capabilities: ClassVar[TransportCapabilities] = TransportCapabilities(
        ordered=False, remote=False, shared_registry=True
    )

    def __init__(self, processes: int):
        self.processes = max(1, int(processes))
        self._pool: ProcessPoolExecutor | None = None
        self._futures: dict[Future, int] = {}
        self._serial: SerialTransport | None = None
        self._submitted = False

    def submit(self, specs: Sequence[Any]) -> int:
        if self._submitted:
            raise EngineError("a transport serves one batch; submit() was already called")
        self._submitted = True
        specs = list(specs)
        if len(specs) <= 1:
            # A single-job batch (e.g. a resume with one never-completed job)
            # gains nothing from a pool: run it in-process, where even
            # unpicklable runtime registrations stay visible.
            self._serial = SerialTransport()
            return self._serial.submit(specs)
        from repro.engine.core import _picklable
        from repro.engine.registry import (
            executor_snapshot,
            registry_snapshot,
            restore_registries,
        )

        self._pool = ProcessPoolExecutor(
            max_workers=self.processes,
            initializer=restore_registries,
            initargs=(
                _picklable(registry_snapshot(), "backend"),
                _picklable(executor_snapshot(), "executor"),
            ),
        )
        for index, spec in enumerate(specs):
            self._futures[self._pool.submit(_execute, spec)] = index
        return len(self._futures)

    def poll(self, timeout: float | None = None) -> list[Completion]:
        if self._serial is not None:
            return self._serial.poll(timeout)
        if not self._futures:
            return []
        done, _ = wait(self._futures, timeout=timeout, return_when=FIRST_COMPLETED)
        completions: list[Completion] = []
        for future in done:
            index = self._futures.pop(future)
            exc = future.exception()
            if exc is not None:
                completions.append((index, None, exc))
            else:
                completions.append((index, future.result(), None))
        return completions

    def cancel(self) -> None:
        if self._serial is not None:
            self._serial.cancel()
        self._futures.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def outstanding(self) -> int:
        if self._serial is not None:
            return self._serial.outstanding()
        return len(self._futures)


def _build_serial(config: Any, processes: int) -> SerialTransport:
    return SerialTransport()


def _build_pool(config: Any, processes: int) -> PoolTransport:
    return PoolTransport(processes=processes)


register_transport("serial", _build_serial)
register_transport("pool", _build_pool)
