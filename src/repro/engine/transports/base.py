"""The executor transport protocol: *where* jobs run, behind one interface.

The engine's session loop needs exactly three things from an execution
substrate: hand it a batch of job specs (:meth:`Transport.submit`), harvest
``(index, result, exception)`` completions as they land
(:meth:`Transport.poll`), and abandon whatever is still outstanding when the
consumer walks away (:meth:`Transport.cancel`).  Everything else about a
transport — in-process calls, a process pool, a fleet of independent worker
daemons coordinating over a spool directory — is an implementation detail the
session never sees, which is what keeps the PR 3 determinism contract
transport-agnostic: a job's result depends only on its spec, so serial, pool
and distributed runs are bit-identical.

Transports are *configuration*, not code: they register by name
(:func:`register_transport`) and the engine resolves
``PipelineConfig.transport`` through :func:`make_transport`, exactly like the
backend and executor registries.  :attr:`Transport.capabilities` advertises
what a transport can promise (ordered completions, remote workers, a shared
in-process registry) so callers can warn or adapt instead of guessing.

A transport instance serves **one batch**: ``submit`` may be called once,
``poll`` drains it incrementally, and ``cancel`` (idempotent) releases its
resources.  :meth:`Transport.stream` packages that lifecycle as the generator
the session consumes — cancellation on early exit comes for free from the
``finally`` clause.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, ClassVar, Iterator, Sequence

from repro.exceptions import EngineError

#: One completion: (submission index, result or None, exception or None).
Completion = tuple[int, Any | None, BaseException | None]


@dataclass(frozen=True)
class TransportCapabilities:
    """What a transport can promise to its consumer.

    Attributes
    ----------
    ordered:
        Completions arrive in submission order (serial execution does;
        anything concurrent does not).
    remote:
        Jobs may execute outside this process tree — in daemons that started
        before this process and know nothing about it.  Remote transports
        cannot see executors or backends registered at runtime in this
        process unless the workers preloaded the registering module.
    shared_registry:
        Workers observe this process's live backend/executor registries
        (in-process execution) or a pickled snapshot of them (process pool).
        ``False`` for remote transports.
    """

    ordered: bool = False
    remote: bool = False
    shared_registry: bool = True


class Transport(abc.ABC):
    """One batch's execution substrate: submit, poll completions, cancel.

    Concrete transports implement the three primitives; :meth:`stream` is the
    session-facing generator built on top of them.  ``poll`` may block up to
    ``timeout`` seconds waiting for the first completion, returning however
    many have landed (possibly none on timeout); it must never return a
    completion twice, and must raise :class:`EngineError` if the batch can
    provably never finish (e.g. every worker of a spawned fleet is gone and
    respawning is exhausted).
    """

    #: Registry name of this transport.
    name: ClassVar[str] = "abstract"
    capabilities: ClassVar[TransportCapabilities] = TransportCapabilities()

    @abc.abstractmethod
    def submit(self, specs: Sequence[Any]) -> int:
        """Enqueue ``specs`` for execution; returns the number enqueued.

        May be called at most once per transport instance.
        """

    @abc.abstractmethod
    def poll(self, timeout: float | None = None) -> list[Completion]:
        """Harvest completions, waiting up to ``timeout`` seconds for one."""

    @abc.abstractmethod
    def cancel(self) -> None:
        """Abandon outstanding work and release resources (idempotent)."""

    @abc.abstractmethod
    def outstanding(self) -> int:
        """How many submitted specs have not yet been returned by ``poll``."""

    def stream(self, specs: Sequence[Any]) -> Iterator[Completion]:
        """Submit ``specs`` and yield every completion, cancelling on exit.

        The generator the session loop consumes: closing it early (the
        consumer broke out of its ``for`` loop) lands in the ``finally``
        clause and abandons whatever has not completed.
        """
        try:
            # submit() inside the try: a mid-enqueue failure (disk full on a
            # shared spool at task 500 of 1000) must still reach cancel(), or
            # the partially enqueued tasks are orphaned for external workers
            # to execute with nobody harvesting the results.
            self.submit(specs)
            while self.outstanding() > 0:
                for completion in self.poll():
                    yield completion
        finally:
            self.cancel()


class RemoteJobError(EngineError):
    """A job failed on a remote worker; the original exception type is gone.

    Remote workers report failures as data (type name + message), not as
    picklable exception objects.  This wrapper carries both so the session
    journal and :class:`~repro.engine.session.JobFailure` records preserve
    the *original* ``error_type``/``error_message`` instead of reporting
    every remote failure as a ``RemoteJobError``.
    """

    def __init__(self, error_type: str, error_message: str, worker: str | None = None):
        where = f" on worker {worker!r}" if worker else ""
        super().__init__(f"{error_type}: {error_message} (remote execution{where})")
        self.error_type = error_type
        self.error_message = error_message
        self.worker = worker


#: A transport factory: (config, processes) in, a fresh one-batch transport out.
TransportFactory = Callable[[Any, int], Transport]

_TRANSPORTS: dict[str, TransportFactory] = {}


def register_transport(name: str, factory: TransportFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name`` (lower-cased).

    Factories receive ``(config, processes)`` and must return a *fresh*
    transport per call — transports are one-batch objects.
    """
    key = name.strip().lower()
    if not key:
        raise EngineError("transport name must be a non-empty string")
    if key in _TRANSPORTS and not overwrite:
        raise EngineError(f"transport {key!r} is already registered")
    _TRANSPORTS[key] = factory


def transport_names() -> tuple[str, ...]:
    """The transport names currently registered, sorted alphabetically."""
    return tuple(sorted(_TRANSPORTS))


def make_transport(name: str | None, config: Any, processes: int = 0) -> Transport:
    """Build a fresh transport for one batch.

    ``name`` of ``None`` or ``"auto"`` resolves from the worker count:
    ``processes <= 1`` executes serially, anything larger uses the process
    pool.  The distributed file-queue transport is never auto-selected — it
    needs a spool directory and (usually) externally launched workers, so it
    is an explicit ``config.transport = "filequeue"`` choice.
    """
    key = (name or getattr(config, "transport", None) or "auto").strip().lower()
    if key == "auto":
        key = "pool" if processes > 1 else "serial"
    factory = _TRANSPORTS.get(key)
    if factory is None:
        raise EngineError(
            f"unknown transport {key!r}; registered transports: {', '.join(transport_names())}"
        )
    return factory(config, processes)
