"""Pluggable executor transports: *where* engine jobs run.

The session loop streams ``(spec, outcome)`` pairs identically over any
registered transport; the transport only decides where the executors run:

* ``serial`` — in the calling process, one job at a time (the reference);
* ``pool`` — a local process pool, completions in completion order;
* ``filequeue`` — a fleet of independent ``repro-worker`` daemons
  coordinating over a shared spool directory with atomic-rename leases,
  heartbeats and stale-lease reclamation (see
  :mod:`repro.engine.transports.filequeue`);
* ``network`` — a running ``repro-serve`` daemon reached over a socket (no
  shared filesystem), which multiplexes many client sessions onto one
  shared worker pool and result cache (see
  :mod:`repro.engine.transports.network` and :mod:`repro.serve`).

Select one with ``PipelineConfig.transport`` (default ``"auto"``: serial for
``processes <= 1``, pool otherwise).  Determinism is transport-independent —
a job's result depends only on its spec, so every transport produces
bit-identical results.
"""

from repro.engine.transports.base import (
    Completion,
    RemoteJobError,
    Transport,
    TransportCapabilities,
    make_transport,
    register_transport,
    transport_names,
)
from repro.engine.transports.filequeue import (
    DEFAULT_LEASE_TIMEOUT,
    FileQueueSpool,
    FileQueueTransport,
    FileQueueWorker,
)
from repro.engine.transports.local import PoolTransport, SerialTransport
from repro.engine.transports.network import NetworkTransport

__all__ = [
    "DEFAULT_LEASE_TIMEOUT",
    "Completion",
    "FileQueueSpool",
    "FileQueueTransport",
    "FileQueueWorker",
    "NetworkTransport",
    "PoolTransport",
    "RemoteJobError",
    "SerialTransport",
    "Transport",
    "TransportCapabilities",
    "make_transport",
    "register_transport",
    "transport_names",
]
