"""Fleet scheduling policy: priorities, capability tags, stragglers, sizing.

The file-queue fleet (:mod:`repro.engine.transports.filequeue`) coordinates
entirely through atomic filesystem operations; *which* task a worker claims
next, *whether* it may claim it at all, and *when* the submitting transport
should clone a straggling task or grow the fleet are pure policy decisions.
This module holds that policy so the spool, the worker loop and the
transport all schedule by the same rules:

**Priority classes.**  Every task envelope carries an integer ``priority``
(higher runs first; default 0).  It is orchestration metadata — stamped onto
a spec with :func:`set_priority` or defaulted from
``PipelineConfig.transport_priority`` — and **never enters any job hash**:
two submissions of the same spec at different priorities share one content
address, one cache entry, one result.

**Claim order.**  Workers scan the pending tasks once per poll and claim in
``(priority descending, envelope age descending, task id)`` order: the
highest priority class drains first, and within a class the oldest enqueue
wins — age judged by envelope mtime on the *spool's* clock (the transport's
measured clock offset is a constant shift, so it cannot reorder tasks; it
only expresses ages in spool time, like lease staleness).  Task *names* are
``{random batch id}-{index}-{hash}`` and play no part beyond deterministic
tie-breaking: name order across concurrent batches is random-prefix order,
which is exactly the starvation bug this module replaced.

**Capability tags.**  A worker started with ``repro-worker --tags ...``
declares the capabilities it has; a job declares the capabilities it needs
(:func:`job_requirements`: its kind, plus the backend name for folds pinned
to a concrete backend).  A tagged worker claims a task only when the task's
requirements are a subset of its tags — it *skips* tasks it cannot serve
instead of claiming and poisoning them.  An untagged worker (the default)
declares no restriction and claims anything.

**Stragglers.**  A task claimed for longer than ``k ×`` the fleet's rolling
median job duration (:class:`DurationTracker`) is speculatively re-dispatched
as a shadow copy of the same task id.  Safe because results are
content-addressed and idempotent: the first publisher wins the result file
(:meth:`FileQueueSpool.publish_result` is create-exclusive) and the loser's
copy is discarded by the existing claim-ownership machinery.

**Elastic sizing.**  :func:`desired_fleet_size` maps queue depth to a worker
count between the configured floor and ``transport_max_workers``; the
transport spawns extras (with an idle-exit so they retire themselves when
the queue drains) and retires clean exits without charging the respawn cap.

None of this affects results: scheduling decides *where and when* a job
runs, never *what it computes* — the determinism harness asserts scheduler
on == scheduler off and heterogeneous fleet == homogeneous fleet,
bit-identical.
"""

from __future__ import annotations

import statistics
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

#: Priority of a spec nobody stamped and a config nobody tuned.
DEFAULT_PRIORITY = 0

#: Completed-job samples the fleet must have seen before straggler detection
#: trusts its rolling median at all.
MIN_SPECULATION_SAMPLES = 3

#: Never speculate on a claim younger than this (seconds), whatever the
#: median says — sub-second medians would otherwise shadow every task.
MIN_SPECULATION_AGE = 1.0


# -- per-spec priority ----------------------------------------------------------------


def set_priority(spec: Any, priority: int) -> Any:
    """Stamp a scheduling priority onto ``spec`` (higher runs first).

    Stored outside the spec's dataclass fields, so it is invisible to
    equality and — crucially — to ``content_hash()``: priority is pure
    orchestration and must never split the cache by urgency.  Returns the
    spec for chaining.
    """
    object.__setattr__(spec, "_priority", int(priority))
    return spec


def job_priority(spec: Any, default: int = DEFAULT_PRIORITY) -> int:
    """The priority stamped on ``spec``, else ``default``."""
    priority = getattr(spec, "_priority", None)
    return int(default) if priority is None else int(priority)


# -- capability tags ------------------------------------------------------------------


def require_tags(spec: Any, *tags: str) -> Any:
    """Add explicit capability requirements to ``spec`` (hash-neutral).

    Merged into :func:`job_requirements` on top of the derived ones — for
    jobs that need a capability the engine cannot infer (a licensed tool, a
    GPU, a dataset only some machines hold).
    """
    existing = frozenset(getattr(spec, "_requires", ()) or ())
    object.__setattr__(spec, "_requires", existing | {str(t) for t in tags})
    return spec


def job_requirements(spec: Any) -> frozenset[str]:
    """The capability tags a worker must declare to claim this job.

    Always includes the job's kind (a worker fleet may be partitioned by
    workload: ``--tags dock`` machines with the docking stack, fold machines
    without it).  A fold pinned to a concrete backend additionally requires
    that backend's name, so an MPS-incapable worker never claims — and never
    poisons — an MPS fold; ``backend="auto"`` adds nothing (resolution
    happens on the worker and every full worker serves it).  Explicit
    :func:`require_tags` requirements are merged in.
    """
    requires = set(getattr(spec, "_requires", ()) or ())
    kind = getattr(spec, "kind", None)
    if kind:
        requires.add(str(kind))
    if kind == "fold":
        backend = getattr(getattr(spec, "config", None), "backend", None)
        if backend and backend != "auto":
            requires.add(str(backend))
    return frozenset(requires)


def capabilities_match(requires: Iterable[str], tags: Iterable[str] | None) -> bool:
    """Whether a worker with ``tags`` may claim a task needing ``requires``.

    ``tags=None`` is an *untagged* worker: no declared restriction, claims
    anything (the pre-scheduler default, and the common case).  A tagged
    worker claims only tasks whose requirements it covers.
    """
    if tags is None:
        return True
    return frozenset(requires) <= frozenset(tags)


def parse_tags(text: str | None) -> frozenset[str] | None:
    """``"mps, statevector"`` → ``{"mps", "statevector"}``; empty → ``None``.

    The ``repro-worker --tags`` parser: ``None`` / blank input means
    untagged (unrestricted), matching :func:`capabilities_match`.
    """
    if text is None:
        return None
    tags = frozenset(part.strip() for part in text.split(",") if part.strip())
    return tags or None


# -- claim order ----------------------------------------------------------------------


@dataclass(frozen=True)
class PendingTask:
    """One claimable task as the scheduler sees it: identity plus metadata."""

    task_id: str
    priority: int = DEFAULT_PRIORITY
    requires: frozenset[str] = field(default_factory=frozenset)
    #: Envelope age in seconds on the spool's clock (skew-corrected).
    age: float = 0.0


def order_pending(entries: Iterable[PendingTask]) -> list[PendingTask]:
    """The fleet's claim order: priority desc, oldest first, id tie-break.

    Age (not name) carries the FIFO guarantee: task names start with a
    random per-batch prefix, so name order across concurrent batches is
    arbitrary and can starve an earlier batch behind a later one.
    """
    return sorted(entries, key=lambda t: (-t.priority, -t.age, t.task_id))


# -- straggler detection --------------------------------------------------------------


class DurationTracker:
    """Rolling window of completed-job durations for straggler detection."""

    def __init__(self, window: int = 64):
        self._durations: deque[float] = deque(maxlen=max(1, int(window)))

    def add(self, seconds: Any) -> None:
        """Record one completion; silently ignores junk (remote records)."""
        try:
            value = float(seconds)
        except (TypeError, ValueError):
            return
        if value >= 0.0:
            self._durations.append(value)

    def __len__(self) -> int:
        return len(self._durations)

    def median(self) -> float | None:
        """The rolling median duration, or ``None`` with no samples yet."""
        if not self._durations:
            return None
        return float(statistics.median(self._durations))


def speculation_threshold(
    multiplier: float | None,
    median: float | None,
    floor: float = MIN_SPECULATION_AGE,
) -> float | None:
    """Claim age (seconds) beyond which a task counts as a straggler.

    ``None`` disables speculation: no multiplier configured, a non-positive
    one, or no median yet (the fleet has not completed enough jobs to know
    what "slow" means).
    """
    if not multiplier or multiplier <= 0 or median is None:
        return None
    return max(float(floor), float(multiplier) * median)


# -- elastic fleet sizing -------------------------------------------------------------


def desired_fleet_size(pending: int, minimum: int, maximum: int | None) -> int:
    """Queue-depth-driven worker count, clamped to ``[minimum, maximum]``.

    One worker per runnable task, never below the configured floor and never
    above the elastic ceiling; ``maximum=None`` (elastic sizing off) pins the
    fleet at the floor.
    """
    minimum = max(0, int(minimum))
    if maximum is None:
        return minimum
    return max(minimum, min(int(maximum), max(0, int(pending))))
