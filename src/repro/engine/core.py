"""The job engine: scatter typed jobs, gather results, reuse cached work.

This is the Sec. 5.2 batch architecture as a subsystem: every expensive unit
of work — a quantum fold, an AF2/AF3-like baseline fold, a 20-seed docking
search — is a typed spec (:mod:`repro.engine.jobs`) streamed through one
:class:`Engine`.  The engine

* resolves each spec's executor by kind through the registry
  (:func:`~repro.engine.registry.executor_for`) and the quantum execution
  backend by name (:func:`~repro.engine.registry.make_backend`),
* deduplicates identical jobs within a batch (kinds cannot collide: the
  kind's schema version leads every content hash),
* serves previously computed jobs from the persistent result cache,
* fans the remaining jobs out over the configured executor transport
  (:mod:`repro.engine.transports` — in-process serial, a local process pool,
  or a distributed ``repro-worker`` file-queue fleet), and
* gathers results in submission order.

Execution is *streaming*: :meth:`Engine.submit` opens a
:class:`~repro.engine.session.Session` that yields each ``(spec, outcome)``
pair as it completes, journals per-job status for crash/interrupt resume, and
isolates failing jobs as :class:`~repro.engine.session.JobFailure` records.
:meth:`Engine.run` is the blocking wrapper over the same loop.

Determinism: every job derives its seeds from the master seed plus its own
identity (``utils/rng.child_seed`` — the VQE seed from the fragment identity,
each docking run's seed from the receptor identity and run index), never from
worker assignment, so results are bit-identical for any worker count and any
cache state.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.config import PipelineConfig
from repro.engine.cache import resolve_cache
from repro.engine.jobs import (
    BaselineFoldSpec,
    DockJobResult,
    DockSpec,
    JobResult,
    JobSpec,
)
from repro.engine.registry import executor_for, register_executor
from repro.engine.session import Session, SessionJournal, new_session_id
from repro.engine.transports import Transport, make_transport
from repro.exceptions import EngineError
from repro.folding.predictor import FoldingPrediction, fold_fragment
from repro.lattice.hamiltonian import HamiltonianWeights
from repro.utils.logging import get_logger

logger = get_logger(__name__)


#: Registry entries already warned about as unpicklable — one warning per
#: ``(registry, name)`` for the process lifetime, not one per fan-out.
_PICKLE_WARNED: set[tuple[str, str]] = set()


def _picklable(mapping: dict, what: str) -> dict:
    """The registry entries that can ship to worker processes.

    Unpicklable entries (lambdas, closures) are dropped with a warning rather
    than failing the whole fan-out: they only matter if a job actually selects
    them, in which case the worker raises a clear lookup error.  The warning
    fires once per entry name, not on every fan-out.
    """
    out = {}
    for name, value in mapping.items():
        try:
            pickle.dumps(value)
        except Exception:
            if (what, name) not in _PICKLE_WARNED:
                _PICKLE_WARNED.add((what, name))
                logger.warning(
                    "%s %r is unpicklable; it will be unavailable in engine worker processes",
                    what, name,
                )
            continue
        out[name] = value
    return out


def execute_fold_job(spec: JobSpec) -> JobResult:
    """Run one quantum fold job to completion (the ``fold`` executor)."""
    prediction, coords = fold_fragment(
        spec.pdb_id,
        spec.sequence,
        config=spec.config,
        weights=spec.weights,
        register=spec.register,
        start_seq_id=spec.start_seq_id,
    )
    return JobResult(
        spec_hash=spec.content_hash(),
        pdb_id=prediction.pdb_id,
        sequence=prediction.sequence,
        prediction=prediction,
        conformation_coords=np.asarray(coords, dtype=float),
        start_seq_id=spec.start_seq_id,
    )


def execute_baseline_job(spec: BaselineFoldSpec) -> JobResult:
    """Run one baseline fold job (the ``baseline_fold`` executor)."""
    from repro.folding.baselines import baseline_fold_fragment

    prediction, coords = baseline_fold_fragment(
        spec.method,
        spec.pdb_id,
        spec.sequence,
        config=spec.config,
        start_seq_id=spec.start_seq_id,
    )
    return JobResult(
        spec_hash=spec.content_hash(),
        pdb_id=prediction.pdb_id,
        sequence=prediction.sequence,
        prediction=prediction,
        conformation_coords=np.asarray(coords, dtype=float),
        start_seq_id=spec.start_seq_id,
        kind="baseline_fold",
    )


def execute_dock_job(spec: DockSpec) -> DockJobResult:
    """Run one docking job (the ``dock`` executor)."""
    from repro.docking.vina import dock_structure

    docking = dock_structure(
        spec.receptor, spec.ligand, config=spec.config, receptor_id=spec.receptor_id
    )
    return DockJobResult(
        spec_hash=spec.content_hash(),
        pdb_id=spec.pdb_id,
        receptor_id=spec.receptor_id,
        docking=docking,
    )


register_executor("fold", execute_fold_job)
register_executor("baseline_fold", execute_baseline_job)
register_executor("dock", execute_dock_job)


def execute_job(spec) -> JobResult | DockJobResult:
    """Run one job of any registered kind (module-level so it pickles to workers)."""
    return executor_for(getattr(spec, "kind", "fold"))(spec)


class Engine:
    """Single entry point for job execution across all kinds.

    Parameters
    ----------
    config:
        Default pipeline configuration for jobs built by the convenience
        helpers; also supplies ``engine_workers``, ``cache_dir`` and the cache
        size-bound (``cache_max_bytes`` / ``cache_eviction``) defaults.
    cache:
        A cache tier instance (:class:`ResultCache` / :class:`LocalDirTier`,
        :class:`~repro.engine.cache.RemoteTier`,
        :class:`~repro.engine.cache.TieredCache`), a tier spec string or
        directory path, a sequence of specs/tiers (composed into a
        :class:`~repro.engine.cache.TieredCache`), or ``None``.  ``None``
        resolves from the config: ``cache_tiers`` if set, else ``cache_dir``,
        with ``cache_remote`` appended as the outermost tier — and disables
        caching when none of those are set.  Local tiers opened from specs
        use the config's size bound and eviction policy; see
        :func:`repro.engine.cache.resolve_cache`.
    processes:
        Default worker-process count for :meth:`run`; ``None`` uses
        ``config.engine_workers``.  ``0``/``1`` executes serially.
    transport:
        Name of the executor transport jobs run on (``"serial"``, ``"pool"``,
        ``"filequeue"`` or ``"auto"``); ``None`` uses ``config.transport``.
        Every transport is bit-identical — see
        :mod:`repro.engine.transports`.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        cache: Any = None,
        processes: int | None = None,
        transport: str | None = None,
    ):
        self.config = config or PipelineConfig()
        self.transport_name = transport or self.config.transport
        self.cache = resolve_cache(self.config, cache)
        self.processes = self.config.engine_workers if processes is None else int(processes)
        self.executed_jobs = 0
        self.completed_jobs = 0
        self.failed_jobs = 0
        self.executed_by_kind: dict[str, int] = {}

    def transport_for(self, processes: int | None = None) -> Transport:
        """A fresh one-batch transport resolved from this engine's configuration.

        Called by the session loop when a batch actually has jobs to execute;
        ``processes`` of ``None`` uses the engine default.
        """
        processes = self.processes if processes is None else int(processes)
        return make_transport(self.transport_name, self.config, processes=processes)

    # -- job construction -----------------------------------------------------------

    def spec(
        self,
        pdb_id: str,
        sequence: str,
        weights: HamiltonianWeights | None = None,
        register: str = "configuration",
        start_seq_id: int = 1,
    ) -> JobSpec:
        """Build a quantum-fold :class:`JobSpec` against this engine's configuration."""
        return JobSpec(
            pdb_id=pdb_id,
            sequence=str(sequence),
            config=self.config,
            weights=weights,
            register=register,
            start_seq_id=start_seq_id,
        )

    def baseline_spec(
        self, pdb_id: str, sequence: str, method: str, start_seq_id: int = 1
    ) -> BaselineFoldSpec:
        """Build a :class:`BaselineFoldSpec` against this engine's configuration."""
        return BaselineFoldSpec(
            pdb_id=pdb_id,
            sequence=str(sequence),
            method=method,
            config=self.config,
            start_seq_id=start_seq_id,
        )

    def dock_spec(self, pdb_id: str, receptor, ligand, receptor_id: str | None = None) -> DockSpec:
        """Build a :class:`DockSpec` against this engine's configuration."""
        return DockSpec(
            pdb_id=pdb_id,
            receptor_id=receptor_id or receptor.structure_id,
            receptor=receptor,
            ligand=ligand,
            config=self.config,
        )

    # -- execution -------------------------------------------------------------------

    def submit(
        self,
        jobs: Sequence[Any] | None = None,
        session_id: str | None = None,
        processes: int | None = None,
        on_error: str | None = None,
        progress: Any = None,
        priority: int | None = None,
    ) -> Session:
        """Open a streaming :class:`~repro.engine.session.Session` over ``jobs``.

        The session yields ``(spec, outcome)`` pairs as they complete — cache
        hits first, then pool completions — and, when ``config.session_dir``
        is set, records per-job status to an on-disk journal so the batch is
        resumable across processes.

        Parameters
        ----------
        jobs:
            The job specs.  May be ``None`` when resuming a journalled
            session by ``session_id`` — the specs are then loaded from the
            journal's spec pickle.
        session_id:
            Identifier of the session journal.  If a journal with this id
            already exists under ``config.session_dir``, the session *resumes
            it*: jobs marked completed are served from the result cache and
            only failed / never-completed jobs execute.  ``None`` generates a
            fresh id.
        processes, progress:
            Worker-process count (``None`` = engine default) and an optional
            per-outcome callback receiving
            :class:`~repro.engine.session.SessionProgress` events.
        on_error:
            ``"isolate"`` (failures become
            :class:`~repro.engine.session.JobFailure` outcomes) or
            ``"raise"`` (first failure aborts the stream).  ``None`` uses
            ``config.on_error``.
        priority:
            Scheduling priority stamped onto every job in this batch (higher
            claims first on the ``filequeue`` transport's fleet; other
            transports ignore it).  Hash-neutral orchestration metadata: it
            never splits the cache.  ``None`` leaves per-spec stamps and the
            ``config.transport_priority`` default in force.
        """
        if on_error is None:
            on_error = self.config.on_error
        journal = None
        if self.config.session_dir:
            root = Path(self.config.session_dir).expanduser()
            if session_id is not None and SessionJournal.exists(root, session_id):
                journal = SessionJournal.open(root, session_id)
                if jobs is None:
                    jobs = journal.load_specs()
                else:
                    jobs = list(jobs)
                    if [job.content_hash() for job in jobs] != journal.spec_hashes:
                        raise EngineError(
                            f"session {session_id!r} already has a journal for a different "
                            "job list; pick a new session_id or resume with matching jobs"
                        )
                journal.mark_resumed()
                logger.info(
                    "engine: resuming session %s (%d/%d jobs already completed)",
                    session_id, len(journal.completed), len(set(journal.spec_hashes)),
                )
            else:
                if jobs is None:
                    raise EngineError(
                        f"no jobs given and no journal for session {session_id!r} "
                        f"under {root} to resume"
                    )
                jobs = list(jobs)
                session_id = session_id or new_session_id()
                journal = SessionJournal.create(root, session_id, jobs)
        elif jobs is None:
            raise EngineError(
                "submit() needs jobs unless resuming a journalled session "
                "(set config.session_dir to enable journals)"
            )
        if priority is not None:
            from repro.engine.scheduler import set_priority

            jobs = list(jobs)
            for job in jobs:
                set_priority(job, priority)
        return Session(
            self,
            jobs,
            session_id=session_id,
            journal=journal,
            on_error=on_error,
            progress=progress,
            processes=processes,
        )

    def run(
        self, jobs: Sequence[Any], processes: int | None = None, on_error: str = "raise"
    ) -> list[Any]:
        """Execute ``jobs`` (any mix of kinds) and return results in submission order.

        A thin blocking wrapper over the session loop: cache hits and
        in-batch duplicates are filled without execution, the rest stream
        over ``processes`` workers, and results gather in submission order.
        The default ``on_error="raise"`` keeps the historical contract (the
        first failure propagates); pass ``"isolate"`` to receive
        :class:`~repro.engine.session.JobFailure` records in the result list
        instead.

        ``run`` never journals, even with ``config.session_dir`` set: a
        one-shot blocking call has no id to resume by, and journalling it
        would litter the session directory.  Use :meth:`submit` with a
        ``session_id`` for resumable sweeps.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        return Session(self, jobs, on_error=on_error, processes=processes).results()

    def fold(
        self,
        pdb_id: str,
        sequence: str,
        start_seq_id: int = 1,
        weights: HamiltonianWeights | None = None,
        register: str = "configuration",
    ) -> FoldingPrediction:
        """Convenience: run a single fold job and return its prediction."""
        spec = self.spec(pdb_id, sequence, weights=weights, register=register, start_seq_id=start_seq_id)
        return self.run([spec])[0].prediction

    # -- reporting -------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Execution and cache counters (the hit/miss proof for tests/logs)."""
        return {
            "completed_jobs": self.completed_jobs,
            "executed_jobs": self.executed_jobs,
            "failed_jobs": self.failed_jobs,
            "executed_by_kind": dict(self.executed_by_kind),
            "cache": self.cache.stats.as_dict() if self.cache is not None else None,
        }
