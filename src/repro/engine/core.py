"""The job engine: scatter fold jobs, gather results, reuse cached work.

This is the Sec. 5.2 batch architecture as a subsystem: every fold — a single
quickstart fragment, the 55-fragment dataset build, a benchmark sweep — is a
:class:`~repro.engine.jobs.JobSpec` streamed through one :class:`Engine`.
The engine

* resolves the execution backend by name through the registry,
* deduplicates identical jobs within a batch,
* serves previously computed jobs from the persistent result cache,
* fans the remaining jobs out over a process pool (``utils/parallel``), and
* gathers results in submission order.

Determinism: every job derives its VQE seed from the master seed plus its own
identity (``utils/rng.child_seed``), never from worker assignment, so results
are bit-identical for any worker count and any cache state.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.config import PipelineConfig
from repro.engine.cache import ResultCache
from repro.engine.jobs import JobResult, JobSpec
from repro.engine.registry import registry_snapshot, restore_registry
from repro.folding.predictor import FoldingPrediction, fold_fragment
from repro.lattice.hamiltonian import HamiltonianWeights
from repro.utils.logging import get_logger
from repro.utils.parallel import parallel_map

logger = get_logger(__name__)


def _picklable_registry() -> dict:
    """The registered backend builders that can ship to worker processes.

    Unpicklable builders (lambdas, closures) are dropped with a warning rather
    than failing the whole fan-out: they only matter if a job actually selects
    them, in which case the worker raises a clear unknown-backend error.
    """
    builders = {}
    for name, builder in registry_snapshot().items():
        try:
            pickle.dumps(builder)
        except Exception:
            logger.warning(
                "backend %r has an unpicklable builder; it will be unavailable "
                "in engine worker processes", name,
            )
            continue
        builders[name] = builder
    return builders


def execute_job(spec: JobSpec) -> JobResult:
    """Run one fold job to completion (module-level so it pickles to workers)."""
    prediction, coords = fold_fragment(
        spec.pdb_id,
        spec.sequence,
        config=spec.config,
        weights=spec.weights,
        register=spec.register,
        start_seq_id=spec.start_seq_id,
    )
    return JobResult(
        spec_hash=spec.content_hash(),
        pdb_id=prediction.pdb_id,
        sequence=prediction.sequence,
        prediction=prediction,
        conformation_coords=np.asarray(coords, dtype=float),
        start_seq_id=spec.start_seq_id,
    )


class Engine:
    """Single entry point for fold job execution.

    Parameters
    ----------
    config:
        Default pipeline configuration for jobs built by the convenience
        helpers; also supplies ``engine_workers`` and ``cache_dir`` defaults.
    cache:
        A :class:`ResultCache`, a directory path, or ``None``.  ``None`` falls
        back to ``config.cache_dir`` (and disables caching when that is also
        ``None``).
    processes:
        Default worker-process count for :meth:`run`; ``None`` uses
        ``config.engine_workers``.  ``0``/``1`` executes serially.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        cache: ResultCache | str | Path | None = None,
        processes: int | None = None,
    ):
        self.config = config or PipelineConfig()
        if cache is None and self.config.cache_dir:
            cache = self.config.cache_dir
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache
        self.processes = self.config.engine_workers if processes is None else int(processes)
        self.executed_jobs = 0
        self.completed_jobs = 0

    # -- job construction -----------------------------------------------------------

    def spec(
        self,
        pdb_id: str,
        sequence: str,
        weights: HamiltonianWeights | None = None,
        register: str = "configuration",
        start_seq_id: int = 1,
    ) -> JobSpec:
        """Build a :class:`JobSpec` against this engine's configuration."""
        return JobSpec(
            pdb_id=pdb_id,
            sequence=str(sequence),
            config=self.config,
            weights=weights,
            register=register,
            start_seq_id=start_seq_id,
        )

    # -- execution -------------------------------------------------------------------

    def run(self, jobs: Sequence[JobSpec], processes: int | None = None) -> list[JobResult]:
        """Execute ``jobs`` and return their results in submission order.

        Cache hits and in-batch duplicates are filled without execution; the
        remaining jobs are scattered over ``processes`` workers (``None`` uses
        the engine default) and gathered back in order.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        processes = self.processes if processes is None else int(processes)

        results: list[JobResult | None] = [None] * len(jobs)
        pending: list[tuple[int, JobSpec, str]] = []
        first_pending: dict[str, int] = {}
        duplicates: list[tuple[int, str]] = []

        for i, job in enumerate(jobs):
            key = job.content_hash()
            if key in first_pending:
                duplicates.append((i, key))
                continue
            payload = self.cache.get(key) if self.cache is not None else None
            if payload is not None:
                results[i] = JobResult.from_payload(payload)
            else:
                first_pending[key] = i
                pending.append((i, job, key))

        if pending:
            logger.info(
                "engine: executing %d/%d jobs (%d cached, %d duplicate) on %d processes",
                len(pending), len(jobs), len(jobs) - len(pending) - len(duplicates),
                len(duplicates), max(1, processes),
            )
            # Replicate runtime backend registrations into the workers: under
            # spawn/forkserver start methods a fresh interpreter only sees the
            # built-in backends.
            fresh = parallel_map(
                execute_job,
                [job for _, job, _ in pending],
                processes=processes,
                initializer=restore_registry,
                initargs=(_picklable_registry(),) if processes > 1 else (),
            )
            for (i, _, key), result in zip(pending, fresh):
                results[i] = result
                if self.cache is not None:
                    self.cache.put(key, result.to_payload())
            self.executed_jobs += len(pending)

        # In-batch duplicates of an executed job share its result object.
        # (Duplicates of a cache hit never land here: their key is absent from
        # ``first_pending``, so the second lookup simply hits the cache again.)
        for i, key in duplicates:
            results[i] = results[first_pending[key]].shallow_copy()

        self.completed_jobs += len(jobs)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def fold(
        self,
        pdb_id: str,
        sequence: str,
        start_seq_id: int = 1,
        weights: HamiltonianWeights | None = None,
        register: str = "configuration",
    ) -> FoldingPrediction:
        """Convenience: run a single fold job and return its prediction."""
        spec = self.spec(pdb_id, sequence, weights=weights, register=register, start_seq_id=start_seq_id)
        return self.run([spec])[0].prediction

    # -- reporting -------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Execution and cache counters (the cache-hit proof for tests/logs)."""
        return {
            "completed_jobs": self.completed_jobs,
            "executed_jobs": self.executed_jobs,
            "cache": self.cache.stats.as_dict() if self.cache is not None else None,
        }
