"""The job engine: scatter typed jobs, gather results, reuse cached work.

This is the Sec. 5.2 batch architecture as a subsystem: every expensive unit
of work — a quantum fold, an AF2/AF3-like baseline fold, a 20-seed docking
search — is a typed spec (:mod:`repro.engine.jobs`) streamed through one
:class:`Engine`.  The engine

* resolves each spec's executor by kind through the registry
  (:func:`~repro.engine.registry.executor_for`) and the quantum execution
  backend by name (:func:`~repro.engine.registry.make_backend`),
* deduplicates identical jobs within a batch (kinds cannot collide: the
  kind's schema version leads every content hash),
* serves previously computed jobs from the persistent result cache,
* fans the remaining jobs out over a process pool (``utils/parallel``), and
* gathers results in submission order.

Determinism: every job derives its seeds from the master seed plus its own
identity (``utils/rng.child_seed`` — the VQE seed from the fragment identity,
each docking run's seed from the receptor identity and run index), never from
worker assignment, so results are bit-identical for any worker count and any
cache state.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Sequence

import numpy as np

from repro.config import PipelineConfig
from repro.engine.cache import ResultCache
from repro.engine.jobs import (
    BaselineFoldSpec,
    DockJobResult,
    DockSpec,
    JobResult,
    JobSpec,
    result_from_payload,
)
from repro.engine.registry import (
    executor_for,
    executor_snapshot,
    register_executor,
    registry_snapshot,
    restore_registries,
)
from repro.folding.predictor import FoldingPrediction, fold_fragment
from repro.lattice.hamiltonian import HamiltonianWeights
from repro.utils.logging import get_logger
from repro.utils.parallel import parallel_map

logger = get_logger(__name__)


def _picklable(mapping: dict, what: str) -> dict:
    """The registry entries that can ship to worker processes.

    Unpicklable entries (lambdas, closures) are dropped with a warning rather
    than failing the whole fan-out: they only matter if a job actually selects
    them, in which case the worker raises a clear lookup error.
    """
    out = {}
    for name, value in mapping.items():
        try:
            pickle.dumps(value)
        except Exception:
            logger.warning(
                "%s %r is unpicklable; it will be unavailable in engine worker processes",
                what, name,
            )
            continue
        out[name] = value
    return out


def execute_fold_job(spec: JobSpec) -> JobResult:
    """Run one quantum fold job to completion (the ``fold`` executor)."""
    prediction, coords = fold_fragment(
        spec.pdb_id,
        spec.sequence,
        config=spec.config,
        weights=spec.weights,
        register=spec.register,
        start_seq_id=spec.start_seq_id,
    )
    return JobResult(
        spec_hash=spec.content_hash(),
        pdb_id=prediction.pdb_id,
        sequence=prediction.sequence,
        prediction=prediction,
        conformation_coords=np.asarray(coords, dtype=float),
        start_seq_id=spec.start_seq_id,
    )


def execute_baseline_job(spec: BaselineFoldSpec) -> JobResult:
    """Run one baseline fold job (the ``baseline_fold`` executor)."""
    from repro.folding.baselines import baseline_fold_fragment

    prediction, coords = baseline_fold_fragment(
        spec.method,
        spec.pdb_id,
        spec.sequence,
        config=spec.config,
        start_seq_id=spec.start_seq_id,
    )
    return JobResult(
        spec_hash=spec.content_hash(),
        pdb_id=prediction.pdb_id,
        sequence=prediction.sequence,
        prediction=prediction,
        conformation_coords=np.asarray(coords, dtype=float),
        start_seq_id=spec.start_seq_id,
        kind="baseline_fold",
    )


def execute_dock_job(spec: DockSpec) -> DockJobResult:
    """Run one docking job (the ``dock`` executor)."""
    from repro.docking.vina import dock_structure

    docking = dock_structure(
        spec.receptor, spec.ligand, config=spec.config, receptor_id=spec.receptor_id
    )
    return DockJobResult(
        spec_hash=spec.content_hash(),
        pdb_id=spec.pdb_id,
        receptor_id=spec.receptor_id,
        docking=docking,
    )


register_executor("fold", execute_fold_job)
register_executor("baseline_fold", execute_baseline_job)
register_executor("dock", execute_dock_job)


def execute_job(spec) -> JobResult | DockJobResult:
    """Run one job of any registered kind (module-level so it pickles to workers)."""
    return executor_for(getattr(spec, "kind", "fold"))(spec)


class Engine:
    """Single entry point for job execution across all kinds.

    Parameters
    ----------
    config:
        Default pipeline configuration for jobs built by the convenience
        helpers; also supplies ``engine_workers``, ``cache_dir`` and the cache
        size-bound (``cache_max_bytes`` / ``cache_eviction``) defaults.
    cache:
        A :class:`ResultCache`, a directory path, or ``None``.  ``None`` falls
        back to ``config.cache_dir`` (and disables caching when that is also
        ``None``).  Paths are opened with the config's size bound and
        eviction policy.
    processes:
        Default worker-process count for :meth:`run`; ``None`` uses
        ``config.engine_workers``.  ``0``/``1`` executes serially.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        cache: ResultCache | str | Path | None = None,
        processes: int | None = None,
    ):
        self.config = config or PipelineConfig()
        if cache is None and self.config.cache_dir:
            cache = self.config.cache_dir
        if isinstance(cache, (str, Path)):
            cache = ResultCache(
                cache,
                max_bytes=self.config.cache_max_bytes,
                eviction=self.config.cache_eviction,
            )
        self.cache = cache
        self.processes = self.config.engine_workers if processes is None else int(processes)
        self.executed_jobs = 0
        self.completed_jobs = 0
        self.executed_by_kind: dict[str, int] = {}

    # -- job construction -----------------------------------------------------------

    def spec(
        self,
        pdb_id: str,
        sequence: str,
        weights: HamiltonianWeights | None = None,
        register: str = "configuration",
        start_seq_id: int = 1,
    ) -> JobSpec:
        """Build a quantum-fold :class:`JobSpec` against this engine's configuration."""
        return JobSpec(
            pdb_id=pdb_id,
            sequence=str(sequence),
            config=self.config,
            weights=weights,
            register=register,
            start_seq_id=start_seq_id,
        )

    def baseline_spec(
        self, pdb_id: str, sequence: str, method: str, start_seq_id: int = 1
    ) -> BaselineFoldSpec:
        """Build a :class:`BaselineFoldSpec` against this engine's configuration."""
        return BaselineFoldSpec(
            pdb_id=pdb_id,
            sequence=str(sequence),
            method=method,
            config=self.config,
            start_seq_id=start_seq_id,
        )

    def dock_spec(self, pdb_id: str, receptor, ligand, receptor_id: str | None = None) -> DockSpec:
        """Build a :class:`DockSpec` against this engine's configuration."""
        return DockSpec(
            pdb_id=pdb_id,
            receptor_id=receptor_id or receptor.structure_id,
            receptor=receptor,
            ligand=ligand,
            config=self.config,
        )

    # -- execution -------------------------------------------------------------------

    def run(self, jobs: Sequence[Any], processes: int | None = None) -> list[Any]:
        """Execute ``jobs`` (any mix of kinds) and return results in submission order.

        Cache hits and in-batch duplicates are filled without execution; the
        remaining jobs are scattered over ``processes`` workers (``None`` uses
        the engine default) and gathered back in order.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        processes = self.processes if processes is None else int(processes)

        results: list[Any] = [None] * len(jobs)
        pending: list[tuple[int, Any, str]] = []
        first_pending: dict[str, int] = {}
        duplicates: list[tuple[int, str]] = []

        for i, job in enumerate(jobs):
            key = job.content_hash()
            if key in first_pending:
                duplicates.append((i, key))
                continue
            payload = self.cache.get(key) if self.cache is not None else None
            if payload is not None:
                results[i] = result_from_payload(payload)
            else:
                first_pending[key] = i
                pending.append((i, job, key))

        if pending:
            logger.info(
                "engine: executing %d/%d jobs (%d cached, %d duplicate) on %d processes",
                len(pending), len(jobs), len(jobs) - len(pending) - len(duplicates),
                len(duplicates), max(1, processes),
            )
            # Replicate runtime backend/executor registrations into the
            # workers: under spawn/forkserver start methods a fresh
            # interpreter only sees the built-in entries.
            fresh = parallel_map(
                execute_job,
                [job for _, job, _ in pending],
                processes=processes,
                initializer=restore_registries,
                initargs=(
                    _picklable(registry_snapshot(), "backend"),
                    _picklable(executor_snapshot(), "executor"),
                ) if processes > 1 else (),
            )
            for (i, job, key), result in zip(pending, fresh):
                results[i] = result
                kind = getattr(job, "kind", "fold")
                self.executed_by_kind[kind] = self.executed_by_kind.get(kind, 0) + 1
                if self.cache is not None:
                    self.cache.put(key, result.to_payload())
            self.executed_jobs += len(pending)

        # In-batch duplicates of an executed job share its result object.
        # (Duplicates of a cache hit never land here: their key is absent from
        # ``first_pending``, so the second lookup simply hits the cache again.)
        for i, key in duplicates:
            results[i] = results[first_pending[key]].shallow_copy()

        self.completed_jobs += len(jobs)
        assert all(r is not None for r in results)
        return results

    def fold(
        self,
        pdb_id: str,
        sequence: str,
        start_seq_id: int = 1,
        weights: HamiltonianWeights | None = None,
        register: str = "configuration",
    ) -> FoldingPrediction:
        """Convenience: run a single fold job and return its prediction."""
        spec = self.spec(pdb_id, sequence, weights=weights, register=register, start_seq_id=start_seq_id)
        return self.run([spec])[0].prediction

    # -- reporting -------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Execution and cache counters (the hit/miss proof for tests/logs)."""
        return {
            "completed_jobs": self.completed_jobs,
            "executed_jobs": self.executed_jobs,
            "executed_by_kind": dict(self.executed_by_kind),
            "cache": self.cache.stats.as_dict() if self.cache is not None else None,
        }
