"""Job specifications and results for the execution engine.

The engine executes a small *typed family* of jobs — every expensive unit of
work in the pipeline is one of these kinds:

* ``fold`` (:class:`JobSpec`) — a two-stage VQE fold of one fragment;
* ``baseline_fold`` (:class:`BaselineFoldSpec`) — an AF2-like / AF3-like
  prior-biased baseline prediction of one fragment;
* ``dock`` (:class:`DockSpec`) — a multi-seed docking search of one ligand
  against one receptor structure.

Each spec hashes to a deterministic content address covering *only the knobs
that kind depends on*: a fold hash ignores docking knobs, a dock hash ignores
VQE shot counts, and orchestration detail (worker count, cache location) never
enters any hash.  Two specs with the same hash are guaranteed to produce
bit-identical results, which is what lets the engine deduplicate work within a
batch and reuse results across runs through the persistent cache.  The kind's
schema version is the first hash component, so hashes of different kinds can
never collide.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, ClassVar

import numpy as np

from repro.config import PipelineConfig
from repro.exceptions import EngineError
from repro.folding.predictor import FoldingPrediction
from repro.lattice.hamiltonian import HamiltonianWeights

#: Schema versions of the content hashes / cache payloads, one per job kind.
#: Bump a kind's version whenever its pipeline changes in a way that
#: invalidates previously cached results of that kind.
FOLD_SCHEMA_VERSION = "fold/v1"
BASELINE_SCHEMA_VERSION = "baseline_fold/v1"
#: dock/v2: multi-walker Monte-Carlo search gives every restart its own RNG
#: substream (previously all restarts shared one sequential stream), so
#: docking outputs differ from dock/v1 at equal knobs.
DOCK_SCHEMA_VERSION = "dock/v2"

#: Backwards-compatible alias (PR 1 exposed the fold schema under this name).
ENGINE_SCHEMA_VERSION = FOLD_SCHEMA_VERSION

#: The job kinds the engine knows how to execute.
JOB_KINDS: tuple[str, ...] = ("fold", "baseline_fold", "dock")

#: The configuration fields that influence a quantum fold result (and
#: therefore the fold job hash).  Everything else — docking knobs, worker
#: counts, cache paths — is orchestration detail.
_FOLD_CONFIG_FIELDS: tuple[str, ...] = (
    "vqe_iterations",
    "optimisation_shots",
    "final_shots",
    "ansatz_reps",
    "max_statevector_qubits",
    "mps_bond_dimension",
    "ancilla_margin",
    "noise_enabled",
    "seed",
    "cvar_alpha",
    "max_final_shots",
    "backend",
)

#: A baseline fold depends only on the master seed (it keys the reference
#: generator the baselines blend towards); the baselines' own blend / noise
#: seeds are per-method constants.
_BASELINE_CONFIG_FIELDS: tuple[str, ...] = ("seed",)

#: A docking search depends on the docking protocol knobs and the master seed
#: (per-run seeds derive from it and the receptor identity).
_DOCK_CONFIG_FIELDS: tuple[str, ...] = (
    "docking_seeds",
    "docking_poses",
    "docking_mc_steps",
    "seed",
)


def config_fingerprint(
    config: PipelineConfig, fields: tuple[str, ...] = _FOLD_CONFIG_FIELDS
) -> str:
    """Canonical JSON string of the ``fields`` subset of the configuration.

    ``config.extra`` participates in every kind's fingerprint, so its values
    must be JSON-serialisable — anything hashed through ``repr`` (object
    identities, memory addresses) would silently change between processes and
    defeat the persistent cache.
    """
    payload: dict[str, Any] = {name: getattr(config, name) for name in fields}
    if config.extra:
        payload["extra"] = config.extra
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise EngineError(
            "config.extra values must be JSON-serialisable to content-hash a job "
            f"(got {config.extra!r})"
        ) from exc


def _weights_key(weights: HamiltonianWeights | None) -> str:
    if weights is None:
        return "default"
    return f"{weights.chirality!r}/{weights.geometric!r}/{weights.clash!r}/{weights.interaction!r}"


def _hash_parts(*parts: str) -> str:
    return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()


def _memoize_hash(spec: Any, compute: Any) -> str:
    """Per-instance memo for ``content_hash``.

    Specs are immutable by contract, and one submission needs the hash at
    several layers (in-batch dedup, cache key, journal, session keys) —
    for a :class:`DockSpec` each recomputation would re-digest the full
    receptor and ligand.  Stored via ``object.__setattr__`` because the spec
    dataclasses are frozen.
    """
    cached = spec.__dict__.get("_hash_memo")
    if cached is None:
        cached = compute()
        object.__setattr__(spec, "_hash_memo", cached)
    return cached


class _DropHashMemoOnPickle:
    """Excludes the content-hash memo from pickles.

    Specs travel as pickles — to worker processes and into a session
    journal's spec pickle.  A journal can outlive a code upgrade that bumps a
    kind's schema version, and a memo baked into the pickle would then replay
    the *old* schema's hash, matching stale cache payloads instead of
    invalidating them.  Unpickled specs therefore always re-derive their hash
    under the current schema versions.
    """

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state.pop("_hash_memo", None)
        return state


def structure_digest(structure) -> str:
    """Content digest of a :class:`~repro.bio.structure.Structure`.

    Covers the sequence, every atom's name/element and the full coordinate
    array, so two receptors dock-hash equal exactly when they are the same
    molecule in the same conformation.
    """
    h = hashlib.sha256()
    h.update(str(structure.sequence).encode("utf-8"))
    for atom in structure.atoms:
        h.update(f"{atom.name}/{atom.element}".encode("utf-8"))
    coords = np.ascontiguousarray(structure.all_coords(), dtype=np.float64)
    h.update(coords.tobytes())
    return h.hexdigest()


def ligand_digest(ligand) -> str:
    """Content digest of a :class:`~repro.docking.ligand.Ligand`."""
    h = hashlib.sha256()
    h.update(ligand.name.encode("utf-8"))
    h.update("".join(ligand.elements).encode("utf-8"))
    h.update(np.ascontiguousarray(ligand.coords, dtype=np.float64).tobytes())
    for flags in (ligand.hydrophobic, ligand.donor, ligand.acceptor):
        h.update(np.asarray(flags, dtype=bool).tobytes())
    h.update(np.ascontiguousarray(ligand.charges, dtype=np.float64).tobytes())
    h.update(str(int(ligand.num_rotatable_bonds)).encode("utf-8"))
    if ligand.anchor is not None:
        h.update(np.ascontiguousarray(ligand.anchor, dtype=np.float64).tobytes())
    return h.hexdigest()


@dataclass(frozen=True)
class JobSpec(_DropHashMemoOnPickle):
    """One quantum fold job: a fragment plus everything that determines its result."""

    pdb_id: str
    sequence: str
    config: PipelineConfig = field(default_factory=PipelineConfig)
    weights: HamiltonianWeights | None = None
    register: str = "configuration"
    start_seq_id: int = 1

    kind: ClassVar[str] = "fold"

    def content_hash(self) -> str:
        """Deterministic SHA-256 content address of this job.

        Covers the fragment identity (the PDB ID seeds the VQE child RNG, so
        it is part of the result), the sequence, the Hamiltonian weights, the
        simulated register, the residue numbering and the fold-relevant
        configuration including the backend name.
        """
        return _memoize_hash(self, lambda: _hash_parts(
            FOLD_SCHEMA_VERSION,
            self.pdb_id.lower(),
            str(self.sequence),
            self.register,
            str(int(self.start_seq_id)),
            _weights_key(self.weights),
            config_fingerprint(self.config, _FOLD_CONFIG_FIELDS),
        ))


@dataclass(frozen=True)
class BaselineFoldSpec(_DropHashMemoOnPickle):
    """One deep-learning-baseline fold job (AF2-like or AF3-like).

    ``method`` selects the accuracy profile by name (``"AF2"`` / ``"AF3"``,
    see :data:`repro.folding.baselines.BASELINE_PREDICTORS`).  The result
    depends only on the fragment identity, the method and the master seed, so
    the hash ignores every VQE and docking knob.
    """

    pdb_id: str
    sequence: str
    method: str = "AF2"
    config: PipelineConfig = field(default_factory=PipelineConfig)
    start_seq_id: int = 1

    kind: ClassVar[str] = "baseline_fold"

    def content_hash(self) -> str:
        """Deterministic SHA-256 content address of this baseline fold."""
        return _memoize_hash(self, lambda: _hash_parts(
            BASELINE_SCHEMA_VERSION,
            self.method,
            self.pdb_id.lower(),
            str(self.sequence),
            str(int(self.start_seq_id)),
            config_fingerprint(self.config, _BASELINE_CONFIG_FIELDS),
        ))


@dataclass(frozen=True, eq=False)
class DockSpec(_DropHashMemoOnPickle):
    """One docking job: a receptor structure, a ligand and the search knobs.

    The receptor and ligand travel *by value* (both are picklable), so a dock
    job is self-contained on any worker; the hash covers their content
    digests, the receptor identity (per-run docking seeds derive from it) and
    the dock-relevant configuration.
    """

    pdb_id: str
    receptor_id: str
    receptor: Any  # repro.bio.structure.Structure
    ligand: Any  # repro.docking.ligand.Ligand
    config: PipelineConfig = field(default_factory=PipelineConfig)

    kind: ClassVar[str] = "dock"

    def content_hash(self) -> str:
        """Deterministic SHA-256 content address of this docking job."""
        return _memoize_hash(self, lambda: _hash_parts(
            DOCK_SCHEMA_VERSION,
            self.pdb_id.lower(),
            self.receptor_id,
            structure_digest(self.receptor),
            ligand_digest(self.ligand),
            config_fingerprint(self.config, _DOCK_CONFIG_FIELDS),
        ))


@dataclass
class JobResult:
    """The outcome of one fold job (quantum or baseline).

    ``conformation_coords`` holds the raw Cα trace the prediction was
    reconstructed from — the minimal datum from which the full structure is
    deterministically re-derived, which is what the persistent cache stores
    instead of serialising whole structures.  For quantum folds that trace is
    the decoded lattice conformation; for baseline folds it is the blended
    prior/reference trace.
    """

    spec_hash: str
    pdb_id: str
    sequence: str
    prediction: FoldingPrediction
    conformation_coords: np.ndarray
    start_seq_id: int = 1
    from_cache: bool = False
    kind: str = "fold"

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable form of this result (the cache file contents)."""
        schema = (
            BASELINE_SCHEMA_VERSION if self.kind == "baseline_fold" else FOLD_SCHEMA_VERSION
        )
        return {
            "schema": schema,
            "spec_hash": self.spec_hash,
            "pdb_id": self.pdb_id,
            "sequence": self.sequence,
            "start_seq_id": int(self.start_seq_id),
            "method": self.prediction.method,
            "structure_id": self.prediction.structure.structure_id,
            "metadata": self.prediction.metadata,
            "conformation_coords": np.asarray(self.conformation_coords, dtype=float).tolist(),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "JobResult":
        """Rebuild a result from a cache payload.

        The structure is re-derived by running the (cheap, deterministic)
        reconstruction over the stored Cα trace, so a cache hit is
        bit-identical to a fresh fold without ever re-running the VQE or the
        baseline blend.
        """
        from repro.bio.sequence import ProteinSequence
        from repro.lattice.reconstruction import reconstruct_structure

        coords = np.asarray(payload["conformation_coords"], dtype=float)
        structure = reconstruct_structure(
            ProteinSequence(payload["sequence"]),
            coords,
            structure_id=payload["structure_id"],
            start_seq_id=int(payload["start_seq_id"]),
            center=True,
        )
        prediction = FoldingPrediction(
            pdb_id=payload["pdb_id"],
            sequence=payload["sequence"],
            method=payload["method"],
            structure=structure,
            metadata=dict(payload["metadata"]),
        )
        schema = payload.get("schema", FOLD_SCHEMA_VERSION)
        return cls(
            spec_hash=payload["spec_hash"],
            pdb_id=payload["pdb_id"],
            sequence=payload["sequence"],
            prediction=prediction,
            conformation_coords=coords,
            start_seq_id=int(payload["start_seq_id"]),
            from_cache=True,
            kind="baseline_fold" if schema.startswith("baseline_fold/") else "fold",
        )

    def shallow_copy(self, from_cache: bool | None = None) -> "JobResult":
        """A copy sharing the prediction object (used for in-batch duplicates)."""
        out = replace(self)
        if from_cache is not None:
            out.from_cache = from_cache
        return out


@dataclass
class DockJobResult:
    """The outcome of one docking job: the full multi-seed docking summary.

    Cached payloads persist the per-run / per-pose *summary* (seeds,
    affinities, RMSD bounds) — everything the dataset and analysis layers
    consume, and every aggregate recomputes identically.  Raw pose coordinate
    arrays are not persisted: poses restored from the cache carry empty
    coordinate arrays, so consumers needing pose geometry must dock fresh
    (as the figure benchmarks do).
    """

    spec_hash: str
    pdb_id: str
    receptor_id: str
    docking: Any  # repro.docking.vina.DockingResult
    from_cache: bool = False
    kind: str = "dock"

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable form of this result (the cache file contents).

        Stores the docking summary (per-run seeds, per-pose affinities and
        RMSD bounds) without pose coordinates — exactly the numbers the
        dataset's ``docking.json`` files and the analysis layer consume.
        """
        return {
            "schema": DOCK_SCHEMA_VERSION,
            "spec_hash": self.spec_hash,
            "pdb_id": self.pdb_id,
            "receptor_id": self.receptor_id,
            "docking": self.docking.as_dict(),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "DockJobResult":
        """Rebuild a result from a cache payload (aggregates are recomputed
        from the stored per-pose numbers, so they match a fresh run exactly)."""
        from repro.docking.vina import DockingResult

        return cls(
            spec_hash=payload["spec_hash"],
            pdb_id=payload["pdb_id"],
            receptor_id=payload["receptor_id"],
            docking=DockingResult.from_dict(payload["docking"]),
            from_cache=True,
        )

    def shallow_copy(self, from_cache: bool | None = None) -> "DockJobResult":
        """A copy sharing the docking object (used for in-batch duplicates)."""
        out = replace(self)
        if from_cache is not None:
            out.from_cache = from_cache
        return out


def result_from_payload(payload: dict[str, Any]) -> JobResult | DockJobResult:
    """Rebuild the right result type for a cache payload from its schema."""
    schema = payload.get("schema", FOLD_SCHEMA_VERSION)
    if schema.startswith("dock/"):
        return DockJobResult.from_payload(payload)
    return JobResult.from_payload(payload)
