"""Job specifications and results for the execution engine.

A :class:`JobSpec` is one fold work item — fragment identity plus every knob
that influences the outcome — and hashes to a deterministic content address.
Two specs with the same hash are guaranteed to produce bit-identical results,
which is what lets the engine deduplicate work within a batch and reuse
results across runs through the persistent cache.

The hash deliberately covers only the *fold-relevant* part of the
configuration: docking knobs and engine plumbing (worker count, cache
location) do not change what a fold produces, so varying them must not
invalidate cached results.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.config import PipelineConfig
from repro.exceptions import EngineError
from repro.folding.predictor import FoldingPrediction
from repro.lattice.hamiltonian import HamiltonianWeights

#: Schema version of the content hash / cache payload.  Bump whenever the fold
#: pipeline changes in a way that invalidates previously cached results.
ENGINE_SCHEMA_VERSION = "fold/v1"

#: The configuration fields that influence a fold result (and therefore the
#: job hash).  Everything else — docking knobs, worker counts, cache paths —
#: is orchestration detail.
_FOLD_CONFIG_FIELDS: tuple[str, ...] = (
    "vqe_iterations",
    "optimisation_shots",
    "final_shots",
    "ansatz_reps",
    "max_statevector_qubits",
    "mps_bond_dimension",
    "ancilla_margin",
    "noise_enabled",
    "seed",
    "cvar_alpha",
    "max_final_shots",
    "backend",
)


def config_fingerprint(config: PipelineConfig) -> str:
    """Canonical JSON string of the fold-relevant configuration fields.

    ``config.extra`` participates in the hash, so its values must be
    JSON-serialisable — anything hashed through ``repr`` (object identities,
    memory addresses) would silently change between processes and defeat the
    persistent cache.
    """
    payload: dict[str, Any] = {name: getattr(config, name) for name in _FOLD_CONFIG_FIELDS}
    if config.extra:
        payload["extra"] = config.extra
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise EngineError(
            "config.extra values must be JSON-serialisable to content-hash a job "
            f"(got {config.extra!r})"
        ) from exc


def _weights_key(weights: HamiltonianWeights | None) -> str:
    if weights is None:
        return "default"
    return f"{weights.chirality!r}/{weights.geometric!r}/{weights.clash!r}/{weights.interaction!r}"


@dataclass(frozen=True)
class JobSpec:
    """One fold job: a fragment plus everything that determines its result."""

    pdb_id: str
    sequence: str
    config: PipelineConfig = field(default_factory=PipelineConfig)
    weights: HamiltonianWeights | None = None
    register: str = "configuration"
    start_seq_id: int = 1

    def content_hash(self) -> str:
        """Deterministic SHA-256 content address of this job.

        Covers the fragment identity (the PDB ID seeds the VQE child RNG, so
        it is part of the result), the sequence, the Hamiltonian weights, the
        simulated register, the residue numbering and the fold-relevant
        configuration including the backend name.
        """
        parts = (
            ENGINE_SCHEMA_VERSION,
            self.pdb_id.lower(),
            str(self.sequence),
            self.register,
            str(int(self.start_seq_id)),
            _weights_key(self.weights),
            config_fingerprint(self.config),
        )
        return hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()


@dataclass
class JobResult:
    """The outcome of one fold job.

    ``conformation_coords`` holds the raw lattice Cα trace decoded from the
    VQE's best conformation — the minimal datum from which the full structure
    is deterministically re-derived, which is what the persistent cache
    stores instead of serialising whole structures.
    """

    spec_hash: str
    pdb_id: str
    sequence: str
    prediction: FoldingPrediction
    conformation_coords: np.ndarray
    start_seq_id: int = 1
    from_cache: bool = False

    def to_payload(self) -> dict[str, Any]:
        """JSON-serialisable form of this result (the cache file contents)."""
        return {
            "schema": ENGINE_SCHEMA_VERSION,
            "spec_hash": self.spec_hash,
            "pdb_id": self.pdb_id,
            "sequence": self.sequence,
            "start_seq_id": int(self.start_seq_id),
            "method": self.prediction.method,
            "structure_id": self.prediction.structure.structure_id,
            "metadata": self.prediction.metadata,
            "conformation_coords": np.asarray(self.conformation_coords, dtype=float).tolist(),
        }

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "JobResult":
        """Rebuild a result from a cache payload.

        The structure is re-derived by running the (cheap, deterministic)
        reconstruction over the stored lattice coordinates, so a cache hit is
        bit-identical to a fresh fold without ever re-running the VQE.
        """
        from repro.bio.sequence import ProteinSequence
        from repro.lattice.reconstruction import reconstruct_structure

        coords = np.asarray(payload["conformation_coords"], dtype=float)
        structure = reconstruct_structure(
            ProteinSequence(payload["sequence"]),
            coords,
            structure_id=payload["structure_id"],
            start_seq_id=int(payload["start_seq_id"]),
            center=True,
        )
        prediction = FoldingPrediction(
            pdb_id=payload["pdb_id"],
            sequence=payload["sequence"],
            method=payload["method"],
            structure=structure,
            metadata=dict(payload["metadata"]),
        )
        return cls(
            spec_hash=payload["spec_hash"],
            pdb_id=payload["pdb_id"],
            sequence=payload["sequence"],
            prediction=prediction,
            conformation_coords=coords,
            start_seq_id=int(payload["start_seq_id"]),
            from_cache=True,
        )

    def shallow_copy(self, from_cache: bool | None = None) -> "JobResult":
        """A copy sharing the prediction object (used for in-batch duplicates)."""
        out = replace(self)
        if from_cache is not None:
            out.from_cache = from_cache
        return out
