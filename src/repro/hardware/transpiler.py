"""Transpilation pipeline: layout → routing → basis translation → resource model.

The output :class:`TranspiledCircuit` carries both the executable native-basis
circuit and the resource numbers the paper reports per fragment:

* ``reported_depth`` — the scheduled depth of the parameterised circuit on the
  device, computed from the per-gate native depth contributions plus the
  measurement/initialisation layers.  For a linear EfficientSU2 ansatz with
  one repetition and no SWAPs this evaluates to exactly ``4·n + 5``, matching
  every row of Tables 1–3;
* ``swap_count`` — SWAPs inserted by routing (zero when the margin strategy
  finds a defect-free chain);
* native gate histogram and two-qubit gate count (used by the noise model).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.exceptions import TranspilerError
from repro.hardware.basis import count_native_gates, native_depth_contribution, translate_to_native
from repro.hardware.routing import LinearChainRouter, RoutingResult
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.compiled import circuit_structure_key

#: Depth layers charged for state initialisation and readout of every job.
MEASUREMENT_LAYERS = 5

#: Depth added on the critical path by one routed SWAP (3 ECR + dressing).
SWAP_DEPTH = 12


@dataclass(frozen=True)
class TranspiledCircuit:
    """A circuit mapped to the device plus its resource accounting."""

    logical_circuit: QuantumCircuit
    native_circuit: QuantumCircuit
    routing: RoutingResult
    reported_depth: int
    native_gate_counts: dict[str, int]

    @property
    def num_qubits(self) -> int:
        """Width of the logical register."""
        return self.logical_circuit.num_qubits

    @property
    def two_qubit_gate_count(self) -> int:
        """Number of native two-qubit (ECR) gates, including routed SWAPs."""
        return self.native_gate_counts.get("ecr", 0) + 3 * self.routing.swap_count

    @property
    def two_qubit_gates_per_qubit(self) -> float:
        """Average ECR participation per qubit (drives the noise model)."""
        if self.num_qubits == 0:
            return 0.0
        return 2.0 * self.two_qubit_gate_count / self.num_qubits


class Transpiler:
    """Maps logical ansatz circuits onto the Eagle device."""

    def __init__(
        self,
        router: LinearChainRouter | None = None,
        ancilla_margin: int = 5,
        cache_size: int = 128,
    ):
        if ancilla_margin < 0:
            raise TranspilerError(f"ancilla margin must be >= 0, got {ancilla_margin}")
        self.router = router if router is not None else LinearChainRouter()
        self.ancilla_margin = int(ancilla_margin)
        self.cache_size = int(cache_size)
        self._cache: dict[tuple, TranspiledCircuit] = {}
        self._hits = 0
        self._misses = 0

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters of the transpilation cache (diagnostics)."""
        return {
            "entries": len(self._cache),
            "hits": self._hits,
            "misses": self._misses,
            "max_entries": self.cache_size,
        }

    def scheduled_depth(self, circuit: QuantumCircuit, swap_count: int = 0) -> int:
        """Scheduled device depth of a logical circuit (analytic model).

        Per-qubit critical-path accumulation of the native depth contributions
        of every logical gate, plus SWAP overhead and the fixed
        measurement/initialisation layers.
        """
        levels = [0] * circuit.num_qubits
        for inst in circuit.instructions:
            if inst.name == "barrier":
                continue
            contribution = native_depth_contribution(inst.name)
            start = max(levels[q] for q in inst.qubits)
            for q in inst.qubits:
                levels[q] = start + contribution
        base = max(levels) if levels else 0
        return base + SWAP_DEPTH * swap_count + MEASUREMENT_LAYERS

    def transpile(
        self,
        circuit: QuantumCircuit,
        margin: int | None = None,
        defective_qubits: tuple[int, ...] | list[int] = (),
    ) -> TranspiledCircuit:
        """Transpile a (possibly parameterised) logical circuit for the device.

        Results are cached per (circuit structure, margin, defective qubits)
        — the structural key covers bound parameter values, so two bindings of
        the same template only share an entry when they bind identical values.
        Resource accounting over repeated identical fragments therefore routes
        and translates once; a hit is returned with ``logical_circuit``
        swapped for the caller's own circuit object.
        """
        margin = self.ancilla_margin if margin is None else int(margin)
        key = None
        if self.cache_size > 0:
            key = (
                circuit_structure_key(circuit),
                margin,
                tuple(int(q) for q in defective_qubits),
            )
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                return replace(cached, logical_circuit=circuit)
            self._misses += 1
        routing = self.router.route(circuit.num_qubits, margin=margin, defective_qubits=defective_qubits)
        reported_depth = self.scheduled_depth(circuit, swap_count=routing.swap_count)

        # Basis translation requires bound parameters; for a parameterised
        # circuit we translate a zero-bound copy (the structure, and therefore
        # the gate counts, are parameter-independent).
        translatable = circuit if circuit.is_bound else circuit.bind([0.0] * circuit.num_parameters)
        native = translate_to_native(translatable)
        counts = count_native_gates(native)
        result = TranspiledCircuit(
            logical_circuit=circuit,
            native_circuit=native,
            routing=routing,
            reported_depth=reported_depth,
            native_gate_counts=counts,
        )
        if key is not None:
            self._cache[key] = result
            while len(self._cache) > self.cache_size:
                self._cache.pop(next(iter(self._cache)))
        return result
