"""USD cost model for quantum execution.

The paper highlights that QDockBank is "the first quantum-based protein
structure dataset with a total computational cost exceeding one million USD"
and reports over 60 hours of QPU runtime.  Commercial access to utility-level
IBM processors is billed per unit of QPU time; premium/dedicated access rates
work out to several dollars per QPU-second.  :class:`CostModel` converts the
QPU-time estimates of :class:`~repro.hardware.timing.ExecutionTimeModel` into
dollar figures so the dataset-scale claims can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.timing import ExecutionEstimate


@dataclass(frozen=True)
class CostBreakdown:
    """Cost of one fragment (USD)."""

    qpu_usd: float
    classical_usd: float

    @property
    def total_usd(self) -> float:
        """Total cost in USD."""
        return self.qpu_usd + self.classical_usd


class CostModel:
    """Converts execution-time estimates into USD.

    Parameters
    ----------
    usd_per_qpu_second:
        Billing rate for QPU time.  The default (5.0 USD/s) corresponds to
        premium / dedicated-access pricing of utility-scale systems and is the
        rate at which the paper's ">1M USD for >60 h" claim is internally
        consistent (60 h × 3600 s/h × 5 USD/s ≈ 1.08M USD).
    usd_per_classical_hour:
        Cost of the classical co-processing (cloud CPU time).
    """

    def __init__(self, usd_per_qpu_second: float = 5.0, usd_per_classical_hour: float = 3.0):
        if usd_per_qpu_second < 0 or usd_per_classical_hour < 0:
            raise ValueError("billing rates must be non-negative")
        self.usd_per_qpu_second = float(usd_per_qpu_second)
        self.usd_per_classical_hour = float(usd_per_classical_hour)

    def fragment_cost(self, estimate: ExecutionEstimate) -> CostBreakdown:
        """Cost of a single fragment's execution."""
        qpu = estimate.qpu_seconds * self.usd_per_qpu_second
        classical = (estimate.classical_seconds + estimate.queue_seconds) / 3600.0 * self.usd_per_classical_hour
        return CostBreakdown(qpu_usd=qpu, classical_usd=classical)

    def dataset_cost(self, estimates: list[ExecutionEstimate]) -> CostBreakdown:
        """Aggregate cost over a collection of fragments."""
        parts = [self.fragment_cost(e) for e in estimates]
        return CostBreakdown(
            qpu_usd=sum(p.qpu_usd for p in parts),
            classical_usd=sum(p.classical_usd for p in parts),
        )
