"""Qubit layout and SWAP routing on the heavy-hex device.

The pipeline's ansatz entangles adjacent logical qubits only (linear
EfficientSU2), so the routing problem reduces to finding a chain of physically
coupled qubits long enough to host the register.  On a heavy-hex lattice such
chains exist up to 109 qubits, but the *available* chain may be shorter when
some physical qubits are unusable (calibration defects) — which is precisely
why the paper's margin strategy (Sec. 5.3) allocates 5–10 extra qubits: a
larger allocation lets the layout stage route around defects instead of
inserting SWAPs.

:class:`LinearChainRouter` models this concretely: given a register width, a
margin, and a set of defective physical qubits, it finds the best chain in the
defect-free subgraph of the allocated region and reports how many logical
couplings end up non-adjacent (each costing one SWAP, i.e. three extra ECR
pulses on the critical path).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.exceptions import TranspilerError
from repro.hardware.coupling import heavy_hex_coupling_map, longest_chain


@dataclass(frozen=True)
class RoutingResult:
    """Outcome of laying out a linear register on the device."""

    logical_qubits: int
    allocated_qubits: int
    physical_chain: tuple[int, ...]
    swap_count: int
    defective_qubits: tuple[int, ...]

    @property
    def used_margin(self) -> int:
        """Extra qubits allocated beyond the logical register width."""
        return self.allocated_qubits - self.logical_qubits


class LinearChainRouter:
    """Routes linear-entanglement registers onto the heavy-hex coupling map."""

    def __init__(self, coupling: nx.Graph | None = None):
        self.coupling = coupling if coupling is not None else heavy_hex_coupling_map()

    def route(
        self,
        logical_qubits: int,
        margin: int = 0,
        defective_qubits: tuple[int, ...] | list[int] = (),
    ) -> RoutingResult:
        """Lay out ``logical_qubits`` adjacent qubits, allocating ``margin`` spares.

        The allocation is the first ``logical_qubits + margin`` qubits of the
        canonical device chain; defective qubits inside the allocation are
        excluded and the router finds the longest usable chain in what remains.
        Any shortfall is covered by bridging over a defect, which costs one
        SWAP per bridged coupling.
        """
        if logical_qubits <= 0:
            raise TranspilerError(f"register width must be positive, got {logical_qubits}")
        if margin < 0:
            raise TranspilerError(f"margin must be >= 0, got {margin}")
        allocated = logical_qubits + margin
        if allocated > self.coupling.number_of_nodes():
            raise TranspilerError(
                f"allocation of {allocated} qubits exceeds the {self.coupling.number_of_nodes()}-qubit device"
            )

        device_chain = longest_chain(self.coupling, min(allocated + 16, 109))
        allocation = device_chain[:allocated]
        defects = tuple(sorted(set(int(q) for q in defective_qubits) & set(allocation)))
        usable = [q for q in allocation if q not in defects]

        if len(usable) >= logical_qubits:
            # Count breaks: consecutive usable qubits that are not coupled
            # (a defect was bridged over). Each break inside the first
            # ``logical_qubits`` positions costs one SWAP.
            chain = usable[:logical_qubits]
            swaps = sum(
                1 for a, b in zip(chain[:-1], chain[1:]) if not self.coupling.has_edge(a, b)
            )
            return RoutingResult(
                logical_qubits=logical_qubits,
                allocated_qubits=allocated,
                physical_chain=tuple(chain),
                swap_count=swaps,
                defective_qubits=defects,
            )

        # Not enough usable qubits inside the allocation: reuse defective
        # positions (they still function, just poorly) and charge one SWAP per
        # defective qubit that had to be kept.
        chain = allocation[:logical_qubits]
        forced_defects = [q for q in chain if q in defects]
        return RoutingResult(
            logical_qubits=logical_qubits,
            allocated_qubits=allocated,
            physical_chain=tuple(chain),
            swap_count=len(forced_defects),
            defective_qubits=defects,
        )
