"""IBM Eagle r3 hardware emulation: topology, transpilation, noise, timing, cost."""

from repro.hardware.coupling import heavy_hex_coupling_map, EAGLE_QUBITS
from repro.hardware.basis import NATIVE_GATES, translate_to_native, native_depth_contribution
from repro.hardware.routing import LinearChainRouter, RoutingResult
from repro.hardware.transpiler import Transpiler, TranspiledCircuit
from repro.hardware.timing import ExecutionTimeModel, ExecutionSettings
from repro.hardware.cost import CostModel
from repro.hardware.eagle import EagleDevice, EagleEmulatorBackend

__all__ = [
    "heavy_hex_coupling_map",
    "EAGLE_QUBITS",
    "NATIVE_GATES",
    "translate_to_native",
    "native_depth_contribution",
    "LinearChainRouter",
    "RoutingResult",
    "Transpiler",
    "TranspiledCircuit",
    "ExecutionTimeModel",
    "ExecutionSettings",
    "CostModel",
    "EagleDevice",
    "EagleEmulatorBackend",
]
