"""Execution-time model for the two-stage hardware workflow.

The paper reports a wall-clock execution time per fragment (Tables 1–3) that
spans 4,000 s to over 200,000 s, and states that total QPU time exceeds 60
hours.  The wall-clock number is dominated by three components:

1. *QPU sampling time* — shots × (circuit duration + readout/reset), summed
   over the ~220 optimiser iterations of stage 1 plus the 100,000-shot final
   sampling of stage 2;
2. *classical co-processing* — COBYLA updates, job assembly and result
   handling between iterations;
3. *queueing / calibration interruptions* — a heavy-tailed component that
   produces the occasional 10–40× outlier (e.g. 4y79 at 207,445 s).

:class:`ExecutionTimeModel` reproduces each component analytically and
deterministically (the queue component is keyed on the PDB ID), so the
regenerated tables show the same gradient and the same kind of outliers as the
paper without any hidden randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.rng import stable_fraction


@dataclass(frozen=True)
class ExecutionSettings:
    """Workload parameters of the production (paper) runs."""

    iterations: int = 220
    base_shots: int = 2048
    shots_per_qubit: int = 40
    final_shots: int = 100_000
    iteration_overhead_s: float = 3.0

    def optimisation_shots(self, num_qubits: int) -> int:
        """Shots per expectation estimate; grows with register width."""
        return self.base_shots + self.shots_per_qubit * max(0, num_qubits)


@dataclass(frozen=True)
class ExecutionEstimate:
    """Breakdown of one fragment's execution time (seconds)."""

    qpu_seconds: float
    classical_seconds: float
    queue_seconds: float

    @property
    def total_seconds(self) -> float:
        """Wall-clock execution time (the paper's "Exec. Time" column)."""
        return self.qpu_seconds + self.classical_seconds + self.queue_seconds


class ExecutionTimeModel:
    """Analytic two-stage execution-time model for the Eagle processor."""

    def __init__(
        self,
        layer_time_us: float = 6.0,
        readout_reset_ms: float = 2.5,
        settings: ExecutionSettings | None = None,
    ):
        self.layer_time_us = float(layer_time_us)
        self.readout_reset_ms = float(readout_reset_ms)
        self.settings = settings or ExecutionSettings()

    def seconds_per_shot(self, depth: int) -> float:
        """Duration of one shot: circuit execution plus readout and reset."""
        return depth * self.layer_time_us * 1e-6 + self.readout_reset_ms * 1e-3

    def qpu_seconds(self, num_qubits: int, depth: int) -> float:
        """Pure QPU time of both workflow stages."""
        s = self.settings
        per_shot = self.seconds_per_shot(depth)
        stage1 = s.iterations * s.optimisation_shots(num_qubits) * per_shot
        stage2 = s.final_shots * per_shot
        return stage1 + stage2

    def classical_seconds(self) -> float:
        """Classical co-processing time across the optimisation loop."""
        return self.settings.iterations * self.settings.iteration_overhead_s

    def queue_seconds(self, pdb_id: str, base_seconds: float) -> float:
        """Deterministic heavy-tailed queue / interruption component.

        Roughly a quarter of fragments hit a long calibration or queueing
        window, multiplying their wall-clock time several-fold — matching the
        outlier pattern of Tables 1–3 (e.g. 4y79, 5c28, 4tmk).
        """
        frac = stable_fraction("exec-queue", pdb_id.lower())
        if frac > 0.90:
            return base_seconds * (15.0 + 25.0 * (frac - 0.90) / 0.10)
        if frac > 0.75:
            return base_seconds * (2.0 + 10.0 * (frac - 0.75) / 0.15)
        if frac > 0.50:
            return base_seconds * (0.3 + 1.0 * (frac - 0.50) / 0.25)
        return base_seconds * 0.15 * frac

    def estimate(self, pdb_id: str, num_qubits: int, depth: int) -> ExecutionEstimate:
        """Full execution-time estimate for one fragment."""
        qpu = self.qpu_seconds(num_qubits, depth)
        classical = self.classical_seconds()
        queue = self.queue_seconds(pdb_id, qpu + classical)
        return ExecutionEstimate(qpu_seconds=qpu, classical_seconds=classical, queue_seconds=queue)
