"""Heavy-hex coupling topology of the 127-qubit IBM Eagle processor.

The Eagle family uses a *heavy-hexagon* lattice: hexagonal plaquettes whose
edges carry an extra qubit, giving a maximum connectivity degree of 3.  The
127-qubit device is laid out as seven long rows of 14–15 qubits joined by
4-qubit connector rows, with the connector spokes alternating between columns
(0, 4, 8, 12) and (2, 6, 10, 14) from one gap to the next.

:func:`heavy_hex_coupling_map` builds that graph with :mod:`networkx`; the
transpiler uses it for qubit layout and SWAP routing, and the margin strategy
(Sec. 5.3) exploits its structure: adding a few spare qubits to a job lets the
layout stage pick a longer defect-free chain.
"""

from __future__ import annotations

import networkx as nx

#: Number of physical qubits on the Eagle r3 processor.
EAGLE_QUBITS: int = 127

#: Number of long (dense) rows.
_LONG_ROWS = 7
#: Columns per full long row.
_ROW_WIDTH = 15


def _long_row_columns(row: int) -> list[int]:
    """Columns present in a given long row (first and last rows have 14 qubits)."""
    if row == 0:
        return list(range(0, _ROW_WIDTH - 1))  # columns 0..13
    if row == _LONG_ROWS - 1:
        return list(range(1, _ROW_WIDTH))  # columns 1..14
    return list(range(_ROW_WIDTH))


def _spoke_columns(gap: int) -> list[int]:
    """Connector-spoke columns between long rows ``gap`` and ``gap + 1``."""
    return [0, 4, 8, 12] if gap % 2 == 0 else [2, 6, 10, 14]


def heavy_hex_coupling_map() -> nx.Graph:
    """Build the 127-qubit heavy-hex coupling graph.

    Nodes are integer physical-qubit indices 0..126; node attributes ``row``
    and ``column`` record the lattice position (connector qubits get a
    half-integer row).  Edges are undirected two-qubit couplings.
    """
    graph = nx.Graph()
    index = 0
    row_nodes: list[dict[int, int]] = []

    # Long rows interleaved with connector rows, numbered top to bottom.
    for row in range(_LONG_ROWS):
        columns = _long_row_columns(row)
        nodes: dict[int, int] = {}
        for col in columns:
            graph.add_node(index, row=float(row), column=col)
            nodes[col] = index
            index += 1
        # Horizontal edges along the long row.
        for a, b in zip(columns[:-1], columns[1:]):
            graph.add_edge(nodes[a], nodes[b])
        row_nodes.append(nodes)

        if row < _LONG_ROWS - 1:
            for col in _spoke_columns(row):
                graph.add_node(index, row=row + 0.5, column=col)
                # The connector couples to the matching column above; the link
                # to the row below is added on the next iteration via lookup.
                if col in nodes:
                    graph.add_edge(nodes[col], index)
                graph.nodes[index]["pending_column"] = col
                index += 1

    # Second pass: connect each connector qubit to the long row beneath it.
    for node, data in graph.nodes(data=True):
        if data["row"] != int(data["row"]):  # connector rows have half-integer rows
            below_row = int(data["row"] + 0.5)
            col = data["column"]
            below_nodes = row_nodes[below_row]
            if col in below_nodes:
                graph.add_edge(node, below_nodes[col])

    assert graph.number_of_nodes() == EAGLE_QUBITS, graph.number_of_nodes()
    return graph


def snake_path(graph: nx.Graph) -> list[int]:
    """The canonical boustrophedon ("snake") chain through the heavy-hex lattice.

    Traverses each long row in alternating direction and drops to the next row
    through the outermost available connector spoke.  On the 127-qubit Eagle
    layout this visits all 103 long-row qubits plus one connector per gap —
    a 109-qubit chain, comfortably larger than the largest fragment register
    (102 qubits plus margin).
    """
    # Group nodes by row.
    rows: dict[float, dict[int, int]] = {}
    for node, data in graph.nodes(data=True):
        rows.setdefault(data["row"], {})[data["column"]] = node

    long_rows = sorted(r for r in rows if r == int(r))
    path: list[int] = []
    for i, row in enumerate(long_rows):
        # Odd-indexed gaps carry their outer spoke at column 14, even-indexed
        # gaps at column 0, so traversing right-to-left on even rows and
        # left-to-right on odd rows always ends exactly on a spoke column.
        reverse = i % 2 == 0
        columns = sorted(rows[row], reverse=reverse)
        path.extend(rows[row][c] for c in columns)
        if i < len(long_rows) - 1:
            connector_row = rows[row + 0.5]
            drop_col = columns[-1]
            if drop_col not in connector_row:  # pragma: no cover - not on Eagle
                raise ValueError(f"no connector spoke at column {drop_col}")
            path.append(connector_row[drop_col])

    # Sanity check: every consecutive pair must be coupled.
    for a, b in zip(path[:-1], path[1:]):
        if not graph.has_edge(a, b):  # pragma: no cover - construction invariant
            raise ValueError(f"snake path broke adjacency between {a} and {b}")
    return path


def longest_chain(graph: nx.Graph, length: int, start_candidates: int = 8) -> list[int]:
    """Find a simple path of ``length`` nodes in the coupling graph (greedy DFS).

    Returns a list of physical qubit indices forming a chain of adjacent
    qubits.  Raises ``ValueError`` when no chain of the requested length can be
    found from the attempted starting points (cannot happen for the Eagle graph
    and lengths up to 109, but guards against malformed graphs).
    """
    if length <= 0:
        raise ValueError(f"chain length must be positive, got {length}")
    if length > graph.number_of_nodes():
        raise ValueError(
            f"requested chain of {length} qubits on a {graph.number_of_nodes()}-qubit device"
        )

    # Fast path: the canonical snake chain covers up to 109 qubits on Eagle.
    try:
        snake = snake_path(graph)
    except (KeyError, ValueError):
        snake = []
    if len(snake) >= length:
        return snake[:length]

    # Deterministic starting points: lowest-degree corner nodes first.
    starts = sorted(graph.nodes, key=lambda n: (graph.degree[n], n))[: max(start_candidates, 1)]
    best: list[int] = []

    def dfs(path: list[int], visited: set[int]) -> list[int] | None:
        if len(path) == length:
            return path
        # Prefer low-degree unvisited neighbours: keeps the chain hugging the
        # boundary of the heavy-hex lattice, which is where long paths live.
        neighbours = sorted(
            (n for n in graph.neighbors(path[-1]) if n not in visited),
            key=lambda n: (graph.degree[n], n),
        )
        for nxt in neighbours:
            visited.add(nxt)
            path.append(nxt)
            found = dfs(path, visited)
            if found is not None:
                return found
            path.pop()
            visited.remove(nxt)
        return None

    for start in starts:
        found = dfs([start], {start})
        if found is not None:
            return list(found)
        if not best:
            best = [start]
    raise ValueError(f"could not find a {length}-qubit chain in the coupling graph")
