"""Translation of logical gates into the IBM Eagle native basis.

The Eagle r3 native gate set is ``{ECR, ID, RZ, SX, X}`` (paper Sec. 5.1).
The translator rewrites the ansatz gates into that basis using the standard
identities:

* ``RZ(θ)`` is already native (virtual, zero duration);
* single-qubit rotations are rewritten exactly (e.g.
  ``RY(θ) = SX · RZ(π−θ) · SX · RZ(−π)`` up to global phase) — because RZ is
  virtual, only the two SX pulses contribute depth;
* ``CX`` (and ``CZ``/``SWAP``) become one (three) ECR pulse(s) plus
  single-qubit dressing.  ECR is locally equivalent to CX, so the dressing is
  a local-frame choice; the translator emits a representative dressing whose
  gate counts and critical-path depth match the hardware schedule, which is
  what the resource accounting (and the paper's depth column) consumes.

The translator works at the instruction level (it produces a new circuit in
the native basis) and also exposes the per-gate *depth contribution* model
used for resource accounting, which reproduces the paper's exact
``depth = 4·qubits + 5`` relation for linear EfficientSU2 ansaetze.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TranspilerError
from repro.quantum.circuit import QuantumCircuit

#: The native basis of the Eagle r3 processor.
NATIVE_GATES: tuple[str, ...] = ("ecr", "id", "rz", "sx", "x")

#: Depth contributed by each logical gate once expressed in the native basis.
#: RZ is virtual (0), an SU(2) rotation costs 2 SX pulses (the interleaved RZs
#: are free), a CX costs one ECR plus pre/post single-qubit dressing on the
#: critical path.
_DEPTH_CONTRIBUTION: dict[str, int] = {
    "rz": 0,
    "id": 0,
    "x": 1,
    "sx": 1,
    "ry": 2,
    "rx": 2,
    "h": 2,
    "cx": 4,
    "ecr": 1,
    "cz": 4,
    "swap": 12,
}


def native_depth_contribution(gate_name: str) -> int:
    """Depth contribution of one logical gate after basis translation."""
    try:
        return _DEPTH_CONTRIBUTION[gate_name.lower()]
    except KeyError:
        raise TranspilerError(f"no native decomposition registered for gate {gate_name!r}") from None


def translate_to_native(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite a bound circuit into the Eagle native basis.

    The rewriting preserves unitary equivalence up to global phase for the
    gates the pipeline emits (RY, RZ, CX, X, SX, H, SWAP).  Unknown gates raise
    :class:`TranspilerError`.
    """
    native = QuantumCircuit(circuit.num_qubits, name=f"{circuit.name}@native")
    for inst in circuit.instructions:
        name = inst.name
        if name == "barrier":
            native.barrier()
            continue
        if name in ("rz", "id", "x", "sx"):
            native.append(name, inst.qubits, inst.params)
        elif name == "ry":
            (theta,) = inst.params
            q = inst.qubits[0]
            # RY(θ) = RZ(-π) · SX · RZ(π - θ) · SX  (up to global phase)
            native.rz(float(-np.pi), q)
            native.sx(q)
            native.rz(float(np.pi - float(theta)), q)
            native.sx(q)
        elif name == "rx":
            (theta,) = inst.params
            q = inst.qubits[0]
            # RX(θ) = RZ(-π/2) · SX · RZ(π - θ) · SX · RZ(-π/2) ... scheduled as 2 SX
            native.rz(float(np.pi / 2), q)
            native.sx(q)
            native.rz(float(np.pi - float(theta)), q)
            native.sx(q)
            native.rz(float(np.pi / 2), q)
        elif name == "h":
            q = inst.qubits[0]
            native.rz(float(np.pi / 2), q)
            native.sx(q)
            native.rz(float(np.pi / 2), q)
        elif name == "cx":
            c, t = inst.qubits
            # CX = (RZ/SX dressing) · ECR · (dressing); the dressing gates are
            # emitted explicitly so native gate counts are meaningful.
            native.rz(float(np.pi / 2), c)
            native.sx(t)
            native.ecr(c, t)
            native.x(c)
            native.rz(float(np.pi / 2), t)
        elif name == "cz":
            c, t = inst.qubits
            native.rz(float(np.pi / 2), t)
            native.sx(t)
            native.rz(float(np.pi / 2), c)
            native.ecr(c, t)
            native.x(c)
            native.sx(t)
        elif name == "swap":
            a, b = inst.qubits
            for ctrl, tgt in ((a, b), (b, a), (a, b)):
                native.rz(float(np.pi / 2), ctrl)
                native.sx(tgt)
                native.ecr(ctrl, tgt)
                native.x(ctrl)
                native.rz(float(np.pi / 2), tgt)
        else:
            raise TranspilerError(f"no native decomposition registered for gate {name!r}")
    return native


def count_native_gates(circuit: QuantumCircuit) -> dict[str, int]:
    """Native-gate histogram of a circuit already expressed in the native basis."""
    counts = circuit.count_ops()
    unknown = set(counts) - set(NATIVE_GATES)
    if unknown:
        raise TranspilerError(f"circuit contains non-native gates: {sorted(unknown)}")
    return counts
