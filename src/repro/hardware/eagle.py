"""The emulated IBM Eagle r3 device and its sampling backend.

:class:`EagleDevice` bundles the topology, native basis, noise model, timing
and cost models of the 127-qubit processor the paper runs on.
:class:`EagleEmulatorBackend` is the execution backend used by the VQE driver
when emulating hardware: it transpiles the incoming circuit, simulates the
ideal distribution with the MPS engine, perturbs the sampled bitstrings with
the device noise model, and records per-job execution metadata (depth, SWAPs,
estimated QPU seconds) that the dataset builder stores alongside each
prediction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.cost import CostModel
from repro.hardware.coupling import EAGLE_QUBITS, heavy_hex_coupling_map
from repro.hardware.routing import LinearChainRouter
from repro.hardware.timing import ExecutionTimeModel
from repro.hardware.transpiler import TranspiledCircuit, Transpiler
from repro.quantum.backend import Backend, MPSBackend
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.noise import NoiseModel


@dataclass
class EagleDevice:
    """Static description of the emulated processor."""

    name: str = "ibm_eagle_r3_emulated"
    num_qubits: int = EAGLE_QUBITS
    basis_gates: tuple[str, ...] = ("ecr", "id", "rz", "sx", "x")
    noise_model: NoiseModel = field(default_factory=NoiseModel.eagle_r3)
    timing_model: ExecutionTimeModel = field(default_factory=ExecutionTimeModel)
    cost_model: CostModel = field(default_factory=CostModel)
    defective_qubits: tuple[int, ...] = ()

    def transpiler(self, ancilla_margin: int = 5) -> Transpiler:
        """A transpiler targeting this device."""
        router = LinearChainRouter(heavy_hex_coupling_map())
        return Transpiler(router=router, ancilla_margin=ancilla_margin)


@dataclass(frozen=True)
class JobRecord:
    """Execution metadata of one sampling job on the emulator."""

    num_qubits: int
    shots: int
    reported_depth: int
    swap_count: int
    noisy: bool


class EagleEmulatorBackend(Backend):
    """Noisy sampling backend emulating the utility-level processor."""

    name = "eagle_emulator"

    def __init__(
        self,
        device: EagleDevice | None = None,
        ancilla_margin: int = 5,
        max_bond_dimension: int = 16,
        noise_enabled: bool = True,
    ):
        self.device = device or EagleDevice()
        self.noise_enabled = bool(noise_enabled)
        self._transpiler = self.device.transpiler(ancilla_margin=ancilla_margin)
        self._mps = MPSBackend(max_bond_dimension=max_bond_dimension)
        self._transpile_cache: dict[tuple[str, int], TranspiledCircuit] = {}
        self.job_records: list[JobRecord] = []

    # -- transpilation -----------------------------------------------------------

    def transpile(self, circuit: QuantumCircuit) -> TranspiledCircuit:
        """Transpile (with caching keyed on circuit name and width)."""
        key = (circuit.name, circuit.num_qubits)
        cached = self._transpile_cache.get(key)
        if cached is None:
            cached = self._transpiler.transpile(
                circuit, defective_qubits=self.device.defective_qubits
            )
            self._transpile_cache[key] = cached
        return cached

    # -- execution -----------------------------------------------------------------

    def sample_array(self, circuit: QuantumCircuit, shots: int, rng: np.random.Generator) -> np.ndarray:
        transpiled = self.transpile(circuit)
        samples = self._mps.sample_array(circuit, shots, rng)
        if self.noise_enabled:
            samples = self.device.noise_model.apply(
                samples,
                rng,
                depth=transpiled.reported_depth,
                two_qubit_gates_per_qubit=transpiled.two_qubit_gates_per_qubit,
            )
        self.job_records.append(
            JobRecord(
                num_qubits=circuit.num_qubits,
                shots=shots,
                reported_depth=transpiled.reported_depth,
                swap_count=transpiled.routing.swap_count,
                noisy=self.noise_enabled,
            )
        )
        return samples

    # -- reporting -------------------------------------------------------------------

    def total_shots(self) -> int:
        """Total shots executed across all jobs on this backend instance."""
        return sum(job.shots for job in self.job_records)

    def clear_job_records(self) -> None:
        """Reset the per-job execution log."""
        self.job_records.clear()
