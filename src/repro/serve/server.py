"""``repro-serve``: the always-on network job service.

The file-queue fleet (PR 4–5) proved the engine's exactly-once story across
independent processes, but it needs a *shared filesystem* — the one thing a
service serving many remote clients cannot assume.  :class:`ReproServer` is
the socket equivalent of the spool directory: a long-running daemon that

* accepts length-prefixed job submissions (:mod:`repro.serve.protocol`) from
  many concurrent client sessions,
* multiplexes them onto **one shared worker pool** (a process pool with the
  same registry-snapshot replication the local pool transport uses, or
  in-process threads for ``workers=0``) and **one shared**
  :class:`~repro.engine.cache.ResultCache` — a job any client ever completed
  is served to every later client without re-execution,
* applies per-client **admission control**: at most ``max_inflight`` jobs in
  flight per client id, and a bounded server-wide backlog (``max_pending``)
  — a submission over either limit is rejected with an explicit ``busy``
  frame instead of an unbounded queue, and
* streams one ``result`` frame per job back to its submitting client as it
  completes, in completion order.

The submitting side is ``PipelineConfig.transport = "network"``
(:class:`~repro.engine.transports.network.NetworkTransport`); the session /
journal / resume semantics are untouched because the transport speaks the
same ``(index, outcome | RemoteJobError)`` completion language as every
other transport.  Result records reuse the spool's canonical JSON encoding,
so network results are bit-identical to file-queue (and serial) results.

Threading model: one acceptor thread; per connection one reader thread
(frames in) and one sender thread (frames out, decoupled by a queue so a
stalled client can never block another client's completions); the shared
executor pool completes jobs and hands records back through per-future
callbacks.  All admission counters live behind one server lock.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import threading
import uuid
from pathlib import Path
from typing import Any, Callable

from repro.engine.cache import ResultCache
from repro.exceptions import EngineError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.utils.io import _NumpyJSONEncoder
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Default per-client in-flight job cap (the admission-control window a
#: server advertises in its ``welcome`` frame).
DEFAULT_MAX_INFLIGHT = 32

#: Default server-wide backlog cap across all clients.
DEFAULT_MAX_PENDING = 1024


def _execute(spec: Any) -> Any:
    # Late import: registers the built-in job kinds in pool workers too.
    from repro.engine.core import execute_job

    return execute_job(spec)


class _ClientConnection:
    """One connected client: a reader thread, a sender thread, a job window."""

    def __init__(self, server: "ReproServer", sock: socket.socket, address: Any):
        self.server = server
        self.sock = sock
        self.address = address
        self.client_id = f"{address[0]}:{address[1]}" if isinstance(address, tuple) else str(address)
        #: Jobs accepted from this client and not yet finished (server lock).
        self.inflight = 0
        #: index -> Future for jobs still in the pool (server lock).
        self.futures: dict[int, Any] = {}
        self.closed = threading.Event()
        self._outbox: queue.Queue = queue.Queue()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"serve-read-{self.client_id}", daemon=True
        )
        self._sender = threading.Thread(
            target=self._send_loop, name=f"serve-send-{self.client_id}", daemon=True
        )

    def start(self) -> None:
        self._sender.start()
        self._reader.start()

    def send(self, message: dict[str, Any]) -> None:
        """Enqueue one outbound frame (never blocks the caller)."""
        self._outbox.put(message)

    def _send_loop(self) -> None:
        while True:
            message = self._outbox.get()
            if message is None:
                return
            try:
                send_message(self.sock, message)
            except (OSError, ProtocolError):
                self.close()
                return

    def _read_loop(self) -> None:
        try:
            if not self._handshake():
                return
            while not self.closed.is_set():
                message = recv_message(self.sock)
                kind = message.get("type")
                if kind == "job":
                    self.server._accept_job(self, message)
                elif kind in ("cache_get", "cache_put", "cache_stats"):
                    self.server._handle_cache(self, message)
                elif kind == "bye":
                    return
                else:
                    self.send({"type": "error", "reason": f"unexpected frame {kind!r}"})
                    return
        except (ConnectionError, OSError):
            pass  # client went away; cleanup below
        except ProtocolError as exc:
            self.send({"type": "error", "reason": str(exc)})
        finally:
            self.close()

    def _handshake(self) -> bool:
        hello = recv_message(self.sock)
        if hello.get("type") != "hello":
            self.send({"type": "error", "reason": "expected a hello frame"})
            return False
        if hello.get("protocol") != PROTOCOL_VERSION:
            self.send({
                "type": "error",
                "reason": (
                    f"protocol version mismatch: client speaks "
                    f"{hello.get('protocol')!r}, server speaks {PROTOCOL_VERSION}"
                ),
            })
            return False
        client_id = hello.get("client_id")
        if client_id:
            self.client_id = str(client_id)
        self.send({
            "type": "welcome",
            "protocol": PROTOCOL_VERSION,
            "server_id": self.server.server_id,
            "max_inflight": self.server.max_inflight,
        })
        logger.info("serve %s: client %s connected", self.server.server_id, self.client_id)
        return True

    def close(self) -> None:
        if self.closed.is_set():
            return
        self.closed.set()
        self.server._forget_client(self)
        self._outbox.put(None)  # stop the sender (if idle in get())
        if threading.current_thread() is not self._sender and self._sender.is_alive():
            # Let already-queued frames (a final error/result) reach the wire
            # before the socket goes away; a stalled client forfeits them.
            self._sender.join(timeout=1.0)
        for how in (lambda: self.sock.shutdown(socket.SHUT_RDWR), self.sock.close):
            try:
                how()
            except OSError:
                pass


class ReproServer:
    """The always-on job service; see the module docstring for the contract.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` binds an ephemeral port (read the chosen
        one back from :attr:`port` after :meth:`start` — handy in tests).
    workers:
        Size of the shared execution pool.  ``> 0`` builds a process pool
        with the parent's backend/executor registries replicated into every
        worker (exactly like the local ``pool`` transport); ``0`` executes
        in-process on a small thread pool — no isolation or parallel
        speed-up, but runtime registrations (test doubles, injected
        executors) stay visible.
    max_inflight:
        Per-client admission window, advertised in the ``welcome`` frame.
    max_pending:
        Server-wide cap on accepted-but-unfinished jobs across all clients.
    cache:
        The shared :class:`ResultCache` (instance, directory path, or
        ``None`` to serve without one).
    execute:
        Injectable job executor (tests); defaults to the engine's
        :func:`~repro.engine.core.execute_job`.  Must be picklable when
        ``workers > 0``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 0,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_pending: int = DEFAULT_MAX_PENDING,
        cache: ResultCache | str | Path | None = None,
        execute: Callable[[Any], Any] | None = None,
    ):
        self.host = host
        self.port = int(port)
        self.workers = max(0, int(workers))
        self.max_inflight = max(1, int(max_inflight))
        self.max_pending = max(1, int(max_pending))
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache = cache
        self._execute = execute or _execute
        self.server_id = f"serve-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self._lock = threading.Lock()
        self._clients: set[_ClientConnection] = set()
        self._pending_total = 0
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._pool: Any = None
        self._shutdown = threading.Event()
        self.clients_served = 0
        self.jobs_accepted = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_rejected = 0
        self.cache_hits = 0
        self.cache_gets = 0
        self.cache_puts = 0

    # -- lifecycle -------------------------------------------------------------------

    def start(self) -> "ReproServer":
        """Bind, build the shared pool, and start accepting clients."""
        if self._listener is not None:
            raise EngineError("repro-serve was already started")
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            listener.bind((self.host, self.port))
        except OSError as exc:
            listener.close()
            raise EngineError(
                f"repro-serve cannot bind {self.host}:{self.port}: {exc}"
            ) from exc
        listener.listen(128)
        # A blocked accept() is not reliably woken by close() from another
        # thread; a short timeout lets the accept loop notice shutdown.
        listener.settimeout(0.2)
        self.port = listener.getsockname()[1]
        self._listener = listener
        self._pool = self._build_pool()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        logger.info(
            "repro-serve %s: listening on %s:%d (%s, max %d in flight per "
            "client, %d pending total)",
            self.server_id, self.host, self.port,
            f"{self.workers} worker processes" if self.workers else "in-process execution",
            self.max_inflight, self.max_pending,
        )
        return self

    def _build_pool(self) -> Any:
        if self.workers <= 0:
            from concurrent.futures import ThreadPoolExecutor

            return ThreadPoolExecutor(max_workers=4, thread_name_prefix="serve-exec")
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        from repro.engine.core import _picklable
        from repro.engine.registry import (
            executor_snapshot,
            registry_snapshot,
            restore_registries,
        )

        return ProcessPoolExecutor(
            max_workers=self.workers,
            # Spawned (not forked) workers: fork would copy the listening
            # socket and every connected client fd into each worker as it is
            # lazily created, so a SIGKILLed server would leave orphans
            # holding the port (EADDRINUSE on restart, and a listen queue
            # nobody accepts from) and half-open client connections that
            # never see EOF.
            mp_context=multiprocessing.get_context("spawn"),
            initializer=restore_registries,
            initargs=(
                _picklable(registry_snapshot(), "backend"),
                _picklable(executor_snapshot(), "executor"),
            ),
        )

    def serve_forever(self) -> None:
        """Block until :meth:`shutdown` (the CLI's main loop)."""
        if self._listener is None:
            self.start()
        self._shutdown.wait()

    def shutdown(self) -> None:
        """Stop accepting, disconnect every client, tear the pool down."""
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            clients = list(self._clients)
        for conn in clients:
            conn.close()
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        logger.info("repro-serve %s: shut down (%s)", self.server_id, self.stats())

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    # -- the accept loop -------------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                sock, address = self._listener.accept()
            except (socket.timeout, TimeoutError):
                continue
            except OSError:
                return  # listener closed by shutdown()
            try:
                sock.settimeout(None)  # accepted sockets block; frames are small
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
            conn = _ClientConnection(self, sock, address)
            with self._lock:
                self._clients.add(conn)
                self.clients_served += 1
            conn.start()

    def _forget_client(self, conn: _ClientConnection) -> None:
        """Disconnect cleanup: withdraw whatever has not started executing."""
        with self._lock:
            self._clients.discard(conn)
            futures = list(conn.futures.values())
        for future in futures:
            # Cancels queued-but-unstarted jobs; running ones finish (their
            # callbacks find the connection closed and only settle counters).
            future.cancel()

    # -- job intake and completion ---------------------------------------------------

    def _accept_job(self, conn: _ClientConnection, message: dict[str, Any]) -> None:
        index = message.get("index")
        if not isinstance(index, int):
            raise ProtocolError(f"job frame without an integer index: {index!r}")
        spec = message.get("spec")
        with self._lock:
            if conn.inflight >= self.max_inflight:
                reason = (
                    f"client quota exceeded ({conn.inflight} jobs in flight, "
                    f"max {self.max_inflight} per client)"
                )
            elif self._pending_total >= self.max_pending:
                reason = (
                    f"queue full ({self._pending_total} jobs pending, "
                    f"max {self.max_pending} server-wide)"
                )
            else:
                reason = None
                conn.inflight += 1
                self._pending_total += 1
                self.jobs_accepted += 1
        if reason is not None:
            with self._lock:
                self.jobs_rejected += 1
            conn.send({"type": "busy", "index": index, "reason": f"server busy: {reason}"})
            return
        key, kind, poisoned = self._fingerprint(spec)
        if poisoned is not None:
            # The crash-loop lesson from the file-queue fleet, applied here
            # from day one: a spec whose content_hash() raises resolves as a
            # failed *result*, it never takes the service down.
            self._finish(conn, index, poisoned)
            return
        if self.cache is not None and key is not None:
            payload = self.cache.get(key)
            if payload is not None:
                with self._lock:
                    self.cache_hits += 1
                self._finish(conn, index, {
                    "status": "completed", "payload": payload,
                    "spec_hash": key, "kind": kind, "cached": True,
                })
                return
        try:
            future = self._pool.submit(self._execute, spec)
        except RuntimeError as exc:  # pool already shut down
            self._finish(conn, index, {
                "status": "failed", "error_type": "EngineError",
                "error_message": f"server is shutting down: {exc}",
                "spec_hash": key, "kind": kind,
            })
            return
        with self._lock:
            conn.futures[index] = future
        future.add_done_callback(
            lambda f, conn=conn, index=index, key=key, kind=kind:
                self._on_done(conn, index, key, kind, f)
        )

    def _handle_cache(self, conn: _ClientConnection, message: dict[str, Any]) -> None:
        """Serve one :class:`~repro.engine.cache.RemoteTier` request.

        The server's local tier doubles as a shared cache tier for remote
        clients and file-queue workers: ``cache_get`` reads through it,
        ``cache_put`` writes through it (after the same canonical JSON
        normalisation job results get), ``cache_stats`` reports it.  Replies
        ride the per-connection outbox, so they interleave safely with
        concurrent ``result`` frames.
        """
        kind = message.get("type")
        if kind == "cache_stats":
            with self._lock:
                self.cache_gets += 1
            stats = None
            if self.cache is not None:
                entries = self.cache.entries()
                stats = {
                    "root": str(getattr(self.cache, "root", "")),
                    "entries": len(entries),
                    "total_bytes": sum(e.size_bytes for e in entries),
                    **self.cache.stats.as_dict(),
                }
            conn.send({"type": "cache_stats", "stats": stats})
            return
        key = message.get("key")
        if not isinstance(key, str) or not key:
            raise ProtocolError(f"{kind} frame without a string key: {key!r}")
        if kind == "cache_get":
            with self._lock:
                self.cache_gets += 1
            payload = None
            if self.cache is not None:
                payload = self.cache.peek(key) if message.get("peek") else self.cache.get(key)
            conn.send({"type": "cache_payload", "key": key, "payload": payload})
            return
        stored = False
        if self.cache is not None:
            try:
                payload = message.get("payload")
                if not isinstance(payload, dict):
                    raise ProtocolError(f"cache_put payload must be a dict, got {type(payload).__name__}")
                # Same canonical encoding job results get on their way into
                # the cache, so a payload written by a remote worker is
                # byte-identical to one the server computed itself.
                payload = json.loads(json.dumps(payload, sort_keys=True, cls=_NumpyJSONEncoder))
                self.cache.put(key, payload)
                stored = True
            except Exception as exc:
                logger.warning(
                    "serve %s: cannot store remote cache_put %s: %s",
                    self.server_id, key[:16], exc,
                )
        with self._lock:
            self.cache_puts += 1
        conn.send({"type": "cache_ack", "key": key, "stored": stored})

    @staticmethod
    def _fingerprint(spec: Any) -> tuple[str | None, str | None, dict[str, Any] | None]:
        try:
            key = getattr(spec, "content_hash", lambda: None)()
            kind = getattr(spec, "kind", "fold")
        except Exception as exc:
            return None, None, {
                "status": "failed",
                "error_type": type(exc).__name__,
                "error_message": f"cannot fingerprint job spec: {exc}",
            }
        return key, kind, None

    def _on_done(
        self, conn: _ClientConnection, index: int, key: str | None, kind: str | None,
        future: Any,
    ) -> None:
        with self._lock:
            conn.futures.pop(index, None)
        if future.cancelled():
            self._finish(conn, index, {
                "status": "failed", "error_type": "CancelledError",
                "error_message": "job cancelled before execution "
                                 "(client disconnected or server shutting down)",
                "spec_hash": key, "kind": kind,
            })
            return
        exc = future.exception()
        if exc is not None:
            self._finish(conn, index, {
                "status": "failed", "error_type": type(exc).__name__,
                "error_message": str(exc), "spec_hash": key, "kind": kind,
            })
            return
        try:
            payload = future.result().to_payload()
        except Exception as payload_exc:
            self._finish(conn, index, {
                "status": "failed", "error_type": type(payload_exc).__name__,
                "error_message": f"cannot serialise the result payload: {payload_exc}",
                "spec_hash": key, "kind": kind,
            })
            return
        self._finish(conn, index, {
            "status": "completed", "payload": payload,
            "spec_hash": key, "kind": kind, "cached": False,
        }, cache_key=key)

    def _finish(
        self, conn: _ClientConnection, index: int, record: dict[str, Any],
        cache_key: str | None = None,
    ) -> None:
        """Settle one accepted job: normalise, cache, count, deliver."""
        record = dict(record)
        record.setdefault("server_id", self.server_id)
        try:
            # The spool's canonical encoding: network results rebuild to the
            # same bytes as file-queue results (and as the cache's own files).
            record = json.loads(json.dumps(record, sort_keys=True, cls=_NumpyJSONEncoder))
        except (TypeError, ValueError) as exc:
            record = {
                "status": "failed", "error_type": type(exc).__name__,
                "error_message": f"result payload is not JSON-serialisable: {exc}",
                "spec_hash": record.get("spec_hash"), "kind": record.get("kind"),
                "server_id": self.server_id,
            }
            cache_key = None
        if cache_key is not None and self.cache is not None and record["status"] == "completed":
            try:
                self.cache.put(cache_key, record["payload"])
            except Exception as exc:
                logger.warning(
                    "serve %s: cannot cache result %s: %s",
                    self.server_id, cache_key[:16], exc,
                )
            else:
                # Tells tier-aware clients the payload is already held by
                # this server's cache tier, so their write-through can skip
                # the redundant round trip back here.
                record["stored"] = True
        with self._lock:
            conn.inflight -= 1
            self._pending_total -= 1
            if record["status"] == "completed":
                self.jobs_completed += 1
            else:
                self.jobs_failed += 1
        if not conn.closed.is_set():
            conn.send({"type": "result", "index": index, "record": record})

    # -- reporting -------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Service-level counters (logs, tests, the CLI's exit summary)."""
        with self._lock:
            return {
                "server_id": self.server_id,
                "clients_served": self.clients_served,
                "jobs_accepted": self.jobs_accepted,
                "jobs_completed": self.jobs_completed,
                "jobs_failed": self.jobs_failed,
                "jobs_rejected": self.jobs_rejected,
                "cache_hits": self.cache_hits,
                "cache_gets": self.cache_gets,
                "cache_puts": self.cache_puts,
                "pending": self._pending_total,
            }
