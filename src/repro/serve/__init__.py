"""``repro-serve``: the always-on network job service.

:class:`ReproServer` accepts job submissions over a socket (no shared
filesystem), multiplexes many concurrent client sessions onto one shared
worker pool and one shared result cache, and streams spool-format result
records back per client.  The submitting side is
``PipelineConfig.transport = "network"``.  Wire format in
:mod:`repro.serve.protocol`; service semantics in :mod:`repro.serve.server`.
"""

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameBuffer,
    ProtocolError,
    encode_frame,
    recv_message,
    send_message,
)
from repro.serve.server import (
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_MAX_PENDING,
    ReproServer,
)

__all__ = [
    "DEFAULT_MAX_INFLIGHT",
    "DEFAULT_MAX_PENDING",
    "FrameBuffer",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReproServer",
    "encode_frame",
    "recv_message",
    "send_message",
]
