"""The ``repro-serve`` wire protocol: length-prefixed pickled frames.

The network transport needs exactly what the file-queue spool provides —
submit job specs, stream ``(index, outcome)`` completions back — minus the
shared filesystem.  The wire format mirrors the spool's file format:

* every message is one **frame**: a 4-byte big-endian length prefix followed
  by a pickled ``dict`` (specs are arbitrary registered classes, so the
  envelope travels as a pickle, exactly like a ``tasks/<id>.task`` file);
* **result records** inside those frames are first round-tripped through the
  same canonical JSON encoding the spool's ``results/<id>.json`` files use
  (``sort_keys``, :class:`~repro.utils.io._NumpyJSONEncoder`), so a client
  rebuilds byte-identical payloads whether a job travelled over a socket or
  a spool directory.

Like spool pickles, frames are **trusted local state**: bind ``repro-serve``
to localhost or a private network you control — never expose it to clients
you would not let write your spool directory.

Message types
-------------

================= =========== ==================================================
frame             direction   fields
================= =========== ==================================================
``hello``          c -> s     ``client_id``, ``protocol``
``welcome``        s -> c     ``protocol``, ``server_id``, ``max_inflight``
``job``            c -> s     ``index``, ``spec`` (pickled spec object)
``result``         s -> c     ``index``, ``record`` (spool-format result record)
``busy``           s -> c     ``index``, ``reason`` (admission-control rejection)
``error``          s -> c     ``reason`` (protocol violation; connection closes)
``bye``            c -> s     clean disconnect (submitter walked away)
``cache_get``      c -> s     ``key``, optional ``peek`` (stat-neutral lookup)
``cache_payload``  s -> c     ``key``, ``payload`` (``None`` on a miss)
``cache_put``      c -> s     ``key``, ``payload`` (canonical-JSON result payload)
``cache_ack``      s -> c     ``key``, ``stored`` (``False`` = dropped, retry elsewhere)
``cache_stats``    c <-> s    request has no fields; reply carries ``stats``
================= =========== ==================================================

The ``cache_*`` frames are how a
:class:`~repro.engine.cache.RemoteTier` reads and writes the server's local
cache tier — the request/reply pairs share one connection with job traffic
and are answered in arrival order through the same per-connection outbox.
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any

from repro.exceptions import EngineError

#: Protocol version spoken by this build; ``hello``/``welcome`` must agree.
PROTOCOL_VERSION = 1

#: Hard cap on a single frame.  A job spec or result record larger than this
#: is almost certainly a bug (the cache payloads these mirror are a few MB at
#: most); the cap keeps a corrupt or hostile length prefix from allocating
#: unbounded memory.
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(EngineError):
    """The peer sent bytes that are not a well-formed protocol frame."""


def encode_frame(message: dict[str, Any]) -> bytes:
    """One wire frame: length prefix + pickled message dict."""
    body = pickle.dumps(message)
    if len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(body)} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
        )
    return _LENGTH.pack(len(body)) + body


def send_message(sock: socket.socket, message: dict[str, Any]) -> None:
    """Write one frame (the caller serialises concurrent senders)."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(sock: socket.socket) -> dict[str, Any]:
    """Read one frame, blocking until it is complete.

    Raises ``ConnectionError`` on EOF and :class:`ProtocolError` on a frame
    that is oversized or does not decode to a message dict.
    """
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})"
        )
    body = _recv_exact(sock, length)
    try:
        message = pickle.loads(body)
    except Exception as exc:
        raise ProtocolError(f"cannot decode frame: {type(exc).__name__}: {exc}") from exc
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError(f"frame is not a message dict: {type(message).__name__}")
    return message


class FrameBuffer:
    """Incremental frame parser for a non-blocking reader.

    The client transport reads the socket in timeout-bounded slices (its
    ``poll`` must honour a deadline); whatever bytes arrive are fed here and
    complete messages are drained with :meth:`next_message` — partial frames
    wait for the next slice.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    def next_message(self) -> dict[str, Any] | None:
        """The next complete message, or ``None`` when more bytes are needed."""
        if len(self._buffer) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack(self._buffer[: _LENGTH.size])
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})"
            )
        end = _LENGTH.size + length
        if len(self._buffer) < end:
            return None
        body = bytes(self._buffer[_LENGTH.size : end])
        del self._buffer[:end]
        try:
            message = pickle.loads(body)
        except Exception as exc:
            raise ProtocolError(
                f"cannot decode frame: {type(exc).__name__}: {exc}"
            ) from exc
        if not isinstance(message, dict) or "type" not in message:
            raise ProtocolError(f"frame is not a message dict: {type(message).__name__}")
        return message
