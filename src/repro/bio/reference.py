"""Synthetic "experimental X-ray" reference structures.

The paper evaluates every predicted fragment against its experimentally
determined counterpart from PDBbind.  Those crystal structures cannot be
shipped offline, so this module generates a deterministic reference structure
per fragment (see DESIGN.md, substitution table):

* the reference Cα trace is the *ground state* of the same coarse-grained
  physical model the quantum pipeline optimises — which is exactly the
  relationship the paper relies on (the crystal structure is the free-energy
  minimum of the real energy landscape);
* a small, deterministic off-lattice perturbation (default 0.4 Å) emulates the
  deviation of a real crystal structure from an idealised lattice model;
* the generator is keyed on the PDB ID, so repeated calls — in tests, the
  dataset builder and the benchmarks — always produce the same reference.

The generator also exposes the *binding pocket* of the reference fragment
(centroid + principal axis + approach direction), which the synthetic ligand
builder uses to construct a ligand complementary to the experimental geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.sequence import ProteinSequence
from repro.bio.structure import Structure
from repro.exceptions import StructureError
from repro.utils.rng import rng_for


@dataclass(frozen=True)
class BindingPocket:
    """Geometric description of the reference fragment's ligand-binding pocket."""

    center: np.ndarray  # pocket centroid (Angstroms)
    axis: np.ndarray  # principal axis of the fragment (unit vector)
    approach: np.ndarray  # direction from which the ligand approaches (unit vector)
    radius: float  # approximate pocket radius (Angstroms)


@dataclass(frozen=True)
class ReferenceRecord:
    """A generated reference: structure, its Cα ground-state trace and pocket."""

    pdb_id: str
    sequence: ProteinSequence
    structure: Structure
    ca_coords: np.ndarray
    pocket: BindingPocket
    ground_state_energy: float


class ReferenceStructureGenerator:
    """Deterministic per-PDB-ID reference ("experimental") structure factory.

    Parameters
    ----------
    jitter:
        Standard deviation (Å) of the off-lattice perturbation applied to the
        ground-state Cα trace.
    annealing_sweeps:
        Sweeps used when the fragment is too long for exhaustive enumeration.
    master_seed:
        Master seed from which all per-fragment generators are derived.
    """

    def __init__(self, jitter: float = 0.4, annealing_sweeps: int = 400, master_seed: int = 7):
        if jitter < 0:
            raise StructureError(f"jitter must be >= 0, got {jitter}")
        self.jitter = float(jitter)
        self.annealing_sweeps = int(annealing_sweeps)
        self.master_seed = int(master_seed)
        self._cache: dict[tuple[str, str], ReferenceRecord] = {}

    # -- public API ------------------------------------------------------------

    def generate(self, pdb_id: str, sequence: ProteinSequence | str, start_seq_id: int = 1) -> ReferenceRecord:
        """Generate (or fetch from cache) the reference record for a fragment."""
        seq = sequence if isinstance(sequence, ProteinSequence) else ProteinSequence(str(sequence))
        key = (pdb_id.lower(), str(seq))
        if key in self._cache:
            return self._cache[key]
        record = self._build(pdb_id.lower(), seq, start_seq_id)
        self._cache[key] = record
        return record

    def structure(self, pdb_id: str, sequence: ProteinSequence | str) -> Structure:
        """Convenience accessor returning only the reference structure."""
        return self.generate(pdb_id, sequence).structure

    # -- implementation ----------------------------------------------------------

    def _build(self, pdb_id: str, seq: ProteinSequence, start_seq_id: int) -> ReferenceRecord:
        # Imported lazily to keep the bio <-> lattice package graph acyclic.
        from repro.lattice.classical import ClassicalFoldingSolver
        from repro.lattice.hamiltonian import LatticeHamiltonian
        from repro.lattice.reconstruction import reconstruct_structure

        hamiltonian = LatticeHamiltonian(seq)
        solver = ClassicalFoldingSolver(hamiltonian)
        seed = self.master_seed
        result = solver.solve(seed=seed, sweeps=self.annealing_sweeps)

        rng = rng_for(self.master_seed, "reference-jitter", pdb_id, str(seq))
        structure = reconstruct_structure(
            seq,
            result.ca_coords,
            structure_id=f"{pdb_id}_ref",
            start_seq_id=start_seq_id,
            center=True,
            jitter=self.jitter,
            rng=rng,
        )
        ca = structure.ca_coords()
        pocket = self._pocket_from_ca(ca, rng)
        record = ReferenceRecord(
            pdb_id=pdb_id,
            sequence=seq,
            structure=structure,
            ca_coords=ca,
            pocket=pocket,
            ground_state_energy=result.energy,
        )
        return record

    @staticmethod
    def _pocket_from_ca(ca: np.ndarray, rng: np.random.Generator) -> BindingPocket:
        """Derive the binding-pocket geometry from the reference Cα trace."""
        center = ca.mean(axis=0)
        centred = ca - center
        # Principal axis from the covariance of the Cα trace.
        _, _, vt = np.linalg.svd(centred, full_matrices=False)
        axis = vt[0]
        # Ligand approach: perpendicular to the principal axis, on the concave
        # side of the fragment (towards the centroid of the middle residues).
        mid = centred[len(centred) // 3 : 2 * len(centred) // 3 + 1].mean(axis=0)
        approach = mid - np.dot(mid, axis) * axis
        norm = np.linalg.norm(approach)
        if norm < 1e-6:
            # Straight fragments: pick a deterministic perpendicular.
            trial = np.array([0.0, 0.0, 1.0]) if abs(axis[2]) < 0.9 else np.array([1.0, 0.0, 0.0])
            approach = np.cross(axis, trial)
            norm = np.linalg.norm(approach)
        approach = approach / norm
        radius = float(np.max(np.linalg.norm(centred, axis=1)))
        return BindingPocket(center=center, axis=axis / np.linalg.norm(axis), approach=approach, radius=radius)
