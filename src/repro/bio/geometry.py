"""3D geometry kernels: rotations, superposition, angles, distances.

These are the vectorised numerical primitives shared by the lattice decoder,
the backbone reconstruction, the RMSD evaluator and the docking engine.  All
functions operate on ``(N, 3)`` float arrays and avoid Python-level loops.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import as_points


def rotation_matrix(axis: np.ndarray, angle: float) -> np.ndarray:
    """Rotation matrix for a rotation of ``angle`` radians about ``axis``.

    Uses the Rodrigues formula; ``axis`` need not be normalised.
    """
    axis = np.asarray(axis, dtype=float)
    norm = np.linalg.norm(axis)
    if norm == 0:
        raise ValueError("rotation axis must be non-zero")
    x, y, z = axis / norm
    c, s = np.cos(angle), np.sin(angle)
    C = 1.0 - c
    return np.array(
        [
            [x * x * C + c, x * y * C - z * s, x * z * C + y * s],
            [y * x * C + z * s, y * y * C + c, y * z * C - x * s],
            [z * x * C - y * s, z * y * C + x * s, z * z * C + c],
        ]
    )


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """A uniformly distributed random rotation matrix (via QR of a Gaussian)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def angle_between(a: np.ndarray, b: np.ndarray) -> float:
    """Angle in radians between vectors ``a`` and ``b``."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    na, nb = np.linalg.norm(a), np.linalg.norm(b)
    if na == 0 or nb == 0:
        raise ValueError("cannot compute the angle with a zero-length vector")
    cosang = np.clip(np.dot(a, b) / (na * nb), -1.0, 1.0)
    return float(np.arccos(cosang))


def dihedral_angle(p0: np.ndarray, p1: np.ndarray, p2: np.ndarray, p3: np.ndarray) -> float:
    """Dihedral angle (radians, in (-pi, pi]) defined by four points."""
    p0, p1, p2, p3 = (np.asarray(p, dtype=float) for p in (p0, p1, p2, p3))
    b0 = p1 - p0
    b1 = p2 - p1
    b2 = p3 - p2
    b1n = b1 / np.linalg.norm(b1)
    v = b0 - np.dot(b0, b1n) * b1n
    w = b2 - np.dot(b2, b1n) * b1n
    x = np.dot(v, w)
    y = np.dot(np.cross(b1n, v), w)
    return float(np.arctan2(y, x))


def pairwise_distances(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Euclidean distance matrix between point sets ``a`` (N,3) and ``b`` (M,3).

    With ``b`` omitted, computes the self-distance matrix of ``a``.  The
    computation is fully broadcast (no loops) and returns an ``(N, M)`` array.
    """
    a = as_points(a, "a")
    b = a if b is None else as_points(b, "b")
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))


def centroid(points: np.ndarray) -> np.ndarray:
    """Centroid of an (N, 3) point set."""
    return as_points(points).mean(axis=0)


def kabsch_rotation(mobile: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Optimal rotation aligning centred ``mobile`` onto centred ``reference``.

    Standard Kabsch algorithm via SVD with a proper-rotation (det = +1)
    correction.  Inputs must already be centred on their centroids.
    """
    mobile = as_points(mobile, "mobile")
    reference = as_points(reference, "reference")
    if mobile.shape != reference.shape:
        raise ValueError(
            f"point sets must match in shape: {mobile.shape} vs {reference.shape}"
        )
    h = mobile.T @ reference
    u, _s, vt = np.linalg.svd(h)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    correction = np.diag([1.0, 1.0, d])
    return vt.T @ correction @ u.T


def superimpose(mobile: np.ndarray, reference: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Superimpose ``mobile`` onto ``reference``.

    Returns ``(transformed, rotation, translation)`` such that
    ``transformed = mobile @ rotation.T + translation`` is optimally aligned
    with ``reference`` in the least-squares sense.
    """
    mobile = as_points(mobile, "mobile")
    reference = as_points(reference, "reference")
    mob_c = centroid(mobile)
    ref_c = centroid(reference)
    rot = kabsch_rotation(mobile - mob_c, reference - ref_c)
    translation = ref_c - rot @ mob_c
    transformed = mobile @ rot.T + translation
    return transformed, rot, translation


def apply_transform(points: np.ndarray, rotation: np.ndarray, translation: np.ndarray) -> np.ndarray:
    """Apply a rigid transform ``R x + t`` to an (N, 3) point set."""
    return as_points(points) @ np.asarray(rotation, dtype=float).T + np.asarray(translation, dtype=float)


def radius_of_gyration(points: np.ndarray) -> float:
    """Radius of gyration of a point set (unweighted)."""
    pts = as_points(points)
    c = pts.mean(axis=0)
    return float(np.sqrt(np.mean(np.sum((pts - c) ** 2, axis=1))))
