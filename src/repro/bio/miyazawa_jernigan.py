"""Miyazawa–Jernigan residue–residue contact energies.

The paper's interaction Hamiltonian term ``H_i`` (Sec. 4.3.1) and its
interaction-coverage analysis (Fig. 5) are both based on the
Miyazawa–Jernigan (MJ) statistical contact potential, the standard 20x20
energy matrix for coarse-grained protein models (Miyazawa & Jernigan, 1985).

Exact published MJ values are a 210-entry table; for a coarse-grained lattice
model only the *relative ordering* of contact energies matters (hydrophobic–
hydrophobic contacts are strongly favourable, polar/charged contacts are weak
or mildly favourable when complementary).  We therefore construct the matrix
from the same physical ingredients MJ encodes — hydropathy-driven burial plus
electrostatic complementarity — and anchor the overall scale to the well-known
MJ extremes (e.g. Leu–Leu / Phe–Phe ≈ −7 RT units, interactions involving Lys
≈ −2 RT units and weaker).  The matrix is symmetric, fully populated for all
400 ordered pairs, and dimensionless (units of RT).
"""

from __future__ import annotations

import numpy as np

from repro.bio.amino_acids import AA_ORDER, AMINO_ACIDS

#: Index of each one-letter code in the 20x20 matrix.
AA_INDEX: dict[str, int] = {code: i for i, code in enumerate(AA_ORDER)}


def _build_matrix() -> np.ndarray:
    """Construct the symmetric 20x20 contact-energy matrix (units of RT)."""
    n = len(AA_ORDER)
    hydro = np.array([AMINO_ACIDS[c].hydropathy for c in AA_ORDER])
    charge = np.array([AMINO_ACIDS[c].charge for c in AA_ORDER], dtype=float)
    aromatic = np.array([AMINO_ACIDS[c].aromatic for c in AA_ORDER], dtype=float)
    polar = np.array([AMINO_ACIDS[c].polar for c in AA_ORDER], dtype=float)

    # Hydrophobic burial: scaled so Ile/Leu/Val/Phe pairs land near -6..-7 RT.
    h_norm = (hydro + 4.5) / 9.0  # 0 (Arg) .. 1 (Ile)
    burial = -7.0 * np.outer(h_norm, h_norm)

    # Electrostatics: opposite charges attract (-1.5), like charges repel (+1.0).
    electro = np.outer(charge, charge)
    electro = np.where(electro < 0, -1.5 * np.abs(electro), 1.0 * electro)

    # Aromatic stacking bonus.
    stacking = -0.8 * np.outer(aromatic, aromatic)

    # Polar-polar hydrogen bonding: mild stabilisation.
    hbond = -0.5 * np.outer(polar, polar)

    matrix = burial + electro + stacking + hbond
    # MJ energies are all attractive or near zero; clip mild repulsion to a cap.
    matrix = np.minimum(matrix, 0.5)
    # Symmetry is exact by construction, but enforce it against rounding.
    matrix = 0.5 * (matrix + matrix.T)
    assert matrix.shape == (n, n)
    return np.ascontiguousarray(matrix)


#: The 20x20 symmetric contact energy matrix indexed by :data:`AA_INDEX`.
MJ_MATRIX: np.ndarray = _build_matrix()
MJ_MATRIX.setflags(write=False)


def contact_energy(a: str, b: str) -> float:
    """Contact energy (RT units) between residue types ``a`` and ``b``."""
    try:
        return float(MJ_MATRIX[AA_INDEX[a.upper()], AA_INDEX[b.upper()]])
    except KeyError as exc:
        raise KeyError(f"unknown amino-acid code in contact_energy: {exc}") from None


def interaction_matrix_for_sequence(sequence: str) -> np.ndarray:
    """Return the (L, L) matrix of pairwise contact energies for a sequence."""
    idx = np.array([AA_INDEX[c] for c in sequence.upper()])
    return MJ_MATRIX[np.ix_(idx, idx)].copy()
