"""The 20 standard amino acids and their physicochemical properties.

The property tables are the ones the pipeline actually consumes:

* Kyte–Doolittle hydropathy — used by the docking scorer to decide which
  residue pseudo-atoms are hydrophobic;
* residue mass and approximate side-chain volume — used by the reference
  structure generator and the ligand builder;
* polarity / charge classes — used by the dataset diversity analysis
  (Sec. 4.1 of the paper highlights polar and hydrophobic enrichment);
* hydrogen-bond donor/acceptor capability — used by the Vina-like scoring
  function's H-bond term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SequenceError


@dataclass(frozen=True)
class AminoAcid:
    """One standard amino acid and the properties used by the pipeline."""

    code: str  # one-letter code
    three: str  # three-letter code
    name: str
    mass: float  # average residue mass in Da (monomer minus water)
    volume: float  # approximate side-chain volume in cubic Angstroms
    hydropathy: float  # Kyte-Doolittle index
    charge: int  # formal charge at pH 7 (-1, 0, +1)
    polar: bool
    aromatic: bool
    hbond_donor: bool
    hbond_acceptor: bool

    @property
    def hydrophobic(self) -> bool:
        """Kyte–Doolittle positive residues count as hydrophobic."""
        return self.hydropathy > 0.0


_AA_ROWS = [
    # code three  name             mass     vol    hydro  q  polar  arom  don    acc
    ("A", "ALA", "Alanine",        71.079,  88.6,  1.8,   0, False, False, False, False),
    ("R", "ARG", "Arginine",       156.188, 173.4, -4.5,  1, True,  False, True,  False),
    ("N", "ASN", "Asparagine",     114.104, 114.1, -3.5,  0, True,  False, True,  True),
    ("D", "ASP", "Aspartate",      115.089, 111.1, -3.5, -1, True,  False, False, True),
    ("C", "CYS", "Cysteine",       103.145, 108.5, 2.5,   0, False, False, True,  True),
    ("Q", "GLN", "Glutamine",      128.131, 143.8, -3.5,  0, True,  False, True,  True),
    ("E", "GLU", "Glutamate",      129.116, 138.4, -3.5, -1, True,  False, False, True),
    ("G", "GLY", "Glycine",        57.052,  60.1,  -0.4,  0, False, False, False, False),
    ("H", "HIS", "Histidine",      137.141, 153.2, -3.2,  0, True,  True,  True,  True),
    ("I", "ILE", "Isoleucine",     113.159, 166.7, 4.5,   0, False, False, False, False),
    ("L", "LEU", "Leucine",        113.159, 166.7, 3.8,   0, False, False, False, False),
    ("K", "LYS", "Lysine",         128.174, 168.6, -3.9,  1, True,  False, True,  False),
    ("M", "MET", "Methionine",     131.199, 162.9, 1.9,   0, False, False, False, False),
    ("F", "PHE", "Phenylalanine",  147.177, 189.9, 2.8,   0, False, True,  False, False),
    ("P", "PRO", "Proline",        97.117,  112.7, -1.6,  0, False, False, False, False),
    ("S", "SER", "Serine",         87.078,  89.0,  -0.8,  0, True,  False, True,  True),
    ("T", "THR", "Threonine",      101.105, 116.1, -0.7,  0, True,  False, True,  True),
    ("W", "TRP", "Tryptophan",     186.213, 227.8, -0.9,  0, False, True,  True,  False),
    ("Y", "TYR", "Tyrosine",       163.176, 193.6, -1.3,  0, True,  True,  True,  True),
    ("V", "VAL", "Valine",         99.133,  140.0, 4.2,   0, False, False, False, False),
]

#: Mapping from one-letter code to :class:`AminoAcid`.
AMINO_ACIDS: dict[str, AminoAcid] = {
    row[0]: AminoAcid(*row) for row in _AA_ROWS
}

#: Canonical ordering of the 20 one-letter codes (alphabetical by code).
AA_ORDER: tuple[str, ...] = tuple(sorted(AMINO_ACIDS))

#: Mapping from three-letter code to one-letter code.
THREE_TO_ONE: dict[str, str] = {aa.three: aa.code for aa in AMINO_ACIDS.values()}


def is_valid_residue(code: str) -> bool:
    """True if ``code`` is a standard one-letter amino-acid code."""
    return code.upper() in AMINO_ACIDS


def get(code: str) -> AminoAcid:
    """Return the :class:`AminoAcid` for a one-letter code, raising on unknown codes."""
    key = code.upper()
    try:
        return AMINO_ACIDS[key]
    except KeyError:
        raise SequenceError(f"unknown amino-acid code: {code!r}") from None


def one_to_three(code: str) -> str:
    """Convert a one-letter code to its three-letter equivalent."""
    return get(code).three


def three_to_one(three: str) -> str:
    """Convert a three-letter code to its one-letter equivalent."""
    key = three.upper()
    try:
        return THREE_TO_ONE[key]
    except KeyError:
        raise SequenceError(f"unknown three-letter residue code: {three!r}") from None


def hydrophobicity(code: str) -> float:
    """Kyte–Doolittle hydropathy of a residue."""
    return get(code).hydropathy


def residue_mass(code: str) -> float:
    """Average residue mass in daltons."""
    return get(code).mass


def residue_volume(code: str) -> float:
    """Approximate side-chain volume in cubic Angstroms."""
    return get(code).volume


def residue_charge(code: str) -> int:
    """Formal charge at physiological pH."""
    return get(code).charge


def is_polar(code: str) -> bool:
    """True for polar residues."""
    return get(code).polar


def is_hydrophobic(code: str) -> bool:
    """True for hydrophobic (positive hydropathy) residues."""
    return get(code).hydrophobic
