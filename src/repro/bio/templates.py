"""Residue backbone templates and Gasteiger-like partial charges.

The quantum pipeline produces Cα traces on a coarse-grained lattice; the paper
then "refines [them] by applying standard amino acid templates" and adds
hydrogens / charges with Open Babel (Sec. 4.3.3).  This module provides that
substrate:

* ideal backbone internal geometry (bond lengths / angles) used to place
  N, C and O atoms around each Cα given the chain direction;
* a single pseudo side-chain atom (CB) per non-glycine residue, scaled by
  side-chain volume, which is what the coarse-grained docking scorer needs;
* simple per-atom partial charges in the spirit of Gasteiger charges.
"""

from __future__ import annotations

import numpy as np

from repro.bio.amino_acids import get as get_aa
from repro.bio.structure import Atom, Chain, Residue, Structure
from repro.exceptions import StructureError

# Ideal backbone geometry (Angstroms / degrees) from standard peptide geometry.
BOND_N_CA = 1.458
BOND_CA_C = 1.525
BOND_C_O = 1.231
BOND_CA_CB = 1.530
BOND_C_N = 1.329  # peptide bond

#: Partial charges assigned to backbone atoms (united-atom convention: the
#: amide nitrogen carries its hydrogen, so the NH group is net positive).
BACKBONE_CHARGES: dict[str, float] = {"N": 0.25, "CA": 0.10, "C": 0.45, "O": -0.45, "CB": 0.0}


def _unit(v: np.ndarray) -> np.ndarray:
    n = np.linalg.norm(v)
    if n < 1e-12:
        raise StructureError("degenerate direction vector in backbone templating")
    return v / n


def _perpendicular(v: np.ndarray) -> np.ndarray:
    """A unit vector perpendicular to ``v`` (deterministic choice)."""
    v = _unit(v)
    trial = np.array([1.0, 0.0, 0.0])
    if abs(np.dot(trial, v)) > 0.9:
        trial = np.array([0.0, 1.0, 0.0])
    perp = trial - np.dot(trial, v) * v
    return _unit(perp)


def sidechain_charge(code: str) -> float:
    """Partial charge placed on the CB pseudo side-chain atom."""
    aa = get_aa(code)
    if aa.charge != 0:
        return 0.5 * aa.charge
    if aa.polar:
        return -0.10
    return 0.0


def build_backbone_from_ca(
    sequence: str,
    ca_coords: np.ndarray,
    structure_id: str = "FRAG",
    start_seq_id: int = 1,
) -> Structure:
    """Expand a Cα trace into a full-backbone structure with pseudo side chains.

    For each residue the N atom is placed towards the previous Cα, the C atom
    towards the next Cα, the carbonyl O off the CA→C direction, and a CB
    pseudo-atom along the local normal (except glycine).  Terminal residues
    reuse the direction of their single neighbour.  The construction is purely
    geometric and deterministic, which is all the rigid-body docking and RMSD
    evaluation downstream require.
    """
    ca = np.asarray(ca_coords, dtype=float)
    L = len(sequence)
    if ca.shape != (L, 3):
        raise StructureError(f"expected ({L}, 3) CA coordinates, got {ca.shape}")
    if L < 2:
        raise StructureError("cannot build a backbone for fewer than 2 residues")

    chain = Chain("A")
    for i, code in enumerate(sequence):
        prev_dir = _unit(ca[i] - ca[i - 1]) if i > 0 else _unit(ca[i + 1] - ca[i])
        next_dir = _unit(ca[i + 1] - ca[i]) if i < L - 1 else _unit(ca[i] - ca[i - 1])

        n_pos = ca[i] - BOND_N_CA * prev_dir
        c_pos = ca[i] + BOND_CA_C * next_dir

        # Carbonyl oxygen: off the CA->C axis, in the plane defined by the
        # backbone direction and a deterministic perpendicular.
        perp = _perpendicular(next_dir)
        o_dir = _unit(0.55 * perp - 0.83 * next_dir) if i < L - 1 else perp
        o_pos = c_pos + BOND_C_O * _unit(o_dir + 1e-6)

        atoms = [
            Atom("N", "N", n_pos, BACKBONE_CHARGES["N"]),
            Atom("CA", "C", ca[i], BACKBONE_CHARGES["CA"]),
            Atom("C", "C", c_pos, BACKBONE_CHARGES["C"]),
            Atom("O", "O", o_pos, BACKBONE_CHARGES["O"]),
        ]

        if code.upper() != "G":
            # Pseudo side chain along the local normal, scaled by volume.
            normal = np.cross(prev_dir, next_dir)
            if np.linalg.norm(normal) < 1e-6:
                normal = _perpendicular(next_dir)
            cb_dir = _unit(_unit(normal) - 0.5 * (prev_dir + next_dir))
            scale = BOND_CA_CB * (get_aa(code).volume / 140.0) ** (1.0 / 3.0)
            cb_pos = ca[i] + scale * cb_dir
            atoms.append(Atom("CB", "C", cb_pos, sidechain_charge(code)))

        chain.residues.append(Residue(code, start_seq_id + i, atoms))

    return Structure(structure_id, [chain])
