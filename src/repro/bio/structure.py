"""Hierarchical molecular structure model: Structure > Chain > Residue > Atom.

A deliberately small, NumPy-friendly object model: coordinates live in plain
float arrays, residues know their one-letter type, and the whole hierarchy can
be flattened to an ``(N, 3)`` coordinate array for the vectorised kernels
(RMSD, docking grids) without copying atom-by-atom in Python.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.bio.amino_acids import one_to_three, three_to_one
from repro.exceptions import StructureError

#: Backbone atom names in canonical order.
BACKBONE_ATOMS: tuple[str, ...] = ("N", "CA", "C", "O")


@dataclass
class Atom:
    """A single atom with a name, element, coordinates and partial charge."""

    name: str
    element: str
    coords: np.ndarray
    charge: float = 0.0
    occupancy: float = 1.0
    b_factor: float = 0.0

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=float).reshape(3)
        if not np.all(np.isfinite(self.coords)):
            raise StructureError(f"atom {self.name!r} has non-finite coordinates")

    def distance_to(self, other: "Atom") -> float:
        """Euclidean distance to another atom."""
        return float(np.linalg.norm(self.coords - other.coords))

    def copy(self) -> "Atom":
        """Deep copy of this atom."""
        return Atom(self.name, self.element, self.coords.copy(), self.charge, self.occupancy, self.b_factor)


@dataclass
class Residue:
    """A residue: one-letter type, sequence number, and its atoms."""

    code: str
    seq_id: int
    atoms: list[Atom] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.code = self.code.upper()
        # Accept three-letter codes transparently.
        if len(self.code) == 3:
            self.code = three_to_one(self.code)

    @property
    def three(self) -> str:
        """Three-letter residue name."""
        return one_to_three(self.code)

    def atom(self, name: str) -> Atom:
        """Return the atom with the given name, raising if absent."""
        for a in self.atoms:
            if a.name == name:
                return a
        raise StructureError(f"residue {self.three}{self.seq_id} has no atom {name!r}")

    def has_atom(self, name: str) -> bool:
        """True if an atom with this name exists in the residue."""
        return any(a.name == name for a in self.atoms)

    @property
    def ca(self) -> Atom:
        """The alpha-carbon atom."""
        return self.atom("CA")

    def backbone_coords(self) -> np.ndarray:
        """Coordinates of N, CA, C, O (those present), shape (k, 3)."""
        coords = [a.coords for a in self.atoms if a.name in BACKBONE_ATOMS]
        if not coords:
            raise StructureError(f"residue {self.three}{self.seq_id} has no backbone atoms")
        return np.array(coords)

    def copy(self) -> "Residue":
        """Deep copy of this residue."""
        return Residue(self.code, self.seq_id, [a.copy() for a in self.atoms])


@dataclass
class Chain:
    """A chain of residues."""

    chain_id: str = "A"
    residues: list[Residue] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.residues)

    def __iter__(self) -> Iterator[Residue]:
        return iter(self.residues)

    @property
    def sequence(self) -> str:
        """One-letter sequence of the chain."""
        return "".join(r.code for r in self.residues)

    def copy(self) -> "Chain":
        """Deep copy of this chain."""
        return Chain(self.chain_id, [r.copy() for r in self.residues])


@dataclass
class Structure:
    """A complete (fragment) structure with one or more chains."""

    structure_id: str = "FRAG"
    chains: list[Chain] = field(default_factory=list)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_ca_coords(
        cls,
        sequence: str,
        ca_coords: np.ndarray,
        structure_id: str = "FRAG",
        start_seq_id: int = 1,
    ) -> "Structure":
        """Build a Cα-only structure from a sequence and an (L, 3) coordinate array."""
        ca_coords = np.asarray(ca_coords, dtype=float)
        if ca_coords.shape != (len(sequence), 3):
            raise StructureError(
                f"expected ({len(sequence)}, 3) CA coordinates, got {ca_coords.shape}"
            )
        chain = Chain("A")
        for i, (code, xyz) in enumerate(zip(sequence, ca_coords)):
            res = Residue(code, start_seq_id + i, [Atom("CA", "C", xyz)])
            chain.residues.append(res)
        return cls(structure_id, [chain])

    # -- accessors -------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(c) for c in self.chains)

    @property
    def residues(self) -> list[Residue]:
        """All residues across chains, in order."""
        out: list[Residue] = []
        for chain in self.chains:
            out.extend(chain.residues)
        return out

    @property
    def atoms(self) -> list[Atom]:
        """All atoms across residues, in order."""
        out: list[Atom] = []
        for res in self.residues:
            out.extend(res.atoms)
        return out

    @property
    def sequence(self) -> str:
        """Concatenated one-letter sequence."""
        return "".join(c.sequence for c in self.chains)

    def ca_coords(self) -> np.ndarray:
        """(L, 3) array of alpha-carbon coordinates."""
        coords = [r.ca.coords for r in self.residues]
        if not coords:
            raise StructureError("structure has no residues")
        return np.array(coords)

    def backbone_coords(self) -> np.ndarray:
        """(K, 3) array of all backbone atom coordinates in residue order."""
        blocks = [r.backbone_coords() for r in self.residues]
        return np.vstack(blocks)

    def all_coords(self) -> np.ndarray:
        """(N, 3) array of every atom coordinate."""
        atoms = self.atoms
        if not atoms:
            raise StructureError("structure has no atoms")
        return np.array([a.coords for a in atoms])

    def atom_names(self) -> list[str]:
        """Names of every atom in order (parallel to :meth:`all_coords`)."""
        return [a.name for a in self.atoms]

    # -- transforms ------------------------------------------------------------

    def translate(self, vector: Iterable[float]) -> "Structure":
        """Translate every atom in place by ``vector``; returns self."""
        v = np.asarray(list(vector), dtype=float).reshape(3)
        for atom in self.atoms:
            atom.coords += v
        return self

    def rotate(self, rotation: np.ndarray) -> "Structure":
        """Rotate every atom about the origin in place; returns self."""
        rot = np.asarray(rotation, dtype=float)
        if rot.shape != (3, 3):
            raise StructureError(f"rotation must be 3x3, got {rot.shape}")
        for atom in self.atoms:
            atom.coords = rot @ atom.coords
        return self

    def center(self) -> "Structure":
        """Translate the structure so its centroid is at the origin; returns self."""
        coords = self.all_coords()
        return self.translate(-coords.mean(axis=0))

    def centroid(self) -> np.ndarray:
        """Centroid of all atoms."""
        return self.all_coords().mean(axis=0)

    def copy(self) -> "Structure":
        """Deep copy of this structure."""
        return Structure(self.structure_id, [c.copy() for c in self.chains])
