"""Minimal PDB format reader / writer.

QDockBank ships every predicted fragment as a standard PDB file (Sec. 4.2 and
7.1).  This module implements the subset of the PDB specification the dataset
needs: ``HEADER``, ``REMARK``, ``ATOM``, ``TER`` and ``END`` records with
column-accurate formatting so the files load in PyMOL/Chimera-style tools.
"""

from __future__ import annotations

from pathlib import Path

from repro.bio.amino_acids import three_to_one
from repro.bio.structure import Atom, Chain, Residue, Structure
from repro.exceptions import PDBFormatError

_ATOM_FMT = (
    "ATOM  {serial:>5d} {name:^4s}{altloc:1s}{resname:>3s} {chain:1s}"
    "{resseq:>4d}{icode:1s}   {x:8.3f}{y:8.3f}{z:8.3f}{occ:6.2f}{bfac:6.2f}"
    "          {element:>2s}{charge:2s}"
)


def _format_atom_name(name: str) -> str:
    """PDB atom-name column quirk: names shorter than 4 chars start in column 14."""
    if len(name) >= 4:
        return name[:4]
    return f" {name:<3s}"


def structure_to_pdb_string(structure: Structure, remarks: list[str] | None = None) -> str:
    """Render a :class:`Structure` as PDB-format text."""
    lines: list[str] = []
    lines.append(f"HEADER    QDOCKBANK FRAGMENT                      {structure.structure_id[:20]:<20s}")
    for remark in remarks or []:
        lines.append(f"REMARK 300 {remark[:68]}")
    serial = 1
    for chain in structure.chains:
        last_residue: Residue | None = None
        for residue in chain.residues:
            for atom in residue.atoms:
                lines.append(
                    _ATOM_FMT.format(
                        serial=serial,
                        name=_format_atom_name(atom.name),
                        altloc=" ",
                        resname=residue.three,
                        chain=chain.chain_id[:1] or "A",
                        resseq=residue.seq_id,
                        icode=" ",
                        x=atom.coords[0],
                        y=atom.coords[1],
                        z=atom.coords[2],
                        occ=atom.occupancy,
                        bfac=atom.b_factor,
                        element=atom.element[:2].upper(),
                        charge="  ",
                    )
                )
                serial += 1
            last_residue = residue
        if last_residue is not None:
            lines.append(
                f"TER   {serial:>5d}      {last_residue.three:>3s} "
                f"{chain.chain_id[:1] or 'A'}{last_residue.seq_id:>4d}"
            )
            serial += 1
    lines.append("END")
    return "\n".join(lines) + "\n"


def write_pdb(structure: Structure, path: str | Path, remarks: list[str] | None = None) -> Path:
    """Write a structure to ``path`` in PDB format."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(structure_to_pdb_string(structure, remarks), encoding="utf-8")
    return p


def read_pdb(path_or_text: str | Path) -> Structure:
    """Parse a PDB file (or a PDB-format string) into a :class:`Structure`.

    Only ``ATOM`` records are interpreted; alternate locations other than
    blank/'A' are skipped.  Raises :class:`PDBFormatError` on malformed records.
    """
    if isinstance(path_or_text, Path) or (
        isinstance(path_or_text, str) and "\n" not in path_or_text and Path(path_or_text).exists()
    ):
        text = Path(path_or_text).read_text(encoding="utf-8")
        structure_id = Path(path_or_text).stem
    else:
        text = str(path_or_text)
        structure_id = "PDB"

    chains: dict[str, Chain] = {}
    current: dict[tuple[str, int], Residue] = {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.startswith("ATOM"):
            continue
        if len(line) < 54:
            raise PDBFormatError(f"truncated ATOM record at line {lineno}")
        altloc = line[16]
        if altloc not in (" ", "A"):
            continue
        try:
            name = line[12:16].strip()
            resname = line[17:20].strip()
            chain_id = line[21].strip() or "A"
            resseq = int(line[22:26])
            x = float(line[30:38])
            y = float(line[38:46])
            z = float(line[46:54])
            occ = float(line[54:60]) if len(line) >= 60 and line[54:60].strip() else 1.0
            bfac = float(line[60:66]) if len(line) >= 66 and line[60:66].strip() else 0.0
            element = line[76:78].strip() if len(line) >= 78 and line[76:78].strip() else name[:1]
        except ValueError as exc:
            raise PDBFormatError(f"malformed ATOM record at line {lineno}: {exc}") from exc

        code = three_to_one(resname)
        chain = chains.setdefault(chain_id, Chain(chain_id))
        key = (chain_id, resseq)
        residue = current.get(key)
        if residue is None:
            residue = Residue(code, resseq)
            current[key] = residue
            chain.residues.append(residue)
        residue.atoms.append(Atom(name, element, (x, y, z), 0.0, occ, bfac))

    if not chains:
        raise PDBFormatError("no ATOM records found in PDB input")
    ordered = [chains[cid] for cid in sorted(chains)]
    return Structure(structure_id, ordered)
