"""Protein sequence value object."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.bio.amino_acids import AMINO_ACIDS, get as get_aa, one_to_three
from repro.exceptions import SequenceError


@dataclass(frozen=True)
class ProteinSequence:
    """An immutable protein fragment sequence in one-letter codes.

    Parameters
    ----------
    residues:
        One-letter amino-acid string, e.g. ``"YLVTHLMGAD"``.  Validated on
        construction; lowercase input is normalised to uppercase.
    """

    residues: str

    def __post_init__(self) -> None:
        seq = self.residues.upper().strip()
        if not seq:
            raise SequenceError("empty protein sequence")
        bad = sorted({c for c in seq if c not in AMINO_ACIDS})
        if bad:
            raise SequenceError(f"invalid residue codes in sequence {self.residues!r}: {bad}")
        object.__setattr__(self, "residues", seq)

    def __len__(self) -> int:
        return len(self.residues)

    def __iter__(self) -> Iterator[str]:
        return iter(self.residues)

    def __getitem__(self, item: int | slice) -> str:
        return self.residues[item]

    def __str__(self) -> str:
        return self.residues

    @property
    def three_letter(self) -> list[str]:
        """Residues as a list of three-letter codes."""
        return [one_to_three(c) for c in self.residues]

    @property
    def mass(self) -> float:
        """Sum of residue masses plus one water (18.015 Da)."""
        return sum(get_aa(c).mass for c in self.residues) + 18.015

    @property
    def net_charge(self) -> int:
        """Net formal charge at pH 7."""
        return sum(get_aa(c).charge for c in self.residues)

    @property
    def mean_hydropathy(self) -> float:
        """Average Kyte–Doolittle hydropathy (GRAVY score)."""
        return sum(get_aa(c).hydropathy for c in self.residues) / len(self)

    def hydrophobic_fraction(self) -> float:
        """Fraction of residues with positive hydropathy."""
        return sum(1 for c in self.residues if get_aa(c).hydrophobic) / len(self)

    def polar_fraction(self) -> float:
        """Fraction of polar residues."""
        return sum(1 for c in self.residues if get_aa(c).polar) / len(self)

    def pair_types(self) -> list[tuple[str, str]]:
        """All unordered residue-type pairs occurring within this fragment.

        Used by the interaction-coverage analysis (Fig. 5): every pair of
        residues in a fragment contributes one observed amino-acid interaction
        type (both orderings are counted by the analysis layer).
        """
        pairs = []
        seq = self.residues
        for i in range(len(seq)):
            for j in range(i + 1, len(seq)):
                pairs.append((seq[i], seq[j]))
        return pairs

    def composition(self) -> dict[str, int]:
        """Residue-type counts."""
        counts: dict[str, int] = {}
        for c in self.residues:
            counts[c] = counts.get(c, 0) + 1
        return counts
