"""RMSD evaluation with optional Kabsch superposition.

The paper's structural-accuracy metric (Sec. 6.1.1) is the Cα RMSD between a
predicted fragment and its experimentally determined counterpart after optimal
superposition, computed with Biopython in the original work.  The equivalent
functionality is implemented here on plain coordinate arrays and on
:class:`~repro.bio.structure.Structure` objects.
"""

from __future__ import annotations

import numpy as np

from repro.bio.geometry import superimpose
from repro.bio.structure import Structure
from repro.exceptions import StructureError
from repro.utils.validation import as_points


def rmsd_without_superposition(a: np.ndarray, b: np.ndarray) -> float:
    """Plain coordinate RMSD without any alignment (used for docking pose spread)."""
    a = as_points(a, "a")
    b = as_points(b, "b")
    if a.shape != b.shape:
        raise ValueError(f"coordinate sets must match in shape: {a.shape} vs {b.shape}")
    diff = a - b
    return float(np.sqrt(np.mean(np.einsum("ij,ij->i", diff, diff))))


def rmsd(mobile: np.ndarray, reference: np.ndarray, superimpose_first: bool = True) -> float:
    """RMSD between two (N, 3) coordinate sets, optimally superimposed by default."""
    mobile = as_points(mobile, "mobile")
    reference = as_points(reference, "reference")
    if mobile.shape != reference.shape:
        raise ValueError(
            f"coordinate sets must match in shape: {mobile.shape} vs {reference.shape}"
        )
    if superimpose_first:
        mobile, _rot, _t = superimpose(mobile, reference)
    return rmsd_without_superposition(mobile, reference)


def _matched_ca(predicted: Structure, reference: Structure) -> tuple[np.ndarray, np.ndarray]:
    if predicted.sequence != reference.sequence:
        raise StructureError(
            "cannot compute CA RMSD: sequences differ "
            f"({predicted.sequence!r} vs {reference.sequence!r})"
        )
    return predicted.ca_coords(), reference.ca_coords()


def ca_rmsd(predicted: Structure, reference: Structure) -> float:
    """Cα RMSD between two structures with identical sequences (Kabsch-aligned)."""
    pred, ref = _matched_ca(predicted, reference)
    return rmsd(pred, ref)


def backbone_rmsd(predicted: Structure, reference: Structure) -> float:
    """Backbone (N, CA, C, O) RMSD between two structures with matching backbones."""
    pred = predicted.backbone_coords()
    ref = reference.backbone_coords()
    if pred.shape != ref.shape:
        raise StructureError(
            f"backbone atom counts differ: {pred.shape[0]} vs {ref.shape[0]}"
        )
    return rmsd(pred, ref)


def per_residue_deviation(predicted: Structure, reference: Structure) -> np.ndarray:
    """Per-residue Cα deviation (Angstroms) after optimal superposition.

    This is the quantity visualised in the paper's Figure 7 (green = close
    agreement, red = deviation).
    """
    pred, ref = _matched_ca(predicted, reference)
    aligned, _rot, _t = superimpose(pred, ref)
    return np.linalg.norm(aligned - ref, axis=1)
