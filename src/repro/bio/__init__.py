"""Molecular-biology substrate: amino acids, sequences, structures, PDB I/O, RMSD.

The synthetic "experimental reference" generator lives in
:mod:`repro.bio.reference`; it is not re-exported here because it depends on
the lattice model package (imported lazily to keep the package import graph
acyclic).
"""

from repro.bio.amino_acids import (
    AMINO_ACIDS,
    AminoAcid,
    one_to_three,
    three_to_one,
    is_valid_residue,
    hydrophobicity,
)
from repro.bio.sequence import ProteinSequence
from repro.bio.geometry import (
    kabsch_rotation,
    superimpose,
    rotation_matrix,
    dihedral_angle,
    angle_between,
    pairwise_distances,
)
from repro.bio.structure import Atom, Residue, Chain, Structure
from repro.bio.pdb import write_pdb, read_pdb, structure_to_pdb_string
from repro.bio.rmsd import rmsd, ca_rmsd, backbone_rmsd, rmsd_without_superposition
from repro.bio.miyazawa_jernigan import MJ_MATRIX, contact_energy

__all__ = [
    "AMINO_ACIDS",
    "AminoAcid",
    "one_to_three",
    "three_to_one",
    "is_valid_residue",
    "hydrophobicity",
    "ProteinSequence",
    "kabsch_rotation",
    "superimpose",
    "rotation_matrix",
    "dihedral_angle",
    "angle_between",
    "pairwise_distances",
    "Atom",
    "Residue",
    "Chain",
    "Structure",
    "write_pdb",
    "read_pdb",
    "structure_to_pdb_string",
    "rmsd",
    "ca_rmsd",
    "backbone_rmsd",
    "rmsd_without_superposition",
    "MJ_MATRIX",
    "contact_energy",
]
