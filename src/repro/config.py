"""Global configuration defaults for the QDockBank reproduction pipeline.

The paper's production runs use 200+ COBYLA iterations and 100,000 final
measurement shots per fragment on a 127-qubit device.  Those settings are far
too expensive for CI-scale runs, so :class:`PipelineConfig` captures every
knob in one place with two presets:

* :func:`PipelineConfig.paper` — the settings reported in the paper
  (Sections 4–5); use these when regenerating the dataset at full fidelity.
* :func:`PipelineConfig.fast` — a scaled-down preset used by the test suite
  and benchmarks; the *shape* of every result is preserved while keeping a
  full 55-fragment sweep to a few minutes of CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


@dataclass(frozen=True)
class PipelineConfig:
    """All tunables of the fold → reconstruct → dock pipeline.

    Attributes
    ----------
    vqe_iterations:
        Maximum number of classical optimiser iterations (paper: >200).
    optimisation_shots:
        Shots per expectation-value estimate during stage 1.
    final_shots:
        Shots for the stage-2 fixed-parameter sampling (paper: 100,000).
    ansatz_reps:
        Number of EfficientSU2 repetition blocks.
    max_statevector_qubits:
        Above this size the MPS / emulator backends are used instead of the
        exact statevector simulator.
    mps_bond_dimension:
        Bond-dimension cap of the MPS backend.
    ancilla_margin:
        Extra qubits allocated per job to reduce routing depth (Sec. 5.3).
    docking_seeds:
        Independent docking runs per structure (paper: 20).
    docking_poses:
        Poses returned per run (paper: top 10).
    docking_mc_steps:
        Monte-Carlo steps per docking run.
    noise_enabled:
        Whether the hardware emulator injects readout / depolarising noise.
    seed:
        Master seed; every task derives its own deterministic child seed.
    backend:
        Name of the execution backend, resolved through the engine's backend
        registry (``"statevector"``, ``"mps"``, ``"auto"`` or ``"eagle"``).
    engine_workers:
        Default worker-process count for the engine's job fan-out
        (``0``/``1`` runs serially; results are identical either way).
    cache_dir:
        Directory of the engine's persistent result cache; ``None`` disables
        caching.
    cache_max_bytes:
        Total size bound (bytes) of the persistent result cache; ``None``
        (the default) leaves the cache unbounded.  When set, every cache
        write evicts old entries until the cache fits the bound — eviction
        only ever costs recompute time, never correctness.
    cache_eviction:
        Eviction policy applied when the bound is exceeded: ``"lru"`` (the
        default; a cache hit refreshes the entry, so the least-recently-used
        entries go first) or ``"fifo"`` (hits do not refresh, so the oldest
        written entries go first).
    cache_tiers:
        Ordered cache-tier spec strings (``"DIR"``, ``"local:DIR"`` or
        ``"remote:HOST:PORT"``) composed into a
        :class:`~repro.engine.cache.TieredCache`: local-first reads,
        promote-on-remote-hit, write-through.  ``None`` (the default) keeps
        the single ``cache_dir`` tier.  Cache topology never changes results
        — the determinism harness asserts flat, tiered and remote-backed
        runs are bit-identical — so like every cache knob this never enters
        any job hash.
    cache_remote:
        Convenience spec of one shared ``repro-serve`` cache endpoint
        (``"HOST:PORT"``), appended as the outermost tier behind
        ``cache_dir`` / ``cache_tiers``.  Never enters any job hash.
    spool_payloads:
        Whether ``filequeue`` workers embed full result payloads in their
        spool completion records (the default).  ``False`` switches to
        payload-free *stub* completions: workers write the payload directly
        into a cache tier every machine can reach (``cache_remote`` if set,
        else the last ``cache_tiers`` entry, else ``cache_dir``) and publish
        only ``task_id`` + ``content_hash`` + status through the spool.
        Bit-identical either way; never enters any job hash.
    session_dir:
        Directory for the engine's streaming-session journals (one JSONL
        status file plus a spec pickle per session, next to the result
        cache).  ``None`` (the default) disables journalling; sessions then
        stream in memory only and cannot be resumed from another process.
    on_error:
        Default failure policy of streaming sessions: ``"isolate"`` (a
        crashing job becomes a ``JobFailure`` record and the rest of the
        batch completes; the default) or ``"raise"`` (the first failure
        aborts the stream).  ``Engine.run`` keeps its historical fail-fast
        contract regardless and must be asked explicitly to isolate.
        Like all orchestration detail, neither knob enters any job hash.
    transport:
        Executor transport jobs run on: ``"serial"`` (in-process),
        ``"pool"`` (local process pool), ``"filequeue"`` (a fleet of
        ``repro-worker`` daemons over a shared spool directory),
        ``"network"`` (a running ``repro-serve`` daemon reached over a
        socket), or ``"auto"`` (the default: serial for ``processes <= 1``,
        pool otherwise).  Results are bit-identical on every transport; like
        all transport knobs below, this never enters any job hash.
    spool_dir:
        Shared spool directory of the ``filequeue`` transport (required when
        it is selected; created if absent).
    transport_workers:
        How many local ``repro-worker`` daemons the ``filequeue`` transport
        spawns per batch.  ``None`` (the default) falls back to the engine's
        ``processes`` value; ``0`` spawns none and relies on externally
        launched workers watching the spool.
    transport_lease_timeout:
        Seconds before an untouched task claim counts as abandoned by a dead
        worker and is requeued (stale-lease reclamation).
    transport_poll_interval:
        Seconds between the submitting transport's spool scans (also the
        ``network`` transport's socket-poll slice).
    transport_priority:
        Default scheduling priority the ``filequeue`` transport stamps into
        every task envelope it enqueues (higher claims first; per-job
        ``Engine.submit(..., priority=...)`` overrides it).  Pure
        orchestration — it decides claim order, never results — and never
        enters any job hash.
    transport_speculate:
        Straggler multiplier for speculative re-dispatch: a task claimed for
        longer than this many times the fleet's rolling median job duration
        is cloned into a shadow task for another worker to race (first
        published result wins; the loser is discarded).  ``None`` (the
        default) disables speculation.  Never enters any job hash.
    transport_max_workers:
        Elastic ceiling on the ``filequeue`` fleet: the transport grows the
        spawned-worker count toward the queue depth up to this cap and
        retires surplus workers as the queue drains.  ``None`` (the default)
        pins the fleet at ``transport_workers``.  Never enters any job hash.
    serve_host / serve_port:
        Address of the ``repro-serve`` daemon the ``network`` transport
        submits to (start one with ``repro-serve``).
    serve_max_inflight:
        Per-client in-flight job window of the ``network`` transport (the
        server clamps it to its own advertised admission cap).
    docking_batch:
        Whether Monte-Carlo pose search advances its restart walkers in
        lock-step, scoring every walker's proposal in one batched
        ``score_coords_batch`` call.  The batched and scalar paths are
        bit-identical (the determinism harness asserts it), so this knob is
        pure speed and never enters any job hash.
    quantum_compiled_plans:
        Whether statevector-backed VQE evaluations reuse a compiled replay
        plan of the ansatz structure instead of re-binding and re-walking the
        circuit every optimiser iteration.  Bit-identical either way; never
        enters any job hash.
    expectation_cache_entries:
        Optional cap on the diagonal-expectation energy cache (FIFO eviction
        beyond the cap).  ``None`` (the default) leaves it unbounded.
        Eviction only ever costs recompute time, never correctness.
    bench_repeats:
        Repeats per benchmark in the ``repro-bench`` suite (median/p10/p90
        are reported over these).
    bench_pose_batch:
        Pose-batch size used by the docking-throughput benchmark.
    """

    vqe_iterations: int = 60
    optimisation_shots: int = 256
    final_shots: int = 2048
    ansatz_reps: int = 1
    max_statevector_qubits: int = 16
    mps_bond_dimension: int = 8
    ancilla_margin: int = 5
    docking_seeds: int = 20
    docking_poses: int = 10
    docking_mc_steps: int = 120
    noise_enabled: bool = True
    seed: int = 2025
    backend: str = "auto"
    engine_workers: int = 0
    cache_dir: str | None = None
    cache_max_bytes: int | None = None
    cache_eviction: str = "lru"
    cache_tiers: tuple[str, ...] | None = None
    cache_remote: str | None = None
    spool_payloads: bool = True
    session_dir: str | None = None
    on_error: str = "isolate"
    transport: str = "auto"
    spool_dir: str | None = None
    transport_workers: int | None = None
    transport_lease_timeout: float = 30.0
    transport_poll_interval: float = 0.05
    transport_priority: int = 0
    transport_speculate: float | None = None
    transport_max_workers: int | None = None
    serve_host: str = "127.0.0.1"
    serve_port: int = 7377
    serve_max_inflight: int = 32
    docking_batch: bool = True
    quantum_compiled_plans: bool = True
    expectation_cache_entries: int | None = None
    bench_repeats: int = 5
    bench_pose_batch: int = 128
    #: CVaR fraction used by the stage-1 objective (1.0 = plain expectation).
    cvar_alpha: float = 0.2
    #: Cap applied to the width-scaled stage-2 shot count.
    max_final_shots: int = 100_000
    extra: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def paper(cls) -> "PipelineConfig":
        """Settings matching the paper's production runs."""
        return cls(
            vqe_iterations=220,
            optimisation_shots=4096,
            final_shots=100_000,
            ansatz_reps=1,
            ancilla_margin=8,
            docking_seeds=20,
            docking_poses=10,
            docking_mc_steps=2000,
        )

    @classmethod
    def fast(cls) -> "PipelineConfig":
        """Scaled-down settings for tests and benchmarks."""
        return cls(
            vqe_iterations=30,
            optimisation_shots=192,
            final_shots=1024,
            ansatz_reps=1,
            ancilla_margin=5,
            docking_seeds=4,
            docking_poses=5,
            docking_mc_steps=120,
        )

    def with_updates(self, **kwargs: Any) -> "PipelineConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = PipelineConfig()
