"""Rigid protein–ligand docking engine (AutoDock Vina substitute)."""

from repro.docking.ligand import Ligand, SyntheticLigandGenerator
from repro.docking.scoring import VinaScoringFunction, ScoringWeights
from repro.docking.search import MonteCarloPoseSearch, Pose
from repro.docking.vina import DockingEngine, DockingResult, DockingRun, DockedPose

__all__ = [
    "Ligand",
    "SyntheticLigandGenerator",
    "VinaScoringFunction",
    "ScoringWeights",
    "MonteCarloPoseSearch",
    "Pose",
    "DockingEngine",
    "DockingResult",
    "DockingRun",
    "DockedPose",
]
