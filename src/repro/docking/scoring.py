"""Vina-style empirical scoring function.

Implements the functional form of the AutoDock Vina scoring function
(Trott & Olson 2010): a weighted sum of two attractive Gaussians, a quadratic
steric repulsion, a piecewise-linear hydrophobic term and a piecewise-linear
hydrogen-bond term, evaluated over all receptor–ligand atom pairs within a
cutoff on the *surface distance* (centre distance minus the sum of van der
Waals radii), divided by ``1 + w_rot · N_rot`` to penalise ligand flexibility.
The published Vina term weights are used.  Scores are reported in kcal/mol.

All pairwise terms are evaluated with a single broadcast distance tensor and
boolean masks — there is no per-atom Python loop on the scoring hot path.
:meth:`VinaScoringFunction.score_coords_batch` scores a whole batch of poses
at once (one distance tensor, transcendentals restricted to within-cutoff
pairs via flat masked indexing), and the single-pose :meth:`score_coords` is a
batch of one, so both paths are the same code and produce bit-identical
scores.  The electrostatic exponential is skipped entirely when its weight is
0.0 (the default): with a zero weight the term contributes an exact ±0.0 to
every pair, and adding a signed zero to the partial sum never changes it,
because the preceding Gaussian terms are strictly non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.amino_acids import get as get_aa
from repro.bio.structure import Structure
from repro.docking.ligand import Ligand, VDW_RADII
from repro.exceptions import DockingError

#: Pairs beyond this surface distance (Å) contribute nothing.
CUTOFF = 8.0


@dataclass(frozen=True)
class ScoringWeights:
    """Term weights of the Vina scoring function (published values)."""

    gauss1: float = -0.0356
    gauss2: float = -0.00516
    repulsion: float = 0.840
    hydrophobic: float = -0.0351
    hbond: float = -0.587
    #: AutoDock4-style screened electrostatics.  Off by default (Vina itself
    #: has no electrostatic term); the ablation benchmarks switch it on to
    #: study charge-complementarity scoring on the coarse-grained receptors.
    electrostatic: float = 0.0
    rotor_penalty: float = 0.0585
    #: Global scale mapping the raw Vina sum to kcal/mol for our coarse-grained
    #: receptors (one pseudo side-chain atom per residue carries less surface
    #: than an all-atom model, so the raw sum is rescaled to land in the
    #: physically meaningful -2..-8 kcal/mol range).
    scale: float = 2.4


@dataclass
class ReceptorModel:
    """Pre-extracted receptor arrays used by the scorer (built once per structure)."""

    coords: np.ndarray
    radii: np.ndarray
    hydrophobic: np.ndarray
    donor: np.ndarray
    acceptor: np.ndarray
    charges: np.ndarray

    @classmethod
    def from_structure(cls, structure: Structure) -> "ReceptorModel":
        """Type every receptor atom from its residue and element."""
        coords = []
        radii = []
        hydrophobic = []
        donor = []
        acceptor = []
        charges = []
        for residue in structure.residues:
            aa = get_aa(residue.code)
            for atom in residue.atoms:
                coords.append(atom.coords)
                radii.append(VDW_RADII.get(atom.element.upper(), 1.9))
                charges.append(atom.charge)
                if atom.name == "CB":
                    hydrophobic.append(aa.hydrophobic)
                    donor.append(aa.hbond_donor)
                    acceptor.append(aa.hbond_acceptor)
                elif atom.name == "N":
                    hydrophobic.append(False)
                    donor.append(True)
                    acceptor.append(False)
                elif atom.name == "O":
                    hydrophobic.append(False)
                    donor.append(False)
                    acceptor.append(True)
                else:  # CA, C
                    hydrophobic.append(False)
                    donor.append(False)
                    acceptor.append(False)
        if not coords:
            raise DockingError("receptor structure has no atoms")
        return cls(
            coords=np.array(coords),
            radii=np.array(radii),
            hydrophobic=np.array(hydrophobic, dtype=bool),
            donor=np.array(donor, dtype=bool),
            acceptor=np.array(acceptor, dtype=bool),
            charges=np.array(charges, dtype=float),
        )


class VinaScoringFunction:
    """Scores a ligand pose against a rigid receptor."""

    def __init__(self, receptor: Structure, ligand: Ligand, weights: ScoringWeights | None = None):
        self.weights = weights or ScoringWeights()
        self.receptor = ReceptorModel.from_structure(receptor)
        self.ligand = ligand
        self._ligand_radii = ligand.radii
        # Precompute pair-type masks (ligand atoms x receptor atoms).
        self._hydrophobic_pair = np.outer(ligand.hydrophobic, self.receptor.hydrophobic)
        self._hbond_pair = np.outer(ligand.donor, self.receptor.acceptor) | np.outer(
            ligand.acceptor, self.receptor.donor
        )
        self._charge_product = np.outer(ligand.charges, self.receptor.charges)
        self._radius_sum = self._ligand_radii[:, None] + self.receptor.radii[None, :]
        # Flattened views for the batched hot path: the masked-pair gathers
        # index one flat (ligand*receptor) axis instead of two fancy axes.
        self._hydrophobic_pair_flat = self._hydrophobic_pair.astype(float).ravel()
        self._charge_product_flat = self._charge_product.ravel()
        self._receptor_sq = np.einsum("ij,ij->i", self.receptor.coords, self.receptor.coords)
        self._receptor_neg2t = np.ascontiguousarray((-2.0 * self.receptor.coords).T)
        # Pair arrays tiled across poses, grown lazily to the largest batch
        # seen: masked flat indices then gather pair properties directly,
        # with no per-call modulo to recover the within-pose pair index.
        self._hydrophobic_tile: np.ndarray | None = None
        self._charge_tile: np.ndarray | None = None
        # H-bond-capable pairs are sparse, and the term is zero beyond contact
        # range anyway, so the saturating max is taken over just these pairs
        # (grouped by ligand atom for a reduceat segment max).
        hb_lig, hb_rec = np.nonzero(self._hbond_pair)
        order = np.argsort(hb_lig, kind="stable")
        self._hb_lig = hb_lig[order]
        self._hb_rec = hb_rec[order]
        if self._hb_lig.size:
            self._hb_atoms, self._hb_starts = np.unique(self._hb_lig, return_index=True)
        else:
            self._hb_atoms = np.zeros(0, dtype=int)
            self._hb_starts = np.zeros(0, dtype=int)

    def score_coords(self, ligand_coords: np.ndarray) -> float:
        """Score a ligand pose given its transformed atom coordinates (kcal/mol)."""
        ligand_coords = np.asarray(ligand_coords, dtype=float)
        if ligand_coords.shape != self.ligand.coords.shape:
            raise DockingError(
                f"pose coordinates shape {ligand_coords.shape} does not match the ligand "
                f"({self.ligand.coords.shape})"
            )
        return float(self.score_coords_batch(ligand_coords[None, :, :])[0])

    def _surface_distances(self, pose_coords: np.ndarray) -> np.ndarray:
        """Surface-distance tensor ``(P, A, R)`` for a batch of poses.

        Squared centre distances come from the expanded-square identity
        ``|l - r|^2 = |l|^2 + |r|^2 - 2 l·r`` so the cross term is a single
        matrix product instead of a broadcast ``(P, A, R, 3)`` difference
        tensor.  Each element depends only on its own pose's coordinates, so
        the result — like every score derived from it — is independent of the
        batch composition.
        """
        num_poses = pose_coords.shape[0]
        flat = pose_coords.reshape(-1, 3)
        dist_sq = flat @ self._receptor_neg2t
        dist_sq += np.einsum("ij,ij->i", flat, flat)[:, None]
        dist_sq += self._receptor_sq
        # Coincident centres can round to a tiny negative square.
        np.maximum(dist_sq, 0.0, out=dist_sq)
        surf = np.sqrt(dist_sq, out=dist_sq).reshape(num_poses, *self._radius_sum.shape)
        surf -= self._radius_sum
        return surf

    def score_coords_batch(self, pose_coords: np.ndarray) -> np.ndarray:
        """Score ``P`` ligand poses at once: ``(P, A, 3) -> (P,)`` kcal/mol.

        One distance tensor covers the whole batch; the Gaussian, repulsion
        and hydrophobic terms are evaluated only on within-cutoff pairs
        through flat masked indexing and scattered back into a dense
        contribution tensor, so the per-pose reduction order — and therefore
        every score bit — matches a full-matrix evaluation of the same pose.
        """
        pose_coords = np.asarray(pose_coords, dtype=float)
        if pose_coords.ndim != 3 or pose_coords.shape[1:] != self.ligand.coords.shape:
            raise DockingError(
                f"pose batch shape {pose_coords.shape} does not match (P, "
                f"{self.ligand.coords.shape[0]}, 3)"
            )
        num_poses = pose_coords.shape[0]
        pairs_per_pose = self._radius_sum.size
        surf = self._surface_distances(pose_coords)
        flat_idx = np.flatnonzero((surf < CUTOFF).ravel())
        sv = surf.ravel()[flat_idx]
        if self._hydrophobic_tile is None or self._hydrophobic_tile.size < surf.size:
            self._hydrophobic_tile = np.tile(self._hydrophobic_pair_flat, num_poses)

        w = self.weights
        raw = sv / 0.5
        np.square(raw, out=raw)
        np.negative(raw, out=raw)
        np.exp(raw, out=raw)
        raw *= w.gauss1
        term = (sv - 3.0) / 2.0
        np.square(term, out=term)
        np.negative(term, out=term)
        np.exp(term, out=term)
        term *= w.gauss2
        raw += term
        term = np.where(sv < 0.0, sv * sv, 0.0)
        term *= w.repulsion
        raw += term
        term = np.clip(1.5 - sv, 0.0, 1.0)
        term *= self._hydrophobic_tile[flat_idx]
        term *= w.hydrophobic
        raw += term
        if w.electrostatic != 0.0:
            # Screened electrostatics: short-ranged Gaussian envelope on the
            # charge-product, so only contact-distance pairs contribute.
            if self._charge_tile is None or self._charge_tile.size < surf.size:
                self._charge_tile = np.tile(self._charge_product_flat, num_poses)
            term = sv / 1.5
            np.square(term, out=term)
            np.negative(term, out=term)
            np.exp(term, out=term)
            term *= self._charge_tile[flat_idx]
            term *= w.electrostatic
            raw += term
        contrib = np.zeros(num_poses * pairs_per_pose)
        contrib[flat_idx] = raw
        pair_sum = contrib.reshape(num_poses, -1).sum(axis=1)

        # Hydrogen bonds are saturating: each ligand donor/acceptor can form at
        # most one H-bond, so only its best-placed receptor partner counts.
        # This is what makes the score geometry-specific rather than a generic
        # reward for burying polar atoms.  The clipped ramp is exactly zero
        # beyond contact range, so evaluating it on every H-bond-capable pair
        # (cutoff or not) leaves each per-atom maximum unchanged.
        hbond_sum = np.zeros(num_poses)
        if self._hb_lig.size:
            vals = np.clip(surf[:, self._hb_lig, self._hb_rec] / -0.7, 0.0, 1.0)
            per_atom = np.zeros((num_poses, self._radius_sum.shape[0]))
            per_atom[:, self._hb_atoms] = np.maximum.reduceat(vals, self._hb_starts, axis=1)
            hbond_sum = per_atom.sum(axis=1)

        totals = (pair_sum + w.hbond * hbond_sum) * w.scale
        return totals / (1.0 + w.rotor_penalty * self.ligand.num_rotatable_bonds)

    def score_pose(self, rotation: np.ndarray, translation: np.ndarray) -> float:
        """Score the ligand after applying a rigid transform."""
        return self.score_coords(self.ligand.transformed(rotation, translation))
