"""Vina-style empirical scoring function.

Implements the functional form of the AutoDock Vina scoring function
(Trott & Olson 2010): a weighted sum of two attractive Gaussians, a quadratic
steric repulsion, a piecewise-linear hydrophobic term and a piecewise-linear
hydrogen-bond term, evaluated over all receptor–ligand atom pairs within a
cutoff on the *surface distance* (centre distance minus the sum of van der
Waals radii), divided by ``1 + w_rot · N_rot`` to penalise ligand flexibility.
The published Vina term weights are used.  Scores are reported in kcal/mol.

All pairwise terms are evaluated with a single broadcast distance matrix and
boolean masks — there is no per-atom Python loop on the scoring hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.amino_acids import get as get_aa
from repro.bio.structure import Structure
from repro.docking.ligand import Ligand, VDW_RADII
from repro.exceptions import DockingError

#: Pairs beyond this surface distance (Å) contribute nothing.
CUTOFF = 8.0


@dataclass(frozen=True)
class ScoringWeights:
    """Term weights of the Vina scoring function (published values)."""

    gauss1: float = -0.0356
    gauss2: float = -0.00516
    repulsion: float = 0.840
    hydrophobic: float = -0.0351
    hbond: float = -0.587
    #: AutoDock4-style screened electrostatics.  Off by default (Vina itself
    #: has no electrostatic term); the ablation benchmarks switch it on to
    #: study charge-complementarity scoring on the coarse-grained receptors.
    electrostatic: float = 0.0
    rotor_penalty: float = 0.0585
    #: Global scale mapping the raw Vina sum to kcal/mol for our coarse-grained
    #: receptors (one pseudo side-chain atom per residue carries less surface
    #: than an all-atom model, so the raw sum is rescaled to land in the
    #: physically meaningful -2..-8 kcal/mol range).
    scale: float = 2.4


@dataclass
class ReceptorModel:
    """Pre-extracted receptor arrays used by the scorer (built once per structure)."""

    coords: np.ndarray
    radii: np.ndarray
    hydrophobic: np.ndarray
    donor: np.ndarray
    acceptor: np.ndarray
    charges: np.ndarray

    @classmethod
    def from_structure(cls, structure: Structure) -> "ReceptorModel":
        """Type every receptor atom from its residue and element."""
        coords = []
        radii = []
        hydrophobic = []
        donor = []
        acceptor = []
        charges = []
        for residue in structure.residues:
            aa = get_aa(residue.code)
            for atom in residue.atoms:
                coords.append(atom.coords)
                radii.append(VDW_RADII.get(atom.element.upper(), 1.9))
                charges.append(atom.charge)
                if atom.name == "CB":
                    hydrophobic.append(aa.hydrophobic)
                    donor.append(aa.hbond_donor)
                    acceptor.append(aa.hbond_acceptor)
                elif atom.name == "N":
                    hydrophobic.append(False)
                    donor.append(True)
                    acceptor.append(False)
                elif atom.name == "O":
                    hydrophobic.append(False)
                    donor.append(False)
                    acceptor.append(True)
                else:  # CA, C
                    hydrophobic.append(False)
                    donor.append(False)
                    acceptor.append(False)
        if not coords:
            raise DockingError("receptor structure has no atoms")
        return cls(
            coords=np.array(coords),
            radii=np.array(radii),
            hydrophobic=np.array(hydrophobic, dtype=bool),
            donor=np.array(donor, dtype=bool),
            acceptor=np.array(acceptor, dtype=bool),
            charges=np.array(charges, dtype=float),
        )


class VinaScoringFunction:
    """Scores a ligand pose against a rigid receptor."""

    def __init__(self, receptor: Structure, ligand: Ligand, weights: ScoringWeights | None = None):
        self.weights = weights or ScoringWeights()
        self.receptor = ReceptorModel.from_structure(receptor)
        self.ligand = ligand
        self._ligand_radii = ligand.radii
        # Precompute pair-type masks (ligand atoms x receptor atoms).
        self._hydrophobic_pair = np.outer(ligand.hydrophobic, self.receptor.hydrophobic)
        self._hbond_pair = np.outer(ligand.donor, self.receptor.acceptor) | np.outer(
            ligand.acceptor, self.receptor.donor
        )
        self._charge_product = np.outer(ligand.charges, self.receptor.charges)
        self._radius_sum = self._ligand_radii[:, None] + self.receptor.radii[None, :]

    def score_coords(self, ligand_coords: np.ndarray) -> float:
        """Score a ligand pose given its transformed atom coordinates (kcal/mol)."""
        ligand_coords = np.asarray(ligand_coords, dtype=float)
        if ligand_coords.shape != self.ligand.coords.shape:
            raise DockingError(
                f"pose coordinates shape {ligand_coords.shape} does not match the ligand "
                f"({self.ligand.coords.shape})"
            )
        diff = ligand_coords[:, None, :] - self.receptor.coords[None, :, :]
        dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
        surf = dist - self._radius_sum
        within = surf < CUTOFF

        w = self.weights
        gauss1 = np.exp(-((surf / 0.5) ** 2))
        gauss2 = np.exp(-(((surf - 3.0) / 2.0) ** 2))
        repulsion = np.where(surf < 0.0, surf**2, 0.0)
        hydrophobic = np.clip(1.5 - surf, 0.0, 1.0) * self._hydrophobic_pair
        # Hydrogen bonds are saturating: each ligand donor/acceptor can form at
        # most one H-bond, so only its best-placed receptor partner counts.
        # This is what makes the score geometry-specific rather than a generic
        # reward for burying polar atoms.
        hbond_pairwise = np.clip(-surf / 0.7, 0.0, 1.0) * self._hbond_pair * within
        hbond_per_ligand_atom = hbond_pairwise.max(axis=1) if hbond_pairwise.size else np.zeros(0)
        # Screened electrostatics: short-ranged Gaussian envelope on the
        # charge-product, so only contact-distance pairs contribute.
        electrostatic = self._charge_product * np.exp(-((surf / 1.5) ** 2))

        raw = (
            w.gauss1 * gauss1
            + w.gauss2 * gauss2
            + w.repulsion * repulsion
            + w.hydrophobic * hydrophobic
            + w.electrostatic * electrostatic
        )
        total = float(np.sum(raw * within)) + w.hbond * float(np.sum(hbond_per_ligand_atom))
        total *= w.scale
        return total / (1.0 + w.rotor_penalty * self.ligand.num_rotatable_bonds)

    def score_pose(self, rotation: np.ndarray, translation: np.ndarray) -> float:
        """Score the ligand after applying a rigid transform."""
        return self.score_coords(self.ligand.transformed(rotation, translation))
