"""Binding-site (pocket) detection on fragment surfaces.

Both the synthetic ligand generator and the docking search need to know where
on a receptor a ligand can sit: a *groove* position that touches many receptor
atoms at favourable distances without steric clashes.  :func:`find_pocket`
implements a deterministic geometric detector:

1. candidate points are generated just outside every receptor atom (one per
   atom, at contact distance along the outward normal) plus the midpoints of
   atom pairs that straddle a groove;
2. each candidate is scored by the number of receptor atoms in its contact
   shell (3.4–6.5 Å) and disqualified if any receptor atom is closer than the
   clash distance;
3. the best candidate becomes the pocket centre; its local contact shell also
   yields the pocket axes used to orient initial ligand poses.

Everything is vectorised over the candidate × atom distance matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.structure import Structure
from repro.exceptions import DockingError

#: Receptor atoms closer than this to a candidate point disqualify it.
CLASH_DISTANCE = 3.6
#: Contact shell bounds (Å) used to score candidate pocket points.
SHELL_MIN = 3.8
SHELL_MAX = 6.8


@dataclass(frozen=True)
class PocketSite:
    """A detected binding site on a receptor surface."""

    center: np.ndarray  # position of the pocket centre
    axes: np.ndarray  # (3, 3) orthonormal local frame (rows are axes)
    contact_count: int  # receptor atoms in the contact shell
    radius: float  # approximate pocket radius


def _candidate_points(coords: np.ndarray, centroid: np.ndarray) -> np.ndarray:
    """Candidate pocket points just outside every atom plus groove midpoints."""
    outward = coords - centroid
    norms = np.linalg.norm(outward, axis=1, keepdims=True)
    norms[norms < 1e-9] = 1.0
    outward = outward / norms
    surface = coords + 4.0 * outward

    # Groove midpoints: pairs of atoms 6–10 Å apart; their midpoint often sits
    # inside a concave region between them.
    diff = coords[:, None, :] - coords[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    i_idx, j_idx = np.nonzero(np.triu((dist > 6.0) & (dist < 10.0), k=1))
    midpoints = 0.5 * (coords[i_idx] + coords[j_idx]) if i_idx.size else np.empty((0, 3))
    return np.vstack([surface, midpoints])


def _site_from_candidate(candidates: np.ndarray, dist: np.ndarray, coords: np.ndarray, index: int) -> PocketSite:
    center = candidates[index]
    shell_mask = (dist[index] >= SHELL_MIN) & (dist[index] <= SHELL_MAX)
    local = coords[shell_mask] if shell_mask.sum() >= 3 else coords
    centred = local - local.mean(axis=0)
    _, _, vt = np.linalg.svd(centred, full_matrices=False)
    axes = vt if vt.shape == (3, 3) else np.eye(3)
    radius = float(np.clip(dist[index][shell_mask].mean() if shell_mask.any() else 5.0, 3.0, 8.0))
    return PocketSite(
        center=center,
        axes=axes,
        contact_count=int(shell_mask.sum()),
        radius=radius,
    )


def find_pockets(receptor: Structure, num_sites: int = 3, min_separation: float = 4.0) -> list[PocketSite]:
    """Detect up to ``num_sites`` spatially distinct binding sites, best first."""
    coords = receptor.all_coords()
    if coords.shape[0] < 4:
        raise DockingError("pocket detection needs at least 4 receptor atoms")
    centroid = coords.mean(axis=0)
    candidates = _candidate_points(coords, centroid)

    diff = candidates[:, None, :] - coords[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    clash = (dist < CLASH_DISTANCE).any(axis=1)
    shell = ((dist >= SHELL_MIN) & (dist <= SHELL_MAX)).sum(axis=1)
    score = np.where(clash, -1, shell).astype(float)

    order = np.argsort(-score)
    sites: list[PocketSite] = []
    for idx in order:
        idx = int(idx)
        if score[idx] < 0 and sites:
            break
        center = candidates[idx]
        if any(np.linalg.norm(center - s.center) < min_separation for s in sites):
            continue
        sites.append(_site_from_candidate(candidates, dist, coords, idx))
        if len(sites) >= num_sites:
            break
    if not sites:
        # Every candidate clashes (pathologically compact input): fall back to
        # the candidate farthest from its nearest receptor atom.
        idx = int(np.argmax(dist.min(axis=1)))
        sites.append(_site_from_candidate(candidates, dist, coords, idx))
    return sites


def find_pocket(receptor: Structure) -> PocketSite:
    """Detect the primary (highest-contact) binding pocket of a receptor fragment."""
    return find_pockets(receptor, num_sites=1)[0]
