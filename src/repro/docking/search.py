"""Monte-Carlo rigid-body pose search with local refinement.

AutoDock Vina explores ligand poses with an iterated local-search /
Metropolis scheme.  For rigid ligands the pose space is 6-dimensional
(rotation + translation); :class:`MonteCarloPoseSearch` runs a Metropolis
random walk in that space from several restarts, keeps the best-scoring
distinct poses it visits, and polishes each of them with a short greedy local
refinement.  Every run is fully determined by its seed, which is how the
paper's per-seed docking reproducibility is achieved.

Multi-walker batching
---------------------
The restarts are independent walkers, so they advance in *lock-step*: every
Metropolis step scores all walkers' proposals in one
:meth:`~repro.docking.scoring.VinaScoringFunction.score_coords_batch` call.
Each walker owns its own RNG substream — walker 0 uses the caller's generator
directly and walkers 1..W-1 are spawned children — so the draw sequence per
walker does not depend on whether the walkers run batched (lock-step) or
scalar (one walker at a time): ``batch=True`` and ``batch=False`` return
bit-identical poses, and a single-walker search consumes the caller's
generator exactly as the historical sequential implementation did.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.geometry import random_rotation, rotation_matrix
from repro.docking.ligand import Ligand
from repro.docking.scoring import VinaScoringFunction
from repro.exceptions import DockingError


@dataclass
class Pose:
    """One candidate ligand pose."""

    rotation: np.ndarray
    translation: np.ndarray
    score: float

    def coordinates(self, ligand: Ligand) -> np.ndarray:
        """Ligand atom coordinates in this pose."""
        return ligand.transformed(self.rotation, self.translation)


def walker_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Independent per-walker RNG substreams.

    Walker 0 is handed the caller's generator itself; the remaining walkers
    get spawned children.  Spawning derives fresh child seed sequences without
    consuming any draws from the parent stream, so walker 0's sequence — and
    with it the single-walker search output — is unchanged by how many other
    walkers exist.
    """
    if count <= 1:
        return [rng]
    try:
        children = rng.spawn(count - 1)
    except AttributeError:  # older numpy: spawn via the seed sequence directly
        bit_generator = type(rng.bit_generator)
        children = [
            np.random.Generator(bit_generator(seed))
            for seed in rng.bit_generator.seed_seq.spawn(count - 1)
        ]
    return [rng, *children]


class MonteCarloPoseSearch:
    """Metropolis pose search around a binding-site centre."""

    def __init__(
        self,
        scorer: VinaScoringFunction,
        site_center: np.ndarray,
        site_radius: float = 6.0,
        temperature: float = 1.2,
        translation_step: float = 1.0,
        rotation_step: float = 0.5,
        initial_rotations: list[np.ndarray] | None = None,
    ):
        if site_radius <= 0:
            raise DockingError(f"site radius must be positive, got {site_radius}")
        self.scorer = scorer
        self.site_center = np.asarray(site_center, dtype=float).reshape(3)
        self.site_radius = float(site_radius)
        self.temperature = float(temperature)
        self.translation_step = float(translation_step)
        self.rotation_step = float(rotation_step)
        # Deterministic starting orientations tried before random restarts
        # (identity first: ligand and receptor frames are both pocket-derived,
        # so the near-native orientation is always worth probing).
        if initial_rotations is None:
            initial_rotations = [np.eye(3)]
            for axis in (np.array([1.0, 0, 0]), np.array([0, 1.0, 0]), np.array([0, 0, 1.0])):
                initial_rotations.append(rotation_matrix(axis, np.pi))
        self.initial_rotations = [np.asarray(r, dtype=float) for r in initial_rotations]

    # -- proposals ---------------------------------------------------------------

    def _initial_state(
        self, walker: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Starting (rotation, translation) of one walker (scoring separate)."""
        if walker < len(self.initial_rotations):
            rotation = self.initial_rotations[walker]
            offset = rng.normal(scale=0.5, size=3)
        else:
            rotation = random_rotation(rng)
            offset = rng.normal(scale=self.site_radius / 2.0, size=3)
        return rotation, self.site_center + offset

    def _proposal_state(
        self, pose: Pose, rng: np.random.Generator, scale: float = 1.0
    ) -> tuple[np.ndarray, np.ndarray]:
        """Perturbed (rotation, translation) of one pose (scoring separate)."""
        axis = rng.normal(size=3)
        angle = rng.normal(scale=self.rotation_step * scale)
        rotation = rotation_matrix(axis, angle) @ pose.rotation
        translation = pose.translation + rng.normal(scale=self.translation_step * scale, size=3)
        return rotation, translation

    def _perturb(self, pose: Pose, rng: np.random.Generator, scale: float = 1.0) -> Pose:
        rotation, translation = self._proposal_state(pose, rng, scale)
        score = self.scorer.score_pose(rotation, translation)
        return Pose(rotation=rotation, translation=translation, score=score)

    def _score_states(self, states: list[tuple[np.ndarray, np.ndarray]]) -> np.ndarray:
        """Score many (rotation, translation) states in one batched call."""
        ligand = self.scorer.ligand
        coords = np.stack([ligand.transformed(r, t) for r, t in states])
        return self.scorer.score_coords_batch(coords)

    def _accept(self, delta: float, rng: np.random.Generator) -> bool:
        """Metropolis acceptance; draws a uniform only for uphill moves."""
        return delta <= 0 or rng.random() < np.exp(-delta / self.temperature)

    # -- walkers -----------------------------------------------------------------

    def _walk_scalar(
        self, walkers: int, steps: int, rngs: list[np.random.Generator]
    ) -> list[Pose]:
        """Advance the walkers one at a time (reference path)."""
        candidates: list[Pose] = []
        for walker in range(walkers):
            rng = rngs[walker]
            rotation, translation = self._initial_state(walker, rng)
            current = Pose(rotation, translation, self.scorer.score_pose(rotation, translation))
            candidates.append(current)
            for _ in range(steps):
                proposal = self._perturb(current, rng)
                if self._accept(proposal.score - current.score, rng):
                    current = proposal
                    candidates.append(current)
        return candidates

    def _walk_batch(
        self, walkers: int, steps: int, rngs: list[np.random.Generator]
    ) -> list[Pose]:
        """Advance all walkers in lock-step, scoring each step as one batch.

        Candidates are collected per walker and concatenated walker-major, so
        the candidate order — and with it every downstream stable sort —
        matches the scalar path exactly.
        """
        states = [self._initial_state(walker, rngs[walker]) for walker in range(walkers)]
        scores = self._score_states(states)
        current = [
            Pose(rotation, translation, float(score))
            for (rotation, translation), score in zip(states, scores)
        ]
        per_walker: list[list[Pose]] = [[pose] for pose in current]
        for _ in range(steps):
            proposals = [
                self._proposal_state(current[walker], rngs[walker])
                for walker in range(walkers)
            ]
            scores = self._score_states(proposals)
            for walker in range(walkers):
                rotation, translation = proposals[walker]
                proposal = Pose(rotation, translation, float(scores[walker]))
                if self._accept(proposal.score - current[walker].score, rngs[walker]):
                    current[walker] = proposal
                    per_walker[walker].append(proposal)
        return [pose for walker_poses in per_walker for pose in walker_poses]

    # -- search ------------------------------------------------------------------

    def search(
        self,
        steps: int,
        rng: np.random.Generator,
        num_poses: int = 10,
        restarts: int = 3,
        refine_steps: int = 25,
        batch: bool = True,
    ) -> list[Pose]:
        """Run the search and return the best ``num_poses`` distinct poses.

        Poses are deduplicated on their translation (two poses closer than
        1.0 Å are considered the same binding mode and only the better one is
        kept), mirroring how Vina clusters its output modes.  ``batch``
        selects lock-step batched walker advancement; it changes wall time
        only, never the returned poses.
        """
        if steps <= 0:
            raise DockingError(f"steps must be positive, got {steps}")
        restarts = max(restarts, len(self.initial_rotations) + 1)
        walkers = max(1, restarts)
        steps_per_restart = max(1, steps // walkers)
        rngs = walker_rngs(rng, walkers)

        if batch and walkers > 1:
            candidates = self._walk_batch(walkers, steps_per_restart, rngs)
        else:
            candidates = self._walk_scalar(walkers, steps_per_restart, rngs)

        # Keep the best candidates, deduplicated by binding mode.  Selection
        # and refinement consume the caller's generator (walker 0's stream)
        # sequentially in both modes.
        candidates.sort(key=lambda p: p.score)
        selected: list[Pose] = []
        for pose in candidates:
            if len(selected) >= num_poses:
                break
            if all(np.linalg.norm(pose.translation - kept.translation) > 1.0 for kept in selected):
                selected.append(self._refine(pose, rng, refine_steps))
        if not selected:
            raise DockingError("pose search produced no candidates")
        selected.sort(key=lambda p: p.score)
        return selected

    def _refine(self, pose: Pose, rng: np.random.Generator, steps: int) -> Pose:
        """Greedy local refinement with shrinking step size."""
        best = pose
        for i in range(max(0, steps)):
            scale = 0.5 / (1.0 + i)
            trial = self._perturb(best, rng, scale=scale)
            if trial.score < best.score:
                best = trial
        return best
