"""Monte-Carlo rigid-body pose search with local refinement.

AutoDock Vina explores ligand poses with an iterated local-search /
Metropolis scheme.  For rigid ligands the pose space is 6-dimensional
(rotation + translation); :class:`MonteCarloPoseSearch` runs a Metropolis
random walk in that space from several restarts, keeps the best-scoring
distinct poses it visits, and polishes each of them with a short greedy local
refinement.  Every run is fully determined by its seed, which is how the
paper's per-seed docking reproducibility is achieved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.geometry import random_rotation, rotation_matrix
from repro.docking.ligand import Ligand
from repro.docking.scoring import VinaScoringFunction
from repro.exceptions import DockingError


@dataclass
class Pose:
    """One candidate ligand pose."""

    rotation: np.ndarray
    translation: np.ndarray
    score: float

    def coordinates(self, ligand: Ligand) -> np.ndarray:
        """Ligand atom coordinates in this pose."""
        return ligand.transformed(self.rotation, self.translation)


class MonteCarloPoseSearch:
    """Metropolis pose search around a binding-site centre."""

    def __init__(
        self,
        scorer: VinaScoringFunction,
        site_center: np.ndarray,
        site_radius: float = 6.0,
        temperature: float = 1.2,
        translation_step: float = 1.0,
        rotation_step: float = 0.5,
        initial_rotations: list[np.ndarray] | None = None,
    ):
        if site_radius <= 0:
            raise DockingError(f"site radius must be positive, got {site_radius}")
        self.scorer = scorer
        self.site_center = np.asarray(site_center, dtype=float).reshape(3)
        self.site_radius = float(site_radius)
        self.temperature = float(temperature)
        self.translation_step = float(translation_step)
        self.rotation_step = float(rotation_step)
        # Deterministic starting orientations tried before random restarts
        # (identity first: ligand and receptor frames are both pocket-derived,
        # so the near-native orientation is always worth probing).
        if initial_rotations is None:
            initial_rotations = [np.eye(3)]
            for axis in (np.array([1.0, 0, 0]), np.array([0, 1.0, 0]), np.array([0, 0, 1.0])):
                initial_rotations.append(rotation_matrix(axis, np.pi))
        self.initial_rotations = [np.asarray(r, dtype=float) for r in initial_rotations]
        self._restart_index = 0

    # -- proposals ---------------------------------------------------------------

    def _random_pose(self, rng: np.random.Generator) -> Pose:
        if self._restart_index < len(self.initial_rotations):
            rotation = self.initial_rotations[self._restart_index]
            offset = rng.normal(scale=0.5, size=3)
        else:
            rotation = random_rotation(rng)
            offset = rng.normal(scale=self.site_radius / 2.0, size=3)
        self._restart_index += 1
        translation = self.site_center + offset
        score = self.scorer.score_pose(rotation, translation)
        return Pose(rotation=rotation, translation=translation, score=score)

    def _perturb(self, pose: Pose, rng: np.random.Generator, scale: float = 1.0) -> Pose:
        axis = rng.normal(size=3)
        angle = rng.normal(scale=self.rotation_step * scale)
        rotation = rotation_matrix(axis, angle) @ pose.rotation
        translation = pose.translation + rng.normal(scale=self.translation_step * scale, size=3)
        score = self.scorer.score_pose(rotation, translation)
        return Pose(rotation=rotation, translation=translation, score=score)

    # -- search ------------------------------------------------------------------

    def search(
        self,
        steps: int,
        rng: np.random.Generator,
        num_poses: int = 10,
        restarts: int = 3,
        refine_steps: int = 25,
    ) -> list[Pose]:
        """Run the search and return the best ``num_poses`` distinct poses.

        Poses are deduplicated on their translation (two poses closer than
        1.0 Å are considered the same binding mode and only the better one is
        kept), mirroring how Vina clusters its output modes.
        """
        if steps <= 0:
            raise DockingError(f"steps must be positive, got {steps}")
        candidates: list[Pose] = []
        self._restart_index = 0
        restarts = max(restarts, len(self.initial_rotations) + 1)
        steps_per_restart = max(1, steps // max(1, restarts))

        for _ in range(max(1, restarts)):
            current = self._random_pose(rng)
            candidates.append(current)
            for _ in range(steps_per_restart):
                proposal = self._perturb(current, rng)
                delta = proposal.score - current.score
                if delta <= 0 or rng.random() < np.exp(-delta / self.temperature):
                    current = proposal
                    candidates.append(current)

        # Keep the best candidates, deduplicated by binding mode.
        candidates.sort(key=lambda p: p.score)
        selected: list[Pose] = []
        for pose in candidates:
            if len(selected) >= num_poses:
                break
            if all(np.linalg.norm(pose.translation - kept.translation) > 1.0 for kept in selected):
                selected.append(self._refine(pose, rng, refine_steps))
        if not selected:
            raise DockingError("pose search produced no candidates")
        selected.sort(key=lambda p: p.score)
        return selected

    def _refine(self, pose: Pose, rng: np.random.Generator, steps: int) -> Pose:
        """Greedy local refinement with shrinking step size."""
        best = pose
        for i in range(max(0, steps)):
            scale = 0.5 / (1.0 + i)
            trial = self._perturb(best, rng, scale=scale)
            if trial.score < best.score:
                best = trial
        return best
