"""The docking engine: multi-seed runs, top-k poses, pose-RMSD bounds.

Mirrors the paper's docking protocol (Sec. 4.2, 6.1.2): every receptor
structure is docked against its native ligand in ``N`` independent runs, each
initialised with a distinct recorded random seed; each run reports its top 10
poses ranked by affinity together with the RMSD lower/upper bounds of each
pose relative to the best pose of that run (the numbers AutoDock Vina prints).

Engine-job entry point
----------------------
Docking searches are first-class engine jobs (``kind="dock"``, see
:class:`repro.engine.jobs.DockSpec`): :func:`dock_structure` is the
module-level executor entry point — it builds a :class:`DockingEngine` from
the dock-relevant :class:`~repro.config.PipelineConfig` knobs
(``docking_seeds``, ``docking_poses``, ``docking_mc_steps``, ``seed``) and
runs the full multi-seed search.  Every run's seed derives from the master
seed plus the receptor identity plus the run index (``child_seed``), never
from worker assignment, so results are bit-identical for any worker count.
:meth:`DockingResult.from_dict` rebuilds a result from its serialised summary,
which is what the engine's persistent cache stores; a warm cache therefore
replays docking results without a single Monte-Carlo step.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bio.structure import Structure
from repro.config import PipelineConfig
from repro.docking.ligand import Ligand
from repro.docking.pocket import find_pockets
from repro.docking.scoring import ScoringWeights, VinaScoringFunction
from repro.docking.search import MonteCarloPoseSearch, Pose
from repro.exceptions import DockingError
from repro.utils.rng import child_seed, rng_for


def pose_rmsd_upper(coords_a: np.ndarray, coords_b: np.ndarray) -> float:
    """Vina's RMSD u.b.: direct per-atom RMSD with identity atom mapping."""
    diff = np.asarray(coords_a, dtype=float) - np.asarray(coords_b, dtype=float)
    return float(np.sqrt(np.mean(np.einsum("ij,ij->i", diff, diff))))


def pose_rmsd_lower(coords_a: np.ndarray, coords_b: np.ndarray) -> float:
    """Vina's RMSD l.b.: each atom matched to its nearest atom in the other pose."""
    a = np.asarray(coords_a, dtype=float)
    b = np.asarray(coords_b, dtype=float)
    diff = a[:, None, :] - b[None, :, :]
    dist2 = np.einsum("ijk,ijk->ij", diff, diff)
    forward = dist2.min(axis=1)
    backward = dist2.min(axis=0)
    return float(np.sqrt(0.5 * (forward.mean() + backward.mean())))


@dataclass
class DockedPose:
    """One output binding mode."""

    rank: int
    affinity: float
    rmsd_lb: float
    rmsd_ub: float
    coordinates: np.ndarray

    def as_dict(self) -> dict:
        """JSON-serialisable view (coordinates rounded to keep files small)."""
        return {
            "rank": int(self.rank),
            "affinity": float(self.affinity),
            "rmsd_lb": float(self.rmsd_lb),
            "rmsd_ub": float(self.rmsd_ub),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DockedPose":
        """Inverse of :meth:`as_dict` (pose coordinates are not serialised)."""
        return cls(
            rank=int(data["rank"]),
            affinity=float(data["affinity"]),
            rmsd_lb=float(data["rmsd_lb"]),
            rmsd_ub=float(data["rmsd_ub"]),
            coordinates=np.empty((0, 3)),
        )


@dataclass
class DockingRun:
    """One seed's docking run."""

    seed: int
    poses: list[DockedPose] = field(default_factory=list)

    @property
    def best_affinity(self) -> float:
        """Affinity of the top pose."""
        if not self.poses:
            raise DockingError("docking run has no poses")
        return self.poses[0].affinity

    @property
    def mean_affinity(self) -> float:
        """Mean affinity over the run's reported poses."""
        return float(np.mean([p.affinity for p in self.poses]))

    def as_dict(self) -> dict:
        """JSON-serialisable view."""
        return {
            "seed": int(self.seed),
            "best_affinity": float(self.best_affinity),
            "mean_affinity": float(self.mean_affinity),
            "poses": [p.as_dict() for p in self.poses],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DockingRun":
        """Inverse of :meth:`as_dict`; aggregates recompute from the poses."""
        return cls(
            seed=int(data["seed"]),
            poses=[DockedPose.from_dict(p) for p in data["poses"]],
        )


@dataclass
class DockingResult:
    """All runs for one receptor/ligand pair plus aggregates."""

    receptor_id: str
    ligand_name: str
    runs: list[DockingRun] = field(default_factory=list)

    @property
    def best_affinity(self) -> float:
        """Best (lowest) affinity over all runs."""
        return min(run.best_affinity for run in self.runs)

    @property
    def mean_best_affinity(self) -> float:
        """Mean of the per-run best affinities (the paper's headline affinity score)."""
        return float(np.mean([run.best_affinity for run in self.runs]))

    @property
    def mean_affinity(self) -> float:
        """Mean affinity over every reported pose of every run."""
        return float(np.mean([p.affinity for run in self.runs for p in run.poses]))

    @property
    def mean_rmsd_lb(self) -> float:
        """Mean pose-RMSD lower bound over non-top poses (Table 4's "RMSD l.b.")."""
        values = [p.rmsd_lb for run in self.runs for p in run.poses[1:]]
        return float(np.mean(values)) if values else 0.0

    @property
    def mean_rmsd_ub(self) -> float:
        """Mean pose-RMSD upper bound over non-top poses (Table 4's "RMSD u.b.")."""
        values = [p.rmsd_ub for run in self.runs for p in run.poses[1:]]
        return float(np.mean(values)) if values else 0.0

    def as_dict(self) -> dict:
        """JSON-serialisable view stored in the dataset's docking JSON files."""
        return {
            "receptor": self.receptor_id,
            "ligand": self.ligand_name,
            "num_runs": len(self.runs),
            "best_affinity": float(self.best_affinity),
            "mean_best_affinity": float(self.mean_best_affinity),
            "mean_affinity": float(self.mean_affinity),
            "mean_rmsd_lb": float(self.mean_rmsd_lb),
            "mean_rmsd_ub": float(self.mean_rmsd_ub),
            "runs": [run.as_dict() for run in self.runs],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DockingResult":
        """Rebuild a result from its :meth:`as_dict` summary.

        Every aggregate property recomputes from the restored per-pose numbers
        (floats round-trip JSON exactly), so a deserialised result reports the
        same affinities and RMSD bounds as the fresh search it was saved from.
        """
        return cls(
            receptor_id=data["receptor"],
            ligand_name=data["ligand"],
            runs=[DockingRun.from_dict(run) for run in data["runs"]],
        )


def dock_structure(
    receptor: Structure,
    ligand: Ligand,
    config: PipelineConfig | None = None,
    receptor_id: str | None = None,
) -> DockingResult:
    """Run the full multi-seed docking protocol for one receptor/ligand pair.

    This is the engine's ``dock`` job executor entry point: it constructs a
    :class:`DockingEngine` from the dock-relevant configuration knobs and
    returns the complete :class:`DockingResult`.  Deterministic in
    ``(receptor, ligand, receptor_id, config)`` — the per-run seeds derive
    from ``config.seed`` and ``receptor_id`` only.
    """
    config = config or PipelineConfig()
    engine = DockingEngine(
        num_seeds=config.docking_seeds,
        num_poses=config.docking_poses,
        mc_steps=config.docking_mc_steps,
        master_seed=config.seed,
        batch=config.docking_batch,
    )
    return engine.dock(receptor, ligand, receptor_id=receptor_id)


@dataclass
class PreparedDock:
    """The seed-invariant part of a docking task, built once per receptor/ligand.

    Scorer construction (receptor typing plus all precomputed pair-type
    matrices), pocket detection and the per-site search objects depend only on
    the receptor/ligand pair, never on the run seed — so a multi-seed dock
    prepares them exactly once and replays the same prepared task for every
    seed.
    """

    ligand: Ligand
    scorer: VinaScoringFunction
    searches: list[MonteCarloPoseSearch]
    steps_per_site: int


class DockingEngine:
    """Multi-seed rigid docking of one ligand against one receptor structure."""

    def __init__(
        self,
        num_seeds: int = 20,
        num_poses: int = 10,
        mc_steps: int = 200,
        weights: ScoringWeights | None = None,
        master_seed: int = 101,
        site_radius: float = 6.0,
        batch: bool = True,
    ):
        if num_seeds <= 0 or num_poses <= 0:
            raise DockingError("num_seeds and num_poses must be positive")
        self.num_seeds = int(num_seeds)
        self.num_poses = int(num_poses)
        self.mc_steps = int(mc_steps)
        self.weights = weights or ScoringWeights()
        self.master_seed = int(master_seed)
        self.site_radius = float(site_radius)
        self.batch = bool(batch)

    def prepare(self, receptor: Structure, ligand: Ligand) -> PreparedDock:
        """Build the seed-invariant task state: scorer, pockets, searches."""
        centered = ligand.centered()
        scorer = VinaScoringFunction(receptor, centered, weights=self.weights)
        # Search every detected binding site (blind docking over the fragment
        # surface), the way Vina explores its whole search box.
        pockets = find_pockets(receptor, num_sites=3)
        searches = [
            MonteCarloPoseSearch(scorer, p.center, site_radius=min(self.site_radius, p.radius))
            for p in pockets
        ]
        steps_per_site = max(10, self.mc_steps // len(searches))
        return PreparedDock(
            ligand=centered, scorer=scorer, searches=searches, steps_per_site=steps_per_site
        )

    def dock(self, receptor: Structure, ligand: Ligand, receptor_id: str | None = None) -> DockingResult:
        """Dock ``ligand`` against ``receptor`` over all seeds."""
        receptor_id = receptor_id or receptor.structure_id
        prepared = self.prepare(receptor, ligand)
        return self.dock_prepared(prepared, receptor_id, ligand_name=ligand.name)

    def dock_prepared(
        self, prepared: PreparedDock, receptor_id: str, ligand_name: str | None = None
    ) -> DockingResult:
        """Run every seed against an already-prepared docking task."""
        result = DockingResult(
            receptor_id=receptor_id,
            ligand_name=ligand_name if ligand_name is not None else prepared.ligand.name,
        )
        for i in range(self.num_seeds):
            seed = child_seed(self.master_seed, "docking", receptor_id, i)
            rng = rng_for(seed, "run")
            poses: list[Pose] = []
            for search in prepared.searches:
                poses.extend(
                    search.search(
                        prepared.steps_per_site, rng, num_poses=self.num_poses, batch=self.batch
                    )
                )
            poses.sort(key=lambda p: p.score)
            run = self._build_run(seed, poses[: self.num_poses], prepared.ligand)
            result.runs.append(run)
        return result

    def _build_run(self, seed: int, poses: list[Pose], ligand: Ligand) -> DockingRun:
        best_coords = poses[0].coordinates(ligand)
        docked: list[DockedPose] = []
        for rank, pose in enumerate(poses, start=1):
            coords = pose.coordinates(ligand)
            if rank == 1:
                lb = ub = 0.0
            else:
                lb = pose_rmsd_lower(coords, best_coords)
                ub = pose_rmsd_upper(coords, best_coords)
            docked.append(
                DockedPose(rank=rank, affinity=pose.score, rmsd_lb=lb, rmsd_ub=ub, coordinates=coords)
            )
        return DockingRun(seed=seed, poses=docked)
