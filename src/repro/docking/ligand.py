"""Ligand representation and the synthetic native-ligand generator.

The paper docks every fragment against "its experimentally identified ligand
from the PDBbind dataset" (Sec. 6.2).  Those ligands cannot be shipped
offline, so :class:`SyntheticLigandGenerator` builds, per PDB entry, a small
molecule that is *complementary to the reference pocket*: its atoms sit at
favourable contact distances from the reference fragment's surface atoms, with
polarity chosen to pair donors with acceptors and hydrophobes with
hydrophobes.  This reproduces the property the paper's evaluation relies on —
a predicted receptor that matches the experimental geometry docks the native
ligand better than one that does not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.reference import ReferenceRecord
from repro.exceptions import DockingError
from repro.utils.rng import rng_for

#: Van-der-Waals radii (Å) by element for the scoring function.
VDW_RADII: dict[str, float] = {"C": 1.9, "N": 1.8, "O": 1.7, "S": 2.0, "H": 1.2, "P": 2.1}


@dataclass
class Ligand:
    """A rigid small molecule described by typed atoms.

    Attributes
    ----------
    name:
        Identifier (usually ``<pdb_id>_ligand``).
    coords:
        (N, 3) atom coordinates in Angstroms.
    elements:
        Element symbol per atom.
    hydrophobic, donor, acceptor:
        Boolean per-atom typing flags consumed by the scoring function.
    charges:
        Partial charges per atom.
    num_rotatable_bonds:
        Torsional degrees of freedom (enters Vina's entropy penalty).
    anchor:
        Reference point used when re-centring the ligand for docking (defaults
        to the centroid).  The synthetic generator sets it to the pocket seed
        so that "identity orientation at the receptor's pocket centre" is the
        near-native pose.
    """

    name: str
    coords: np.ndarray
    elements: list[str]
    hydrophobic: np.ndarray
    donor: np.ndarray
    acceptor: np.ndarray
    charges: np.ndarray
    num_rotatable_bonds: int = 0
    anchor: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.coords = np.asarray(self.coords, dtype=float)
        n = self.coords.shape[0]
        if self.coords.ndim != 2 or self.coords.shape[1] != 3 or n == 0:
            raise DockingError(f"ligand coordinates must be a non-empty (N, 3) array, got {self.coords.shape}")
        for attr in ("hydrophobic", "donor", "acceptor"):
            setattr(self, attr, np.asarray(getattr(self, attr), dtype=bool))
            if getattr(self, attr).shape != (n,):
                raise DockingError(f"ligand {attr} flags must have shape ({n},)")
        self.charges = np.asarray(self.charges, dtype=float)
        if self.charges.shape != (n,):
            raise DockingError(f"ligand charges must have shape ({n},)")
        if len(self.elements) != n:
            raise DockingError("ligand elements list must match the number of atoms")
        if self.num_rotatable_bonds < 0:
            raise DockingError("num_rotatable_bonds must be >= 0")
        if self.anchor is not None:
            self.anchor = np.asarray(self.anchor, dtype=float).reshape(3)

    @property
    def num_atoms(self) -> int:
        """Number of atoms."""
        return self.coords.shape[0]

    @property
    def radii(self) -> np.ndarray:
        """Per-atom van-der-Waals radii."""
        return np.array([VDW_RADII.get(e.upper(), 1.9) for e in self.elements])

    def centroid(self) -> np.ndarray:
        """Geometric centre of the ligand."""
        return self.coords.mean(axis=0)

    def centered(self) -> "Ligand":
        """A copy translated so its anchor (or centroid) is at the origin."""
        origin = self.anchor if self.anchor is not None else self.centroid()
        return Ligand(
            name=self.name,
            coords=self.coords - origin,
            elements=list(self.elements),
            hydrophobic=self.hydrophobic.copy(),
            donor=self.donor.copy(),
            acceptor=self.acceptor.copy(),
            charges=self.charges.copy(),
            num_rotatable_bonds=self.num_rotatable_bonds,
            anchor=np.zeros(3),
        )

    def transformed(self, rotation: np.ndarray, translation: np.ndarray) -> np.ndarray:
        """Coordinates after applying a rigid transform (does not mutate the ligand)."""
        return self.coords @ np.asarray(rotation, dtype=float).T + np.asarray(translation, dtype=float)


class SyntheticLigandGenerator:
    """Builds a pocket-complementary ligand for a reference fragment.

    The ligand is *grown inside the reference fragment's binding groove*: the
    first atom is placed at the detected pocket centre, and every further atom
    is added one covalent-bond length away from an existing ligand atom at the
    candidate position that maximises favourable receptor contacts (atoms in
    the 3.4–4.6 Å shell) while avoiding steric clashes with both the receptor
    and the growing ligand.  Atom polarity is chosen to complement the nearest
    receptor atom (donor across from acceptor and vice versa, carbon next to
    hydrophobic side chains).  The result is a rigid molecule that fits the
    *reference* geometry snugly — so receptors that deviate from the reference
    dock it less favourably, which is the mechanism behind the paper's
    affinity comparison.
    """

    def __init__(self, master_seed: int = 23, min_atoms: int = 8, max_atoms: int = 18):
        if min_atoms < 3 or max_atoms < min_atoms:
            raise DockingError("ligand size bounds must satisfy 3 <= min_atoms <= max_atoms")
        self.master_seed = int(master_seed)
        self.min_atoms = int(min_atoms)
        self.max_atoms = int(max_atoms)

    #: Growth geometry (Å).
    BOND_LENGTH = 1.5
    CLASH_RECEPTOR = 3.9
    CLASH_SELF = 1.3
    SHELL_MIN = 3.8
    SHELL_MAX = 5.2

    def generate(self, reference: ReferenceRecord) -> Ligand:
        """Build the native-like ligand for a reference fragment."""
        from repro.docking.pocket import find_pocket  # local import to avoid a cycle at module load

        rng = rng_for(self.master_seed, "ligand", reference.pdb_id, str(reference.sequence))
        receptor_coords = reference.structure.all_coords()
        receptor_elements = np.array([a.element.upper() for a in reference.structure.atoms])
        receptor_polar = (receptor_elements == "N") | (receptor_elements == "O")

        pocket = find_pocket(reference.structure)
        n_atoms = int(np.clip(self.min_atoms + len(reference.sequence) // 2, self.min_atoms, self.max_atoms))

        positions: list[np.ndarray] = [pocket.center.copy()]
        # Pre-sample candidate growth directions once (deterministic).
        directions = rng.normal(size=(48, 3))
        directions /= np.linalg.norm(directions, axis=1, keepdims=True)

        for _ in range(n_atoms - 1):
            best_pos = None
            best_score = -np.inf
            grown = np.array(positions)
            # Growing from every existing atom keeps the molecule centred on
            # the pocket seed, so its centroid stays close to the detected
            # pocket centre — the convention the docking search also uses for
            # its initial poses.
            for parent in positions[::-1][:6]:
                candidates = parent + self.BOND_LENGTH * directions
                dist_receptor = np.linalg.norm(
                    candidates[:, None, :] - receptor_coords[None, :, :], axis=2
                )
                dist_self = np.linalg.norm(
                    candidates[:, None, :] - grown[None, :, :], axis=2
                )
                clash = (dist_receptor < self.CLASH_RECEPTOR).any(axis=1) | (
                    dist_self < self.CLASH_SELF
                ).any(axis=1)
                in_shell = (dist_receptor >= self.SHELL_MIN) & (dist_receptor <= self.SHELL_MAX)
                contacts = in_shell.sum(axis=1)
                # Hydrogen-bond opportunities (polar receptor atoms at contact
                # distance) are worth several generic contacts: they are what
                # makes the designed complex a deep, geometry-specific minimum.
                polar_contacts = (in_shell & receptor_polar[None, :]).sum(axis=1)
                score = np.where(
                    clash, -np.inf, contacts + 4.0 * polar_contacts + 0.01 * rng.random(len(candidates))
                )
                idx = int(np.argmax(score))
                if score[idx] > best_score:
                    best_score = float(score[idx])
                    best_pos = candidates[idx]
            if best_pos is None or not np.isfinite(best_score):
                break
            positions.append(best_pos)

        coords = np.array(positions)
        # Type every ligand atom to complement the receptor atoms it touches:
        # a donor across from an acceptor (and vice versa), carbon elsewhere.
        elements: list[str] = []
        hydrophobic, donor, acceptor, charges = [], [], [], []
        dist_all = np.linalg.norm(coords[:, None, :] - receptor_coords[None, :, :], axis=2)
        for k in range(coords.shape[0]):
            near = dist_all[k] <= 4.5
            near_elements = set(receptor_elements[near])
            if "O" in near_elements:
                elements.append("N")
                donor.append(True)
                acceptor.append(False)
                hydrophobic.append(False)
                charges.append(0.3)
            elif "N" in near_elements:
                elements.append("O")
                donor.append(False)
                acceptor.append(True)
                hydrophobic.append(False)
                charges.append(-0.3)
            else:
                elements.append("C")
                donor.append(False)
                acceptor.append(False)
                hydrophobic.append(True)
                charges.append(0.0)

        return Ligand(
            name=f"{reference.pdb_id}_ligand",
            coords=coords,
            elements=elements,
            hydrophobic=np.array(hydrophobic),
            donor=np.array(donor),
            acceptor=np.array(acceptor),
            charges=np.array(charges),
            num_rotatable_bonds=int(rng.integers(2, 7)),
            anchor=pocket.center.copy(),
        )
