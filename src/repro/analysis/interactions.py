"""Amino-acid interaction coverage analysis (Fig. 5).

The paper reports that the 55 fragments jointly cover 395 of the 400 cells of
the 20x20 residue-pair interaction matrix (98.75%), ensuring that the dataset
exercises essentially every Miyazawa–Jernigan interaction type.  The coverage
is computed exactly as described: every ordered pair of residue types
co-occurring within a fragment counts as an observed interaction type.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bio.amino_acids import AA_ORDER
from repro.bio.miyazawa_jernigan import AA_INDEX, MJ_MATRIX
from repro.bio.sequence import ProteinSequence
from repro.dataset.fragments import PAPER_FRAGMENTS, Fragment


@dataclass
class InteractionCoverage:
    """Coverage of the 20x20 residue-pair interaction matrix."""

    frequency: np.ndarray  # (20, 20) symmetric count matrix
    covered_pairs: int  # cells with at least one observation
    total_pairs: int  # 400

    @property
    def coverage_fraction(self) -> float:
        """Fraction of the 400 ordered pairs observed at least once."""
        return self.covered_pairs / self.total_pairs

    @property
    def missing_pairs(self) -> list[tuple[str, str]]:
        """Ordered residue-type pairs never observed in the dataset."""
        missing = []
        for i, a in enumerate(AA_ORDER):
            for j, b in enumerate(AA_ORDER):
                if self.frequency[i, j] == 0:
                    missing.append((a, b))
        return missing

    def most_frequent(self, top: int = 5) -> list[tuple[str, str, int]]:
        """The most frequently observed unordered pairs (e.g. G–A, L–G in the paper)."""
        seen: dict[tuple[str, str], int] = {}
        for i, a in enumerate(AA_ORDER):
            for j, b in enumerate(AA_ORDER):
                if j < i:
                    continue
                key = (a, b)
                seen[key] = int(self.frequency[i, j])
        ranked = sorted(seen.items(), key=lambda kv: kv[1], reverse=True)
        return [(a, b, count) for (a, b), count in ranked[:top]]

    @property
    def mj_coverage_fraction(self) -> float:
        """Fraction of distinct Miyazawa–Jernigan interaction types observed.

        The MJ model defines energies for all unordered pairs of the 20
        standard residues; this is the "full coverage of biologically relevant
        interaction types" check from Sec. 6.2.
        """
        n = len(AA_ORDER)
        total = n * (n + 1) // 2
        covered = 0
        for i in range(n):
            for j in range(i, n):
                if self.frequency[i, j] > 0:
                    covered += 1
        return covered / total


def interaction_coverage(fragments: list[Fragment] | None = None) -> InteractionCoverage:
    """Compute the interaction-coverage matrix over a fragment set (default: all 55)."""
    fragments = list(fragments) if fragments is not None else list(PAPER_FRAGMENTS)
    n = len(AA_ORDER)
    freq = np.zeros((n, n), dtype=int)
    for fragment in fragments:
        seq = ProteinSequence(fragment.sequence)
        for a, b in seq.pair_types():
            i, j = AA_INDEX[a], AA_INDEX[b]
            freq[i, j] += 1
            if i != j:
                freq[j, i] += 1
    covered = int(np.count_nonzero(freq))
    assert MJ_MATRIX.shape == freq.shape
    return InteractionCoverage(frequency=freq, covered_pairs=covered, total_pairs=n * n)
