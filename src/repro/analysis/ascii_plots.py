"""Text-mode rendering of the paper's figures (scatter panels and histograms).

The benchmark harness and the examples run in terminal-only environments, so
the figure content (Figs. 2–7) is rendered as ASCII plots: a scatter panel with
the identity diagonal (points above = QDock better, as in the paper's caption)
and simple histograms for distribution views.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AnalysisError


def scatter_plot(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 48,
    height: int = 20,
    xlabel: str = "baseline",
    ylabel: str = "QDock",
    title: str = "",
    draw_diagonal: bool = True,
) -> str:
    """Render paired values as an ASCII scatter panel with the y=x diagonal.

    ``x`` is the baseline method's value, ``y`` the reference (QDock) value —
    matching the axes of Figs. 2 and 3: points *below* the diagonal mean QDock
    achieved the lower (better) value.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size == 0 or x.shape != y.shape:
        raise AnalysisError("scatter_plot needs non-empty, equally sized arrays")
    lo = float(min(x.min(), y.min()))
    hi = float(max(x.max(), y.max()))
    if hi - lo < 1e-12:
        hi = lo + 1.0
    span = hi - lo

    grid = [[" "] * width for _ in range(height)]
    if draw_diagonal:
        for i in range(min(width, height * 2)):
            col = int(i / max(width - 1, 1) * (width - 1))
            row = height - 1 - int(i / max(width - 1, 1) * (height - 1))
            grid[row][col] = "."
    for xi, yi in zip(x, y):
        col = int((xi - lo) / span * (width - 1))
        row = height - 1 - int((yi - lo) / span * (height - 1))
        grid[row][col] = "o"

    lines = ["| " + "".join(r) for r in grid]
    header = f"{title}  (y={ylabel}, x={xlabel}; range [{lo:.2f}, {hi:.2f}])"
    footer = "+-" + "-" * width
    return "\n".join([header] + lines + [footer])


def histogram(values: np.ndarray, bins: int = 12, width: int = 40, title: str = "") -> str:
    """Render a horizontal ASCII histogram."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        raise AnalysisError("histogram needs at least one value")
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.max() > 0 else 1
    lines = [title] if title else []
    for count, left, right in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"[{left:8.2f}, {right:8.2f})  {bar} {count}")
    return "\n".join(lines)


def deviation_profile(deviations: dict[str, np.ndarray], threshold: float = 2.0, title: str = "") -> str:
    """Render per-residue deviation profiles (Fig. 7) as a character strip.

    Residues within ``threshold`` Angstroms of the reference are marked ``=``
    (the paper's green), others ``X`` (the paper's red).
    """
    if not deviations:
        raise AnalysisError("deviation_profile needs at least one method")
    lines = [title] if title else []
    for method, devs in deviations.items():
        marks = "".join("=" if d <= threshold else "X" for d in np.asarray(devs, dtype=float))
        lines.append(f"{method:>8s}  {marks}   (mean {float(np.mean(devs)):.2f} A)")
    return "\n".join(lines)
