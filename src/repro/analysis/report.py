"""Table / report generation: Tables 1–4 and the Sec. 6.2 win-rate summary."""

from __future__ import annotations

from typing import Any

from repro.analysis.comparison import MethodComparison
from repro.dataset.bank import QDockBank
from repro.dataset.fragments import PAPER_FRAGMENTS, fragments_by_group
from repro.exceptions import AnalysisError

#: Column order of the paper's per-group fragment tables (Tables 1–3).
GROUP_TABLE_COLUMNS = [
    "pdb_id",
    "sequence",
    "length",
    "residues",
    "qubits",
    "depth",
    "lowest_energy",
    "highest_energy",
    "energy_range",
    "exec_time_s",
]


def format_table(rows: list[dict[str, Any]], columns: list[str] | None = None, floatfmt: str = ".3f") -> str:
    """Render a list of row dicts as a fixed-width text table."""
    if not rows:
        raise AnalysisError("cannot format an empty table")
    columns = columns or list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))) for r in rendered)
    return f"{header}\n{separator}\n{body}"


def build_group_table(group: str, bank: QDockBank | None = None) -> list[dict[str, Any]]:
    """Rows of Table 1/2/3 for a length group.

    When a bank is provided the measured metadata is reported (with the paper
    value alongside as ``paper_*`` columns); otherwise the paper values alone
    are returned.
    """
    rows: list[dict[str, Any]] = []
    for fragment in fragments_by_group(group):
        row: dict[str, Any] = {
            "pdb_id": fragment.pdb_id,
            "sequence": fragment.sequence,
            "length": fragment.length,
            "residues": fragment.residue_range,
            "paper_qubits": fragment.paper.qubits,
            "paper_depth": fragment.paper.depth,
            "paper_lowest_energy": fragment.paper.lowest_energy,
            "paper_highest_energy": fragment.paper.highest_energy,
            "paper_energy_range": fragment.paper.energy_range,
            "paper_exec_time_s": fragment.paper.exec_time_s,
        }
        if bank is not None:
            try:
                entry = bank.entry(fragment.pdb_id)
            except Exception:
                entry = None
            if entry is not None and entry.quantum_metadata:
                meta = entry.quantum_metadata
                row.update(
                    {
                        "qubits": meta.get("qubits"),
                        "depth": meta.get("circuit_depth"),
                        "lowest_energy": meta.get("lowest_energy"),
                        "highest_energy": meta.get("highest_energy"),
                        "energy_range": meta.get("energy_range"),
                        "exec_time_s": meta.get("execution_time_s"),
                    }
                )
        else:
            row.update(
                {
                    "qubits": fragment.paper.qubits,
                    "depth": fragment.paper.depth,
                    "lowest_energy": fragment.paper.lowest_energy,
                    "highest_energy": fragment.paper.highest_energy,
                    "energy_range": fragment.paper.energy_range,
                    "exec_time_s": fragment.paper.exec_time_s,
                }
            )
        rows.append(row)
    return rows


def build_case_study_table(bank: QDockBank, pdb_id: str, methods: tuple[str, ...] = ("QDock", "AF3")) -> list[dict[str, Any]]:
    """Table 4: average docking metrics for one fragment across methods."""
    entry = bank.entry(pdb_id)
    rows = []
    for method in methods:
        evaluation = entry.evaluation(method)
        rows.append(
            {
                "method": method,
                "affinity_kcal_mol": evaluation.affinity,
                "rmsd_lb": evaluation.docking_rmsd_lb,
                "rmsd_ub": evaluation.docking_rmsd_ub,
                "ca_rmsd": evaluation.ca_rmsd,
            }
        )
    return rows


#: Win rates reported in Sec. 6.2, for paper-vs-measured comparison.
PAPER_WIN_RATES: dict[str, dict[str, dict[str, float]]] = {
    "AF2": {
        "affinity": {"All": 53 / 55, "L": 11 / 12, "M": 22 / 23, "S": 20 / 20},
        "rmsd": {"All": 51 / 55, "L": 9 / 12, "M": 23 / 23, "S": 19 / 20},
    },
    "AF3": {
        "affinity": {"All": 50 / 55, "L": 12 / 12, "M": 20 / 23, "S": 18 / 20},
        "rmsd": {"All": 44 / 55, "L": 7 / 12, "M": 19 / 23, "S": 18 / 20},
    },
}


def winrate_report(comparisons: dict[str, MethodComparison]) -> list[dict[str, Any]]:
    """Measured-vs-paper win rates for every baseline, metric and group."""
    rows: list[dict[str, Any]] = []
    for baseline, comparison in comparisons.items():
        for metric in ("affinity", "rmsd"):
            for group in ("All", "L", "M", "S"):
                try:
                    wins, total = comparison.wins(metric, group)
                except AnalysisError:
                    continue
                paper = PAPER_WIN_RATES.get(baseline, {}).get(metric, {}).get(group)
                rows.append(
                    {
                        "baseline": baseline,
                        "metric": metric,
                        "group": group,
                        "wins": wins,
                        "total": total,
                        "win_rate": wins / total if total else 0.0,
                        "paper_win_rate": paper if paper is not None else float("nan"),
                    }
                )
    return rows


def dataset_scale_summary() -> dict[str, Any]:
    """Headline dataset-scale numbers from the paper (for EXPERIMENTS.md context)."""
    return {
        "fragments": len(PAPER_FRAGMENTS),
        "groups": {"L": 12, "M": 23, "S": 20},
        "paper_total_exec_time_s": sum(f.paper.exec_time_s for f in PAPER_FRAGMENTS),
        "paper_claimed_qpu_hours": 60.0,
        "paper_claimed_cost_usd": 1_000_000.0,
        "docking_runs_per_entry": 20,
        "poses_per_run": 10,
    }
