"""Analysis and report generation: comparisons, statistics, coverage, tables, plots."""

from repro.analysis.comparison import MethodComparison, ScatterSeries, compare_methods, per_residue_case_study
from repro.analysis.statistics import aggregate_statistics, resource_gradient, MethodStatistics
from repro.analysis.interactions import interaction_coverage, InteractionCoverage
from repro.analysis.report import (
    build_group_table,
    build_case_study_table,
    format_table,
    winrate_report,
)
from repro.analysis.ascii_plots import scatter_plot, histogram

__all__ = [
    "MethodComparison",
    "ScatterSeries",
    "compare_methods",
    "per_residue_case_study",
    "aggregate_statistics",
    "resource_gradient",
    "MethodStatistics",
    "interaction_coverage",
    "InteractionCoverage",
    "build_group_table",
    "build_case_study_table",
    "format_table",
    "winrate_report",
    "scatter_plot",
    "histogram",
]
