"""Aggregate statistics: Fig. 4 (per-method distributions) and the Sec. 4.2
resource gradient (per-group qubits / depth / energy range averages)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.bank import QDockBank
from repro.dataset.fragments import Fragment, PAPER_FRAGMENTS, GROUPS
from repro.exceptions import AnalysisError
from repro.lattice.encoding import circuit_depth_for_qubits, qubit_count_for_length


@dataclass(frozen=True)
class MethodStatistics:
    """Distribution summary of one metric for one method (one Fig. 4 box)."""

    method: str
    metric: str
    mean: float
    median: float
    std: float
    minimum: float
    maximum: float
    count: int

    def as_dict(self) -> dict:
        """JSON-serialisable view."""
        return {
            "method": self.method,
            "metric": self.metric,
            "mean": self.mean,
            "median": self.median,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "count": self.count,
        }


def _summarise(method: str, metric: str, values: list[float]) -> MethodStatistics:
    if not values:
        raise AnalysisError(f"no values to summarise for {method}/{metric}")
    arr = np.asarray(values, dtype=float)
    return MethodStatistics(
        method=method,
        metric=metric,
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        std=float(arr.std()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        count=int(arr.size),
    )


def aggregate_statistics(bank: QDockBank, methods: list[str] | None = None) -> dict[str, dict[str, MethodStatistics]]:
    """Per-method distribution summaries of affinity and RMSD (Fig. 4 content).

    Returns ``{metric: {method: MethodStatistics}}``.
    """
    methods = methods or bank.methods()
    out: dict[str, dict[str, MethodStatistics]] = {"affinity": {}, "rmsd": {}}
    for method in methods:
        affinities = [e.evaluation(method).affinity for e in bank.entries if method in e.evaluations]
        rmsds = [e.evaluation(method).ca_rmsd for e in bank.entries if method in e.evaluations]
        out["affinity"][method] = _summarise(method, "affinity", affinities)
        out["rmsd"][method] = _summarise(method, "rmsd", rmsds)
    return out


@dataclass(frozen=True)
class GroupResources:
    """Per-group resource averages (the Sec. 4.2 computational-demand analysis)."""

    group: str
    count: int
    qubit_min: int
    qubit_max: int
    qubit_mean: float
    depth_mean: float
    energy_range_mean: float
    exec_time_min: float
    exec_time_max: float

    def as_dict(self) -> dict:
        """JSON-serialisable view."""
        return {
            "group": self.group,
            "count": self.count,
            "qubit_min": self.qubit_min,
            "qubit_max": self.qubit_max,
            "qubit_mean": self.qubit_mean,
            "depth_mean": self.depth_mean,
            "energy_range_mean": self.energy_range_mean,
            "exec_time_min": self.exec_time_min,
            "exec_time_max": self.exec_time_max,
        }


def resource_gradient(bank: QDockBank | None = None, use_paper_values: bool = False) -> dict[str, GroupResources]:
    """Per-group averages of qubits, depth, energy range and execution time.

    With ``use_paper_values=True`` (or when no bank is given) the gradient is
    computed from the paper's reported per-fragment values; otherwise it uses
    the bank's measured metadata.
    """
    out: dict[str, GroupResources] = {}
    for group in GROUPS:
        if bank is not None and not use_paper_values:
            entries = bank.group(group)
            if not entries:
                continue
            qubits = [int(e.quantum_metadata["qubits"]) for e in entries]
            depths = [int(e.quantum_metadata["circuit_depth"]) for e in entries]
            ranges = [float(e.quantum_metadata["energy_range"]) for e in entries]
            times = [float(e.quantum_metadata["execution_time_s"]) for e in entries]
        else:
            fragments: list[Fragment] = [f for f in PAPER_FRAGMENTS if f.group == group]
            qubits = [f.paper.qubits for f in fragments]
            depths = [f.paper.depth for f in fragments]
            ranges = [f.paper.energy_range for f in fragments]
            times = [f.paper.exec_time_s for f in fragments]
        out[group] = GroupResources(
            group=group,
            count=len(qubits),
            qubit_min=int(min(qubits)),
            qubit_max=int(max(qubits)),
            qubit_mean=float(np.mean(qubits)),
            depth_mean=float(np.mean(depths)),
            energy_range_mean=float(np.mean(ranges)),
            exec_time_min=float(min(times)),
            exec_time_max=float(max(times)),
        )
    return out


def encoding_resource_table() -> list[dict]:
    """Qubits and depth predicted by the encoding model for lengths 5–14.

    Used to verify that the resource model reproduces the paper's per-length
    qubit counts and the ``depth = 4·q + 5`` relation.
    """
    rows = []
    for length in range(5, 15):
        qubits = qubit_count_for_length(length)
        rows.append(
            {
                "length": length,
                "qubits": qubits,
                "depth": circuit_depth_for_qubits(qubits),
            }
        )
    return rows
