"""QDock vs baseline comparisons: win rates (Sec. 6.2) and scatter data (Figs. 2–3).

The paper's headline evaluation counts, per metric and per group, how many of
the 55 fragments the quantum prediction handles better than AlphaFold2/3.
"Better" means *lower* for both metrics: Cα RMSD against the experimental
structure and docking binding affinity (kcal/mol).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bio.rmsd import per_residue_deviation
from repro.dataset.bank import QDockBank
from repro.exceptions import AnalysisError

#: Group keys used throughout ("All" plus the paper's three length groups).
COMPARISON_GROUPS: tuple[str, ...] = ("All", "L", "M", "S")


@dataclass
class ScatterSeries:
    """Paired per-fragment values for one metric and one group (one scatter panel)."""

    metric: str
    group: str
    pdb_ids: list[str]
    reference_method: str
    baseline_method: str
    reference_values: np.ndarray
    baseline_values: np.ndarray

    @property
    def wins(self) -> int:
        """Fragments where the reference method (QDock) has the lower value."""
        return int(np.count_nonzero(self.reference_values < self.baseline_values))

    @property
    def total(self) -> int:
        """Number of fragments in the panel."""
        return int(self.reference_values.size)

    @property
    def win_rate(self) -> float:
        """Fraction of fragments won by the reference method."""
        if self.total == 0:
            raise AnalysisError(f"empty scatter series for {self.metric}/{self.group}")
        return self.wins / self.total


@dataclass
class MethodComparison:
    """Full comparison of QDock against one baseline across metrics and groups."""

    reference_method: str
    baseline_method: str
    series: dict[tuple[str, str], ScatterSeries] = field(default_factory=dict)

    def panel(self, metric: str, group: str) -> ScatterSeries:
        """One (metric, group) scatter panel."""
        try:
            return self.series[(metric, group)]
        except KeyError:
            raise AnalysisError(
                f"no panel for metric={metric!r}, group={group!r}; "
                f"available: {sorted(self.series)}"
            ) from None

    def win_rate(self, metric: str, group: str = "All") -> float:
        """Win rate of the reference method for a metric/group."""
        return self.panel(metric, group).win_rate

    def wins(self, metric: str, group: str = "All") -> tuple[int, int]:
        """(wins, total) for a metric/group."""
        panel = self.panel(metric, group)
        return panel.wins, panel.total

    def summary(self) -> dict[str, dict[str, float]]:
        """Nested {metric: {group: win_rate}} summary used by reports and tests."""
        out: dict[str, dict[str, float]] = {}
        for (metric, group), panel in self.series.items():
            out.setdefault(metric, {})[group] = panel.win_rate
        return out


def _entries_for_group(bank: QDockBank, group: str):
    if group == "All":
        return list(bank.entries)
    return bank.group(group)


def compare_methods(
    bank: QDockBank,
    baseline_method: str,
    reference_method: str = "QDock",
    metrics: tuple[str, ...] = ("affinity", "rmsd"),
) -> MethodComparison:
    """Build the full QDock-vs-baseline comparison from a bank.

    ``metrics`` may contain ``"affinity"`` (docking score) and ``"rmsd"``
    (Cα RMSD to the experimental reference); both are lower-is-better.
    """
    comparison = MethodComparison(reference_method=reference_method, baseline_method=baseline_method)
    for metric in metrics:
        for group in COMPARISON_GROUPS:
            entries = _entries_for_group(bank, group)
            if not entries:
                continue
            pdb_ids, ref_vals, base_vals = [], [], []
            for entry in entries:
                ref = entry.evaluation(reference_method)
                base = entry.evaluation(baseline_method)
                if metric == "affinity":
                    ref_vals.append(ref.affinity)
                    base_vals.append(base.affinity)
                elif metric == "rmsd":
                    ref_vals.append(ref.ca_rmsd)
                    base_vals.append(base.ca_rmsd)
                else:
                    raise AnalysisError(f"unknown metric {metric!r}")
                pdb_ids.append(entry.pdb_id)
            comparison.series[(metric, group)] = ScatterSeries(
                metric=metric,
                group=group,
                pdb_ids=pdb_ids,
                reference_method=reference_method,
                baseline_method=baseline_method,
                reference_values=np.array(ref_vals),
                baseline_values=np.array(base_vals),
            )
    return comparison


@dataclass
class CaseStudy:
    """Per-residue deviation profiles for one fragment (the Fig. 7 content)."""

    pdb_id: str
    methods: dict[str, np.ndarray]
    rmsd: dict[str, float]


def per_residue_case_study(bank: QDockBank, pdb_id: str, methods: tuple[str, ...] = ("QDock", "AF3")) -> CaseStudy:
    """Per-residue Cα deviation of each method's prediction for one fragment.

    Requires the entry to have been built with ``keep_structures=True`` so the
    predicted / baseline / reference structures are available.
    """
    entry = bank.entry(pdb_id)
    if entry.reference_structure is None:
        raise AnalysisError(f"entry {pdb_id} was built without structures; rebuild with keep_structures=True")
    profiles: dict[str, np.ndarray] = {}
    rmsds: dict[str, float] = {}
    for method in methods:
        if method == "QDock":
            structure = entry.predicted_structure
        else:
            structure = entry.baseline_structures.get(method)
        if structure is None:
            raise AnalysisError(f"entry {pdb_id} has no stored structure for method {method!r}")
        deviations = per_residue_deviation(structure, entry.reference_structure)
        profiles[method] = deviations
        rmsds[method] = entry.evaluation(method).ca_rmsd
    return CaseStudy(pdb_id=entry.pdb_id, methods=profiles, rmsd=rmsds)
