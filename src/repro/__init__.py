"""repro — a from-scratch reproduction of QDockBank (SC 2025).

QDockBank is a dataset of ligand-binding-pocket protein fragments whose 3D
structures were predicted with VQE on utility-level IBM quantum processors and
evaluated with AutoDock Vina docking against AlphaFold2/3 baselines.  This
package reimplements the full pipeline and all of its substrates in pure
Python (NumPy/SciPy/NetworkX): the coarse-grained lattice folding model, the
quantum circuit simulators and the Eagle hardware emulator, the VQE driver,
the docking engine, the baseline predictors, the dataset builder and the
analysis/benchmark harness.

Quickstart
----------
>>> from repro import PipelineConfig, QuantumFoldingPredictor
>>> predictor = QuantumFoldingPredictor(config=PipelineConfig.fast())
>>> prediction = predictor.predict("3eax", "RYRDV")
>>> prediction.structure.sequence
'RYRDV'
"""

from repro.version import __version__
from repro.config import PipelineConfig, DEFAULT_CONFIG
from repro.exceptions import ReproError
from repro.bio.sequence import ProteinSequence
from repro.bio.reference import ReferenceStructureGenerator
from repro.folding.predictor import (
    QuantumFoldingPredictor,
    ClassicalFoldingPredictor,
    FoldingPrediction,
    fold_fragment,
)
from repro.folding.baselines import AF2LikePredictor, AF3LikePredictor
from repro.engine import (
    BaselineFoldSpec,
    DockJobResult,
    DockSpec,
    Engine,
    JobResult,
    JobSpec,
    ResultCache,
    make_backend,
)
from repro.docking.vina import DockingEngine
from repro.docking.ligand import SyntheticLigandGenerator
from repro.dataset.builder import DatasetBuilder
from repro.dataset.bank import QDockBank
from repro.dataset.fragments import PAPER_FRAGMENTS, fragments_by_group, fragment_by_pdb_id

__all__ = [
    "__version__",
    "PipelineConfig",
    "DEFAULT_CONFIG",
    "ReproError",
    "ProteinSequence",
    "ReferenceStructureGenerator",
    "QuantumFoldingPredictor",
    "ClassicalFoldingPredictor",
    "FoldingPrediction",
    "fold_fragment",
    "BaselineFoldSpec",
    "DockJobResult",
    "DockSpec",
    "Engine",
    "JobResult",
    "JobSpec",
    "ResultCache",
    "make_backend",
    "AF2LikePredictor",
    "AF3LikePredictor",
    "DockingEngine",
    "SyntheticLigandGenerator",
    "DatasetBuilder",
    "QDockBank",
    "PAPER_FRAGMENTS",
    "fragments_by_group",
    "fragment_by_pdb_id",
]
