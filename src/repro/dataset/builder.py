"""High-level dataset builder: fragments in, QDockBank (and files) out."""

from __future__ import annotations

from pathlib import Path

from repro.config import PipelineConfig
from repro.dataset.bank import QDockBank
from repro.dataset.batch import BatchProcessor
from repro.dataset.fragments import PAPER_FRAGMENTS, Fragment, fragments_by_group
from repro.engine.core import Engine
from repro.exceptions import DatasetError
from repro.utils.logging import get_logger
from repro.utils.parallel import ParallelExecutor

logger = get_logger(__name__)


class DatasetBuilder:
    """Builds the QDockBank dataset with the full fold → dock → evaluate pipeline.

    Parameters
    ----------
    config:
        Pipeline configuration (use :meth:`PipelineConfig.paper` for
        full-fidelity runs, :meth:`PipelineConfig.fast` for CI-scale runs).
    processes:
        Worker processes for the engine fan-out and batch stage; ``0``/``1``
        runs serially (results are bit-identical either way).
    cache_dir:
        Directory of the engine's persistent result cache (folds, baseline
        folds and docking searches alike); repeated builds over the same
        fragments and configuration skip the VQE *and* every docking search
        entirely.  ``None`` falls back to ``config.cache_dir``; the cache is
        bounded by ``config.cache_max_bytes`` / ``config.cache_eviction``.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        processes: int = 0,
        cache_dir: str | Path | None = None,
    ):
        self.config = config or PipelineConfig()
        self.engine = Engine(config=self.config, cache=cache_dir, processes=processes)
        self.processor = BatchProcessor(
            config=self.config,
            executor=ParallelExecutor(processes=processes),
            engine=self.engine,
        )

    # -- fragment selection ----------------------------------------------------------

    @staticmethod
    def select_fragments(
        groups: list[str] | None = None,
        pdb_ids: list[str] | None = None,
        limit_per_group: int | None = None,
    ) -> list[Fragment]:
        """Select fragments from the paper's 55 by group and/or PDB ID."""
        if pdb_ids:
            wanted = {p.lower() for p in pdb_ids}
            selected = [f for f in PAPER_FRAGMENTS if f.pdb_id in wanted]
            missing = wanted - {f.pdb_id for f in selected}
            if missing:
                raise DatasetError(f"unknown PDB IDs requested: {sorted(missing)}")
            return selected
        if groups:
            selected = []
            for group in groups:
                members = fragments_by_group(group)
                if limit_per_group is not None:
                    members = members[:limit_per_group]
                selected.extend(members)
            return selected
        fragments = list(PAPER_FRAGMENTS)
        if limit_per_group is not None:
            fragments = [
                f
                for group in ("L", "M", "S")
                for f in fragments_by_group(group)[:limit_per_group]
            ]
        return fragments

    # -- building ------------------------------------------------------------------------

    def build(
        self,
        fragments: list[Fragment] | None = None,
        include_baselines: bool = True,
        keep_structures: bool = True,
        progress=None,
    ) -> QDockBank:
        """Run the pipeline over ``fragments`` (default: all 55) and return the bank.

        ``progress`` is an optional callback receiving one
        :class:`~repro.engine.session.SessionProgress` event per completed
        engine job (fold, baseline fold or docking search) — the long-sweep
        progress signal for CLIs and notebooks.
        """
        fragments = list(fragments) if fragments is not None else list(PAPER_FRAGMENTS)
        if not fragments:
            raise DatasetError("no fragments selected for dataset construction")
        logger.info("building QDockBank for %d fragments", len(fragments))
        entries = self.processor.build_entries(
            fragments,
            keep_structures=keep_structures,
            include_baselines=include_baselines,
            progress=progress,
        )
        bank = QDockBank(entries=entries)
        logger.info("finished %d entries; engine stats: %s", len(bank), self.engine.stats())
        return bank

    def build_and_save(self, output_dir: str | Path, **kwargs) -> QDockBank:
        """Build and persist the dataset in the published folder layout."""
        bank = self.build(**kwargs)
        path = bank.save(output_dir)
        logger.info("dataset written to %s", path)
        return bank
