"""One QDockBank entry: a fragment with predictions, docking and metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.bio.structure import Structure
from repro.dataset.fragments import Fragment
from repro.exceptions import DatasetError


@dataclass
class MethodEvaluation:
    """Evaluation of one prediction method on one fragment."""

    method: str
    ca_rmsd: float
    affinity: float
    docking_rmsd_lb: float
    docking_rmsd_ub: float
    docking_summary: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-serialisable view."""
        return {
            "method": self.method,
            "ca_rmsd": float(self.ca_rmsd),
            "affinity": float(self.affinity),
            "docking_rmsd_lb": float(self.docking_rmsd_lb),
            "docking_rmsd_ub": float(self.docking_rmsd_ub),
            "docking_summary": self.docking_summary,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MethodEvaluation":
        """Inverse of :meth:`as_dict`."""
        return cls(
            method=data["method"],
            ca_rmsd=float(data["ca_rmsd"]),
            affinity=float(data["affinity"]),
            docking_rmsd_lb=float(data.get("docking_rmsd_lb", 0.0)),
            docking_rmsd_ub=float(data.get("docking_rmsd_ub", 0.0)),
            docking_summary=data.get("docking_summary", {}),
        )


@dataclass
class QDockBankEntry:
    """One fragment's complete dataset record.

    The three per-entry files of the published dataset layout (Sec. 4.2) map to:

    * ``predicted.pdb`` — :attr:`predicted_structure` (the QDock prediction);
    * ``metadata.json`` — :attr:`quantum_metadata`;
    * ``docking.json`` — the docking summaries inside :attr:`evaluations`.
    """

    fragment: Fragment
    quantum_metadata: dict[str, Any] = field(default_factory=dict)
    evaluations: dict[str, MethodEvaluation] = field(default_factory=dict)
    predicted_structure: Structure | None = None
    reference_structure: Structure | None = None
    baseline_structures: dict[str, Structure] = field(default_factory=dict)

    @property
    def pdb_id(self) -> str:
        """PDB ID of the parent protein."""
        return self.fragment.pdb_id

    @property
    def group(self) -> str:
        """Length group (S/M/L)."""
        return self.fragment.group

    def evaluation(self, method: str) -> MethodEvaluation:
        """Evaluation of one method, raising a clear error when absent."""
        try:
            return self.evaluations[method]
        except KeyError:
            raise DatasetError(
                f"entry {self.pdb_id} has no evaluation for method {method!r}; "
                f"available: {sorted(self.evaluations)}"
            ) from None

    def metrics_record(self) -> dict[str, Any]:
        """Flat record used by the analysis layer and the index JSON."""
        record: dict[str, Any] = {
            "pdb_id": self.pdb_id,
            "sequence": self.fragment.sequence,
            "length": self.fragment.length,
            "group": self.group,
            "functional_class": self.fragment.functional_class,
            "qubits": self.quantum_metadata.get("qubits"),
            "circuit_depth": self.quantum_metadata.get("circuit_depth"),
            "lowest_energy": self.quantum_metadata.get("lowest_energy"),
            "highest_energy": self.quantum_metadata.get("highest_energy"),
            "energy_range": self.quantum_metadata.get("energy_range"),
            "execution_time_s": self.quantum_metadata.get("execution_time_s"),
        }
        for method, ev in self.evaluations.items():
            record[f"rmsd_{method}"] = ev.ca_rmsd
            record[f"affinity_{method}"] = ev.affinity
        return record
