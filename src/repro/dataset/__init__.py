"""The QDockBank dataset: the 55 fragments, the builder pipeline and the container."""

from repro.dataset.fragments import (
    Fragment,
    PAPER_FRAGMENTS,
    fragments_by_group,
    fragment_by_pdb_id,
    GROUPS,
)
from repro.dataset.entry import QDockBankEntry
from repro.dataset.bank import QDockBank
from repro.dataset.builder import DatasetBuilder
from repro.dataset.batch import BatchProcessor, FragmentTask

__all__ = [
    "Fragment",
    "PAPER_FRAGMENTS",
    "fragments_by_group",
    "fragment_by_pdb_id",
    "GROUPS",
    "QDockBankEntry",
    "QDockBank",
    "DatasetBuilder",
    "BatchProcessor",
    "FragmentTask",
]
