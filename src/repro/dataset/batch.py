"""Batch construction of dataset entries (the Sec. 5.2 architecture, classically).

Every fragment is an independent work item.  The expensive quantum folds are
streamed through the job engine first (:class:`~repro.engine.core.Engine` —
parallel fan-out, in-batch dedup, persistent result cache); the remaining
per-fragment work (baseline folds, reference and ligand generation, docking,
entry assembly) then runs either serially or on a process pool via
:class:`~repro.utils.parallel.ParallelExecutor`.  Results are deterministic
for any worker count and any cache state because every stochastic component
derives its seed from the master seed plus the fragment identity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bio.reference import ReferenceStructureGenerator
from repro.bio.rmsd import ca_rmsd
from repro.config import PipelineConfig
from repro.dataset.entry import MethodEvaluation, QDockBankEntry
from repro.dataset.fragments import Fragment
from repro.docking.ligand import SyntheticLigandGenerator
from repro.docking.vina import DockingEngine, DockingResult
from repro.engine.core import Engine
from repro.folding.baselines import AF2LikePredictor, AF3LikePredictor
from repro.folding.predictor import FoldingPrediction, fold_fragment
from repro.utils.parallel import ParallelExecutor


@dataclass(frozen=True)
class FragmentTask:
    """A picklable unit of work: one fragment plus the pipeline configuration.

    ``quantum`` carries the already-folded quantum prediction when the fold
    phase ran through the engine; ``None`` makes :func:`build_entry` fold
    inline (the pre-engine behaviour, kept for direct callers).
    """

    fragment: Fragment
    config: PipelineConfig
    keep_structures: bool = True
    include_baselines: bool = True
    quantum: FoldingPrediction | None = None


def _evaluate_method(
    prediction: FoldingPrediction,
    reference_structure,
    docking: DockingResult,
) -> MethodEvaluation:
    return MethodEvaluation(
        method=prediction.method,
        ca_rmsd=ca_rmsd(prediction.structure, reference_structure),
        affinity=docking.mean_best_affinity,
        docking_rmsd_lb=docking.mean_rmsd_lb,
        docking_rmsd_ub=docking.mean_rmsd_ub,
        docking_summary=docking.as_dict(),
    )


def build_entry(task: FragmentTask) -> QDockBankEntry:
    """Build the complete dataset entry for one fragment.

    This is a module-level function (not a method) so it can be dispatched to
    worker processes by :class:`BatchProcessor`.
    """
    fragment = task.fragment
    config = task.config

    reference_generator = ReferenceStructureGenerator(master_seed=config.seed)
    reference = reference_generator.generate(
        fragment.pdb_id, fragment.sequence, start_seq_id=fragment.residue_start
    )
    ligand = SyntheticLigandGenerator(master_seed=config.seed).generate(reference)

    docking_engine = DockingEngine(
        num_seeds=config.docking_seeds,
        num_poses=config.docking_poses,
        mc_steps=config.docking_mc_steps,
        master_seed=config.seed,
    )

    # Quantum prediction (the dataset's primary content) — precomputed by the
    # engine's fold phase when available.
    qdock_prediction = task.quantum
    if qdock_prediction is None:
        qdock_prediction, _ = fold_fragment(
            fragment.pdb_id,
            fragment.sequence,
            config=config,
            start_seq_id=fragment.residue_start,
        )
    qdock_docking = docking_engine.dock(
        qdock_prediction.structure, ligand, receptor_id=f"{fragment.pdb_id}:QDock"
    )

    entry = QDockBankEntry(
        fragment=fragment,
        quantum_metadata=qdock_prediction.metadata,
        predicted_structure=qdock_prediction.structure if task.keep_structures else None,
        reference_structure=reference.structure if task.keep_structures else None,
    )
    entry.evaluations["QDock"] = _evaluate_method(qdock_prediction, reference.structure, qdock_docking)

    if task.include_baselines:
        for predictor in (
            AF2LikePredictor(reference_generator=reference_generator),
            AF3LikePredictor(reference_generator=reference_generator),
        ):
            prediction = predictor.predict(
                fragment.pdb_id, fragment.sequence, start_seq_id=fragment.residue_start
            )
            docking = docking_engine.dock(
                prediction.structure, ligand, receptor_id=f"{fragment.pdb_id}:{prediction.method}"
            )
            entry.evaluations[prediction.method] = _evaluate_method(
                prediction, reference.structure, docking
            )
            if task.keep_structures:
                entry.baseline_structures[prediction.method] = prediction.structure

    return entry


class BatchProcessor:
    """Builds entries for many fragments, optionally on a process pool."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        executor: ParallelExecutor | None = None,
        engine: Engine | None = None,
    ):
        self.config = config or PipelineConfig()
        self.executor = executor or ParallelExecutor(processes=0)
        self.engine = engine or Engine(config=self.config)

    def build_entries(
        self,
        fragments: list[Fragment],
        keep_structures: bool = True,
        include_baselines: bool = True,
    ) -> list[QDockBankEntry]:
        """Build entries for ``fragments`` (order preserved).

        Phase 1 streams every quantum fold through the engine (parallel,
        cached); phase 2 runs the remaining per-fragment work on the executor.
        """
        specs = [
            self.engine.spec(f.pdb_id, f.sequence, start_seq_id=f.residue_start)
            for f in fragments
        ]
        folds = self.engine.run(specs, processes=self.executor.processes)
        tasks = [
            FragmentTask(
                fragment=f,
                config=self.config,
                keep_structures=keep_structures,
                include_baselines=include_baselines,
                quantum=fold.prediction,
            )
            for f, fold in zip(fragments, folds)
        ]
        return self.executor.map(build_entry, tasks)
