"""Batch construction of dataset entries (the Sec. 5.2 architecture, classically).

Every fragment is an independent work item, and every *expensive* unit of
work — the quantum VQE fold, each AF2/AF3-like baseline fold, and each
multi-seed docking search — is a typed engine job
(:mod:`repro.engine.jobs`) streamed through one
:class:`~repro.engine.core.Engine` with parallel fan-out, in-batch dedup and
the persistent result cache.  :meth:`BatchProcessor.build_entries` runs three
phases:

1. **fold** — one ``fold`` job per fragment plus one ``baseline_fold`` job per
   fragment and method, submitted as a single engine batch;
2. **dock** — reference structures and synthetic ligands are derived (cheap,
   deterministic), then one ``dock`` job per predicted structure (quantum and
   baselines) goes through the engine, each run seeded per
   ``(receptor, run index)``;
3. **assemble** — RMSD metrics and entry records are computed in-process.

Against a warm cache the entire rebuild performs zero VQE executions and zero
docking searches.  Results are deterministic for any worker count and any
cache state because every stochastic component derives its seed from the
master seed plus the work item's identity.

Both engine phases run as *streaming sessions* (:meth:`Engine.submit`): an
optional ``progress`` callback observes every job outcome as it completes,
per-job status is journalled when ``config.session_dir`` is set (a crashed
build re-run with the same inputs resumes its own journal), and — under the
default ``on_error="isolate"`` — a crashing job drops only its own fragment
from the entry list instead of aborting the whole build.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.bio.reference import ReferenceRecord, ReferenceStructureGenerator
from repro.bio.rmsd import ca_rmsd
from repro.config import PipelineConfig
from repro.dataset.entry import MethodEvaluation, QDockBankEntry
from repro.dataset.fragments import Fragment
from repro.docking.ligand import Ligand, SyntheticLigandGenerator
from repro.docking.vina import DockingEngine, DockingResult
from repro.engine.core import Engine
from repro.engine.session import JobFailure
from repro.folding.baselines import (
    BASELINE_PREDICTORS,
    AF2LikePredictor,
    AF3LikePredictor,
)
from repro.folding.predictor import FoldingPrediction, fold_fragment
from repro.utils.logging import get_logger
from repro.utils.parallel import ParallelExecutor

logger = get_logger(__name__)

#: Baseline methods evaluated next to the quantum prediction — derived from
#: the predictor registry so a newly registered baseline is picked up here.
BASELINE_METHODS: tuple[str, ...] = tuple(BASELINE_PREDICTORS)


@dataclass(frozen=True)
class FragmentTask:
    """A picklable unit of work: one fragment plus the pipeline configuration.

    ``quantum`` carries the already-folded quantum prediction when the fold
    phase ran through the engine; ``None`` makes :func:`build_entry` fold
    inline (the pre-engine behaviour, kept for direct callers).
    """

    fragment: Fragment
    config: PipelineConfig
    keep_structures: bool = True
    include_baselines: bool = True
    quantum: FoldingPrediction | None = None


@dataclass(frozen=True)
class _ContextTask:
    """Input of :func:`prepare_context` (picklable for the executor)."""

    fragment: Fragment
    config: PipelineConfig


def prepare_context(task: _ContextTask) -> tuple[ReferenceRecord, Ligand]:
    """Derive the reference structure and synthetic ligand for one fragment.

    Cheap and fully deterministic in ``(fragment, config.seed)`` — this is the
    docking phase's input preparation, not engine-cached work.
    """
    fragment = task.fragment
    reference = ReferenceStructureGenerator(master_seed=task.config.seed).generate(
        fragment.pdb_id, fragment.sequence, start_seq_id=fragment.residue_start
    )
    ligand = SyntheticLigandGenerator(master_seed=task.config.seed).generate(reference)
    return reference, ligand


def _evaluate_method(
    prediction: FoldingPrediction,
    reference_structure,
    docking: DockingResult,
) -> MethodEvaluation:
    return MethodEvaluation(
        method=prediction.method,
        ca_rmsd=ca_rmsd(prediction.structure, reference_structure),
        affinity=docking.mean_best_affinity,
        docking_rmsd_lb=docking.mean_rmsd_lb,
        docking_rmsd_ub=docking.mean_rmsd_ub,
        docking_summary=docking.as_dict(),
    )


def _assemble_entry(
    fragment: Fragment,
    reference: ReferenceRecord,
    evaluated: list[tuple[FoldingPrediction, DockingResult]],
    keep_structures: bool,
) -> QDockBankEntry:
    """Assemble one entry from evaluated ``(prediction, docking)`` pairs.

    ``evaluated[0]`` must be the quantum prediction; the rest are baselines.
    Shared by the inline path (:func:`build_entry`) and the batch pipeline so
    evaluation and structure-retention rules cannot diverge.
    """
    quantum, _ = evaluated[0]
    entry = QDockBankEntry(
        fragment=fragment,
        quantum_metadata=quantum.metadata,
        predicted_structure=quantum.structure if keep_structures else None,
        reference_structure=reference.structure if keep_structures else None,
    )
    for i, (prediction, docking) in enumerate(evaluated):
        entry.evaluations[prediction.method] = _evaluate_method(
            prediction, reference.structure, docking
        )
        if i > 0 and keep_structures:
            entry.baseline_structures[prediction.method] = prediction.structure
    return entry


def build_entry(task: FragmentTask) -> QDockBankEntry:
    """Build the complete dataset entry for one fragment, inline.

    This is the single-fragment path kept for direct callers and workers; the
    batch pipeline (:meth:`BatchProcessor.build_entries`) instead streams the
    expensive pieces through the engine so they dedup and cache.
    """
    fragment = task.fragment
    config = task.config

    reference_generator = ReferenceStructureGenerator(master_seed=config.seed)
    reference = reference_generator.generate(
        fragment.pdb_id, fragment.sequence, start_seq_id=fragment.residue_start
    )
    ligand = SyntheticLigandGenerator(master_seed=config.seed).generate(reference)

    docking_engine = DockingEngine(
        num_seeds=config.docking_seeds,
        num_poses=config.docking_poses,
        mc_steps=config.docking_mc_steps,
        master_seed=config.seed,
    )

    # Quantum prediction (the dataset's primary content) — precomputed by the
    # engine's fold phase when available.
    qdock_prediction = task.quantum
    if qdock_prediction is None:
        qdock_prediction, _ = fold_fragment(
            fragment.pdb_id,
            fragment.sequence,
            config=config,
            start_seq_id=fragment.residue_start,
        )
    predictions = [qdock_prediction]
    if task.include_baselines:
        for predictor in (
            AF2LikePredictor(reference_generator=reference_generator),
            AF3LikePredictor(reference_generator=reference_generator),
        ):
            predictions.append(
                predictor.predict(
                    fragment.pdb_id, fragment.sequence, start_seq_id=fragment.residue_start
                )
            )
    evaluated = [
        (
            prediction,
            docking_engine.dock(
                prediction.structure, ligand, receptor_id=f"{fragment.pdb_id}:{prediction.method}"
            ),
        )
        for prediction in predictions
    ]
    return _assemble_entry(fragment, reference, evaluated, task.keep_structures)


class BatchProcessor:
    """Builds entries for many fragments, optionally on a process pool."""

    def __init__(
        self,
        config: PipelineConfig | None = None,
        executor: ParallelExecutor | None = None,
        engine: Engine | None = None,
    ):
        self.config = config or PipelineConfig()
        self.executor = executor or ParallelExecutor(processes=0)
        self.engine = engine or Engine(config=self.config)

    def _run_phase(
        self, specs: list, phase: str, progress
    ) -> list:
        """Stream one phase's specs through an engine session.

        The session id is derived from the phase name and the specs' content
        hashes, so a crashed build re-run with the same fragments and
        configuration resumes its own journal (when ``config.session_dir`` is
        set) instead of starting over.
        """
        digest = hashlib.sha256(
            "\x1f".join(spec.content_hash() for spec in specs).encode("utf-8")
        ).hexdigest()
        session = self.engine.submit(
            specs,
            session_id=f"build-{phase}-{digest[:12]}",
            processes=self.executor.processes,
            progress=progress,
        )
        return session.results()

    def build_entries(
        self,
        fragments: list[Fragment],
        keep_structures: bool = True,
        include_baselines: bool = True,
        progress=None,
    ) -> list[QDockBankEntry]:
        """Build entries for ``fragments`` (order preserved).

        All expensive work streams through engine sessions: phase 1 streams
        every quantum and baseline fold, phase 2 streams every docking search
        (three receptors per fragment when baselines are included), and
        phase 3 assembles the entries in-process.  ``progress`` (an optional
        callback receiving :class:`~repro.engine.session.SessionProgress`
        events) observes every job outcome as it lands.

        Failure isolation: under the engine's default
        ``config.on_error="isolate"``, a crashing fold or docking job drops
        only the fragment it belongs to — the entry list simply omits
        fragments whose jobs failed (each is logged with the isolated
        failure), while every other fragment completes.  With
        ``on_error="raise"`` the first failure aborts the build.
        """
        methods = BASELINE_METHODS if include_baselines else ()
        # One configuration governs every job and context in this build: the
        # engine's own (identical to self.config unless a caller wired a
        # differently-configured engine — jobs must hash against the config
        # they execute with).
        config = self.engine.config

        # Phase 1: every fold — quantum and baseline — in one engine session.
        fold_specs = [
            self.engine.spec(f.pdb_id, f.sequence, start_seq_id=f.residue_start)
            for f in fragments
        ]
        baseline_specs = [
            self.engine.baseline_spec(
                f.pdb_id, f.sequence, method, start_seq_id=f.residue_start
            )
            for f in fragments
            for method in methods
        ]
        fold_results = self._run_phase([*fold_specs, *baseline_specs], "fold", progress)
        quantum = fold_results[: len(fragments)]
        baselines = fold_results[len(fragments):]

        # predictions[i] lists (method, prediction) for fragment i, quantum
        # first; fragments with an isolated fold failure are skipped wholesale.
        predictions: dict[int, list[tuple[str, FoldingPrediction]]] = {}
        for i, fragment in enumerate(fragments):
            outcomes = [("QDock", quantum[i])]
            for j, method in enumerate(methods):
                outcomes.append((method, baselines[i * len(methods) + j]))
            bad = [(m, o) for m, o in outcomes if isinstance(o, JobFailure)]
            if bad:
                for method, failure in bad:
                    logger.warning(
                        "skipping fragment %s: %s fold failed (%s: %s)",
                        fragment.pdb_id, method, failure.error_type, failure.error_message,
                    )
                continue
            predictions[i] = [(m, o.prediction) for m, o in outcomes]
        alive = sorted(predictions)

        # Phase 2: derive references/ligands for the surviving fragments, then
        # every docking search through an engine session (seeded per receptor
        # identity and run index).
        contexts = dict(
            zip(
                alive,
                self.executor.map(
                    prepare_context,
                    [_ContextTask(fragment=fragments[i], config=config) for i in alive],
                ),
            )
        )
        dock_specs = []
        dock_owner: list[int] = []
        for i in alive:
            for method, prediction in predictions[i]:
                dock_specs.append(
                    self.engine.dock_spec(
                        fragments[i].pdb_id,
                        prediction.structure,
                        contexts[i][1],
                        receptor_id=f"{fragments[i].pdb_id}:{method}",
                    )
                )
                dock_owner.append(i)
        dock_results = self._run_phase(dock_specs, "dock", progress) if dock_specs else []
        dockings: dict[int, list] = {i: [] for i in alive}
        for i, outcome in zip(dock_owner, dock_results):
            dockings[i].append(outcome)

        # Phase 3: assemble the entries (cheap, in-process), skipping any
        # fragment with an isolated docking failure.
        entries: list[QDockBankEntry] = []
        for i in alive:
            fragment = fragments[i]
            failures = [o for o in dockings[i] if isinstance(o, JobFailure)]
            if failures:
                for failure in failures:
                    logger.warning(
                        "skipping fragment %s: docking failed (%s: %s)",
                        fragment.pdb_id, failure.error_type, failure.error_message,
                    )
                continue
            reference, _ligand = contexts[i]
            evaluated = [
                (prediction, dock.docking)
                for (_method, prediction), dock in zip(predictions[i], dockings[i])
            ]
            entries.append(_assemble_entry(fragment, reference, evaluated, keep_structures))
        return entries
