"""The QDockBank container: in-memory access plus on-disk persistence.

The on-disk layout matches Sec. 4.2 of the paper: one folder per S/M/L group,
one sub-folder per PDB ID, each holding the predicted structure (PDB), the
quantum-prediction metadata (JSON) and the docking results (JSON).  An
``index.json`` at the root carries the flat per-entry metric records used by
the analysis layer, so a bank can be re-loaded without re-running the
pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.bio.pdb import read_pdb, write_pdb
from repro.dataset.entry import MethodEvaluation, QDockBankEntry
from repro.dataset.fragments import Fragment, PaperRow, fragment_by_pdb_id
from repro.exceptions import DatasetError
from repro.utils.io import ensure_dir, read_json, write_json


@dataclass
class QDockBank:
    """An ordered collection of :class:`QDockBankEntry` objects."""

    entries: list[QDockBankEntry] = field(default_factory=list)

    # -- container protocol --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[QDockBankEntry]:
        return iter(self.entries)

    def add(self, entry: QDockBankEntry) -> None:
        """Append an entry (PDB IDs may repeat only for distinct sequences)."""
        self.entries.append(entry)

    def entry(self, pdb_id: str) -> QDockBankEntry:
        """Look up an entry by PDB ID."""
        key = pdb_id.lower()
        for e in self.entries:
            if e.pdb_id == key:
                return e
        raise DatasetError(f"no entry with PDB ID {pdb_id!r} in this bank")

    def group(self, group: str) -> list[QDockBankEntry]:
        """All entries of one S/M/L group."""
        return [e for e in self.entries if e.group == group.upper()]

    def methods(self) -> list[str]:
        """Prediction methods evaluated across the bank."""
        names: list[str] = []
        for e in self.entries:
            for m in e.evaluations:
                if m not in names:
                    names.append(m)
        return names

    def metric_records(self) -> list[dict]:
        """Flat per-entry records (one dict per fragment)."""
        return [e.metrics_record() for e in self.entries]

    # -- persistence -----------------------------------------------------------------

    def save(self, root: str | Path) -> Path:
        """Write the bank to disk in the published dataset layout."""
        root = ensure_dir(root)
        index = []
        for entry in self.entries:
            folder = ensure_dir(root / entry.group / entry.pdb_id)
            if entry.predicted_structure is not None:
                write_pdb(
                    entry.predicted_structure,
                    folder / "predicted.pdb",
                    remarks=[
                        f"QDockBank fragment {entry.pdb_id} residues {entry.fragment.residue_range}",
                        "Predicted on the emulated utility-level quantum pipeline",
                    ],
                )
            if entry.reference_structure is not None:
                write_pdb(entry.reference_structure, folder / "reference.pdb")
            for method, structure in entry.baseline_structures.items():
                write_pdb(structure, folder / f"baseline_{method.lower()}.pdb")
            write_json(folder / "metadata.json", entry.quantum_metadata)
            write_json(
                folder / "docking.json",
                {m: ev.as_dict() for m, ev in entry.evaluations.items()},
            )
            index.append(entry.metrics_record())
        write_json(root / "index.json", index)
        return root

    @classmethod
    def load(cls, root: str | Path) -> "QDockBank":
        """Re-load a bank previously written with :meth:`save`.

        Structures are loaded when their PDB files are present; unknown PDB IDs
        (fragments not in the paper's tables) are rebuilt from the index record.
        """
        root = Path(root)
        index_path = root / "index.json"
        if not index_path.exists():
            raise DatasetError(f"{root} does not contain an index.json")
        index = read_json(index_path)
        bank = cls()
        for record in index:
            pdb_id = record["pdb_id"]
            try:
                fragment = fragment_by_pdb_id(pdb_id)
            except DatasetError:
                fragment = _fragment_from_record(record)
            folder = root / record["group"] / pdb_id
            metadata = read_json(folder / "metadata.json") if (folder / "metadata.json").exists() else {}
            evaluations = {}
            docking_path = folder / "docking.json"
            if docking_path.exists():
                raw = read_json(docking_path)
                evaluations = {m: MethodEvaluation.from_dict(d) for m, d in raw.items()}
            entry = QDockBankEntry(fragment=fragment, quantum_metadata=metadata, evaluations=evaluations)
            predicted = folder / "predicted.pdb"
            if predicted.exists():
                entry.predicted_structure = read_pdb(predicted)
            reference = folder / "reference.pdb"
            if reference.exists():
                entry.reference_structure = read_pdb(reference)
            bank.add(entry)
        return bank


def _fragment_from_record(record: dict) -> Fragment:
    """Reconstruct a Fragment for entries outside the paper's 55 (custom runs)."""
    length = int(record["length"])
    start = int(record.get("residue_start", 1))
    return Fragment(
        pdb_id=record["pdb_id"],
        sequence=record["sequence"],
        residue_start=start,
        residue_end=start + length - 1,
        group=record["group"],
        functional_class=record.get("functional_class", "other"),
        paper=PaperRow(0, 0, 0.0, 0.0, 0.0, 0.0),
    )
