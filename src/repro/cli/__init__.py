"""Command-line tools for the QDockBank reproduction.

Two tools, installed as console scripts by ``setup.py`` (and runnable without
installation as ``python -m repro.cli.<name>``):

* ``repro-cache`` (:mod:`repro.cli.cache`) — the maintenance interface to the
  engine's persistent result cache (ls/stats/prune/verify);
* ``repro-session`` (:mod:`repro.cli.session`) — the interface to the
  engine's streaming-session journals (ls/status/resume of interrupted
  sweeps).
"""
