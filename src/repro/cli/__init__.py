"""Command-line tools for the QDockBank reproduction.

Currently one tool: ``repro-cache`` (:mod:`repro.cli.cache`), the maintenance
interface to the engine's persistent result cache.  Installed as a console
script by ``setup.py``; also runnable without installation as
``python -m repro.cli.cache``.
"""
