"""``repro-serve`` — the always-on network job service for the engine.

Start one daemon and point any number of client sessions at it; no shared
filesystem is needed.  The server multiplexes every client onto one shared
worker pool and one shared result cache, applies per-client admission
control, and streams results back as they complete — see
:mod:`repro.serve.server` for the service semantics and
:mod:`repro.serve.protocol` for the wire format.

Typical service::

    repro-serve --port 7377 --workers 4 --cache-dir /var/cache/repro &

Clients submit with ``PipelineConfig.transport = "network"`` (plus
``serve_host``/``serve_port``).  Frames are trusted local state, exactly
like spool pickles: bind to localhost or a private network you control.

``--preload`` imports modules before serving, so the daemon can register
third-party job kinds/backends (they are snapshot-replicated into the
worker pool, like the local ``pool`` transport).  The server runs until
SIGINT/SIGTERM, then prints its service counters.

Exit status: 0 on a clean stop, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import importlib
import json
import signal
import sys

from repro.serve.server import (
    DEFAULT_MAX_INFLIGHT,
    DEFAULT_MAX_PENDING,
    ReproServer,
)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve engine jobs to network clients from one shared pool and cache.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default %(default)s; only bind networks you trust)",
    )
    parser.add_argument(
        "--port", type=int, default=7377,
        help="bind port (default %(default)s; 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="worker processes in the shared pool (default %(default)s: execute in-process)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="shared result-cache directory (default: serve without a cache)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=DEFAULT_MAX_INFLIGHT,
        help="per-client in-flight job cap (default %(default)s)",
    )
    parser.add_argument(
        "--max-pending", type=int, default=DEFAULT_MAX_PENDING,
        help="server-wide cap on accepted-but-unfinished jobs (default %(default)s)",
    )
    parser.add_argument(
        "--preload", action="append", default=[], metavar="MODULE",
        help="import MODULE before serving (registers custom job kinds/backends; repeatable)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Console entry point (``repro-serve``)."""
    args = build_parser().parse_args(argv)
    for module in args.preload:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            print(f"repro-serve: cannot preload {module!r}: {exc}", file=sys.stderr)
            return 2
    try:
        server = ReproServer(
            host=args.host,
            port=args.port,
            workers=args.workers,
            max_inflight=args.max_inflight,
            max_pending=args.max_pending,
            cache=args.cache_dir,
        ).start()
    except Exception as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return 2
    print(
        f"repro-serve {server.server_id}: listening on {server.host}:{server.port}",
        file=sys.stderr,
        flush=True,
    )
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: server.shutdown())
    try:
        server.serve_forever()
    finally:
        server.shutdown()
    print(f"repro-serve: {json.dumps(server.stats(), sort_keys=True)}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
