"""``repro-session`` — inspect and resume the engine's streaming-session journals.

Subcommands
-----------
* ``repro-session ls DIR`` — list session journals (created, completed /
  failed / pending counts, resumes);
* ``repro-session status DIR SESSION_ID`` — one journal in detail, including
  how many completed jobs still have their cached payload (i.e. resume cost)
  and the recorded failures;
* ``repro-session resume DIR SESSION_ID`` — re-open the journal, rebuild the
  engine from the journalled job specs, and execute **only** the jobs that
  never completed (failed jobs re-run; completed jobs replay from the result
  cache);
* ``repro-session compact DIR SESSION_ID`` — rewrite the journal keeping
  only the latest record per job (atomic tmp+replace), shrinking journals of
  long-lived sweeps that were resumed many times.

Exit status: 0 on success; 1 when ``resume`` leaves failed jobs behind (or
``status`` finds recorded failures); 2 on usage errors (missing directory or
journal).

Journals are written by ``Engine.submit`` whenever
``PipelineConfig.session_dir`` is set — one append-only ``<id>.jsonl`` status
file plus one ``<id>.specs.pkl`` spec pickle per session (see
:mod:`repro.engine.session` for the format).  Spec pickles are trusted local
state: only resume journals from directories you wrote.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.config import PipelineConfig
from repro.engine.core import Engine
from repro.engine.session import ON_ERROR_POLICIES, SessionJournal, SessionProgress
from repro.exceptions import EngineError


def _session_root(session_dir: str) -> Path:
    path = Path(session_dir).expanduser()
    if not path.is_dir():
        print(f"repro-session: session directory {session_dir!r} does not exist", file=sys.stderr)
        raise SystemExit(2)
    return path


def _open_journal(root: Path, session_id: str) -> SessionJournal:
    try:
        return SessionJournal.open(root, session_id)
    except EngineError as exc:
        print(f"repro-session: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc


def _print_progress(event: SessionProgress) -> None:
    """One line per outcome, to stderr (stdout stays clean for ``--json``)."""
    print(
        f"[{event.done}/{event.total}] {event.status:<9} {event.kind:<13} "
        f"{event.spec_hash[:16]}",
        file=sys.stderr,
        flush=True,
    )


def cmd_ls(args: argparse.Namespace) -> int:
    """List every session journal in the directory, oldest first."""
    root = _session_root(args.session_dir)
    summaries = [j.summary() for j in SessionJournal.list_sessions(root)]
    if args.json:
        print(json.dumps(summaries, indent=2))
        return 0
    print(f"{'session':<28} {'created (UTC)':<26} {'jobs':>5} {'done':>5} {'fail':>5} {'pend':>5}  resumes")
    for s in summaries:
        print(
            f"{s['session_id']:<28} {s['created_at'] or '?':<26} {s['total_unique']:>5} "
            f"{s['completed']:>5} {s['failed']:>5} {s['pending']:>5}  {s['resumes']}"
        )
    print(f"{len(summaries)} sessions")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Show one journal in detail (resume cost and recorded failures)."""
    root = _session_root(args.session_dir)
    journal = _open_journal(root, args.session_id)
    summary = journal.summary()

    # Journal-aware cache lookup: which completed jobs can actually replay
    # from the cache (stat-neutral peek — status must not skew hit rates or
    # LRU order), and which would re-execute on resume.
    replayable = None
    cache_dir = args.cache_dir
    if cache_dir is None:
        try:
            specs = journal.load_specs()
            config = getattr(specs[0], "config", None) if specs else None
            cache_dir = config.cache_dir if config is not None else None
        except EngineError:
            cache_dir = None
    if cache_dir and Path(cache_dir).expanduser().is_dir():
        from repro.engine.cache import ResultCache

        cache = ResultCache(cache_dir)
        replayable = sum(1 for key in journal.completed if cache.peek(key) is not None)
    summary["replayable_from_cache"] = replayable
    summary["failures"] = [
        {
            "spec_hash": key,
            "kind": record.get("kind"),
            "error_type": record.get("error_type"),
            "error_message": record.get("error_message"),
        }
        for key, record in sorted(journal.failed.items())
    ]

    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"session    : {summary['session_id']}")
        print(f"created    : {summary['created_at']}")
        print(f"jobs       : {summary['total_unique']} unique ({summary['total_submitted']} submitted)")
        print(f"completed  : {summary['completed']}")
        print(f"failed     : {summary['failed']}")
        print(f"pending    : {summary['pending']}")
        print(f"resumes    : {summary['resumes']}")
        if replayable is not None:
            print(f"replayable : {replayable}/{summary['completed']} completed jobs still cached")
        for failure in summary["failures"]:
            print(f"  failed {failure['spec_hash'][:16]} ({failure['error_type']}: {failure['error_message']})")
    return 1 if summary["failures"] else 0


def cmd_resume(args: argparse.Namespace) -> int:
    """Resume a journalled session: execute only its unfinished jobs."""
    root = _session_root(args.session_dir)
    if not SessionJournal.exists(root, args.session_id):
        print(
            f"repro-session: no session journal for {args.session_id!r} under {root}",
            file=sys.stderr,
        )
        return 2
    try:
        # Load the spec pickle once; submit() gets the loaded specs (and does
        # the single full journal parse) instead of unpickling them again.
        specs = SessionJournal(root, args.session_id).load_specs()
    except EngineError as exc:
        print(f"repro-session: {exc}", file=sys.stderr)
        return 2

    config = getattr(specs[0], "config", None) if specs else None
    config = config if config is not None else PipelineConfig()
    config = config.with_updates(session_dir=str(root))
    if args.cache_dir is not None:
        config = config.with_updates(cache_dir=args.cache_dir)
    engine = Engine(config=config, processes=args.processes)

    try:
        session = engine.submit(
            specs,
            session_id=args.session_id,
            on_error=args.on_error,
            progress=None if args.quiet else _print_progress,
        )
    except EngineError as exc:
        print(f"repro-session: {exc}", file=sys.stderr)
        return 2
    session.results()

    summary = session.summary()
    summary["engine"] = engine.stats()
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        print(
            f"session {summary['session_id']}: {summary['done']}/{summary['total']} jobs "
            f"({summary['cached']} from cache, {summary['executed']} executed, "
            f"{summary['failed']} failed)"
        )
        for failure in summary["failures"]:
            print(f"  failed {failure['spec_hash'][:16]} ({failure['error_type']}: {failure['error_message']})")
    return 1 if summary["failures"] else 0


def cmd_compact(args: argparse.Namespace) -> int:
    """Rewrite a journal keeping only the latest record per job."""
    root = _session_root(args.session_dir)
    journal = _open_journal(root, args.session_id)
    try:
        result = journal.compact()
    except EngineError as exc:
        print(f"repro-session: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({"session_id": journal.session_id, **result}, indent=2))
    else:
        print(
            f"session {journal.session_id}: compacted "
            f"{result['records_before']} -> {result['records_after']} records "
            f"({result['bytes_before']} -> {result['bytes_after']} bytes)"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-session`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-session",
        description="Inspect and resume the QDockBank engine's streaming-session journals.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ls = sub.add_parser("ls", help="list session journals")
    ls.add_argument("session_dir", help="session journal directory")
    ls.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    ls.set_defaults(func=cmd_ls)

    status = sub.add_parser("status", help="show one session journal in detail")
    status.add_argument("session_dir", help="session journal directory")
    status.add_argument("session_id", help="session identifier (journal file stem)")
    status.add_argument("--cache-dir", default=None, help="result cache to audit replayability against")
    status.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    status.set_defaults(func=cmd_status)

    resume = sub.add_parser("resume", help="execute only a session's unfinished jobs")
    resume.add_argument("session_dir", help="session journal directory")
    resume.add_argument("session_id", help="session identifier (journal file stem)")
    resume.add_argument("--processes", type=int, default=None, help="engine worker processes")
    resume.add_argument("--cache-dir", default=None, help="override the journalled cache directory")
    resume.add_argument(
        "--on-error", choices=ON_ERROR_POLICIES, default=None,
        help="failure policy (default: the journalled configuration's)",
    )
    resume.add_argument("--quiet", action="store_true", help="suppress per-job progress lines")
    resume.add_argument("--json", action="store_true", help="emit a machine-readable summary")
    resume.set_defaults(func=cmd_resume)

    compact = sub.add_parser(
        "compact", help="rewrite a journal keeping only the latest record per job"
    )
    compact.add_argument("session_dir", help="session journal directory")
    compact.add_argument("session_id", help="session identifier (journal file stem)")
    compact.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    compact.set_defaults(func=cmd_compact)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Console entry point (``repro-session``)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
