"""``repro-worker`` — a file-queue execution daemon for the engine.

Point any number of workers at one spool directory and they cooperatively
drain it: each worker claims tasks by atomic rename (exactly one winner per
task), heartbeats its claim while executing, publishes the result atomically,
and reclaims the stale leases of crashed fleet members so no task is ever
lost or run twice to completion.  The submitting side is
``PipelineConfig.transport = "filequeue"`` — see
:mod:`repro.engine.transports.filequeue` for the spool protocol and the
exactly-once argument.

Typical fleet::

    repro-worker /shared/spool --lease-timeout 60 &
    repro-worker /shared/spool --lease-timeout 60 &

Workers claim in scheduler order (priority class first, then oldest
envelope).  ``--tags`` declares the capabilities a worker has — e.g.
``--tags fold,dock,mps`` — and a tagged worker *skips* tasks whose declared
requirements it cannot cover instead of claiming and poisoning them; an
untagged worker claims anything.

Workers exit cleanly when ``<spool>/stop`` exists (``touch /shared/spool/stop``),
after ``--max-jobs`` tasks, or after ``--idle-exit`` seconds without work.
``--preload`` imports modules before serving, so daemons can register
third-party job kinds/backends (task pickles are trusted local state — only
serve spool directories you or your tooling wrote).

Exit status: 0 on a clean stop, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import importlib
import sys

from repro.engine.scheduler import parse_tags
from repro.engine.transports.filequeue import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_WORKER_POLL_INTERVAL,
    FileQueueWorker,
)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-worker`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-worker",
        description="Serve engine jobs from a shared file-queue spool directory.",
    )
    parser.add_argument("spool_dir", help="shared spool directory (created if absent)")
    parser.add_argument("--worker-id", default=None, help="stable worker identity (default: generated)")
    parser.add_argument(
        "--lease-timeout", type=float, default=DEFAULT_LEASE_TIMEOUT,
        help="seconds before an untouched claim counts as abandoned (default %(default)s)",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=None,
        help="seconds between lease refreshes while executing (default: lease/4, capped at 1s)",
    )
    parser.add_argument(
        "--poll-interval", type=float, default=DEFAULT_WORKER_POLL_INTERVAL,
        help="seconds between scans of an empty queue (default %(default)s)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=None,
        help="exit after processing this many tasks (default: serve forever)",
    )
    parser.add_argument(
        "--idle-exit", type=float, default=None,
        help="exit after this many seconds without work (default: never)",
    )
    parser.add_argument(
        "--tags", default=None, metavar="TAG[,TAG...]",
        help="capabilities this worker declares (e.g. fold,dock,mps); tasks "
             "requiring anything else are skipped, never claimed "
             "(default: untagged — claim anything)",
    )
    parser.add_argument(
        "--throttle", type=float, default=0.0, metavar="SECONDS",
        help="sleep this long before executing each claimed task "
             "(fault-injection/testing aid; default 0)",
    )
    parser.add_argument(
        "--preload", action="append", default=[], metavar="MODULE",
        help="import MODULE before serving (registers custom job kinds/backends; repeatable)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Console entry point (``repro-worker``)."""
    args = build_parser().parse_args(argv)
    for module in args.preload:
        try:
            importlib.import_module(module)
        except ImportError as exc:
            print(f"repro-worker: cannot preload {module!r}: {exc}", file=sys.stderr)
            return 2
    try:
        worker = FileQueueWorker(
            args.spool_dir,
            worker_id=args.worker_id,
            lease_timeout=args.lease_timeout,
            heartbeat_interval=args.heartbeat_interval,
            poll_interval=args.poll_interval,
            tags=parse_tags(args.tags),
            throttle=args.throttle,
        )
    except Exception as exc:
        print(f"repro-worker: {exc}", file=sys.stderr)
        return 2
    processed = worker.serve(max_jobs=args.max_jobs, idle_exit=args.idle_exit)
    print(
        f"repro-worker {worker.worker_id}: processed {processed} tasks "
        f"({worker.executed} completed, {worker.failed} failed)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
