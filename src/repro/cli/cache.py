"""``repro-cache`` — inspect and maintain the engine's persistent result cache.

Subcommands
-----------
* ``repro-cache ls DIR`` — list cached entries (shard, kind, identity, size,
  age);
* ``repro-cache stats TIER`` — aggregate counters (entries, bytes, per-kind);
* ``repro-cache prune DIR --max-bytes N`` — evict entries in recency order
  until the cache fits the bound (``--max-bytes 0`` empties it);
* ``repro-cache verify DIR [--delete]`` — audit entry integrity (parseable
  JSON whose ``spec_hash`` matches the file name), optionally deleting
  corrupt entries.

``TIER`` is a cache-tier spec: a local directory (or ``local:DIR``), or
``remote:HOST:PORT`` to query a running ``repro-serve`` daemon's tier over
the wire.  ``stats`` accepts both; ``ls``/``prune``/``verify`` need local
files to walk and refuse remote specs with a pointer to run them on the
server's own directory.

Exit status: 0 on success; 1 when ``verify`` finds corrupt entries it was not
asked to delete; 2 on usage errors (e.g. the directory does not exist).

The cache layout is the engine's: one JSON payload per job, named by the
job's content hash and sharded by its first two hex characters (see
:mod:`repro.engine.cache`).  Everything here degrades safely — pruning or
deleting entries only ever costs recompute time on the next run.
"""

from __future__ import annotations

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

from repro.engine.cache import RemoteTier, ResultCache, parse_tier_spec
from repro.exceptions import EngineError
from repro.utils.io import read_json


def _human_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{int(n)} B"


def _is_remote_spec(cache_dir: str) -> bool:
    return str(cache_dir).strip().startswith("remote:")


def _open_cache(cache_dir: str) -> ResultCache:
    if _is_remote_spec(cache_dir):
        print(
            f"repro-cache: {cache_dir!r} is a remote tier; only 'stats' works "
            "over the wire — run this subcommand on the server's cache "
            "directory instead",
            file=sys.stderr,
        )
        raise SystemExit(2)
    path = Path(cache_dir).expanduser()
    if not path.is_dir():
        print(f"repro-cache: cache directory {cache_dir!r} does not exist", file=sys.stderr)
        raise SystemExit(2)
    return ResultCache(path)


def _entry_summary(path: Path) -> tuple[str, str]:
    """(kind, identity) of one entry file, tolerating unreadable payloads."""
    try:
        payload = read_json(path)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return "?", "?"
    if not isinstance(payload, dict):
        return "?", "?"
    kind = str(payload.get("schema", "?")).split("/")[0]
    identity = payload.get("receptor_id") or payload.get("pdb_id") or "?"
    method = payload.get("method")
    if method and kind == "baseline_fold":
        identity = f"{identity}:{method}"
    return kind, str(identity)


def _misplaced(entry) -> bool:
    """A file whose shard directory does not match its key prefix.

    The engine only ever writes ``root/<key[:2]>/<key>.json``; anything else
    was hand-moved or produced by a foreign tool, and lookups for its key
    will never find it where it sits.
    """
    return entry.path.parent.name != entry.key[:2]


def cmd_ls(args: argparse.Namespace) -> int:
    """List cached entries, least recently touched first."""
    cache = _open_cache(args.cache_dir)
    entries = cache.entries()
    if args.limit is not None:
        entries = entries[: args.limit]
    print(f"{'key':<16} {'shard':<5} {'kind':<14} {'identity':<24} {'size':>10}  last touched (UTC)")
    for entry in entries:
        kind, identity = _entry_summary(entry.path)
        touched = datetime.fromtimestamp(entry.mtime, tz=timezone.utc).strftime("%Y-%m-%d %H:%M:%S")
        shard = entry.path.parent.name
        print(
            f"{entry.key[:16]:<16} {shard:<5} {kind:<14} {identity:<24} "
            f"{_human_bytes(entry.size_bytes):>10}  {touched}"
        )
        if _misplaced(entry):
            print(
                f"repro-cache: warning: {entry.path} sits in shard "
                f"{shard!r} but its key starts with {entry.key[:2]!r}; "
                "lookups will miss it",
                file=sys.stderr,
            )
    print(f"{len(entries)} entries shown")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Print aggregate cache statistics (local directory or remote tier)."""
    if _is_remote_spec(args.cache_dir):
        return _remote_stats(args)
    cache = _open_cache(args.cache_dir)
    by_kind: dict[str, int] = {}
    counted = []
    for entry in cache.entries():
        if _misplaced(entry):
            # A misplaced file is invisible to lookups; counting it would
            # report capacity the cache cannot actually serve.
            print(
                f"repro-cache: warning: skipping {entry.path} — it sits in "
                f"shard {entry.path.parent.name!r} but its key starts with "
                f"{entry.key[:2]!r} (move or delete it)",
                file=sys.stderr,
            )
            continue
        counted.append(entry)
        kind, _ = _entry_summary(entry.path)
        by_kind[kind] = by_kind.get(kind, 0) + 1
    total = sum(e.size_bytes for e in counted)
    stats = {
        "cache_dir": str(cache.root),
        "entries": len(counted),
        "total_bytes": total,
        "by_kind": dict(sorted(by_kind.items())),
    }
    if args.json:
        print(json.dumps(stats, indent=2))
    else:
        print(f"cache directory : {stats['cache_dir']}")
        print(f"entries         : {stats['entries']}")
        print(f"total size      : {_human_bytes(total)}")
        for kind, count in stats["by_kind"].items():
            print(f"  {kind:<14}: {count}")
    return 0


def _remote_stats(args: argparse.Namespace) -> int:
    """``stats`` against a running ``repro-serve`` daemon's cache tier."""
    try:
        tier = parse_tier_spec(args.cache_dir)
    except EngineError as exc:
        print(f"repro-cache: {exc}", file=sys.stderr)
        raise SystemExit(2) from exc
    assert isinstance(tier, RemoteTier)
    stats = tier.remote_stats()
    tier.close()
    if stats is None:
        print(
            f"repro-cache: cannot reach repro-serve at {tier.host}:{tier.port} "
            "(or it serves without a cache)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    stats = {"tier": args.cache_dir, **stats}
    if args.json:
        print(json.dumps(stats, indent=2))
    else:
        print(f"remote tier     : {tier.host}:{tier.port}")
        print(f"server cache    : {stats.get('root') or '?'}")
        print(f"entries         : {stats.get('entries')}")
        print(f"total size      : {_human_bytes(int(stats.get('total_bytes') or 0))}")
        print(
            f"server counters : {stats.get('hits')} hits, {stats.get('misses')} misses, "
            f"{stats.get('writes')} writes, {stats.get('evictions')} evictions"
        )
    return 0


def cmd_prune(args: argparse.Namespace) -> int:
    """Evict entries until the cache fits the requested bound."""
    if args.max_bytes < 0:
        print("repro-cache: --max-bytes must be >= 0", file=sys.stderr)
        return 2
    cache = _open_cache(args.cache_dir)
    before = cache.total_bytes()
    evicted = cache.prune(args.max_bytes)
    after = cache.total_bytes()
    print(
        f"evicted {len(evicted)} entries "
        f"({_human_bytes(before)} -> {_human_bytes(after)}, bound {_human_bytes(args.max_bytes)})"
    )
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Audit entry integrity; report (and optionally delete) corrupt entries."""
    cache = _open_cache(args.cache_dir)
    valid, corrupt = cache.verify(delete=args.delete)
    print(f"{len(valid)} valid, {len(corrupt)} corrupt")
    for key, reason in corrupt:
        action = "deleted" if args.delete else "corrupt"
        print(f"  {action}: {key[:16]} ({reason})")
    if corrupt and not args.delete:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-cache`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="Inspect and maintain the QDockBank engine's persistent result cache.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ls = sub.add_parser("ls", help="list cached entries")
    ls.add_argument("cache_dir", help="cache directory")
    ls.add_argument("--limit", type=int, default=None, help="show at most N entries")
    ls.set_defaults(func=cmd_ls)

    stats = sub.add_parser("stats", help="aggregate cache statistics")
    stats.add_argument(
        "cache_dir",
        help="cache directory, or remote:HOST:PORT for a running repro-serve tier",
    )
    stats.add_argument("--json", action="store_true", help="emit machine-readable JSON")
    stats.set_defaults(func=cmd_stats)

    prune = sub.add_parser("prune", help="evict entries down to a size bound")
    prune.add_argument("cache_dir", help="cache directory")
    prune.add_argument(
        "--max-bytes", type=int, required=True,
        help="target total size in bytes (0 empties the cache)",
    )
    prune.set_defaults(func=cmd_prune)

    verify = sub.add_parser("verify", help="audit entry integrity")
    verify.add_argument("cache_dir", help="cache directory")
    verify.add_argument("--delete", action="store_true", help="delete corrupt entries")
    verify.set_defaults(func=cmd_verify)

    return parser


def main(argv: list[str] | None = None) -> int:
    """Console entry point (``repro-cache``)."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
