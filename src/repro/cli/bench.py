"""``repro-bench`` — run the performance suite and maintain the trajectory.

Run mode (the default) executes the fixed benchmark suite
(:mod:`repro.bench.suite`) and writes a schema-versioned ``BENCH_<n>.json``
report at the trajectory root, embedding a comparison against the previous
report when one exists::

    repro-bench                      # full suite, next trajectory number
    repro-bench --smoke              # shrunk workloads (CI-sized, <1 min)
    repro-bench --only docking       # substring filter on benchmark names
    repro-bench --out /tmp/b.json    # write elsewhere (root still scanned)

Validate mode checks an existing report against the ``bench/v1`` schema and,
optionally, gates it against a previous report::

    repro-bench --validate BENCH_6.json
    repro-bench --validate BENCH_6.json --against BENCH_5.json --max-regression 2.0

The regression gate compares machine-dependent medians only when both reports
carry the same machine fingerprint and the same smoke flag (smoke mode shrinks
the workloads); the derived speedup ratios (batched vs scalar docking, compiled
vs rebuild VQE, ...) are dimensionless and are always gated — that is what lets
CI gate a smoke report generated on different hardware against the committed
full-mode trajectory.

Exit status: 0 on success; 1 when validation or the regression gate fails;
2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.bench.suite import run_suite
from repro.bench.trajectory import (
    build_report,
    compare_reports,
    find_previous_report,
    load_report,
    next_bench_id,
    regressions,
    validate_report,
    write_report,
)
from repro.config import PipelineConfig
from repro.exceptions import ReproError


def _cmd_validate(args: argparse.Namespace) -> int:
    """Schema-validate a report; optionally gate it against a previous one."""
    try:
        report = load_report(args.validate)
    except (OSError, ValueError) as exc:
        print(f"repro-bench: cannot read {args.validate!r}: {exc}", file=sys.stderr)
        return 1
    errors = validate_report(report)
    for error in errors:
        print(f"invalid: {error}")
    if errors:
        return 1
    print(f"{args.validate}: valid ({len(report.get('benchmarks', {}))} metrics)")
    if args.against is None:
        return 0
    try:
        previous = load_report(args.against)
    except (OSError, ValueError) as exc:
        print(f"repro-bench: cannot read {args.against!r}: {exc}", file=sys.stderr)
        return 1
    failures = regressions(report, previous, max_ratio=args.max_regression)
    for failure in failures:
        print(f"regression: {failure}")
    if failures:
        return 1
    print(f"no metric regressed more than {args.max_regression:g}x vs {args.against}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    """Run the suite and write the next trajectory report."""
    root = Path(args.root)
    if not root.is_dir():
        print(f"repro-bench: trajectory root {args.root!r} does not exist", file=sys.stderr)
        return 2
    config = PipelineConfig()
    repeats = args.repeats if args.repeats is not None else (2 if args.smoke else config.bench_repeats)
    bench_id = args.bench_id if args.bench_id is not None else next_bench_id(root)
    try:
        results, derived = run_suite(
            config=config,
            smoke=args.smoke,
            repeats=repeats,
            only=args.only,
            progress=lambda line: print(f"  {line}", file=sys.stderr),
        )
    except ReproError as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return 2 if "no benchmark matches" in str(exc) else 1
    report = build_report(
        bench_id=bench_id,
        results=results,
        derived=derived,
        repeats=repeats,
        pose_batch=config.bench_pose_batch,
        smoke=args.smoke,
    )
    previous_path = find_previous_report(root, before_id=bench_id)
    if previous_path is not None:
        report["comparison"] = compare_reports(
            report, load_report(previous_path), previous_path.name
        )
    out = Path(args.out) if args.out else root / f"BENCH_{bench_id}.json"
    write_report(out, report)

    for metric, entry in report["benchmarks"].items():
        print(f"{metric:<44} {entry['median']:>12.4g} {entry['unit']}")
    for name, value in report["derived"].items():
        print(f"{'derived.' + name:<44} {value:>11.3g}x")
    if previous_path is not None:
        print(f"compared against {previous_path.name} "
              f"(medians compared: {report['comparison']['medians_compared']})")
    print(f"wrote {out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-bench`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Run the QDockBank performance suite and maintain the BENCH_<n>.json trajectory.",
    )
    parser.add_argument(
        "--root", default=".",
        help="trajectory root scanned for BENCH_<n>.json files (default: .)",
    )
    parser.add_argument(
        "--out", default=None,
        help="report output path (default: <root>/BENCH_<id>.json)",
    )
    parser.add_argument(
        "--bench-id", type=int, default=None,
        help="trajectory number to write (default: one past the newest committed report)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="shrunk workloads and 2 repeats (CI-sized; ratios stay meaningful)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None,
        help="repeats per benchmark (default: config.bench_repeats, 2 with --smoke)",
    )
    parser.add_argument(
        "--only", default=None,
        help="run only benchmarks whose suite name contains this substring",
    )
    parser.add_argument(
        "--validate", metavar="REPORT", default=None,
        help="validate an existing report instead of running the suite",
    )
    parser.add_argument(
        "--against", metavar="PREVIOUS", default=None,
        help="with --validate: gate REPORT against a previous report",
    )
    parser.add_argument(
        "--max-regression", type=float, default=2.0,
        help="with --against: fail if any metric worsened by more than this ratio (default: 2.0)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """Console entry point (``repro-bench``)."""
    args = build_parser().parse_args(argv)
    if args.against is not None and args.validate is None:
        print("repro-bench: --against requires --validate", file=sys.stderr)
        return 2
    if args.validate is not None:
        return _cmd_validate(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
