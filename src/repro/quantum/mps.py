"""Matrix-product-state (MPS) circuit simulator.

The folding circuits the paper runs are EfficientSU2 ansaetze with *linear*
(nearest-neighbour) entanglement and a small number of repetitions.  Such
circuits generate bounded entanglement across every cut, so they are exactly
representable as an MPS with a modest bond dimension (``2**reps``), and can be
simulated for 100+ qubits — which is how this reproduction executes the
92–102-qubit L-group fragments that are far beyond statevector reach.

Implementation notes
--------------------
* Site tensors ``A[k]`` have shape ``(chi_left, 2, chi_right)``.
* Two-qubit gates act on adjacent sites via a theta-tensor SVD with truncation
  to the configured maximum bond dimension.
* Sampling uses exact right environments plus a *vectorised* left-to-right
  conditional sweep: all shots advance through the chain simultaneously, so
  the inner loop is O(n_sites) einsum calls regardless of the shot count.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BackendError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import gate_matrix


class MPSState:
    """An MPS over ``n`` qubits, initialised to |0...0>."""

    def __init__(self, num_qubits: int, max_bond_dimension: int = 16):
        if num_qubits < 1:
            raise BackendError(f"MPS needs at least one qubit, got {num_qubits}")
        if max_bond_dimension < 1:
            raise BackendError(f"bond dimension must be >= 1, got {max_bond_dimension}")
        self.num_qubits = int(num_qubits)
        self.max_bond_dimension = int(max_bond_dimension)
        self.tensors: list[np.ndarray] = []
        for _ in range(self.num_qubits):
            t = np.zeros((1, 2, 1), dtype=complex)
            t[0, 0, 0] = 1.0
            self.tensors.append(t)
        self.truncation_error = 0.0

    # -- gate application ---------------------------------------------------------

    def apply_single(self, matrix: np.ndarray, qubit: int) -> None:
        """Apply a 2x2 unitary to one site."""
        a = self.tensors[qubit]
        self.tensors[qubit] = np.einsum("ij,ajb->aib", matrix, a, optimize=True)

    def apply_two(self, matrix: np.ndarray, q0: int, q1: int) -> None:
        """Apply a 4x4 unitary to two *adjacent* sites (q1 == q0 + 1 or q0 == q1 + 1)."""
        if abs(q0 - q1) != 1:
            raise BackendError(
                f"MPS backend only supports nearest-neighbour two-qubit gates, got ({q0}, {q1})"
            )
        left, right = (q0, q1) if q0 < q1 else (q1, q0)
        gate = matrix.reshape(2, 2, 2, 2)
        if q0 > q1:
            # The gate was specified with (control, target) = (q0, q1); swap its
            # qubit legs so that leg order matches (left, right).
            gate = gate.transpose(1, 0, 3, 2)

        a, b = self.tensors[left], self.tensors[right]
        chi_l, _, chi_m = a.shape
        _, _, chi_r = b.shape
        theta = np.einsum("aib,bjc->aijc", a, b, optimize=True)
        theta = np.einsum("klij,aijc->aklc", gate, theta, optimize=True)
        theta = theta.reshape(chi_l * 2, 2 * chi_r)

        u, s, vh = np.linalg.svd(theta, full_matrices=False)
        keep = min(self.max_bond_dimension, int(np.count_nonzero(s > 1e-14)) or 1)
        if keep < s.size:
            discarded = float(np.sum(s[keep:] ** 2))
            self.truncation_error += discarded
        u, s, vh = u[:, :keep], s[:keep], vh[:keep, :]
        self.tensors[left] = np.ascontiguousarray(u.reshape(chi_l, 2, keep))
        self.tensors[right] = np.ascontiguousarray((s[:, None] * vh).reshape(keep, 2, chi_r))

    # -- observables ----------------------------------------------------------------

    def right_environments(self) -> list[np.ndarray]:
        """Exact right environments R[k] (shape (chi_k, chi_k)); R[n] = [[1]]."""
        envs: list[np.ndarray] = [np.array([[1.0 + 0j]])] * (self.num_qubits + 1)
        env = np.array([[1.0 + 0j]])
        for k in range(self.num_qubits - 1, -1, -1):
            a = self.tensors[k]
            env = np.einsum("aib,bc,dic->ad", a, env, a.conj(), optimize=True)
            envs[k] = env
        return envs

    def norm_squared(self) -> float:
        """<psi|psi> (1 up to truncation error)."""
        return float(np.real(self.right_environments()[0][0, 0]))

    def amplitude(self, bits: str) -> complex:
        """Amplitude of one computational-basis state."""
        if len(bits) != self.num_qubits:
            raise BackendError(
                f"bitstring length {len(bits)} does not match {self.num_qubits} qubits"
            )
        vec = np.array([1.0 + 0j])
        for k, ch in enumerate(bits):
            vec = vec @ self.tensors[k][:, int(ch), :]
        return complex(vec[0])

    def sample(self, shots: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``shots`` bitstrings; returns (shots, n) uint8 array.

        All shots advance together; the per-site cost is two einsum calls.
        """
        if shots <= 0:
            raise BackendError(f"shots must be positive, got {shots}")
        envs = self.right_environments()
        n = self.num_qubits
        samples = np.empty((shots, n), dtype=np.uint8)
        vec = np.ones((shots, 1), dtype=complex)  # partial amplitudes per shot
        for k in range(n):
            a = self.tensors[k]
            r = envs[k + 1]
            # w[b] has shape (shots, chi_right)
            w0 = vec @ a[:, 0, :]
            w1 = vec @ a[:, 1, :]
            p0 = np.einsum("sc,cd,sd->s", w0, r, w0.conj(), optimize=True).real
            p1 = np.einsum("sc,cd,sd->s", w1, r, w1.conj(), optimize=True).real
            p0 = np.clip(p0, 0.0, None)
            p1 = np.clip(p1, 0.0, None)
            total = p0 + p1
            total[total <= 0] = 1.0
            prob1 = p1 / total
            draws = (rng.random(shots) < prob1).astype(np.uint8)
            samples[:, k] = draws
            vec = np.where(draws[:, None].astype(bool), w1, w0)
        return samples


class MPSSimulator:
    """Runs bound circuits on :class:`MPSState`."""

    def __init__(self, max_bond_dimension: int = 16):
        self.max_bond_dimension = int(max_bond_dimension)

    def run(self, circuit: QuantumCircuit) -> MPSState:
        """Evolve |0...0> through ``circuit`` and return the final MPS."""
        if not circuit.is_bound:
            raise BackendError("cannot simulate a circuit with unbound parameters")
        state = MPSState(circuit.num_qubits, self.max_bond_dimension)
        for inst in circuit.instructions:
            if inst.name == "barrier":
                continue
            matrix = gate_matrix(inst.name, tuple(float(p) for p in inst.params))
            if inst.num_qubits == 1:
                state.apply_single(matrix, inst.qubits[0])
            elif inst.num_qubits == 2:
                state.apply_two(matrix, inst.qubits[0], inst.qubits[1])
            else:
                raise BackendError(
                    f"MPS backend supports 1- and 2-qubit gates only, got {inst.name!r} "
                    f"on {inst.num_qubits} qubits"
                )
        return state

    def sample(self, circuit: QuantumCircuit, shots: int, rng: np.random.Generator) -> np.ndarray:
        """Run and sample; returns (shots, n) uint8 array."""
        return self.run(circuit).sample(shots, rng)

    def statevector(self, circuit: QuantumCircuit) -> np.ndarray:
        """Dense statevector (small circuits only; used to cross-check against the exact simulator)."""
        state = self.run(circuit)
        n = state.num_qubits
        if n > 20:
            raise BackendError("refusing to densify an MPS with more than 20 qubits")
        amps = np.zeros(2**n, dtype=complex)
        for idx in range(2**n):
            bits = format(idx, f"0{n}b")
            amps[idx] = state.amplitude(bits)
        return amps
