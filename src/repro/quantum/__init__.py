"""Quantum computing substrate: circuits, ansatz, simulators, sampling."""

from repro.quantum.gates import GATES, gate_matrix, rx_matrix, ry_matrix, rz_matrix
from repro.quantum.circuit import Parameter, Instruction, QuantumCircuit
from repro.quantum.ansatz import EfficientSU2
from repro.quantum.statevector import StatevectorSimulator
from repro.quantum.mps import MPSSimulator
from repro.quantum.noise import NoiseModel
from repro.quantum.backend import (
    Backend,
    StatevectorBackend,
    MPSBackend,
    AutoBackend,
    counts_from_samples,
)

__all__ = [
    "GATES",
    "gate_matrix",
    "rx_matrix",
    "ry_matrix",
    "rz_matrix",
    "Parameter",
    "Instruction",
    "QuantumCircuit",
    "EfficientSU2",
    "StatevectorSimulator",
    "MPSSimulator",
    "NoiseModel",
    "Backend",
    "StatevectorBackend",
    "MPSBackend",
    "AutoBackend",
    "counts_from_samples",
]
