"""Gate matrices for the circuit simulators and the basis translator.

Includes both the "textbook" gates used to express the EfficientSU2 ansatz
(RY, RZ, CX, ...) and the IBM Eagle native set (ECR, ID, RZ, SX, X) that the
transpiler targets (paper Sec. 5.1).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import CircuitError

_SQ2 = 1.0 / np.sqrt(2.0)

I2 = np.eye(2, dtype=complex)
X = np.array([[0, 1], [1, 0]], dtype=complex)
Y = np.array([[0, -1j], [1j, 0]], dtype=complex)
Z = np.array([[1, 0], [0, -1]], dtype=complex)
H = np.array([[_SQ2, _SQ2], [_SQ2, -_SQ2]], dtype=complex)
S = np.array([[1, 0], [0, 1j]], dtype=complex)
SDG = np.array([[1, 0], [0, -1j]], dtype=complex)
T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex)
SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=complex)

CX = np.array(
    [[1, 0, 0, 0], [0, 1, 0, 0], [0, 0, 0, 1], [0, 0, 1, 0]], dtype=complex
)
CZ = np.diag([1, 1, 1, -1]).astype(complex)
SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=complex
)
# Echoed cross-resonance gate (IBM native 2-qubit entangler), up to local phases.
ECR = _SQ2 * np.array(
    [
        [0, 1, 0, 1j],
        [1, 0, -1j, 0],
        [0, 1j, 0, 1],
        [-1j, 0, 1, 0],
    ],
    dtype=complex,
)

#: Fixed (non-parameterised) gates by name.
GATES: dict[str, np.ndarray] = {
    "id": I2,
    "x": X,
    "y": Y,
    "z": Z,
    "h": H,
    "s": S,
    "sdg": SDG,
    "t": T,
    "sx": SX,
    "cx": CX,
    "cz": CZ,
    "swap": SWAP,
    "ecr": ECR,
}


def rx_matrix(theta: float) -> np.ndarray:
    """Rotation about X by ``theta``."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -1j * s], [-1j * s, c]], dtype=complex)


def ry_matrix(theta: float) -> np.ndarray:
    """Rotation about Y by ``theta``."""
    c, s = np.cos(theta / 2.0), np.sin(theta / 2.0)
    return np.array([[c, -s], [s, c]], dtype=complex)


def rz_matrix(theta: float) -> np.ndarray:
    """Rotation about Z by ``theta``."""
    return np.array(
        [[np.exp(-1j * theta / 2.0), 0], [0, np.exp(1j * theta / 2.0)]], dtype=complex
    )


_PARAMETRIC = {"rx": rx_matrix, "ry": ry_matrix, "rz": rz_matrix}

#: Gate arities (number of qubits acted on) for every known gate name.
GATE_ARITY: dict[str, int] = {name: int(round(np.log2(m.shape[0]))) for name, m in GATES.items()}
GATE_ARITY.update({"rx": 1, "ry": 1, "rz": 1})


def gate_matrix(name: str, params: tuple[float, ...] = ()) -> np.ndarray:
    """Return the unitary matrix of gate ``name`` with the given parameters."""
    key = name.lower()
    if key in _PARAMETRIC:
        if len(params) != 1:
            raise CircuitError(f"gate {name!r} expects exactly one parameter, got {params}")
        return _PARAMETRIC[key](float(params[0]))
    if key in GATES:
        if params:
            raise CircuitError(f"gate {name!r} takes no parameters, got {params}")
        return GATES[key]
    raise CircuitError(f"unknown gate: {name!r}")


def is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    """True when ``matrix`` is unitary to within ``atol``."""
    matrix = np.asarray(matrix)
    ident = np.eye(matrix.shape[0])
    return bool(np.allclose(matrix.conj().T @ matrix, ident, atol=atol))
