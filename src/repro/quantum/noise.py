"""Noise model for the utility-level hardware emulator.

The paper argues (Sec. 5.2) that moderate quantum noise acts as a stochastic
perturbation that can even help the optimisation escape local minima, and that
the dominant hardware limitations are finite coherence (T1/T2) and gate
errors.  The emulator models the effect of those error sources on *sampled
bitstrings* — which is the only way noise enters a diagonal-Hamiltonian VQE —
as two channels:

* a per-qubit readout / accumulated-decoherence flip probability that grows
  with circuit depth relative to the coherence time;
* a depolarising contribution proportional to the number of two-qubit gates a
  qubit participates in.

Both are applied as independent bit flips on the sampled outcomes, which is
the standard stochastic (Pauli-twirled) approximation for diagonal
measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class NoiseModel:
    """Bit-flip noise parameters of the emulated device.

    Attributes
    ----------
    readout_error:
        Baseline probability of misreading a qubit at measurement.
    two_qubit_error:
        Depolarising error per two-qubit (ECR) gate, converted to an effective
        flip probability on each participating qubit.
    t1_us, t2_us:
        Coherence times in microseconds (IBM Eagle: T1 ≈ 60–120 µs,
        T2 ≈ 40–100 µs).
    gate_time_us:
        Effective duration of one circuit layer in microseconds.
    """

    readout_error: float = 0.01
    two_qubit_error: float = 0.008
    t1_us: float = 90.0
    t2_us: float = 70.0
    gate_time_us: float = 0.2
    decoherence_weight: float = 0.02

    def flip_probability(self, depth: int, two_qubit_gates_per_qubit: float) -> float:
        """Effective per-qubit flip probability for a circuit of given depth.

        The decoherence contribution is deliberately damped
        (``decoherence_weight``): on the real device dynamical decoupling and
        virtual RZ gates keep idle errors far below the raw depth × T2 bound,
        and the paper's premise is that the residual noise stays moderate.
        """
        duration = max(0, depth) * self.gate_time_us
        decoherence = 1.0 - np.exp(-duration / max(self.t2_us, 1e-9))
        p = (
            self.readout_error
            + 0.5 * self.two_qubit_error * max(0.0, two_qubit_gates_per_qubit)
            + self.decoherence_weight * decoherence
        )
        return float(np.clip(p, 0.0, 0.45))

    def apply(
        self,
        samples: np.ndarray,
        rng: np.random.Generator,
        depth: int = 0,
        two_qubit_gates_per_qubit: float = 0.0,
    ) -> np.ndarray:
        """Flip bits of a (shots, n) sample array according to the noise level."""
        p = self.flip_probability(depth, two_qubit_gates_per_qubit)
        if p <= 0.0:
            return samples
        flips = rng.random(samples.shape) < p
        return np.where(flips, 1 - samples, samples).astype(np.uint8)

    @classmethod
    def ideal(cls) -> "NoiseModel":
        """A noiseless model (all error rates zero)."""
        return cls(readout_error=0.0, two_qubit_error=0.0, t1_us=1e9, t2_us=1e9)

    @classmethod
    def eagle_r3(cls) -> "NoiseModel":
        """Parameters representative of the IBM Eagle r3 processor."""
        return cls(readout_error=0.012, two_qubit_error=0.0085, t1_us=100.0, t2_us=80.0)
