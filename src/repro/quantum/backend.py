"""Execution backends: a common interface over the simulators.

A backend takes a *bound* circuit and a shot count and returns a counts
dictionary (bitstring → frequency), mirroring the sampler primitive the paper
uses on IBM hardware.  Three backends are provided:

* :class:`StatevectorBackend` — exact, for narrow circuits (tests, oracles);
* :class:`MPSBackend` — bounded-bond-dimension MPS, exact for the linear
  EfficientSU2 circuits used by the pipeline and scalable to 100+ qubits;
* :class:`AutoBackend` — picks the statevector simulator when the circuit is
  small enough and falls back to MPS otherwise.

The noisy hardware emulator (:class:`repro.hardware.eagle.EagleEmulatorBackend`)
derives from :class:`MPSBackend` and adds transpilation metadata, noise and
timing.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.exceptions import BackendError, CircuitError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.compiled import CompiledCircuit, circuit_structure_key
from repro.quantum.mps import MPSSimulator
from repro.quantum.statevector import StatevectorSimulator


def samples_to_bitstrings(samples: np.ndarray) -> list[str]:
    """Convert a (shots, n) 0/1 array into bitstring form."""
    samples = np.asarray(samples, dtype=np.uint8)
    if samples.ndim != 2:
        raise BackendError(f"samples must be 2-D, got shape {samples.shape}")
    chars = samples + ord("0")
    return [row.tobytes().decode("ascii") for row in chars.astype(np.uint8)]


def counts_from_samples(samples: np.ndarray) -> dict[str, int]:
    """Aggregate a (shots, n) sample array into a counts dictionary.

    Aggregation happens in NumPy (one ``np.unique`` over the rows) so that the
    per-shot Python work is proportional to the number of *distinct*
    bitstrings, not the shot count — this runs on every 100k-shot stage-2
    sample.
    """
    samples = np.asarray(samples, dtype=np.uint8)
    if samples.ndim != 2:
        raise BackendError(f"samples must be 2-D, got shape {samples.shape}")
    if samples.shape[0] == 0:
        return {}
    uniq, counts = np.unique(samples, axis=0, return_counts=True)
    return {
        bits: int(freq)
        for bits, freq in zip(samples_to_bitstrings(uniq), counts)
    }


class Backend(ABC):
    """Interface of every execution backend."""

    name: str = "backend"

    @abstractmethod
    def sample_array(self, circuit: QuantumCircuit, shots: int, rng: np.random.Generator) -> np.ndarray:
        """Return a (shots, num_qubits) array of measurement outcomes."""

    def run(self, circuit: QuantumCircuit, shots: int, rng: np.random.Generator) -> dict[str, int]:
        """Execute and return a counts dictionary."""
        return counts_from_samples(self.sample_array(circuit, shots, rng))

    def sample_parameterised(
        self, circuit: QuantumCircuit, values, shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample a parameterised *template* circuit at ``values``.

        This is the hot-loop entry point for optimisers that evaluate one
        circuit structure at many parameter vectors.  The base implementation
        simply binds and delegates, so every backend accepts it; backends with
        a plan-reuse path (see :class:`StatevectorBackend`) override it.  The
        contract is strict bit-identity with ``sample_array(circuit.bind(values))``.
        """
        return self.sample_array(circuit.bind(values), shots, rng)


class StatevectorBackend(Backend):
    """Exact dense-statevector execution (small circuits)."""

    name = "statevector"

    def __init__(self, max_qubits: int = 24, plan_cache_size: int = 64):
        self._sim = StatevectorSimulator(max_qubits=max_qubits)
        self.plan_cache_size = int(plan_cache_size)
        self._plans: dict[tuple, "CompiledCircuit"] = {}
        self._plan_hits = 0
        self._plan_misses = 0

    def sample_array(self, circuit: QuantumCircuit, shots: int, rng: np.random.Generator) -> np.ndarray:
        return self._sim.sample(circuit, shots, rng)

    def sample_parameterised(
        self, circuit: QuantumCircuit, values, shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        if self.plan_cache_size <= 0:
            return super().sample_parameterised(circuit, values, shots, rng)
        try:
            plan = self._plan_for(circuit)
        except CircuitError:
            # Structures the plan compiler does not cover fall back to binding.
            return super().sample_parameterised(circuit, values, shots, rng)
        return plan.sample(values, shots, rng)

    def _plan_for(self, circuit: QuantumCircuit) -> "CompiledCircuit":
        key = circuit_structure_key(circuit)
        plan = self._plans.get(key)
        if plan is None:
            self._plan_misses += 1
            plan = CompiledCircuit(circuit, max_qubits=self._sim.max_qubits)
            self._plans[key] = plan
            while len(self._plans) > self.plan_cache_size:
                self._plans.pop(next(iter(self._plans)))
        else:
            self._plan_hits += 1
        return plan

    def plan_cache_info(self) -> dict[str, int]:
        """Hit/miss counters for the compiled-plan cache (diagnostics)."""
        return {
            "entries": len(self._plans),
            "hits": self._plan_hits,
            "misses": self._plan_misses,
            "max_entries": self.plan_cache_size,
        }


class MPSBackend(Backend):
    """Bounded-bond-dimension MPS execution (scales to 100+ qubits)."""

    name = "mps"

    def __init__(self, max_bond_dimension: int = 16):
        self._sim = MPSSimulator(max_bond_dimension=max_bond_dimension)
        self.max_bond_dimension = max_bond_dimension

    def sample_array(self, circuit: QuantumCircuit, shots: int, rng: np.random.Generator) -> np.ndarray:
        return self._sim.sample(circuit, shots, rng)


class AutoBackend(Backend):
    """Statevector when feasible, MPS otherwise."""

    name = "auto"

    def __init__(
        self,
        max_statevector_qubits: int = 16,
        max_bond_dimension: int = 16,
        plan_cache_size: int = 64,
    ):
        self.max_statevector_qubits = int(max_statevector_qubits)
        self._sv = StatevectorBackend(
            max_qubits=max(max_statevector_qubits, 1), plan_cache_size=plan_cache_size
        )
        self._mps = MPSBackend(max_bond_dimension=max_bond_dimension)

    def sample_array(self, circuit: QuantumCircuit, shots: int, rng: np.random.Generator) -> np.ndarray:
        if circuit.num_qubits <= self.max_statevector_qubits:
            return self._sv.sample_array(circuit, shots, rng)
        return self._mps.sample_array(circuit, shots, rng)

    def sample_parameterised(
        self, circuit: QuantumCircuit, values, shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        if circuit.num_qubits <= self.max_statevector_qubits:
            return self._sv.sample_parameterised(circuit, values, shots, rng)
        return self._mps.sample_parameterised(circuit, values, shots, rng)

    def chosen_backend(self, circuit: QuantumCircuit) -> str:
        """Name of the backend that would execute this circuit."""
        return "statevector" if circuit.num_qubits <= self.max_statevector_qubits else "mps"
