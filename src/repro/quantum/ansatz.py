"""Hardware-efficient ansatz circuits.

The paper uses Qiskit's ``EfficientSU2`` ansatz (Sec. 4.3.2): alternating
layers of parameterised RY·RZ rotations on every qubit and a linear chain of
entangling CX gates between adjacent qubits.  :class:`EfficientSU2` builds the
same circuit on our IR; the linear entanglement pattern is what makes the MPS
backend exact for small numbers of repetitions.
"""

from __future__ import annotations

from repro.exceptions import CircuitError
from repro.quantum.circuit import Parameter, QuantumCircuit


class EfficientSU2:
    """EfficientSU2 ansatz factory.

    Parameters
    ----------
    num_qubits:
        Width of the ansatz.
    reps:
        Number of (entangle + rotate) repetition blocks appended after the
        initial rotation layer.
    entanglement:
        ``"linear"`` (nearest-neighbour chain, default — matches the paper's
        "entangling gates among adjacent qubits") or ``"circular"`` (adds the
        closing pair ``(n-1, 0)``).
    """

    def __init__(self, num_qubits: int, reps: int = 1, entanglement: str = "linear"):
        if num_qubits < 1:
            raise CircuitError(f"EfficientSU2 needs at least one qubit, got {num_qubits}")
        if reps < 0:
            raise CircuitError(f"reps must be >= 0, got {reps}")
        if entanglement not in ("linear", "circular"):
            raise CircuitError(f"unsupported entanglement pattern: {entanglement!r}")
        self.num_qubits = int(num_qubits)
        self.reps = int(reps)
        self.entanglement = entanglement
        self._circuit = self._build()
        self._compiled = None

    # -- construction -----------------------------------------------------------

    def _entangling_pairs(self) -> list[tuple[int, int]]:
        pairs = [(q, q + 1) for q in range(self.num_qubits - 1)]
        if self.entanglement == "circular" and self.num_qubits > 2:
            pairs.append((self.num_qubits - 1, 0))
        return pairs

    def _rotation_layer(self, circuit: QuantumCircuit, layer_index: int) -> None:
        for q in range(self.num_qubits):
            circuit.ry(Parameter(f"ry_{layer_index}_{q}"), q)
        for q in range(self.num_qubits):
            circuit.rz(Parameter(f"rz_{layer_index}_{q}"), q)

    def _build(self) -> QuantumCircuit:
        circuit = QuantumCircuit(self.num_qubits, name=f"EfficientSU2(n={self.num_qubits},reps={self.reps})")
        self._rotation_layer(circuit, 0)
        for rep in range(self.reps):
            for a, b in self._entangling_pairs():
                circuit.cx(a, b)
            self._rotation_layer(circuit, rep + 1)
        return circuit

    # -- public API ---------------------------------------------------------------

    @property
    def circuit(self) -> QuantumCircuit:
        """The (parameterised) ansatz circuit."""
        return self._circuit

    @property
    def num_parameters(self) -> int:
        """Total number of free rotation angles: ``2 · n · (reps + 1)``."""
        return self._circuit.num_parameters

    def bound(self, values) -> QuantumCircuit:
        """Bind a parameter vector and return the executable circuit."""
        return self._circuit.bind(values)

    def compiled(self, max_qubits: int | None = None):
        """The ansatz's reusable statevector replay plan (built once, cached).

        Evaluating the plan at a parameter vector is bit-identical to
        ``bound(values)`` followed by :class:`StatevectorSimulator` execution.
        """
        if self._compiled is None:
            from repro.quantum.compiled import CompiledCircuit

            self._compiled = CompiledCircuit(self._circuit, max_qubits=max_qubits)
        return self._compiled

    def initial_point(self, rng=None, scale: float = 0.1):
        """A small random initial parameter vector (zeros when ``rng`` is None)."""
        import numpy as np

        n = self.num_parameters
        if rng is None:
            return np.zeros(n)
        return rng.normal(scale=scale, size=n)
