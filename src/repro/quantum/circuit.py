"""Parameterised quantum circuits.

A deliberately small circuit IR: a circuit is a list of
:class:`Instruction` objects (gate name, qubit tuple, parameters).  Parameters
may be free (:class:`Parameter`) or bound floats; :meth:`QuantumCircuit.bind`
produces a fully bound copy for the simulators.  Depth and gate counting are
implemented the way Qiskit defines them (greedy per-qubit layering), which is
what the paper's "circuit depth after parameterisation" column reports.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import CircuitError
from repro.quantum.gates import GATE_ARITY


class Parameter:
    """A named free parameter of a circuit."""

    _counter = itertools.count()

    def __init__(self, name: str | None = None):
        self.name = name if name is not None else f"θ{next(self._counter)}"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Parameter({self.name!r})"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


@dataclass(frozen=True)
class Instruction:
    """One gate application."""

    name: str
    qubits: tuple[int, ...]
    params: tuple[object, ...] = ()

    @property
    def is_parameterised(self) -> bool:
        """True when any parameter is an unbound :class:`Parameter`."""
        return any(isinstance(p, Parameter) for p in self.params)

    @property
    def num_qubits(self) -> int:
        """Number of qubits this instruction acts on."""
        return len(self.qubits)


@dataclass
class QuantumCircuit:
    """An ordered list of gate applications on ``num_qubits`` qubits."""

    num_qubits: int
    instructions: list[Instruction] = field(default_factory=list)
    name: str = "circuit"

    def __post_init__(self) -> None:
        if self.num_qubits <= 0:
            raise CircuitError(f"a circuit needs at least one qubit, got {self.num_qubits}")

    # -- gate builders ----------------------------------------------------------

    def append(self, name: str, qubits: Sequence[int], params: Sequence[object] = ()) -> "QuantumCircuit":
        """Append a gate, validating qubit indices and arity."""
        name = name.lower()
        qubits = tuple(int(q) for q in qubits)
        for q in qubits:
            if not (0 <= q < self.num_qubits):
                raise CircuitError(f"qubit index {q} out of range for {self.num_qubits}-qubit circuit")
        if len(set(qubits)) != len(qubits):
            raise CircuitError(f"duplicate qubits in gate {name!r}: {qubits}")
        expected = GATE_ARITY.get(name)
        if expected is not None and expected != len(qubits):
            raise CircuitError(
                f"gate {name!r} acts on {expected} qubits, got {len(qubits)}"
            )
        self.instructions.append(Instruction(name, qubits, tuple(params)))
        return self

    def x(self, q: int) -> "QuantumCircuit":
        """Pauli-X gate."""
        return self.append("x", (q,))

    def sx(self, q: int) -> "QuantumCircuit":
        """Sqrt-X gate."""
        return self.append("sx", (q,))

    def h(self, q: int) -> "QuantumCircuit":
        """Hadamard gate."""
        return self.append("h", (q,))

    def rx(self, theta: object, q: int) -> "QuantumCircuit":
        """X-rotation gate."""
        return self.append("rx", (q,), (theta,))

    def ry(self, theta: object, q: int) -> "QuantumCircuit":
        """Y-rotation gate."""
        return self.append("ry", (q,), (theta,))

    def rz(self, theta: object, q: int) -> "QuantumCircuit":
        """Z-rotation gate."""
        return self.append("rz", (q,), (theta,))

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """CNOT gate."""
        return self.append("cx", (control, target))

    def cz(self, a: int, b: int) -> "QuantumCircuit":
        """CZ gate."""
        return self.append("cz", (a, b))

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        """SWAP gate."""
        return self.append("swap", (a, b))

    def ecr(self, a: int, b: int) -> "QuantumCircuit":
        """Echoed cross-resonance gate (IBM native)."""
        return self.append("ecr", (a, b))

    def barrier(self) -> "QuantumCircuit":
        """Barrier (layering hint only; ignored by the simulators)."""
        self.instructions.append(Instruction("barrier", tuple(range(self.num_qubits))))
        return self

    # -- parameters -------------------------------------------------------------

    @property
    def parameters(self) -> list[Parameter]:
        """Free parameters in first-appearance order."""
        seen: set[Parameter] = set()
        ordered: list[Parameter] = []
        for inst in self.instructions:
            for p in inst.params:
                if isinstance(p, Parameter) and p not in seen:
                    seen.add(p)
                    ordered.append(p)
        return ordered

    @property
    def num_parameters(self) -> int:
        """Number of distinct free parameters."""
        return len(self.parameters)

    def bind(self, values: Mapping[Parameter, float] | Sequence[float] | np.ndarray) -> "QuantumCircuit":
        """Return a copy with every free parameter replaced by a float.

        ``values`` may be a mapping from :class:`Parameter` to float, or a
        sequence ordered like :attr:`parameters`.
        """
        params = self.parameters
        if isinstance(values, Mapping):
            mapping = dict(values)
        else:
            arr = np.asarray(values, dtype=float).ravel()
            if arr.size != len(params):
                raise CircuitError(
                    f"expected {len(params)} parameter values, got {arr.size}"
                )
            mapping = dict(zip(params, arr.tolist()))
        missing = [p.name for p in params if p not in mapping]
        if missing:
            raise CircuitError(f"missing bindings for parameters: {missing}")
        bound = QuantumCircuit(self.num_qubits, name=self.name)
        for inst in self.instructions:
            new_params = tuple(
                float(mapping[p]) if isinstance(p, Parameter) else p for p in inst.params
            )
            bound.instructions.append(Instruction(inst.name, inst.qubits, new_params))
        return bound

    @property
    def is_bound(self) -> bool:
        """True when no instruction has a free parameter."""
        return not any(inst.is_parameterised for inst in self.instructions)

    # -- metrics ----------------------------------------------------------------

    def count_ops(self) -> dict[str, int]:
        """Gate-name histogram (barriers excluded)."""
        counts: dict[str, int] = {}
        for inst in self.instructions:
            if inst.name == "barrier":
                continue
            counts[inst.name] = counts.get(inst.name, 0) + 1
        return counts

    def depth(self) -> int:
        """Circuit depth via greedy per-qubit layering (barriers excluded)."""
        levels = np.zeros(self.num_qubits, dtype=int)
        for inst in self.instructions:
            if inst.name == "barrier":
                continue
            qs = list(inst.qubits)
            layer = int(levels[qs].max()) + 1
            levels[qs] = layer
        return int(levels.max(initial=0))

    def two_qubit_gate_count(self) -> int:
        """Number of two-qubit gates."""
        return sum(1 for inst in self.instructions if inst.name != "barrier" and inst.num_qubits == 2)

    # -- composition -------------------------------------------------------------

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit applying ``self`` then ``other`` (same width)."""
        if other.num_qubits != self.num_qubits:
            raise CircuitError(
                f"cannot compose circuits of width {self.num_qubits} and {other.num_qubits}"
            )
        combined = QuantumCircuit(self.num_qubits, name=self.name)
        combined.instructions = list(self.instructions) + list(other.instructions)
        return combined

    def copy(self) -> "QuantumCircuit":
        """Shallow copy (instructions are immutable)."""
        c = QuantumCircuit(self.num_qubits, name=self.name)
        c.instructions = list(self.instructions)
        return c

    def __len__(self) -> int:
        return len([i for i in self.instructions if i.name != "barrier"])

    def __iter__(self) -> Iterable[Instruction]:
        return iter(self.instructions)
