"""Compiled execution plans for parameterised circuits.

The VQE hot loop evaluates the *same* ansatz structure hundreds of times with
different parameter vectors.  The naive path re-pays structure costs on every
iteration: ``bind`` walks the instruction list to collect parameters and
builds a full copy of the circuit, and the simulator re-resolves every gate
matrix and re-derives every ``tensordot`` contraction from scratch.

:class:`CompiledCircuit` walks the circuit **once** and records a replay plan:
for every instruction it resolves the target qubits into the exact
transpose/reshape/``dot`` decomposition that :func:`numpy.tensordot` performs
internally, precomputes the unitary of every parameter-independent gate, and
notes which parameter slot feeds each parameterised rotation.  Evaluating the
plan is then just "refresh the parameterised gate matrices and replay":
no circuit copy, no parameter scan, no per-gate axis bookkeeping.

Bit-identity contract
---------------------
A compiled replay performs the *same floating-point operations in the same
order* as :meth:`StatevectorSimulator.run` on the bound circuit: fixed gate
matrices are produced by the same :func:`~repro.quantum.gates.gate_matrix`
calls, parameterised matrices are rebuilt per evaluation through the same
scalar code path, and each gate application reproduces ``tensordot``'s
internal ``transpose → reshape → dot → reshape → moveaxis`` sequence with
identical operand shapes.  Statevectors, probabilities and sampled bitstrings
are therefore bit-identical to the uncompiled path — the determinism harness
asserts this, and it is what lets the engine enable plan reuse by default
without invalidating any cached fold result.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BackendError, CircuitError
from repro.quantum.circuit import Parameter, QuantumCircuit
from repro.quantum.gates import _PARAMETRIC, gate_matrix


def circuit_structure_key(circuit: QuantumCircuit) -> tuple:
    """Hashable structural fingerprint of a circuit.

    Two circuits share a key exactly when they apply the same gate names to
    the same qubits in the same order with the same *bound* parameter values,
    with free parameters identified positionally (by first-appearance order,
    the same order :meth:`QuantumCircuit.bind` consumes a value vector in).
    Structurally identical templates — e.g. two ``EfficientSU2`` instances of
    equal width and depth — therefore share one compiled plan and one
    transpilation, even though their :class:`Parameter` objects differ.

    The key is memoised on the circuit object (guarded by instruction count,
    which covers append-after-keying; instructions themselves are frozen), so
    hot loops that keep sampling one template pay the structural walk once.
    """
    memo = getattr(circuit, "_structure_key_memo", None)
    if memo is not None and memo[0] == len(circuit.instructions):
        return memo[1]
    index = {p: i for i, p in enumerate(circuit.parameters)}
    parts: list = [circuit.num_qubits]
    for inst in circuit.instructions:
        if inst.name == "barrier":
            continue
        parts.append(
            (
                inst.name,
                inst.qubits,
                tuple(
                    ("p", index[p]) if isinstance(p, Parameter) else ("c", float(p))
                    for p in inst.params
                ),
            )
        )
    key = tuple(parts)
    try:
        circuit._structure_key_memo = (len(circuit.instructions), key)
    except AttributeError:
        pass
    return key


class CompiledCircuit:
    """A reusable statevector replay plan for one circuit structure."""

    def __init__(self, circuit: QuantumCircuit, max_qubits: int | None = None):
        if max_qubits is None:
            from repro.quantum.statevector import MAX_STATEVECTOR_QUBITS

            max_qubits = MAX_STATEVECTOR_QUBITS
        n = circuit.num_qubits
        if n > int(max_qubits):
            raise BackendError(
                f"{n} qubits exceeds the statevector limit of {max_qubits}"
            )
        params = circuit.parameters
        index = {p: i for i, p in enumerate(params)}
        self.num_qubits = n
        self.num_parameters = len(params)
        self.structure_key = circuit_structure_key(circuit)
        # One step per non-barrier instruction:
        # (fixed_matrix | None, builder | None, param_index | None, 2**k, fwd, back)
        # where ``builder`` is the gate's matrix constructor (the exact
        # function :func:`gate_matrix` would dispatch to, resolved once here)
        # and ``fwd``/``back`` are the transpose permutations reproducing
        # tensordot's operand layout and moveaxis restoration exactly.
        self._steps: list[tuple] = []
        for inst in circuit.instructions:
            if inst.name == "barrier":
                continue
            qubits = inst.qubits
            k = len(qubits)
            others = [axis for axis in range(n) if axis not in qubits]
            fwd = tuple(qubits) + tuple(others)
            back = [0] * n
            for position, axis in enumerate(fwd):
                back[axis] = position
            if inst.is_parameterised:
                if len(inst.params) != 1 or not isinstance(inst.params[0], Parameter):
                    raise CircuitError(
                        f"cannot compile instruction {inst.name!r}: parameterised "
                        "gates must carry exactly one free parameter"
                    )
                builder = _PARAMETRIC.get(inst.name.lower())
                if builder is None:
                    raise CircuitError(
                        f"cannot compile instruction {inst.name!r}: no parametric "
                        "matrix builder for this gate"
                    )
                self._steps.append(
                    (None, builder, index[inst.params[0]], 2**k, fwd, tuple(back))
                )
            else:
                matrix = gate_matrix(inst.name, tuple(float(p) for p in inst.params))
                self._steps.append(
                    (np.ascontiguousarray(matrix), None, None, 2**k, fwd, tuple(back))
                )

    def __len__(self) -> int:
        return len(self._steps)

    # -- evaluation --------------------------------------------------------------

    def statevector(self, values=()) -> np.ndarray:
        """Evolve |0...0> through the plan at ``values``; bit-identical to
        binding the template and running :meth:`StatevectorSimulator.run`."""
        vals = np.asarray(values, dtype=float).ravel().tolist()
        if len(vals) != self.num_parameters:
            raise CircuitError(
                f"expected {self.num_parameters} parameter values, got {len(vals)}"
            )
        n = self.num_qubits
        shape = (2,) * n
        state = np.zeros(shape, dtype=complex)
        state[(0,) * n] = 1.0
        for matrix, builder, param_index, dim, fwd, back in self._steps:
            if matrix is None:
                matrix = builder(vals[param_index])
            state = (
                np.dot(matrix, state.transpose(fwd).reshape(dim, -1))
                .reshape(shape)
                .transpose(back)
            )
        return np.ascontiguousarray(state).reshape(-1)

    def probabilities(self, values=()) -> np.ndarray:
        """Measurement probabilities at ``values`` (same maths as the simulator)."""
        amps = self.statevector(values)
        probs = np.abs(amps) ** 2
        total = probs.sum()
        if total <= 0:
            raise BackendError("statevector collapsed to zero norm")
        return probs / total

    def sample(self, values, shots: int, rng: np.random.Generator) -> np.ndarray:
        """Sample measurement outcomes; bit-identical (including the RNG draw
        pattern) to :meth:`StatevectorSimulator.sample` on the bound circuit."""
        if shots <= 0:
            raise BackendError(f"shots must be positive, got {shots}")
        probs = self.probabilities(values)
        n = self.num_qubits
        outcomes = rng.choice(probs.size, size=shots, p=probs)
        return ((outcomes[:, None] >> np.arange(n - 1, -1, -1)) & 1).astype(np.uint8)
