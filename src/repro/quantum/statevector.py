"""Exact statevector simulation of bound circuits.

Gate application uses the standard tensor-reshape technique: the state is a
rank-``n`` tensor of shape ``(2, ..., 2)`` and a ``k``-qubit gate is applied
with a single :func:`numpy.tensordot` contraction followed by an axis
permutation.  This keeps the hot path fully vectorised and allocation-light.

Bit-ordering convention: qubit 0 is the *leftmost* character of a bitstring
(big-endian in qubit index), i.e. bitstring ``b`` has ``b[q]`` = measurement
outcome of qubit ``q``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import BackendError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.gates import gate_matrix

#: Hard cap on the exact simulator width (2^24 complex amplitudes = 256 MiB).
MAX_STATEVECTOR_QUBITS = 24


class StatevectorSimulator:
    """Exact simulator for small circuits; the oracle used by the test suite."""

    def __init__(self, max_qubits: int = MAX_STATEVECTOR_QUBITS):
        self.max_qubits = int(max_qubits)

    # -- state evolution ----------------------------------------------------------

    def run(self, circuit: QuantumCircuit) -> np.ndarray:
        """Evolve |0...0> through ``circuit`` and return the final statevector.

        The returned array has ``2**n`` amplitudes; index bits are ordered with
        qubit 0 as the most significant bit.
        """
        if not circuit.is_bound:
            raise BackendError("cannot simulate a circuit with unbound parameters")
        n = circuit.num_qubits
        if n > self.max_qubits:
            raise BackendError(
                f"{n} qubits exceeds the statevector limit of {self.max_qubits}"
            )
        state = np.zeros((2,) * n, dtype=complex)
        state[(0,) * n] = 1.0
        for inst in circuit.instructions:
            if inst.name == "barrier":
                continue
            matrix = gate_matrix(inst.name, tuple(float(p) for p in inst.params))
            state = _apply_gate(state, matrix, inst.qubits)
        return state.reshape(-1)

    def compile(self, circuit: QuantumCircuit):
        """Build a reusable replay plan for ``circuit`` (may be parameterised).

        The plan's ``statevector``/``sample`` evaluations are bit-identical to
        binding the circuit and calling :meth:`run`/:meth:`sample`; see
        :class:`repro.quantum.compiled.CompiledCircuit`.
        """
        from repro.quantum.compiled import CompiledCircuit

        return CompiledCircuit(circuit, max_qubits=self.max_qubits)

    # -- measurement ----------------------------------------------------------------

    def probabilities(self, circuit: QuantumCircuit) -> np.ndarray:
        """Measurement probabilities over the ``2**n`` computational basis states."""
        amps = self.run(circuit)
        probs = np.abs(amps) ** 2
        total = probs.sum()
        if total <= 0:
            raise BackendError("statevector collapsed to zero norm")
        return probs / total

    def sample(self, circuit: QuantumCircuit, shots: int, rng: np.random.Generator) -> np.ndarray:
        """Sample measurement outcomes; returns an (shots, n) array of 0/1 ints."""
        if shots <= 0:
            raise BackendError(f"shots must be positive, got {shots}")
        probs = self.probabilities(circuit)
        n = circuit.num_qubits
        outcomes = rng.choice(probs.size, size=shots, p=probs)
        bits = ((outcomes[:, None] >> np.arange(n - 1, -1, -1)) & 1).astype(np.uint8)
        return bits


def _apply_gate(state: np.ndarray, matrix: np.ndarray, qubits: tuple[int, ...]) -> np.ndarray:
    """Apply a k-qubit gate to the rank-n state tensor."""
    k = len(qubits)
    n = state.ndim
    gate = matrix.reshape((2,) * (2 * k))
    # Contract gate's input legs with the state's target axes.
    moved = np.tensordot(gate, state, axes=(list(range(k, 2 * k)), list(qubits)))
    # tensordot puts the gate's output legs first; move them back into place.
    return np.moveaxis(moved, list(range(k)), list(qubits))
