"""Small argument-validation helpers used across subsystems."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def require_positive(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Raise ``ValueError`` unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def require_in_range(name: str, value: float, lo: float, hi: float) -> float:
    """Raise ``ValueError`` unless ``lo <= value <= hi``."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo}, {hi}], got {value!r}")
    return value


def as_points(coords: Sequence, name: str = "coords") -> np.ndarray:
    """Coerce ``coords`` to a contiguous float (N, 3) array, validating shape."""
    arr = np.ascontiguousarray(np.asarray(coords, dtype=float))
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError(f"{name} must have shape (N, 3), got {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains non-finite values")
    return arr
