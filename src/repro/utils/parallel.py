"""Batch / parallel execution primitives.

The paper's Section 5.2 describes a batch-processing architecture in which the
55 fragments (and, downstream, the 20 docking seeds per structure) are
independent work items executed back-to-back on the quantum processor.  On a
classical reproduction the natural analogue is a process pool: work items are
scattered to workers, executed with deterministic per-item seeds, and gathered
in submission order.

The helpers here follow the idioms of the mpi4py / scientific-python guides:

* the *data* travels as plain picklable objects (NumPy arrays, dataclasses);
* scheduling is static and chunked so results are reproducible regardless of
  worker count;
* a ``processes=0`` or ``processes=1`` executor degrades to serial execution,
  which keeps unit tests single-process and debuggable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def chunked(items: Sequence[T], chunk_size: int) -> Iterator[list[T]]:
    """Yield successive chunks of ``items`` with at most ``chunk_size`` elements."""
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    for start in range(0, len(items), chunk_size):
        yield list(items[start : start + chunk_size])


def default_worker_count() -> int:
    """A conservative default worker count (leave one core for the parent)."""
    return max(1, (os.cpu_count() or 2) - 1)


def parallel_map(
    func: Callable[[T], R],
    items: Iterable[T],
    processes: int | None = None,
    chunk_size: int | None = None,
    initializer: Callable[..., None] | None = None,
    initargs: tuple = (),
) -> list[R]:
    """Map ``func`` over ``items`` preserving order.

    ``processes`` of ``None`` uses :func:`default_worker_count`; ``0`` or ``1``
    runs serially in the calling process.  ``func`` and the items must be
    picklable when running with more than one process.  ``initializer`` runs
    once in every worker before any item (used to replicate parent-process
    state — e.g. runtime backend registrations — under spawn-based start
    methods, where workers do not inherit the parent's module state).
    """
    items = list(items)
    if not items:
        return []
    if processes is None:
        processes = default_worker_count()
    if processes <= 1 or len(items) == 1:
        return [func(item) for item in items]
    if chunk_size is None:
        chunk_size = max(1, len(items) // (processes * 4))
    with ProcessPoolExecutor(max_workers=processes, initializer=initializer, initargs=initargs) as pool:
        return list(pool.map(func, items, chunksize=chunk_size))


def serial_stream(
    func: Callable[[T], R], items: Iterable[T]
) -> Iterator[tuple[int, R | None, BaseException | None]]:
    """Yield ``(index, result, exception)`` triples serially, in order.

    The streaming primitive behind the engine's ``serial`` executor
    transport (:mod:`repro.engine.transports`): exactly one triple per item,
    with either ``result`` or ``exception`` set — an exception never stops
    the stream, isolation is the caller's policy decision.  The concurrent
    counterpart (completion-order triples over a process pool) is
    ``PoolTransport``, which owns its pool lifecycle to support the
    transport protocol's submit/poll/cancel semantics.
    """
    for i, item in enumerate(items):
        try:
            result = func(item)
        except Exception as exc:
            yield i, None, exc
        else:
            yield i, result, None


@dataclass
class ParallelExecutor:
    """Reusable executor with a fixed worker count.

    A thin object wrapper around :func:`parallel_map` so that pipeline stages
    can accept a single ``executor`` argument and remain agnostic about
    whether they run serially (tests) or on a pool (dataset builds).
    """

    processes: int = 0

    def map(self, func: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Map ``func`` over ``items`` with this executor's worker count."""
        return parallel_map(func, items, processes=self.processes)

    def starmap(self, func: Callable[..., R], argtuples: Iterable[tuple]) -> list[R]:
        """Like :meth:`map` but unpacks argument tuples."""
        return self.map(_StarCall(func), list(argtuples))

    @property
    def is_serial(self) -> bool:
        """True when this executor runs everything in the calling process."""
        return self.processes <= 1


class _StarCall:
    """Picklable adapter turning ``func(*args)`` into a single-argument call."""

    def __init__(self, func: Callable[..., R]):
        self.func = func

    def __call__(self, args: tuple) -> R:
        return self.func(*args)
