"""Deterministic random-number management.

Every stochastic task in the pipeline (a VQE run, a docking seed, a noise
channel) derives its generator from a *master seed* plus a stable string key.
This guarantees that results are identical whether tasks run serially or are
scattered across a process pool, which is the property the paper relies on
when it records per-run seeds for reproducibility (Sec. 6.2).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

_MASK64 = (1 << 64) - 1


def child_seed(master_seed: int, *keys: object) -> int:
    """Derive a deterministic 64-bit child seed from a master seed and keys.

    The derivation hashes the textual representation of the keys with SHA-256
    so that nearby integer keys do not produce correlated streams (a known
    hazard with naive ``master + i`` seeding).
    """
    h = hashlib.sha256()
    h.update(str(int(master_seed)).encode("utf-8"))
    for key in keys:
        h.update(b"\x1f")
        h.update(repr(key).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little") & _MASK64


def rng_for(master_seed: int, *keys: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for a (master seed, keys) pair."""
    return np.random.default_rng(child_seed(master_seed, *keys))


def spawn_rngs(master_seed: int, n: int, label: str = "task") -> list[np.random.Generator]:
    """Spawn ``n`` independent generators labelled ``label:0 .. label:n-1``."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of generators: {n}")
    return [rng_for(master_seed, label, i) for i in range(n)]


def stable_fraction(*keys: object) -> float:
    """Map arbitrary keys to a deterministic float in ``[0, 1)``.

    Used by the analytic timing / cost models to produce a reproducible
    per-fragment spread without any global RNG state.
    """
    return (child_seed(0, *keys) >> 11) / float(1 << 53)


def choice_weighted(rng: np.random.Generator, items: Iterable, weights: Iterable[float]):
    """Weighted random choice that tolerates zero-sum weights gracefully."""
    items = list(items)
    w = np.asarray(list(weights), dtype=float)
    if len(items) != w.size:
        raise ValueError("items and weights must have the same length")
    if len(items) == 0:
        raise ValueError("cannot choose from an empty sequence")
    total = w.sum()
    if not np.isfinite(total) or total <= 0.0:
        return items[int(rng.integers(len(items)))]
    return items[int(rng.choice(len(items), p=w / total))]
