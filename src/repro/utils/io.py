"""JSON and filesystem helpers used by the dataset builder."""

from __future__ import annotations

import json
from datetime import datetime, timezone
from pathlib import Path
from typing import Any

import numpy as np


def utcnow_iso() -> str:
    """The current UTC time as a second-precision ISO-8601 string.

    The one timestamp format shared by session journals and worker logs, so
    records from both sides of a distributed run correlate textually.
    """
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands NumPy scalars and arrays."""

    def default(self, obj: Any) -> Any:  # noqa: D102 - stdlib override
        if isinstance(obj, (np.integer,)):
            return int(obj)
        if isinstance(obj, (np.floating,)):
            return float(obj)
        if isinstance(obj, (np.bool_,)):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def ensure_dir(path: str | Path) -> Path:
    """Create ``path`` (and parents) if needed and return it as a :class:`Path`."""
    p = Path(path)
    p.mkdir(parents=True, exist_ok=True)
    return p


def write_json(path: str | Path, data: Any, indent: int = 2) -> Path:
    """Serialise ``data`` to ``path`` as JSON, creating parent directories."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=indent, cls=_NumpyJSONEncoder, sort_keys=False)
        fh.write("\n")
    return p


def read_json(path: str | Path) -> Any:
    """Load JSON from ``path``."""
    with Path(path).open("r", encoding="utf-8") as fh:
        return json.load(fh)
