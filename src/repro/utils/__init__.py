"""Shared infrastructure: logging, deterministic RNG, parallel execution, I/O."""

from repro.utils.rng import child_seed, rng_for, spawn_rngs
from repro.utils.parallel import ParallelExecutor, chunked, parallel_map
from repro.utils.io import read_json, write_json, ensure_dir

__all__ = [
    "child_seed",
    "rng_for",
    "spawn_rngs",
    "ParallelExecutor",
    "chunked",
    "parallel_map",
    "read_json",
    "write_json",
    "ensure_dir",
]
