"""Lightweight logging configuration shared by examples and the CLI-style builders."""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s | %(levelname)-7s | %(name)s | %(message)s"


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a module logger with a single stream handler attached once."""
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        logger.addHandler(handler)
        logger.setLevel(level)
        logger.propagate = False
    return logger
