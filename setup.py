"""Setuptools shim so `pip install -e .` works without PEP 517 build isolation."""
from setuptools import setup

setup()
