"""Setuptools packaging for the QDockBank reproduction.

Kept as a plain setup.py (no PEP 517 build isolation required) so
``pip install -e .`` works offline.  Installs the ``repro`` package from
``src/`` and the ``repro-cache`` / ``repro-session`` / ``repro-worker`` /
``repro-serve`` / ``repro-bench`` console tools (:mod:`repro.cli.cache`,
:mod:`repro.cli.session`, :mod:`repro.cli.worker`, :mod:`repro.cli.serve`,
:mod:`repro.cli.bench`).
"""
from setuptools import find_packages, setup

setup(
    name="qdockbank-repro",
    version="1.0.0",
    description="From-scratch reproduction of QDockBank (SC 2025): VQE fragment folding, docking and analysis",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
    entry_points={
        "console_scripts": [
            "repro-cache=repro.cli.cache:main",
            "repro-session=repro.cli.session:main",
            "repro-worker=repro.cli.worker:main",
            "repro-serve=repro.cli.serve:main",
            "repro-bench=repro.cli.bench:main",
        ],
    },
)
