"""Tests for the VQE framework: expectation estimation, optimisers, the two-stage driver."""

import numpy as np
import pytest

from repro.config import PipelineConfig
from repro.exceptions import VQEError
from repro.lattice.hamiltonian import LatticeHamiltonian
from repro.lattice.classical import ClassicalFoldingSolver
from repro.vqe.expectation import DiagonalExpectation
from repro.vqe.optimizer import CobylaOptimizer, SPSAOptimizer
from repro.vqe.vqe import VQE


# -- expectation -----------------------------------------------------------------


def test_expectation_from_counts_weighted_mean():
    h = LatticeHamiltonian("ACDEF")
    exp = DiagonalExpectation(h)
    bits_a = h.encoding.bits_from_turns([0, 1, 2, 1])
    bits_b = h.encoding.bits_from_turns([0, 1, 1, 1])
    ea, eb = h.energy_of_bits(bits_a), h.energy_of_bits(bits_b)
    value = exp.estimate_from_counts({bits_a: 3, bits_b: 1})
    assert value == pytest.approx((3 * ea + eb) / 4)


def test_expectation_cache_grows_once_per_unique_config():
    h = LatticeHamiltonian("ACDEF")
    exp = DiagonalExpectation(h)
    bits = h.encoding.bits_from_turns([0, 1, 2, 1])
    exp.energy_of_bits(bits)
    exp.energy_of_bits(bits)
    assert exp.cache_size == 1


def test_expectation_empty_counts_raise():
    h = LatticeHamiltonian("ACDEF")
    with pytest.raises(VQEError):
        DiagonalExpectation(h).estimate_from_counts({})


def test_cvar_below_or_equal_mean():
    h = LatticeHamiltonian("PWWERYQP")
    exp = DiagonalExpectation(h)
    rng = np.random.default_rng(0)
    samples = rng.integers(0, 2, size=(200, h.encoding.configuration_qubits)).astype(np.uint8)
    mean = exp.estimate_from_samples(samples)
    cvar = exp.cvar_from_samples(samples, alpha=0.1)
    assert cvar <= mean + 1e-9
    assert exp.cvar_from_samples(samples, alpha=1.0) == pytest.approx(mean)


def test_cvar_alpha_validation():
    h = LatticeHamiltonian("ACDEF")
    exp = DiagonalExpectation(h)
    with pytest.raises(VQEError):
        exp.cvar_from_samples(np.zeros((4, h.encoding.configuration_qubits), dtype=np.uint8), alpha=0.0)


# -- optimisers -------------------------------------------------------------------


def test_cobyla_minimises_quadratic():
    result = CobylaOptimizer(max_iterations=80).minimize(lambda x: float(np.sum((x - 1.5) ** 2)), np.zeros(3))
    assert result.optimal_value < 0.05
    assert result.iterations > 0
    assert result.lowest_value <= result.highest_value


def test_spsa_minimises_quadratic():
    result = SPSAOptimizer(max_iterations=200, seed=1).minimize(
        lambda x: float(np.sum((x - 0.7) ** 2)), np.zeros(4)
    )
    assert result.optimal_value < 0.3


def test_optimizer_history_tracks_range():
    result = CobylaOptimizer(max_iterations=30).minimize(lambda x: float(np.sum(x**2)), np.ones(2) * 3)
    assert result.value_range == pytest.approx(result.highest_value - result.lowest_value)


# -- VQE driver ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_vqe_result(tiny_config_module):
    h = LatticeHamiltonian("RYRDV")
    vqe = VQE(h, config=tiny_config_module, seed=3)
    return h, vqe, vqe.run()


@pytest.fixture(scope="module")
def tiny_config_module():
    return PipelineConfig(
        vqe_iterations=10, optimisation_shots=64, final_shots=256, docking_seeds=2,
        docking_poses=3, docking_mc_steps=30, seed=7,
    )


def test_vqe_result_metadata_fields(small_vqe_result):
    h, vqe, result = small_vqe_result
    assert result.num_qubits == 12  # 5-residue fragment => 12 qubits (paper table)
    assert result.circuit_depth == 4 * 12 + 5
    assert result.lowest_energy <= result.highest_energy
    assert result.best_conformation is not None
    meta = result.metadata()
    assert meta["qubits"] == 12
    assert meta["energy_range"] == pytest.approx(result.energy_range)


def test_vqe_finds_ground_state_of_small_fragment(small_vqe_result):
    h, vqe, result = small_vqe_result
    exact = ClassicalFoldingSolver(h).solve_exact()
    assert result.best_conformation.energy == pytest.approx(exact.energy, rel=1e-6)


def test_vqe_is_deterministic_given_seed(tiny_config_module):
    h = LatticeHamiltonian("DGPHGM")
    r1 = VQE(h, config=tiny_config_module, seed=11).run()
    r2 = VQE(h, config=tiny_config_module, seed=11).run()
    assert r1.best_conformation.turns == r2.best_conformation.turns
    assert r1.optimal_energy == pytest.approx(r2.optimal_energy)


def test_vqe_register_validation(tiny_config_module):
    h = LatticeHamiltonian("RYRDV")
    with pytest.raises(VQEError):
        VQE(h, config=tiny_config_module, register="bogus")


def test_effective_final_shots_scales_with_length(tiny_config_module):
    small = VQE(LatticeHamiltonian("RYRDV"), config=tiny_config_module)
    large = VQE(LatticeHamiltonian("DYLEAYGKGGVKAK"), config=tiny_config_module)
    assert large.effective_final_shots() > small.effective_final_shots()
    assert large.effective_final_shots() <= tiny_config_module.max_final_shots


# -- expectation cache cap and grouping ---------------------------------------------------


def test_expectation_cache_cap_validation():
    h = LatticeHamiltonian("ACDEF")
    with pytest.raises(VQEError):
        DiagonalExpectation(h, max_entries=0)
    with pytest.raises(VQEError):
        DiagonalExpectation(h, max_entries=-3)


def test_expectation_cache_fifo_eviction_and_counters():
    h = LatticeHamiltonian("ACDEF")
    exp = DiagonalExpectation(h, max_entries=2)
    turns = ([0, 1, 2, 1], [0, 1, 1, 1], [0, 2, 1, 2])
    keys = [h.encoding.bits_from_turns(t) for t in turns]
    exp.energy_of_bits(keys[0])
    exp.energy_of_bits(keys[1])
    exp.energy_of_bits(keys[1])  # hit
    exp.energy_of_bits(keys[2])  # evicts keys[0] (oldest)
    info = exp.cache_info()
    assert info == {"entries": 2, "hits": 1, "misses": 3, "evictions": 1, "max_entries": 2}
    exp.energy_of_bits(keys[0])  # re-decodes the evicted configuration
    assert exp.cache_info()["misses"] == 4


def test_expectation_capped_cache_never_changes_estimates():
    h = LatticeHamiltonian("PWWERYQP")
    rng = np.random.default_rng(2)
    samples = rng.integers(0, 2, size=(300, h.encoding.configuration_qubits)).astype(np.uint8)
    capped = DiagonalExpectation(h, max_entries=4)
    uncapped = DiagonalExpectation(h)
    assert capped.estimate_from_samples(samples) == uncapped.estimate_from_samples(samples)
    assert capped.cvar_from_samples(samples, alpha=0.2) == uncapped.cvar_from_samples(
        samples, alpha=0.2
    )
    assert capped.cache_info()["evictions"] > 0


def test_packed_grouping_matches_row_unique():
    h = LatticeHamiltonian("PWWERYQP")
    exp = DiagonalExpectation(h)
    width = h.encoding.configuration_qubits
    assert width <= 63  # the packed path is in play
    rng = np.random.default_rng(4)
    samples = rng.integers(0, 2, size=(128, width + 2)).astype(np.uint8)
    energies, inverse, counts = exp._unique_config_energies(samples)
    ref_uniq, ref_inverse, ref_counts = np.unique(
        samples[:, :width], axis=0, return_inverse=True, return_counts=True
    )
    ref_energies = np.array([h.energy_of_bits("".join(map(str, row))) for row in ref_uniq])
    assert np.array_equal(energies, ref_energies)
    assert np.array_equal(inverse, np.ravel(ref_inverse))
    assert np.array_equal(counts, ref_counts)
    assert np.array_equal(energies[inverse], exp.per_shot_energies(samples))


def test_vqe_result_surfaces_cache_info(small_vqe_result):
    h, vqe, result = small_vqe_result
    info = result.expectation_cache
    assert info is not None
    assert info["entries"] >= 1
    assert info["hits"] + info["misses"] >= info["entries"]
    # Diagnostics only: the cache counters never enter the reproducible metadata.
    assert "expectation_cache" not in result.metadata()
