"""Unit and property tests for the 3D geometry kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.bio.geometry import (
    angle_between,
    apply_transform,
    dihedral_angle,
    kabsch_rotation,
    pairwise_distances,
    radius_of_gyration,
    random_rotation,
    rotation_matrix,
    superimpose,
)

finite_floats = st.floats(-50, 50, allow_nan=False, allow_infinity=False)
point_sets = arrays(np.float64, st.tuples(st.integers(3, 12), st.just(3)), elements=finite_floats)


def test_rotation_matrix_is_orthogonal():
    rot = rotation_matrix(np.array([1.0, 2.0, 3.0]), 0.7)
    assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-12)
    assert np.isclose(np.linalg.det(rot), 1.0)


def test_rotation_matrix_zero_axis_raises():
    with pytest.raises(ValueError):
        rotation_matrix(np.zeros(3), 0.5)


def test_angle_between_orthogonal_vectors():
    assert angle_between([1, 0, 0], [0, 1, 0]) == pytest.approx(np.pi / 2)


def test_dihedral_of_planar_points_is_pi_or_zero():
    p0, p1, p2, p3 = [0, 0, 0], [1, 0, 0], [1, 1, 0], [0, 1, 0]
    assert np.sin(dihedral_angle(p0, p1, p2, p3)) == pytest.approx(0.0, abs=1e-9)


def test_pairwise_distances_matches_norm():
    a = np.array([[0.0, 0, 0], [3.0, 4.0, 0]])
    d = pairwise_distances(a)
    assert d[0, 1] == pytest.approx(5.0)
    assert d[1, 0] == pytest.approx(5.0)
    assert np.allclose(np.diag(d), 0.0)


@given(point_sets, st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_superimpose_recovers_rigid_transform(points, seed):
    rng = np.random.default_rng(seed)
    rot = random_rotation(rng)
    translation = rng.normal(scale=5.0, size=3)
    moved = points @ rot.T + translation
    aligned, _r, _t = superimpose(moved, points)
    assert np.allclose(aligned, points, atol=1e-6)


@given(point_sets)
@settings(max_examples=25, deadline=None)
def test_kabsch_returns_proper_rotation(points):
    centred = points - points.mean(axis=0)
    rot = kabsch_rotation(centred, centred[::-1] - centred[::-1].mean(axis=0))
    assert np.allclose(rot @ rot.T, np.eye(3), atol=1e-8)
    assert np.isclose(np.linalg.det(rot), 1.0, atol=1e-8)


@given(point_sets, st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_radius_of_gyration_rotation_invariant(points, seed):
    rng = np.random.default_rng(seed)
    rot = random_rotation(rng)
    rotated = apply_transform(points, rot, np.zeros(3))
    assert radius_of_gyration(points) == pytest.approx(radius_of_gyration(rotated), rel=1e-9, abs=1e-9)


def test_superimpose_shape_mismatch_raises():
    with pytest.raises(ValueError):
        superimpose(np.zeros((4, 3)), np.zeros((5, 3)))
