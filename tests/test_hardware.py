"""Tests for the Eagle hardware emulation: topology, routing, transpiler, timing, cost."""

import numpy as np
import pytest

from repro.exceptions import TranspilerError
from repro.hardware.basis import NATIVE_GATES, count_native_gates, translate_to_native
from repro.hardware.cost import CostModel
from repro.hardware.coupling import EAGLE_QUBITS, heavy_hex_coupling_map, longest_chain, snake_path
from repro.hardware.eagle import EagleDevice, EagleEmulatorBackend
from repro.hardware.routing import LinearChainRouter
from repro.hardware.timing import ExecutionSettings, ExecutionTimeModel
from repro.hardware.transpiler import Transpiler
from repro.quantum.ansatz import EfficientSU2
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import StatevectorSimulator


# -- coupling map -----------------------------------------------------------------


def test_eagle_has_127_qubits_and_heavy_hex_degrees():
    g = heavy_hex_coupling_map()
    assert g.number_of_nodes() == EAGLE_QUBITS
    degrees = [d for _n, d in g.degree()]
    assert max(degrees) <= 3
    assert min(degrees) >= 1


def test_snake_path_is_connected_chain():
    g = heavy_hex_coupling_map()
    path = snake_path(g)
    assert len(path) >= 102 + 5  # largest fragment register plus margin
    assert len(set(path)) == len(path)
    for a, b in zip(path[:-1], path[1:]):
        assert g.has_edge(a, b)


def test_longest_chain_lengths():
    g = heavy_hex_coupling_map()
    for n in (12, 54, 102, 107):
        chain = longest_chain(g, n)
        assert len(chain) == n
        for a, b in zip(chain[:-1], chain[1:]):
            assert g.has_edge(a, b)


def test_longest_chain_rejects_oversized_request():
    g = heavy_hex_coupling_map()
    with pytest.raises(ValueError):
        longest_chain(g, 128)


# -- basis translation -------------------------------------------------------------


def test_translate_to_native_gate_set():
    qc = QuantumCircuit(3)
    qc.ry(0.3, 0).rz(0.2, 1).cx(0, 1).h(2).swap(1, 2)
    native = translate_to_native(qc)
    assert set(native.count_ops()) <= set(NATIVE_GATES)
    assert count_native_gates(native)["ecr"] == 1 + 3  # one CX + three for the SWAP


def test_translate_ry_preserves_distribution():
    # RY(theta) on |0> gives P(1) = sin^2(theta/2); check the native decomposition agrees.
    theta = 0.9
    logical = QuantumCircuit(1)
    logical.ry(theta, 0)
    native = translate_to_native(logical)
    p_logical = StatevectorSimulator().probabilities(logical)
    p_native = StatevectorSimulator().probabilities(native)
    assert np.allclose(p_logical, p_native, atol=1e-9)


def test_translate_cx_gate_budget():
    # Every CX becomes exactly one ECR plus single-qubit dressing (the dressing
    # is a local-frame choice; only the two-qubit budget matters for resources).
    logical = QuantumCircuit(2)
    logical.ry(1.1, 0).cx(0, 1)
    native = translate_to_native(logical)
    counts = native.count_ops()
    assert counts["ecr"] == 1
    assert native.two_qubit_gate_count() == 1


def test_non_native_counts_rejected():
    qc = QuantumCircuit(2)
    qc.append("cz", (0, 1))
    translate_to_native(qc)  # cz has a native decomposition...
    with pytest.raises(TranspilerError):
        count_native_gates(qc)  # ...but is not itself a native gate


# -- routing and margin strategy ------------------------------------------------------


def test_routing_no_defects_no_swaps():
    router = LinearChainRouter()
    result = router.route(102, margin=5)
    assert result.swap_count == 0
    assert len(result.physical_chain) == 102
    assert result.used_margin == 5


def test_margin_strategy_reduces_swaps_with_defects():
    router = LinearChainRouter()
    chain = router.route(30, margin=10).physical_chain
    defects = (chain[5], chain[12])
    with_margin = router.route(30, margin=10, defective_qubits=defects)
    without_margin = router.route(30, margin=0, defective_qubits=defects)
    assert with_margin.swap_count <= without_margin.swap_count
    # With margin available the defective qubits are routed around entirely.
    assert set(defects).isdisjoint(with_margin.physical_chain) or with_margin.swap_count <= 2


def test_routing_rejects_invalid_requests():
    router = LinearChainRouter()
    with pytest.raises(TranspilerError):
        router.route(0)
    with pytest.raises(TranspilerError):
        router.route(130)


# -- transpiler ------------------------------------------------------------------------


@pytest.mark.parametrize("num_qubits", [12, 23, 38, 46, 54, 63, 72, 82, 92, 102])
def test_transpiled_depth_matches_paper_relation(num_qubits):
    ansatz = EfficientSU2(num_qubits, reps=1)
    transpiled = Transpiler().transpile(ansatz.circuit)
    assert transpiled.reported_depth == 4 * num_qubits + 5


def test_transpiled_native_counts_and_two_qubit_rate():
    ansatz = EfficientSU2(10, reps=1)
    transpiled = Transpiler().transpile(ansatz.circuit)
    assert transpiled.native_gate_counts["ecr"] == 9
    assert transpiled.two_qubit_gates_per_qubit == pytest.approx(2 * 9 / 10)


# -- timing and cost ---------------------------------------------------------------------


def test_execution_time_gradient_with_depth():
    model = ExecutionTimeModel()
    small = model.estimate("3eax", 12, 53)
    large = model.estimate("3d7z", 102, 413)
    assert large.qpu_seconds > small.qpu_seconds
    assert small.total_seconds > 0


def test_execution_time_deterministic_per_pdb_id():
    model = ExecutionTimeModel()
    a = model.estimate("4y79", 54, 221)
    b = model.estimate("4y79", 54, 221)
    assert a.total_seconds == b.total_seconds


def test_execution_settings_shot_scaling():
    settings = ExecutionSettings(base_shots=1000, shots_per_qubit=10)
    assert settings.optimisation_shots(50) == 1500


def test_dataset_scale_claims_hold_with_paper_settings():
    """With the paper's workload, total QPU time exceeds 60 h and cost exceeds 1M USD."""
    from repro.dataset.fragments import PAPER_FRAGMENTS

    timing = ExecutionTimeModel()
    cost = CostModel()
    estimates = [
        timing.estimate(f.pdb_id, f.paper.qubits, f.paper.depth) for f in PAPER_FRAGMENTS
    ]
    total_qpu_hours = sum(e.qpu_seconds for e in estimates) / 3600.0
    total_cost = cost.dataset_cost(estimates).total_usd
    assert total_qpu_hours > 60.0
    assert total_cost > 1_000_000.0


def test_cost_model_rejects_negative_rates():
    with pytest.raises(ValueError):
        CostModel(usd_per_qpu_second=-1.0)


# -- emulator backend -----------------------------------------------------------------------


def test_eagle_emulator_runs_and_records_jobs():
    backend = EagleEmulatorBackend(ancilla_margin=5, noise_enabled=True)
    ansatz = EfficientSU2(12, reps=1)
    rng = np.random.default_rng(0)
    counts = backend.run(ansatz.bound(rng.normal(size=ansatz.num_parameters)), 128, rng)
    assert sum(counts.values()) == 128
    assert backend.total_shots() == 128
    record = backend.job_records[0]
    assert record.reported_depth == 4 * 12 + 5
    assert record.noisy


def test_eagle_emulator_noiseless_matches_mps_statistics():
    device = EagleDevice()
    noisy = EagleEmulatorBackend(device=device, noise_enabled=True)
    clean = EagleEmulatorBackend(device=device, noise_enabled=False)
    ansatz = EfficientSU2(8, reps=1)
    params = np.zeros(ansatz.num_parameters)
    clean_counts = clean.run(ansatz.bound(params), 256, np.random.default_rng(1))
    # Without noise the all-zero parameter circuit yields only the all-zero string.
    assert set(clean_counts) == {"0" * 8}
    noisy_counts = noisy.run(ansatz.bound(params), 256, np.random.default_rng(1))
    assert len(noisy_counts) >= 1


# -- transpilation cache ------------------------------------------------------------------


def test_transpiler_caches_repeated_structures():
    transpiler = Transpiler()
    a, b = EfficientSU2(6, reps=1), EfficientSU2(6, reps=1)
    first = transpiler.transpile(a.circuit)
    second = transpiler.transpile(b.circuit)
    info = transpiler.cache_info()
    assert info["entries"] == 1
    assert info["misses"] == 1 and info["hits"] == 1
    # The hit carries the caller's own circuit but identical resource numbers.
    assert second.logical_circuit is b.circuit
    assert second.reported_depth == first.reported_depth
    assert second.native_gate_counts == first.native_gate_counts
    assert second.routing == first.routing


def test_transpiler_cache_keys_cover_margin_defects_and_bindings():
    transpiler = Transpiler()
    ansatz = EfficientSU2(5, reps=1)
    transpiler.transpile(ansatz.circuit)
    transpiler.transpile(ansatz.circuit, margin=9)
    chain = transpiler.router.route(5, margin=5).physical_chain
    transpiler.transpile(ansatz.circuit, defective_qubits=(chain[1],))
    values = np.full(ansatz.num_parameters, 0.25)
    transpiler.transpile(ansatz.bound(values))
    transpiler.transpile(ansatz.bound(values * 2))
    assert transpiler.cache_info() == {
        "entries": 5, "hits": 0, "misses": 5, "max_entries": 128,
    }


def test_transpiler_cache_disabled():
    transpiler = Transpiler(cache_size=0)
    circuit = EfficientSU2(4, reps=1).circuit
    transpiler.transpile(circuit)
    transpiler.transpile(circuit)
    assert transpiler.cache_info() == {"entries": 0, "hits": 0, "misses": 0, "max_entries": 0}
