"""Tests for the tetrahedral lattice, encoding, Hamiltonian, decoder and solvers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dataset.fragments import PAPER_FRAGMENTS
from repro.exceptions import EncodingError, HamiltonianError, LatticeError
from repro.lattice.classical import ClassicalFoldingSolver
from repro.lattice.decoder import ConformationDecoder
from repro.lattice.encoding import (
    FragmentEncoding,
    circuit_depth_for_qubits,
    qubit_count_for_length,
)
from repro.lattice.hamiltonian import HamiltonianWeights, LatticeHamiltonian, encoding_offset
from repro.lattice.reconstruction import reconstruct_structure
from repro.lattice.tetrahedral import (
    CA_VIRTUAL_BOND,
    backtracking_count,
    contact_pairs,
    is_self_avoiding,
    overlap_count,
    random_self_avoiding_turns,
    turns_to_coords,
)

turn_lists = st.lists(st.integers(0, 3), min_size=2, max_size=13)


# -- lattice geometry ------------------------------------------------------------


@given(turn_lists)
@settings(max_examples=50, deadline=None)
def test_turns_to_coords_bond_lengths(turns):
    coords = turns_to_coords(turns)
    steps = np.diff(coords, axis=0)
    lengths = np.linalg.norm(steps, axis=1)
    assert np.allclose(lengths, CA_VIRTUAL_BOND, atol=1e-9)


@given(turn_lists)
@settings(max_examples=50, deadline=None)
def test_tetrahedral_bond_angle(turns):
    coords = turns_to_coords(turns)
    if coords.shape[0] < 3:
        return
    v1 = coords[1:-1] - coords[:-2]
    v2 = coords[2:] - coords[1:-1]
    cos = np.einsum("ij,ij->i", v1, v2) / (CA_VIRTUAL_BOND**2)
    # On the diamond lattice consecutive steps either reverse (cos = -1,
    # backtracking) or form the tetrahedral angle (cos = +1/3).
    assert np.all((np.abs(cos - 1.0 / 3.0) < 1e-9) | (np.abs(cos + 1.0) < 1e-9))


def test_backtracking_detection():
    assert backtracking_count([0, 0, 1]) == 1
    assert backtracking_count([0, 1, 2, 3]) == 0
    coords = turns_to_coords([0, 0])
    assert overlap_count(coords) == 1
    assert not is_self_avoiding(coords)


def test_contact_pairs_chain_separation():
    turns = [0, 1, 0, 1, 0, 1]
    for i, j in contact_pairs(turns_to_coords(turns)):
        assert j - i >= 3


def test_invalid_turns_raise():
    with pytest.raises(LatticeError):
        turns_to_coords([0, 5])
    with pytest.raises(LatticeError):
        turns_to_coords([])


def test_random_self_avoiding_turns():
    rng = np.random.default_rng(3)
    turns = random_self_avoiding_turns(10, rng)
    assert is_self_avoiding(turns_to_coords(turns))


# -- encoding / resource model ----------------------------------------------------


def test_qubit_table_matches_paper_for_all_55_fragments():
    for fragment in PAPER_FRAGMENTS:
        enc = FragmentEncoding.for_sequence(fragment.sequence)
        assert enc.total_qubits == fragment.paper.qubits, fragment.pdb_id
        assert enc.circuit_depth == fragment.paper.depth, fragment.pdb_id


def test_depth_formula():
    for q in (12, 23, 38, 46, 54, 63, 72, 82, 92, 102):
        assert circuit_depth_for_qubits(q) == 4 * q + 5


def test_qubit_count_monotone_in_length():
    counts = [qubit_count_for_length(n) for n in range(5, 20)]
    assert counts == sorted(counts)


def test_encoding_roundtrip_bits_turns():
    enc = FragmentEncoding.for_sequence("EDACQGDSGG")
    turns = [0, 1, 2, 3, 0, 1, 2, 3, 2]
    bits = enc.bits_from_turns(turns)
    assert enc.turns_from_bits(bits) == turns


def test_encoding_rejects_short_bitstrings():
    enc = FragmentEncoding.for_sequence("RYRDV")
    with pytest.raises(EncodingError):
        enc.turns_from_bits("0")


def test_encoding_invalid_length():
    with pytest.raises(EncodingError):
        qubit_count_for_length(1)


# -- Hamiltonian --------------------------------------------------------------------


def test_energy_offset_increases_with_qubits():
    assert encoding_offset(102) > encoding_offset(63) > encoding_offset(12) > 0


def test_hamiltonian_penalises_overlap_and_backtracking():
    h = LatticeHamiltonian("ACDEF")
    good = [0, 1, 2, 1]
    bad = [0, 1, 1, 1]
    assert h.energy(bad) > h.energy(good)
    assert h.is_valid(good)
    assert not h.is_valid(bad)


def test_hamiltonian_breakdown_consistency():
    h = LatticeHamiltonian("EDACQGDSGG")
    turns = [0, 1, 2, 3, 0, 1, 2, 3, 2]
    b = h.breakdown(turns)
    assert b.total == pytest.approx(b.physical + b.offset)
    assert b.total == pytest.approx(h.energy(turns))
    assert set(b.as_dict()) >= {"chirality", "geometric", "clash", "interaction", "offset", "total"}


def test_hamiltonian_weights_scale_terms():
    turns = [0, 1, 1, 1]  # has geometric violations
    base = LatticeHamiltonian("ACDEF").breakdown(turns)
    doubled = LatticeHamiltonian("ACDEF", HamiltonianWeights(geometric=2.0)).breakdown(turns)
    assert doubled.geometric == pytest.approx(2.0 * base.geometric)


def test_hamiltonian_wrong_turn_count_raises():
    with pytest.raises(HamiltonianError):
        LatticeHamiltonian("ACDEF").energy([0, 1])


def test_energy_of_bits_matches_energy_of_turns():
    h = LatticeHamiltonian("ACDEFGH")
    turns = [0, 1, 2, 0, 3, 1]
    bits = h.encoding.bits_from_turns(turns)
    assert h.energy_of_bits(bits) == pytest.approx(h.energy(turns))


# -- decoder -----------------------------------------------------------------------


def test_decoder_prefers_valid_low_energy():
    h = LatticeHamiltonian("ACDEF")
    dec = ConformationDecoder(h)
    good_bits = h.encoding.bits_from_turns([0, 1, 2, 1])
    bad_bits = h.encoding.bits_from_turns([0, 1, 1, 1])
    best = dec.decode_counts({bad_bits: 100, good_bits: 1})
    assert best.valid
    assert best.bitstring == good_bits


def test_decoder_empty_counts_raise():
    h = LatticeHamiltonian("ACDEF")
    with pytest.raises(LatticeError):
        ConformationDecoder(h).decode_counts({})


# -- classical solver -----------------------------------------------------------------


def test_exact_solver_finds_valid_ground_state():
    h = LatticeHamiltonian("RYRDV")
    result = ClassicalFoldingSolver(h).solve()
    assert result.exact
    assert h.is_valid(result.turns)
    # No sampled conformation can beat the exhaustive ground state.
    rng = np.random.default_rng(0)
    for _ in range(50):
        turns = [0, 1] + list(rng.integers(0, 4, size=2))
        assert h.energy(turns) >= result.energy - 1e-9


def test_annealing_close_to_exact_on_small_fragment():
    h = LatticeHamiltonian("PWWERYQP")
    solver = ClassicalFoldingSolver(h)
    exact = solver.solve_exact()
    annealed = solver.solve_annealing(seed=1, sweeps=300)
    assert annealed.energy <= exact.energy * 1.02 + 1.0


def test_solver_deterministic():
    h = LatticeHamiltonian("EDACQGDSGG")
    a = ClassicalFoldingSolver(h).solve_annealing(seed=5, sweeps=100)
    b = ClassicalFoldingSolver(h).solve_annealing(seed=5, sweeps=100)
    assert a.turns == b.turns


# -- reconstruction -------------------------------------------------------------------


def test_reconstruct_structure_centres_and_preserves_sequence():
    h = LatticeHamiltonian("RYRDV")
    result = ClassicalFoldingSolver(h).solve()
    structure = reconstruct_structure("RYRDV", result.ca_coords)
    assert structure.sequence == "RYRDV"
    assert np.allclose(structure.all_coords().mean(axis=0), 0.0, atol=1e-9)


def test_reconstruct_jitter_requires_rng():
    from repro.exceptions import StructureError

    with pytest.raises(StructureError):
        reconstruct_structure("RYRDV", turns_to_coords([0, 1, 2, 1]), jitter=0.5)
