"""The fleet-scheduler battery: claim order (priority classes + the age-order
FIFO fix), hash-neutral priority/requirement stamping, capability-tag
matching, speculative straggler re-dispatch (first publisher wins, loser
superseded), and elastic fleet sizing against the respawn cap."""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
from dataclasses import dataclass
from typing import Any, ClassVar

import pytest

from repro.config import PipelineConfig
from repro.engine import (
    DurationTracker,
    Engine,
    FileQueueSpool,
    FileQueueTransport,
    FileQueueWorker,
    capabilities_match,
    desired_fleet_size,
    job_priority,
    job_requirements,
    parse_tags,
    register_executor,
    require_tags,
    set_priority,
)
from repro.engine.core import execute_baseline_job
from repro.engine.scheduler import (
    DEFAULT_PRIORITY,
    PendingTask,
    order_pending,
    speculation_threshold,
)
from repro.exceptions import EngineError

# -- a trivial picklable job kind (mirrors test_transports) --------------------------


@dataclass(frozen=True)
class EchoSpec:
    name: str

    kind: ClassVar[str] = "echo"

    def content_hash(self) -> str:
        return hashlib.sha256(f"echo/v1\x1f{self.name}".encode("utf-8")).hexdigest()


class _FakeOutcome:
    def __init__(self, payload: dict[str, Any]):
        self._payload = payload

    def to_payload(self) -> dict[str, Any]:
        return self._payload


def _fake_execute(spec: EchoSpec) -> _FakeOutcome:
    return _FakeOutcome({"spec_hash": spec.content_hash(), "schema": "echo/v1", "name": spec.name})


register_executor("echo", lambda spec: _fake_execute(spec), overwrite=True)

BASE_CONFIG = PipelineConfig(seed=5)


def _baseline_spec(method: str = "AF2"):
    from repro.engine import BaselineFoldSpec

    return BaselineFoldSpec(pdb_id="3eax", sequence="RYRDV", method=method, config=BASE_CONFIG)


# -- pure policy ---------------------------------------------------------------------


def test_order_pending_sorts_by_priority_then_age_then_id():
    entries = [
        PendingTask("c", priority=0, age=50.0),
        PendingTask("b", priority=5, age=1.0),
        PendingTask("a", priority=0, age=50.0),
        PendingTask("d", priority=0, age=90.0),
    ]
    assert [t.task_id for t in order_pending(entries)] == ["b", "d", "a", "c"]


def test_parse_tags_and_capabilities_match():
    assert parse_tags(None) is None
    assert parse_tags("") is None
    assert parse_tags(" , ") is None
    assert parse_tags("mps, statevector") == {"mps", "statevector"}
    # Untagged workers claim anything; tagged ones need a superset.
    assert capabilities_match({"fold", "mps"}, None)
    assert capabilities_match({"fold"}, {"fold", "dock"})
    assert not capabilities_match({"fold", "mps"}, {"fold"})
    assert capabilities_match(frozenset(), {"anything"})


def test_job_requirements_cover_kind_and_pinned_backend():
    assert job_requirements(EchoSpec("a")) == {"echo"}
    auto = Engine(config=BASE_CONFIG.with_updates(backend="auto")).spec("2bok", "EDACQ")
    assert job_requirements(auto) == {"fold"}  # auto resolves on the worker
    pinned = Engine(config=BASE_CONFIG.with_updates(backend="mps")).spec("2bok", "EDACQ")
    assert job_requirements(pinned) == {"fold", "mps"}
    tagged = require_tags(EchoSpec("b"), "gpu", "licensed")
    assert job_requirements(tagged) == {"echo", "gpu", "licensed"}


def test_priority_and_requirements_are_hash_neutral_and_survive_pickling():
    plain = _baseline_spec()
    stamped = set_priority(require_tags(_baseline_spec(), "mps"), 7)
    assert job_priority(plain) == DEFAULT_PRIORITY
    assert job_priority(stamped) == 7
    # Orchestration metadata must never split the cache or break equality.
    assert stamped.content_hash() == plain.content_hash()
    assert stamped == plain
    clone = pickle.loads(pickle.dumps(stamped))
    assert job_priority(clone) == 7
    assert "mps" in job_requirements(clone)


def test_duration_tracker_and_speculation_threshold():
    tracker = DurationTracker(window=4)
    assert tracker.median() is None
    for junk in (None, "nan?", -1.0):
        tracker.add(junk)
    assert len(tracker) == 0
    for value in (2.0, 4.0, 100.0, 6.0, 8.0):  # window drops the 2.0
        tracker.add(value)
    assert tracker.median() == pytest.approx(7.0)
    assert speculation_threshold(2.0, 10.0) == 20.0
    assert speculation_threshold(2.0, 0.1) == 1.0  # floored
    assert speculation_threshold(None, 10.0) is None
    assert speculation_threshold(0.0, 10.0) is None
    assert speculation_threshold(2.0, None) is None


def test_desired_fleet_size_clamps_to_floor_and_ceiling():
    assert desired_fleet_size(100, minimum=2, maximum=None) == 2  # elastic off
    assert desired_fleet_size(0, minimum=2, maximum=8) == 2
    assert desired_fleet_size(5, minimum=2, maximum=8) == 5
    assert desired_fleet_size(100, minimum=2, maximum=8) == 8
    assert desired_fleet_size(-3, minimum=0, maximum=8) == 0


# -- spool claim order ---------------------------------------------------------------


def test_two_interleaved_batches_drain_by_age_not_batch_prefix(tmp_path):
    """The FIFO fix: task ids start with a random batch id, so name order
    across concurrent batches is arbitrary — a later batch whose prefix
    sorts first must not starve the earlier one."""
    spool = FileQueueSpool(tmp_path / "spool")
    now = time.time()
    # "zzz" (the older batch) sorts lexicographically *after* "aaa" (the
    # newer one); interleave their enqueue times.
    ages = {"zzz-00000-x": 40, "aaa-00000-x": 30, "zzz-00001-x": 20, "aaa-00001-x": 10}
    for task_id, age in ages.items():
        spool.enqueue(task_id, EchoSpec(task_id))
        stamp = now - age
        os.utime(spool.task_path(task_id), (stamp, stamp))
    assert spool.task_ids() == [
        "zzz-00000-x", "aaa-00000-x", "zzz-00001-x", "aaa-00001-x",
    ]


def test_priority_classes_claim_before_age_under_contention(tmp_path):
    spool = FileQueueSpool(tmp_path / "spool")
    now = time.time()
    for task_id, priority, age in [("low-old", 0, 40), ("high-new", 5, 10), ("mid", 2, 20)]:
        spool.enqueue(task_id, EchoSpec(task_id), priority=priority)
        stamp = now - age
        os.utime(spool.task_path(task_id), (stamp, stamp))
    ran: list[str] = []

    def recording(spec: EchoSpec) -> _FakeOutcome:
        ran.append(spec.name)
        return _fake_execute(spec)

    worker = FileQueueWorker(spool, worker_id="w", execute=recording)
    while worker.run_once():
        pass
    assert ran == ["high-new", "mid", "low-old"]


def test_headerless_task_files_still_load_and_schedule(tmp_path):
    """Back-compat: pre-scheduler spools (and hand-written fixtures) carry no
    scheduling header — they claim at default priority, unrestricted."""
    spool = FileQueueSpool(tmp_path / "spool")
    spool._atomic_write(
        spool.task_path("old-task"),
        pickle.dumps({"task_id": "old-task", "spec": EchoSpec("old")}),
    )
    [task] = spool.pending()
    assert task.priority == DEFAULT_PRIORITY and task.requires == frozenset()
    worker = FileQueueWorker(spool, worker_id="w", execute=_fake_execute)
    assert worker.run_once() == "old-task"
    assert spool.read_result("old-task")["status"] == "completed"


# -- capability tags -----------------------------------------------------------------


def test_tagged_worker_skips_tasks_it_cannot_serve_without_poisoning(tmp_path):
    spool = FileQueueSpool(tmp_path / "spool")
    spec = require_tags(EchoSpec("needs-mps"), "mps")
    spool.enqueue("t-00000-x", spec, requires=job_requirements(spec))
    limited = FileQueueWorker(spool, worker_id="limited", tags={"echo"}, execute=_fake_execute)
    assert limited.run_once() is None
    assert limited.skipped == 1 and limited.executed == 0
    # Skipped means *untouched*: still claimable, no claim, no poison result.
    assert spool.task_ids() == ["t-00000-x"]
    assert spool.claim_ids() == []
    assert spool.read_result("t-00000-x") is None
    capable = FileQueueWorker(
        spool, worker_id="capable", tags={"echo", "mps"}, execute=_fake_execute
    )
    assert capable.run_once() == "t-00000-x"
    record = spool.read_result("t-00000-x")
    assert record["status"] == "completed" and record["worker_id"] == "capable"


# -- exclusive publication and speculation -------------------------------------------


def test_publish_result_first_publisher_wins(tmp_path):
    spool = FileQueueSpool(tmp_path / "spool")
    assert spool.publish_result("t1", {"status": "completed", "winner": 1}) is True
    assert spool.publish_result("t1", {"status": "completed", "winner": 2}) is False
    assert spool.read_result("t1")["winner"] == 1
    # No temp-file litter either way.
    assert [p.name for p in spool.results_dir.iterdir()] == ["t1.json"]


def test_losing_publisher_logs_superseded_not_completed(tmp_path):
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("twin-task", EchoSpec("twin"))
    worker = FileQueueWorker(spool, worker_id="loser", execute=_fake_execute)
    claim = spool.claim("twin-task", owner="loser")
    # The speculative twin resolves the task while this worker executes.
    assert spool.publish_result(
        "twin-task",
        {"task_id": "twin-task", "worker_id": "winner", "status": "completed", "payload": {}},
    )
    worker._process("twin-task", claim)
    assert worker.superseded == 1 and worker.executed == 0 and worker.failed == 0
    records = [
        json.loads(line)
        for line in (spool.log_dir / "loser.jsonl").read_text().splitlines()
    ]
    assert [r["status"] for r in records] == ["superseded"]
    assert spool.read_result("twin-task")["worker_id"] == "winner"


def test_straggler_redispatch_publishes_exactly_one_result(tmp_path):
    transport = FileQueueTransport(
        tmp_path / "spool", workers=0, speculate=2.0, lease_timeout=300.0
    )
    spec = _baseline_spec()
    transport.submit([spec])
    [task_id] = transport._outstanding
    spool = transport.spool
    assert spool.claim(task_id, owner="slowpoke") is not None
    # The fleet knows how long jobs take; this claim is far past 2× median.
    for _ in range(3):
        transport.durations.add(0.05)
    stamp = time.time() - 60
    os.utime(spool.owner_path(task_id), (stamp, stamp))
    transport._speculate_stragglers()
    assert transport.speculated == 1
    assert spool.task_path(task_id).exists()  # the shadow copy, same id
    transport._speculate_stragglers()
    assert transport.speculated == 1  # twins, never triplets
    # A healthy worker claims the shadow and wins the publish race ...
    fast = FileQueueWorker(spool, worker_id="fast", execute=execute_baseline_job)
    assert fast.run_once() == task_id
    assert fast.executed == 1
    # ... so when the straggler finally finishes, its publication is refused.
    loser = {"task_id": task_id, "worker_id": "slowpoke", "status": "completed", "payload": {}}
    assert spool.publish_result(task_id, loser) is False
    assert spool.read_result(task_id)["worker_id"] == "fast"
    [(index, outcome, exc)] = transport.poll(timeout=5.0)
    assert index == 0 and exc is None
    assert transport.stats()["speculated"] == 1
    transport.cancel()


def test_harvest_withdraws_an_unclaimed_shadow_when_the_straggler_finishes(tmp_path):
    transport = FileQueueTransport(
        tmp_path / "spool", workers=0, speculate=2.0, lease_timeout=300.0
    )
    transport.submit([_baseline_spec()])
    [task_id] = transport._outstanding
    spool = transport.spool
    claim = spool.claim(task_id, owner="slowpoke")
    for _ in range(3):
        transport.durations.add(0.05)
    stamp = time.time() - 60
    os.utime(spool.owner_path(task_id), (stamp, stamp))
    transport._speculate_stragglers()
    assert spool.task_path(task_id).exists()
    # The straggler finishes before anyone claims the shadow.
    worker = FileQueueWorker(spool, worker_id="slowpoke", execute=execute_baseline_job)
    worker._process(task_id, claim)
    assert worker.executed == 1
    [(_, _, exc)] = transport.poll(timeout=5.0)
    assert exc is None
    assert not spool.task_path(task_id).exists()  # shadow withdrawn at harvest
    transport.cancel()


def test_result_records_carry_durations_that_arm_the_tracker(tmp_path):
    """Regression: durations must travel on the *result* record, not just the
    worker's log — the submitting transport only reads results, so without
    them its rolling median never arms and straggler re-dispatch silently
    never fires (CI's heterogeneous fleet caught this)."""
    from repro.engine import BaselineFoldSpec

    transport = FileQueueTransport(tmp_path / "spool", workers=0, speculate=2.0)
    transport.submit(
        [
            BaselineFoldSpec(pdb_id=p, sequence="RYRDV", method="AF2", config=BASE_CONFIG)
            for p in ("3eax", "3ckz", "4mo4")
        ]
    )
    worker = FileQueueWorker(
        transport.spool, worker_id="w", execute=execute_baseline_job
    )
    while worker.run_once():
        pass
    for task_id in list(transport._outstanding):
        record = transport.spool.read_result(task_id)
        assert isinstance(record["duration_s"], float)
    completions = transport.poll(timeout=5.0)
    assert len(completions) == 3 and not any(exc for _, _, exc in completions)
    assert len(transport.durations) == 3  # armed: MIN_SPECULATION_SAMPLES reached
    assert transport.durations.median() >= 0.0
    transport.cancel()


# -- elastic fleet sizing ------------------------------------------------------------


class _FakeProc:
    def __init__(self):
        self.returncode = None

    def poll(self):
        return self.returncode


def test_elastic_fleet_grows_retires_and_respects_the_respawn_cap(tmp_path):
    transport = FileQueueTransport(
        tmp_path / "spool", workers=0, max_workers=2, respawn_limit=2
    )
    spawned: list[tuple[_FakeProc, float | None]] = []

    def fake_spawn(idle_exit: float | None = None) -> None:
        proc = _FakeProc()
        spawned.append((proc, idle_exit))
        transport.workers.append(proc)

    transport._spawn_worker = fake_spawn
    transport.submit([EchoSpec("a"), EchoSpec("b"), EchoSpec("c")])
    # Growth: one extra per pass, up to the ceiling, with an idle-exit.
    transport._tend_fleet()
    assert len(transport.workers) == 1 and transport.elastic_spawned == 1
    assert spawned[0][1] is not None
    transport._tend_fleet()
    assert len(transport.workers) == 2 and transport.elastic_spawned == 2
    transport._tend_fleet()
    assert len(transport.workers) == 2  # pinned at max_workers
    # The queue drains; a surplus extra exits cleanly -> retired, not charged.
    for task_id in list(transport._outstanding):
        transport.spool.remove_task(task_id)
    transport.workers[0].returncode = 0
    transport._tend_fleet()
    assert transport.retired == 1 and transport.respawned == 0
    assert len(transport.workers) == 1
    # A crash (nonzero exit) still burns the respawn budget ...
    transport.workers[0].returncode = 1
    transport._tend_fleet()
    assert transport.respawned == 1
    transport.workers[0].returncode = 1
    transport._tend_fleet()
    assert transport.respawned == 2
    # ... and exhausting it raises, exactly like the pre-elastic fleet.
    transport.workers[0].returncode = 1
    with pytest.raises(EngineError, match="died"):
        transport._tend_fleet()
    stats = transport.stats()
    assert stats["retired"] == 1 and stats["elastic_spawned"] == 2


def test_external_fleet_without_elastic_ceiling_is_left_alone(tmp_path):
    transport = FileQueueTransport(tmp_path / "spool", workers=0)  # max_workers=None
    transport.submit([EchoSpec("a"), EchoSpec("b")])
    transport._tend_fleet()
    assert transport.workers == [] and transport.elastic_spawned == 0


# -- transport stats surface through the session -------------------------------------


def test_session_summary_carries_transport_stats(tmp_path):
    config = BASE_CONFIG.with_updates(
        transport="filequeue",
        spool_dir=str(tmp_path / "spool"),
        transport_workers=1,
        transport_lease_timeout=10.0,
        transport_poll_interval=0.02,
    )
    engine = Engine(config=config, cache=None)
    session = engine.submit([_baseline_spec("AF2"), _baseline_spec("AF3")], priority=3)
    results = session.results()
    assert len(results) == 2
    stats = session.summary()["transport"]
    assert stats["outstanding"] == 0
    assert stats["speculated"] == 0  # speculation off by default
    assert {"reclaimed", "respawned", "elastic_spawned", "retired"} <= set(stats)
