"""Tests for the shared utilities: RNG derivation, parallel execution, JSON I/O, config."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.config import PipelineConfig
from repro.utils.io import read_json, write_json
from repro.utils.parallel import ParallelExecutor, chunked, parallel_map
from repro.utils.rng import child_seed, rng_for, spawn_rngs, stable_fraction
from repro.utils.validation import as_points, require_in_range, require_positive


# -- rng ------------------------------------------------------------------------


def test_child_seed_deterministic_and_distinct():
    assert child_seed(1, "a") == child_seed(1, "a")
    assert child_seed(1, "a") != child_seed(1, "b")
    assert child_seed(1, "a") != child_seed(2, "a")


@given(st.integers(0, 2**31), st.text(max_size=10))
def test_child_seed_in_64_bit_range(seed, key):
    value = child_seed(seed, key)
    assert 0 <= value < 2**64


def test_rng_for_reproducible_streams():
    a = rng_for(5, "task", 1).random(4)
    b = rng_for(5, "task", 1).random(4)
    assert np.allclose(a, b)


def test_spawn_rngs_independent():
    rngs = spawn_rngs(0, 3)
    values = [r.random() for r in rngs]
    assert len(set(values)) == 3


def test_stable_fraction_bounds():
    for key in ("a", "b", "exec-queue", 123):
        f = stable_fraction(key)
        assert 0.0 <= f < 1.0
        assert f == stable_fraction(key)


# -- parallel -------------------------------------------------------------------------


def _square(x):
    return x * x


def test_parallel_map_serial_and_pool_agree():
    items = list(range(20))
    serial = parallel_map(_square, items, processes=0)
    pooled = parallel_map(_square, items, processes=2)
    assert serial == pooled == [x * x for x in items]


def test_chunked():
    assert list(chunked(list(range(7)), 3)) == [[0, 1, 2], [3, 4, 5], [6]]
    with pytest.raises(ValueError):
        list(chunked([1], 0))


def test_executor_starmap():
    ex = ParallelExecutor(processes=0)
    assert ex.is_serial
    assert ex.starmap(pow, [(2, 3), (3, 2)]) == [8, 9]


# -- io ----------------------------------------------------------------------------------


def test_json_roundtrip_with_numpy(tmp_path):
    data = {"array": np.arange(3), "value": np.float64(1.5), "flag": np.bool_(True)}
    path = write_json(tmp_path / "sub" / "data.json", data)
    loaded = read_json(path)
    assert loaded == {"array": [0, 1, 2], "value": 1.5, "flag": True}


# -- validation ----------------------------------------------------------------------------


def test_validation_helpers():
    assert require_positive("x", 2.0) == 2.0
    with pytest.raises(ValueError):
        require_positive("x", 0.0)
    with pytest.raises(ValueError):
        require_in_range("y", 5.0, 0.0, 1.0)
    with pytest.raises(ValueError):
        as_points([[1.0, 2.0]])
    with pytest.raises(ValueError):
        as_points([[np.inf, 0.0, 0.0]])


# -- config ---------------------------------------------------------------------------------


def test_config_presets_and_updates():
    paper = PipelineConfig.paper()
    fast = PipelineConfig.fast()
    assert paper.final_shots == 100_000
    assert paper.vqe_iterations > fast.vqe_iterations
    updated = fast.with_updates(docking_seeds=9)
    assert updated.docking_seeds == 9
    assert fast.docking_seeds != 9  # original untouched (frozen dataclass)
