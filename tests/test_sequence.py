"""Unit and property tests for ProteinSequence."""

import pytest
from hypothesis import given, strategies as st

from repro.bio.amino_acids import AA_ORDER
from repro.bio.sequence import ProteinSequence
from repro.exceptions import SequenceError

sequences = st.text(alphabet=list(AA_ORDER), min_size=1, max_size=20)


def test_basic_properties():
    seq = ProteinSequence("RYRDV")
    assert len(seq) == 5
    assert str(seq) == "RYRDV"
    assert seq[0] == "R"
    assert seq.three_letter[0] == "ARG"
    assert seq.net_charge == 1  # R(+1) Y(0) R(+1) D(-1) V(0)


def test_lowercase_normalised():
    assert str(ProteinSequence("ryrdv")) == "RYRDV"


def test_invalid_sequence_raises():
    with pytest.raises(SequenceError):
        ProteinSequence("")
    with pytest.raises(SequenceError):
        ProteinSequence("AXZ")


def test_pair_types_count():
    seq = ProteinSequence("ACD")
    assert sorted(seq.pair_types()) == [("A", "C"), ("A", "D"), ("C", "D")]


@given(sequences)
def test_composition_sums_to_length(s):
    seq = ProteinSequence(s)
    assert sum(seq.composition().values()) == len(seq)


@given(sequences)
def test_pair_types_length(s):
    seq = ProteinSequence(s)
    n = len(seq)
    assert len(seq.pair_types()) == n * (n - 1) // 2


@given(sequences)
def test_mass_positive_and_monotone(s):
    seq = ProteinSequence(s)
    assert seq.mass > 18.0
    assert seq.mass > len(seq) * 50.0


@given(sequences)
def test_fraction_bounds(s):
    seq = ProteinSequence(s)
    assert 0.0 <= seq.hydrophobic_fraction() <= 1.0
    assert 0.0 <= seq.polar_fraction() <= 1.0
