"""Tests for the typed job family: baseline folds and docking as engine jobs,
cross-kind hashing, LRU cache bounds, and the warm-cache batch guarantee."""

from __future__ import annotations

import hashlib
import random
import time

import numpy as np
import pytest

from repro.bio.reference import ReferenceStructureGenerator
from repro.config import PipelineConfig
from repro.dataset.batch import BatchProcessor
from repro.dataset.builder import DatasetBuilder
from repro.docking.ligand import SyntheticLigandGenerator
from repro.docking.vina import dock_structure
from repro.engine import (
    BaselineFoldSpec,
    DockSpec,
    Engine,
    JobSpec,
    ResultCache,
    executor_kinds,
)
from repro.exceptions import EngineError
from repro.folding.baselines import AF2LikePredictor, baseline_fold_fragment


@pytest.fixture(scope="module")
def job_config() -> PipelineConfig:
    """A minimal configuration keeping fold and dock jobs cheap."""
    return PipelineConfig(
        vqe_iterations=6,
        optimisation_shots=32,
        final_shots=64,
        ansatz_reps=1,
        docking_seeds=2,
        docking_poses=3,
        docking_mc_steps=30,
        seed=11,
    )


@pytest.fixture(scope="module")
def dock_inputs(job_config):
    """A (reference, ligand) pair for docking-job tests."""
    reference = ReferenceStructureGenerator(master_seed=job_config.seed).generate("3eax", "RYRDV")
    ligand = SyntheticLigandGenerator(master_seed=job_config.seed).generate(reference)
    return reference, ligand


def _dock_spec(job_config, dock_inputs, config=None, receptor_id="3eax:QDock") -> DockSpec:
    reference, ligand = dock_inputs
    return DockSpec(
        pdb_id="3eax",
        receptor_id=receptor_id,
        receptor=reference.structure,
        ligand=ligand,
        config=config or job_config,
    )


# -- executor registry ---------------------------------------------------------------


def test_all_builtin_kinds_have_executors():
    assert {"fold", "baseline_fold", "dock"} <= set(executor_kinds())


def test_unknown_baseline_method_raises(job_config):
    with pytest.raises(EngineError):
        baseline_fold_fragment("AF9", "3eax", "RYRDV", config=job_config)


# -- cross-kind hashing --------------------------------------------------------------


def test_cross_kind_hashes_do_not_collide(job_config, dock_inputs):
    fold = JobSpec(pdb_id="3eax", sequence="RYRDV", config=job_config)
    af2 = BaselineFoldSpec(pdb_id="3eax", sequence="RYRDV", method="AF2", config=job_config)
    af3 = BaselineFoldSpec(pdb_id="3eax", sequence="RYRDV", method="AF3", config=job_config)
    dock = _dock_spec(job_config, dock_inputs)
    hashes = [spec.content_hash() for spec in (fold, af2, af3, dock)]
    assert len(set(hashes)) == 4


def test_baseline_hash_covers_baseline_knobs_only(job_config):
    base = BaselineFoldSpec(pdb_id="3eax", sequence="RYRDV", method="AF2", config=job_config)
    # VQE and docking knobs must not invalidate cached baseline folds ...
    for irrelevant in (
        job_config.with_updates(vqe_iterations=99),
        job_config.with_updates(docking_seeds=99),
        job_config.with_updates(engine_workers=8),
    ):
        assert (
            BaselineFoldSpec("3eax", "RYRDV", method="AF2", config=irrelevant).content_hash()
            == base.content_hash()
        )
    # ... while the master seed and identity must.
    assert (
        BaselineFoldSpec("3eax", "RYRDV", method="AF2", config=job_config.with_updates(seed=12)).content_hash()
        != base.content_hash()
    )
    assert (
        BaselineFoldSpec("3ckz", "RYRDV", method="AF2", config=job_config).content_hash()
        != base.content_hash()
    )


def test_dock_hash_covers_dock_knobs_and_inputs(job_config, dock_inputs):
    base = _dock_spec(job_config, dock_inputs)
    # VQE knobs must not invalidate cached docking searches ...
    for irrelevant in (
        job_config.with_updates(vqe_iterations=99),
        job_config.with_updates(final_shots=9999),
        job_config.with_updates(cache_dir="/somewhere/else"),
    ):
        assert _dock_spec(job_config, dock_inputs, config=irrelevant).content_hash() == base.content_hash()
    # ... while the docking protocol, receptor identity and receptor content must.
    for relevant in (
        job_config.with_updates(docking_seeds=3),
        job_config.with_updates(docking_mc_steps=31),
        job_config.with_updates(seed=12),
    ):
        assert _dock_spec(job_config, dock_inputs, config=relevant).content_hash() != base.content_hash()
    assert (
        _dock_spec(job_config, dock_inputs, receptor_id="3eax:AF2").content_hash()
        != base.content_hash()
    )
    reference, ligand = dock_inputs
    moved = reference.structure.copy()
    moved.atoms[0].coords[0] += 0.5
    other = DockSpec(
        pdb_id="3eax", receptor_id="3eax:QDock", receptor=moved, ligand=ligand, config=job_config
    )
    assert other.content_hash() != base.content_hash()


# -- property-based hashing (seeded random spec generators, no new deps) -------------
#
# Each property sweeps ~25 seeded-random specs: content hashes must be stable
# under any construction order, must differ across kinds on identical
# payloads, and must ignore every session/transport-only orchestration knob.

_AMINO = "ACDEFGHIKLMNPQRSTVWY"

#: The config fields that are pure orchestration: mutating any of them (to an
#: arbitrary valid value) must leave every job hash unchanged.
_ORCHESTRATION_MUTATIONS = {
    "engine_workers": lambda rng: rng.randrange(0, 16),
    "cache_dir": lambda rng: f"/cache/{rng.randrange(1 << 30):x}",
    "cache_max_bytes": lambda rng: rng.choice([None, rng.randrange(1, 1 << 20)]),
    "cache_eviction": lambda rng: rng.choice(["lru", "fifo"]),
    "session_dir": lambda rng: f"/sessions/{rng.randrange(1 << 30):x}",
    "on_error": lambda rng: rng.choice(["isolate", "raise"]),
    "transport": lambda rng: rng.choice(["auto", "serial", "pool", "filequeue"]),
    "spool_dir": lambda rng: f"/spool/{rng.randrange(1 << 30):x}",
    "transport_workers": lambda rng: rng.choice([None, rng.randrange(0, 8)]),
    "transport_lease_timeout": lambda rng: rng.uniform(0.1, 120.0),
    "transport_poll_interval": lambda rng: rng.uniform(0.005, 1.0),
}


def _random_identity(rng: random.Random) -> tuple[str, str]:
    pdb_id = "".join(rng.choices("0123456789abcdefghijklmnopqrstuvwxyz", k=4))
    sequence = "".join(rng.choices(_AMINO, k=rng.randrange(3, 9)))
    return pdb_id, sequence


def _random_config_fields(rng: random.Random) -> dict:
    return {
        "vqe_iterations": rng.randrange(1, 300),
        "optimisation_shots": rng.randrange(16, 4096),
        "final_shots": rng.randrange(64, 100_000),
        "docking_seeds": rng.randrange(1, 20),
        "docking_mc_steps": rng.randrange(10, 2000),
        "seed": rng.randrange(1, 1 << 31),
        "extra": {f"k{j}": rng.randrange(100) for j in range(rng.randrange(0, 4))},
    }


def _specs_for(config: PipelineConfig, pdb_id: str, sequence: str) -> list:
    return [
        JobSpec(pdb_id=pdb_id, sequence=sequence, config=config),
        BaselineFoldSpec(pdb_id=pdb_id, sequence=sequence, method="AF2", config=config),
        BaselineFoldSpec(pdb_id=pdb_id, sequence=sequence, method="AF3", config=config),
    ]


def test_property_hashes_are_stable_across_field_insertion_order():
    """The same logical config, assembled in any order (one-shot kwargs vs.
    field-by-field with_updates, extra dict in reversed insertion order),
    hashes every kind of spec identically."""
    for seed in range(25):
        rng = random.Random(seed)
        pdb_id, sequence = _random_identity(rng)
        fields = _random_config_fields(rng)

        one_shot = PipelineConfig(**fields)
        rebuilt = PipelineConfig()
        items = list(fields.items())
        rng.shuffle(items)
        for name, value in items:
            if name == "extra":
                value = dict(reversed(list(value.items())))
            rebuilt = rebuilt.with_updates(**{name: value})

        for a, b in zip(_specs_for(one_shot, pdb_id, sequence),
                        _specs_for(rebuilt, pdb_id, sequence)):
            assert a.content_hash() == b.content_hash(), f"seed {seed}"


def test_property_hashes_differ_across_kinds_on_identical_payloads():
    """One identity + one config, hashed as every kind: the schema version
    leads each hash, so kinds can never collide (and all specs in the pool
    are pairwise distinct)."""
    pool: set[str] = set()
    for seed in range(25):
        rng = random.Random(1000 + seed)
        pdb_id, sequence = _random_identity(rng)
        config = PipelineConfig(**_random_config_fields(rng))
        hashes = [spec.content_hash() for spec in _specs_for(config, pdb_id, sequence)]
        assert len(set(hashes)) == len(hashes), f"seed {seed}: kinds collided"
        pool.update(hashes)
    assert len(pool) == 25 * 3  # no accidental collisions across the sweep


def test_property_hashes_ignore_session_and_transport_knobs(dock_inputs):
    """Random mutations of every orchestration-only knob leave every kind's
    hash unchanged, while touching the master seed changes them all."""
    reference, ligand = dock_inputs
    for seed in range(25):
        rng = random.Random(2000 + seed)
        pdb_id, sequence = _random_identity(rng)
        config = PipelineConfig(**_random_config_fields(rng))
        mutated = config
        for name in rng.sample(list(_ORCHESTRATION_MUTATIONS),
                               k=rng.randrange(1, len(_ORCHESTRATION_MUTATIONS) + 1)):
            mutated = mutated.with_updates(**{name: _ORCHESTRATION_MUTATIONS[name](rng)})

        base_specs = _specs_for(config, pdb_id, sequence) + [
            DockSpec(pdb_id=pdb_id, receptor_id="r", receptor=reference.structure,
                     ligand=ligand, config=config),
        ]
        tweaked_specs = _specs_for(mutated, pdb_id, sequence) + [
            DockSpec(pdb_id=pdb_id, receptor_id="r", receptor=reference.structure,
                     ligand=ligand, config=mutated),
        ]
        for a, b in zip(base_specs, tweaked_specs):
            assert a.content_hash() == b.content_hash(), f"seed {seed}"

        reseeded = mutated.with_updates(seed=config.seed + 1)
        for a, b in zip(base_specs, _specs_for(reseeded, pdb_id, sequence)):
            assert a.content_hash() != b.content_hash(), f"seed {seed}"


# -- baseline jobs through the engine ------------------------------------------------


def test_baseline_job_cache_hit_miss_roundtrip(tmp_path, job_config):
    engine = Engine(config=job_config, cache=tmp_path / "cache")
    spec = engine.baseline_spec("3eax", "RYRDV", method="AF2")

    cold = engine.run([spec])[0]
    assert engine.stats()["executed_by_kind"] == {"baseline_fold": 1}
    assert not cold.from_cache

    fresh = Engine(config=job_config, cache=tmp_path / "cache")
    warm = fresh.run([spec])[0]
    assert fresh.stats()["executed_jobs"] == 0
    assert warm.from_cache
    assert warm.kind == "baseline_fold"
    assert np.array_equal(
        warm.prediction.structure.all_coords(), cold.prediction.structure.all_coords()
    )
    assert warm.prediction.metadata == cold.prediction.metadata

    # The engine result equals a direct predictor call with the same seeding.
    direct = AF2LikePredictor(
        reference_generator=ReferenceStructureGenerator(master_seed=job_config.seed)
    ).predict("3eax", "RYRDV")
    assert np.array_equal(
        warm.prediction.structure.all_coords(), direct.structure.all_coords()
    )


# -- dock jobs through the engine ----------------------------------------------------


def test_dock_job_cache_hit_miss_roundtrip(tmp_path, job_config, dock_inputs):
    engine = Engine(config=job_config, cache=tmp_path / "cache")
    spec = _dock_spec(job_config, dock_inputs)

    cold = engine.run([spec])[0]
    assert engine.stats()["executed_by_kind"] == {"dock": 1}
    assert not cold.from_cache
    assert len(cold.docking.runs) == job_config.docking_seeds

    fresh = Engine(config=job_config, cache=tmp_path / "cache")
    warm = fresh.run([spec])[0]
    assert fresh.stats()["executed_jobs"] == 0
    assert warm.from_cache
    assert warm.kind == "dock"
    # The cached summary replays the search bit-identically.
    assert warm.docking.as_dict() == cold.docking.as_dict()
    assert warm.docking.mean_best_affinity == cold.docking.mean_best_affinity

    # And matches a direct in-process docking run.
    reference, ligand = dock_inputs
    direct = dock_structure(reference.structure, ligand, config=job_config, receptor_id="3eax:QDock")
    assert warm.docking.as_dict() == direct.as_dict()


def test_mixed_kind_batch_dedups_and_orders(tmp_path, job_config, dock_inputs):
    engine = Engine(config=job_config, cache=tmp_path / "cache")
    dock = _dock_spec(job_config, dock_inputs)
    af2 = engine.baseline_spec("3eax", "RYRDV", method="AF2")
    results = engine.run([af2, dock, af2])
    assert engine.stats()["executed_by_kind"] == {"baseline_fold": 1, "dock": 1}
    assert results[0].kind == "baseline_fold"
    assert results[1].kind == "dock"
    assert np.array_equal(
        results[2].prediction.structure.all_coords(),
        results[0].prediction.structure.all_coords(),
    )


# -- cache size bounds ---------------------------------------------------------------


def _fake_payload(key: str, pad: int) -> dict:
    return {"spec_hash": key, "schema": "fold/v1", "pad": "x" * pad}


def _keys(n: int) -> list[str]:
    return [hashlib.sha256(str(i).encode()).hexdigest() for i in range(n)]


def test_cache_enforces_size_bound_on_put(tmp_path):
    keys = _keys(10)
    probe = ResultCache(tmp_path)
    probe.put(keys[0], _fake_payload(keys[0], 256))
    entry_size = probe.entries()[0].size_bytes

    bound = int(3.5 * entry_size)
    cache = ResultCache(tmp_path, max_bytes=bound)
    for key in keys[1:]:
        cache.put(key, _fake_payload(key, 256))
    assert cache.total_bytes() <= bound
    assert len(cache) == 3
    assert cache.stats.evictions == len(keys) - 3
    # The newest writes survive.
    assert keys[-1] in cache and keys[-2] in cache and keys[-3] in cache


def test_lru_eviction_keeps_recently_used_entries(tmp_path):
    k1, k2, k3 = _keys(3)
    probe = ResultCache(tmp_path / "lru")
    probe.put(k1, _fake_payload(k1, 128))
    entry_size = probe.entries()[0].size_bytes

    cache = ResultCache(tmp_path / "lru", max_bytes=int(2.5 * entry_size), eviction="lru")
    cache.put(k2, _fake_payload(k2, 128))
    time.sleep(0.02)
    assert cache.get(k1) is not None  # refreshes k1; k2 becomes least recently used
    time.sleep(0.02)
    cache.put(k3, _fake_payload(k3, 128))
    assert k1 in cache and k3 in cache
    assert k2 not in cache


def test_fifo_eviction_ignores_access_recency(tmp_path):
    k1, k2, k3 = _keys(3)
    probe = ResultCache(tmp_path / "fifo")
    probe.put(k1, _fake_payload(k1, 128))
    entry_size = probe.entries()[0].size_bytes

    cache = ResultCache(tmp_path / "fifo", max_bytes=int(2.5 * entry_size), eviction="fifo")
    cache.put(k2, _fake_payload(k2, 128))
    time.sleep(0.02)
    assert cache.get(k1) is not None  # does NOT refresh under fifo
    time.sleep(0.02)
    cache.put(k3, _fake_payload(k3, 128))
    assert k1 not in cache
    assert k2 in cache and k3 in cache


def test_prune_spares_entries_rewritten_at_the_eviction_window(tmp_path):
    """Crash-consistency of prune vs. a concurrent writer: the ``_before_evict``
    hook interleaves a second cache handle at the exact race point.  An entry
    that vanished under a concurrent pruner is skipped (not counted as our
    eviction), and an entry re-written since the scan is spared — the fresh
    payload must survive the prune."""
    k1, k2, k3 = _keys(3)
    pruner = ResultCache(tmp_path)
    writer = ResultCache(tmp_path)
    for key in (k1, k2, k3):
        pruner.put(key, _fake_payload(key, 128))
        time.sleep(0.02)  # deterministic eviction order: k1 oldest

    rewritten = _fake_payload(k2, 400)

    def interleave(entry):
        if entry.key == k1:
            entry.path.unlink()  # a concurrent pruner evicted it first
        elif entry.key == k2:
            time.sleep(0.02)
            writer.put(k2, rewritten)  # a concurrent writer re-writes it now

    pruner._before_evict = interleave
    evicted = pruner.prune(0)  # bound 0: tries to evict everything scanned

    assert evicted == [k3]  # k1 vanished (not ours), k2 was spared
    assert pruner.stats.evictions == 1
    assert k1 not in pruner and k3 not in pruner
    assert pruner.get(k2) == rewritten  # the fresh write survived the prune


def test_prune_spares_a_same_tick_rewrite(tmp_path):
    """On coarse-mtime filesystems (1s ticks, 2s on exFAT) a concurrent
    rewrite can land with exactly the scanned mtime.  Change detection must
    compare more than float ``st_mtime`` — here the rewrite is pinned to the
    scanned entry's nanosecond mtime, and only its size gives it away."""
    import os

    (key,) = _keys(1)
    cache = ResultCache(tmp_path)
    writer = ResultCache(tmp_path)
    cache.put(key, _fake_payload(key, 64))

    rewritten = _fake_payload(key, 400)

    def same_tick_rewrite(entry):
        writer.put(key, rewritten)
        os.utime(entry.path, ns=(entry.mtime_ns, entry.mtime_ns))

    cache._before_evict = same_tick_rewrite
    assert cache.prune(0) == []  # spared: same mtime tick, different size
    assert cache.stats.evictions == 0
    assert cache.get(key) == rewritten


def test_prune_tolerates_every_entry_vanishing(tmp_path):
    """A racing ``clear()`` between scan and eviction must not error or
    miscount: nothing is left, nothing was 'evicted' by this prune."""
    cache = ResultCache(tmp_path)
    other = ResultCache(tmp_path)
    for key in _keys(3):
        cache.put(key, _fake_payload(key, 64))
    cache._before_evict = lambda entry: other.clear()
    assert cache.prune(0) == []
    assert cache.stats.evictions == 0
    assert len(cache) == 0


def test_cache_rejects_unknown_eviction_policy(tmp_path):
    with pytest.raises(EngineError):
        ResultCache(tmp_path, eviction="random")


def test_prune_rejects_negative_bound(tmp_path):
    cache = ResultCache(tmp_path)
    with pytest.raises(EngineError):
        cache.prune(-1)


def test_verify_delete_removes_misrenamed_files(tmp_path):
    k1, k2 = _keys(2)
    cache = ResultCache(tmp_path)
    cache.put(k1, _fake_payload(k1, 64))
    cache.put(k2, _fake_payload(k2, 64))
    # Rename k2's file to a key whose canonical shard is elsewhere: the entry
    # is corrupt (stem != spec_hash) and deleting via _path(stem) would miss
    # the actual file — verify must unlink the path it scanned.
    i = 0
    while True:
        k3 = hashlib.sha256(f"other{i}".encode()).hexdigest()
        if k3[:2] != k2[:2]:
            break
        i += 1
    misrenamed = cache._path(k2).parent / f"{k3}.json"
    cache._path(k2).rename(misrenamed)
    valid, corrupt = cache.verify(delete=True)
    assert valid == sorted([k1])
    assert [key for key, _ in corrupt] == [k3]
    assert not misrenamed.exists()  # the scanned file itself was deleted
    assert cache.verify() == ([k1], [])


def test_cache_verify_flags_and_deletes_corruption(tmp_path):
    k1, k2 = _keys(2)
    cache = ResultCache(tmp_path)
    cache.put(k1, _fake_payload(k1, 64))
    cache.put(k2, _fake_payload(k2, 64))
    valid, corrupt = cache.verify()
    assert sorted(valid) == sorted([k1, k2]) and corrupt == []

    cache._path(k2).write_text("{ torn write")
    valid, corrupt = cache.verify()
    assert valid == [k1] or sorted(valid) == [k1]
    assert [key for key, _ in corrupt] == [k2]

    cache.verify(delete=True)
    assert k2 not in cache
    assert cache.verify() == ([k1], [])


# -- the warm-cache batch guarantee (acceptance criterion) ---------------------------


def test_build_entries_warm_cache_runs_zero_vqe_and_zero_docking(tmp_path, job_config):
    config = job_config.with_updates(cache_dir=str(tmp_path / "cache"))
    fragments = DatasetBuilder.select_fragments(pdb_ids=["3eax", "1e2k"])

    cold_engine = Engine(config=config)
    cold = BatchProcessor(config=config, engine=cold_engine).build_entries(fragments)
    cold_stats = cold_engine.stats()
    assert cold_stats["executed_by_kind"] == {"fold": 2, "baseline_fold": 4, "dock": 6}

    # A brand-new engine over the same cache executes nothing at all.
    warm_engine = Engine(config=config)
    warm = BatchProcessor(config=config, engine=warm_engine).build_entries(fragments)
    warm_stats = warm_engine.stats()
    assert warm_stats["executed_jobs"] == 0
    assert warm_stats["executed_by_kind"] == {}
    assert warm_stats["cache"]["hits"] == 12
    assert warm_stats["cache"]["misses"] == 0

    # Warm-cache entries are bit-identical to the cold build.
    for a, b in zip(cold, warm):
        assert a.metrics_record() == b.metrics_record()
        for method in ("QDock", "AF2", "AF3"):
            assert (
                a.evaluations[method].docking_summary == b.evaluations[method].docking_summary
            )
        assert np.array_equal(
            a.predicted_structure.all_coords(), b.predicted_structure.all_coords()
        )
