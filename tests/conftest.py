"""Shared fixtures for the test suite."""

from __future__ import annotations

import warnings

import pytest

from repro.config import PipelineConfig

warnings.filterwarnings("ignore", message="COBYLA")


@pytest.fixture(scope="session")
def tiny_config() -> PipelineConfig:
    """A minimal configuration keeping unit tests fast while exercising every stage."""
    return PipelineConfig(
        vqe_iterations=10,
        optimisation_shots=64,
        final_shots=256,
        ansatz_reps=1,
        docking_seeds=2,
        docking_poses=3,
        docking_mc_steps=40,
        seed=7,
    )


@pytest.fixture(scope="session")
def fast_config() -> PipelineConfig:
    """The library's fast preset (used by integration tests)."""
    return PipelineConfig.fast()
