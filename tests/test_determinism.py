"""The determinism harness (docs/ARCHITECTURE.md contract, systematically).

One mixed fold / baseline-fold / dock batch — including an in-batch duplicate
— is executed every way the engine can execute it:

* serially (the reference run),
* on a 2-worker and a 4-worker process pool,
* against a cold then a warm persistent cache,
* interrupted partway and resumed by a brand-new engine over the journal,
* on the distributed file-queue transport with a 2-daemon worker fleet —
  cold, and with one fleet member SIGKILLed mid-sweep followed by an
  interrupt and a cross-engine resume,
* with the fleet scheduler fully armed (priority classes, speculative
  straggler re-dispatch, an elastic worker ceiling) versus every knob off —
  plus a warm rerun executing zero jobs — and on a heterogeneous
  capability-tagged fleet (one fold-only worker, one generalist) versus the
  homogeneous fleet,
* over a socket against a live ``repro-serve`` daemon (the ``network``
  transport) — cold, warm through the server's shared cache, with the
  client disconnecting mid-batch and resuming, and with the *server* killed
  mid-batch then restarted before a cross-engine resume.

Every mode must produce results *bit-identical* to the reference, asserted on
the canonical JSON serialisation of each result payload (the same bytes the
persistent cache stores).  The resumed mode additionally proves it executed
only the jobs the interrupted run never completed.
"""

from __future__ import annotations

import json

import pytest

from repro.bio.reference import ReferenceStructureGenerator
from repro.config import PipelineConfig
from repro.docking.ligand import SyntheticLigandGenerator
from repro.engine import Engine, SessionJournal
from repro.utils.io import _NumpyJSONEncoder

CONFIG = PipelineConfig(
    vqe_iterations=5,
    optimisation_shots=24,
    final_shots=48,
    ansatz_reps=1,
    docking_seeds=2,
    docking_poses=2,
    docking_mc_steps=25,
    seed=13,
)


def _mixed_jobs(engine: Engine) -> list:
    """Two quantum folds, two baselines, one dock and one duplicate fold."""
    reference = ReferenceStructureGenerator(master_seed=CONFIG.seed).generate("3eax", "RYRDV")
    ligand = SyntheticLigandGenerator(master_seed=CONFIG.seed).generate(reference)
    return [
        engine.spec("3eax", "RYRDV"),
        engine.spec("3ckz", "VKDRS", start_seq_id=149),
        engine.baseline_spec("3eax", "RYRDV", "AF2"),
        engine.baseline_spec("3eax", "RYRDV", "AF3"),
        engine.dock_spec("3eax", reference.structure, ligand, receptor_id="3eax:QDock"),
        engine.spec("3eax", "RYRDV"),  # in-batch duplicate of job 0
    ]


def _canonical(results: list) -> list[str]:
    """Bit-stable serialisation of each result (the cache's own payload bytes)."""
    return [
        json.dumps(result.to_payload(), sort_keys=True, cls=_NumpyJSONEncoder)
        for result in results
    ]


@pytest.fixture(scope="module")
def reference_run() -> list[str]:
    """The serial, cache-less execution every other mode must reproduce."""
    engine = Engine(config=CONFIG, processes=0)
    return _canonical(engine.run(_mixed_jobs(engine)))


@pytest.mark.parametrize("workers", [2, 4])
def test_parallel_runs_are_bit_identical_to_serial(reference_run, workers):
    engine = Engine(config=CONFIG, processes=workers)
    assert _canonical(engine.run(_mixed_jobs(engine))) == reference_run


@pytest.mark.parametrize("workers", [0, 2])
def test_cold_and_warm_cache_runs_are_bit_identical_to_serial(
    reference_run, tmp_path, workers
):
    cold_engine = Engine(config=CONFIG, cache=tmp_path / "cache", processes=workers)
    cold = _canonical(cold_engine.run(_mixed_jobs(cold_engine)))
    assert cold == reference_run
    assert cold_engine.stats()["executed_jobs"] == 5  # the duplicate never executes

    warm_engine = Engine(config=CONFIG, cache=tmp_path / "cache", processes=workers)
    warm = _canonical(warm_engine.run(_mixed_jobs(warm_engine)))
    assert warm == reference_run
    assert warm_engine.stats()["executed_jobs"] == 0
    assert warm_engine.stats()["cache"]["misses"] == 0


def test_interrupted_then_resumed_run_is_bit_identical_to_serial(
    reference_run, tmp_path
):
    """The acceptance criterion: resume executes only the not-yet-completed
    jobs and the full result set matches an uninterrupted serial run."""
    config = CONFIG.with_updates(
        session_dir=str(tmp_path / "sessions"), cache_dir=str(tmp_path / "cache")
    )
    engine = Engine(config=config, processes=0)
    session = engine.submit(_mixed_jobs(engine), session_id="harness")
    for count, _pair in enumerate(session, start=1):
        if count == 3:
            break  # interrupt mid-sweep (after the duplicate has streamed too)

    journal = SessionJournal.open(config.session_dir, "harness")
    completed_before = len(journal.completed)
    unique_jobs = len(set(journal.spec_hashes))
    assert 0 < completed_before < unique_jobs

    # A brand-new engine (a new process, in effect) re-opens the journal: the
    # job specs come from the journal's spec pickle, completed jobs replay
    # from the cache, and only the remainder executes.
    resumed_engine = Engine(config=config, processes=0)
    resumed = resumed_engine.submit(session_id="harness")
    outcomes = resumed.results()

    assert _canonical(outcomes) == reference_run
    stats = resumed_engine.stats()
    assert stats["executed_jobs"] == unique_jobs - completed_before
    assert stats["failed_jobs"] == 0
    # Every job the interrupted run completed was served, not re-executed.
    assert resumed.summary()["cached"] == completed_before

    # The journal is now fully complete: one more resume executes nothing.
    final_engine = Engine(config=config, processes=0)
    final = final_engine.submit(session_id="harness")
    assert _canonical(final.results()) == reference_run
    assert final_engine.stats()["executed_jobs"] == 0


def _filequeue_config(tmp_path, **updates) -> PipelineConfig:
    """CONFIG on the distributed transport with a 2-daemon spawned fleet."""
    return CONFIG.with_updates(
        transport="filequeue",
        spool_dir=str(tmp_path / "spool"),
        transport_workers=2,
        transport_lease_timeout=5.0,
        transport_poll_interval=0.02,
        **updates,
    )


def test_filequeue_two_worker_fleet_is_bit_identical_to_serial(reference_run, tmp_path):
    """The distributed clause: a 2-daemon repro-worker fleet over a shared
    spool directory reproduces the serial reference bit-for-bit."""
    engine = Engine(config=_filequeue_config(tmp_path))
    assert _canonical(engine.run(_mixed_jobs(engine))) == reference_run
    assert engine.stats()["executed_jobs"] == 5  # the duplicate never executes


def test_filequeue_worker_kill_then_resume_is_bit_identical_to_serial(
    reference_run, tmp_path
):
    """SIGKILL one fleet member mid-sweep, interrupt the stream, resume from a
    brand-new engine: still bit-identical, and completed jobs never re-run."""
    config = _filequeue_config(
        tmp_path,
        session_dir=str(tmp_path / "sessions"),
        cache_dir=str(tmp_path / "cache"),
    )
    engine = Engine(config=config)
    session = engine.submit(_mixed_jobs(engine), session_id="fq-kill")
    stream = iter(session)
    next(stream)  # at least one outcome landed, so the fleet is live
    session.transport.workers[0].kill()  # SIGKILL mid-sweep; lease goes stale
    next(stream)
    next(stream)
    session.close()  # interrupt: abandon the stream with work outstanding

    journal = SessionJournal.open(config.session_dir, "fq-kill")
    completed_before = len(journal.completed)
    assert 0 < completed_before < 5

    resumed_engine = Engine(config=config)
    resumed = resumed_engine.submit(session_id="fq-kill")
    assert _canonical(resumed.results()) == reference_run
    # Every journalled completion replayed from the cache; only the remainder
    # executed (on a fresh worker fleet), and nothing executed twice.
    assert resumed.summary()["cached"] == completed_before
    assert resumed_engine.stats()["executed_jobs"] == 5 - completed_before
    assert resumed_engine.stats()["failed_jobs"] == 0


def test_scheduler_knobs_on_are_bit_identical_to_scheduler_off(reference_run, tmp_path):
    """The scheduler clause: priority classes, speculation and elastic sizing
    decide *where and when* jobs run, never what they compute — every knob on
    must equal every knob off, and a warm rerun executes zero jobs."""
    from repro.engine import set_priority

    config = _filequeue_config(
        tmp_path,
        cache_dir=str(tmp_path / "cache"),
        transport_priority=3,
        transport_speculate=50.0,  # armed, but no job is 50x the median here
        transport_max_workers=3,
    )
    engine = Engine(config=config)
    jobs = _mixed_jobs(engine)
    set_priority(jobs[2], 9)  # mixed priority classes within one batch
    set_priority(jobs[4], 1)
    assert _canonical(engine.run(jobs)) == reference_run
    assert engine.stats()["executed_jobs"] == 5  # the duplicate never executes

    warm = Engine(config=config)
    assert _canonical(warm.run(_mixed_jobs(warm))) == reference_run
    assert warm.stats()["executed_jobs"] == 0
    assert warm.stats()["cache"]["misses"] == 0


def test_heterogeneous_tagged_fleet_is_bit_identical_to_homogeneous(
    reference_run, tmp_path
):
    """A capability-partitioned fleet (one fold-only worker, one untagged)
    with mixed priorities drains the same batch to the same bytes as the
    homogeneous fleet and the serial reference."""
    import os
    import subprocess
    import sys

    import repro

    config = _filequeue_config(tmp_path, transport_priority=2).with_updates(
        transport_workers=0  # the heterogeneous fleet below replaces the spawned one
    )
    engine = Engine(config=config)
    spool_dir = config.spool_dir
    env = dict(os.environ)
    src_dir = str(__import__("pathlib").Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    def spawn(tags: str | None) -> subprocess.Popen:
        args = [
            sys.executable, "-m", "repro.cli.worker", spool_dir,
            "--poll-interval", "0.02", "--lease-timeout", "5",
        ]
        if tags:
            args += ["--tags", tags]
        return subprocess.Popen(
            args, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )

    workers = [spawn("fold"), spawn(None)]  # restricted + generalist
    try:
        assert _canonical(engine.run(_mixed_jobs(engine))) == reference_run
        assert engine.stats()["executed_jobs"] == 5
    finally:
        for proc in workers:
            proc.terminate()
        for proc in workers:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()


def _network_config(port: int, **updates) -> PipelineConfig:
    """CONFIG on the network transport against a repro-serve at ``port``."""
    return CONFIG.with_updates(
        transport="network",
        serve_host="127.0.0.1",
        serve_port=port,
        transport_poll_interval=0.02,
        **updates,
    )


def test_network_serve_cold_and_warm_runs_are_bit_identical_to_serial(
    reference_run, tmp_path
):
    """The network clause: a repro-serve daemon with a 2-process shared pool
    reproduces the serial reference bit-for-bit, and a second client session
    is served entirely from the server's shared cache — same bytes."""
    from repro.serve import ReproServer

    with ReproServer(workers=2, cache=tmp_path / "serve-cache") as server:
        engine = Engine(config=_network_config(server.port))
        assert _canonical(engine.run(_mixed_jobs(engine))) == reference_run
        assert engine.stats()["executed_jobs"] == 5  # the duplicate never executes

        warm_engine = Engine(config=_network_config(server.port))
        assert _canonical(warm_engine.run(_mixed_jobs(warm_engine))) == reference_run
        assert server.stats()["cache_hits"] == 5  # all served, none re-executed


def test_network_client_disconnect_then_resume_is_bit_identical_to_serial(
    reference_run, tmp_path
):
    """A client that walks away mid-batch resumes from its journal against
    the same server: bit-identical, completed jobs never re-run."""
    from repro.serve import ReproServer

    with ReproServer(workers=2) as server:
        config = _network_config(
            server.port,
            session_dir=str(tmp_path / "sessions"),
            cache_dir=str(tmp_path / "cache"),
        )
        engine = Engine(config=config)
        session = engine.submit(_mixed_jobs(engine), session_id="net-drop")
        stream = iter(session)
        next(stream)
        next(stream)
        session.close()  # the client disconnects with work outstanding

        journal = SessionJournal.open(config.session_dir, "net-drop")
        completed_before = len(journal.completed)
        assert 0 < completed_before < 5

        resumed_engine = Engine(config=config)
        resumed = resumed_engine.submit(session_id="net-drop")
        assert _canonical(resumed.results()) == reference_run
        assert resumed.summary()["cached"] == completed_before
        assert resumed_engine.stats()["executed_jobs"] == 5 - completed_before
        assert resumed_engine.stats()["failed_jobs"] == 0


def test_network_server_kill_then_restart_resume_is_bit_identical_to_serial(
    reference_run, tmp_path
):
    """Kill the *server* mid-batch: the session finishes with journalled
    failures instead of hanging; restart the server on the same port and a
    cross-engine resume is bit-identical with zero re-executed completions."""
    from repro.engine import JobFailure
    from repro.serve import ReproServer

    server = ReproServer(workers=2).start()
    config = _network_config(
        server.port,
        session_dir=str(tmp_path / "sessions"),
        cache_dir=str(tmp_path / "cache"),
    )
    engine = Engine(config=config)
    session = engine.submit(_mixed_jobs(engine), session_id="net-srv-kill")
    stream = iter(session)
    next(stream)  # at least one completion landed
    server.shutdown()  # the service dies with the batch in flight
    outcomes = session.results()  # finishes as failures — never a hang

    failures = [outcome for outcome in outcomes if isinstance(outcome, JobFailure)]
    assert failures
    assert all(failure.error_type == "ServerDisconnected" for failure in failures)

    journal = SessionJournal.open(config.session_dir, "net-srv-kill")
    completed_before = len(journal.completed)
    assert 0 < completed_before < 5

    restarted = ReproServer(port=server.port, workers=2).start()
    try:
        resumed_engine = Engine(config=config)
        resumed = resumed_engine.submit(session_id="net-srv-kill")
        assert _canonical(resumed.results()) == reference_run
        # Journalled completions replayed from the local cache; only the
        # never-completed jobs executed on the restarted service.
        assert resumed.summary()["cached"] == completed_before
        assert resumed_engine.stats()["executed_jobs"] == 5 - completed_before
        assert resumed_engine.stats()["failed_jobs"] == 0
    finally:
        restarted.shutdown()


@pytest.mark.parametrize(
    "updates",
    [
        {"docking_batch": False},
        {"quantum_compiled_plans": False},
    ],
    ids=["scalar-docking", "uncompiled-vqe"],
)
def test_fast_path_toggles_are_bit_identical_to_serial(reference_run, updates):
    """The batched-docking and compiled-ansatz fast paths are pure speed: the
    same batch with either disabled reproduces the reference bit-for-bit."""
    engine = Engine(config=CONFIG.with_updates(**updates), processes=0)
    assert _canonical(engine.run(_mixed_jobs(engine))) == reference_run


def test_cache_topology_flat_vs_tiered_is_bit_identical(reference_run, tmp_path):
    """The cache-topology clause, local half: a serial run over a flat
    ``ResultCache`` and a pool run over a ``TieredCache`` wrapping the same
    kind of local tier are bit-identical — cold and warm — and the warm
    tiered run executes zero jobs."""
    from repro.engine import LocalDirTier, ResultCache, TieredCache

    flat_engine = Engine(config=CONFIG, cache=ResultCache(tmp_path / "flat"), processes=0)
    assert _canonical(flat_engine.run(_mixed_jobs(flat_engine))) == reference_run
    assert flat_engine.stats()["executed_jobs"] == 5

    tiered = TieredCache([LocalDirTier(tmp_path / "tiered")])
    tiered_engine = Engine(config=CONFIG.with_updates(transport="pool"), cache=tiered, processes=2)
    assert _canonical(tiered_engine.run(_mixed_jobs(tiered_engine))) == reference_run
    assert tiered_engine.stats()["executed_jobs"] == 5

    warm = Engine(
        config=CONFIG.with_updates(transport="pool"),
        cache=TieredCache([LocalDirTier(tmp_path / "tiered")]),
        processes=2,
    )
    assert _canonical(warm.run(_mixed_jobs(warm))) == reference_run
    assert warm.stats()["executed_jobs"] == 0
    assert warm.stats()["cache"]["misses"] == 0


def test_cache_topology_filequeue_stub_completions_are_bit_identical(
    reference_run, tmp_path
):
    """The cache-topology clause, distributed half: a 2-daemon fleet in
    payload-free stub mode (workers write straight into a shared tier, the
    spool carries only stubs) is bit-identical to serial, no result payload
    ever touches the spool, and a warm re-run executes zero jobs."""
    config = _filequeue_config(
        tmp_path, cache_dir=str(tmp_path / "shared-tier"), spool_payloads=False
    )
    engine = Engine(config=config)
    assert _canonical(engine.run(_mixed_jobs(engine))) == reference_run
    assert engine.stats()["executed_jobs"] == 5

    result_files = sorted((tmp_path / "spool" / "results").glob("*.json"))
    assert len(result_files) == 5
    for path in result_files:
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["status"] == "completed"
        assert "payload" not in record  # the stub is payload-free
        assert record["stored"] == str(tmp_path / "shared-tier")
        assert record["content_hash"] == record["spec_hash"]

    warm = Engine(config=config)
    assert _canonical(warm.run(_mixed_jobs(warm))) == reference_run
    assert warm.stats()["executed_jobs"] == 0
    assert warm.stats()["cache"]["misses"] == 0


def test_cache_topology_remote_tier_is_bit_identical(reference_run, tmp_path):
    """The cache-topology clause, network half: a run whose cache stack ends
    in a ``RemoteTier`` against the serving daemon is bit-identical, and a
    second machine holding *only* the remote tier warm-runs with zero
    executions — served entirely over cache frames."""
    from repro.serve import ReproServer

    with ReproServer(workers=2, cache=tmp_path / "serve-cache") as server:
        config = _network_config(
            server.port,
            cache_dir=str(tmp_path / "client-cache"),
            cache_remote=f"127.0.0.1:{server.port}",
        )
        engine = Engine(config=config)
        assert _canonical(engine.run(_mixed_jobs(engine))) == reference_run
        assert engine.stats()["executed_jobs"] == 5
        # The server cached every result as it executed; the transport marked
        # them stored, so the session never pushed payloads back over the wire.
        remote_tier = engine.cache.tiers[-1]
        assert remote_tier.stats.writes == 0

        # "Another machine": no local cache at all, just the remote tier.
        warm = Engine(config=_network_config(
            server.port, cache_remote=f"127.0.0.1:{server.port}"
        ))
        assert _canonical(warm.run(_mixed_jobs(warm))) == reference_run
        assert warm.stats()["executed_jobs"] == 0
        assert warm.stats()["cache"]["misses"] == 0


def test_session_knobs_never_enter_job_hashes():
    """session_dir / on_error / transport / performance knobs are orchestration
    detail: switching transports (or retuning the fleet, or toggling the fast
    paths) must not invalidate caches."""
    engine = Engine(config=CONFIG)
    tweaked = Engine(
        config=CONFIG.with_updates(
            session_dir="/elsewhere",
            on_error="raise",
            transport="filequeue",
            spool_dir="/spool/elsewhere",
            transport_workers=7,
            transport_lease_timeout=1.5,
            transport_poll_interval=0.5,
            transport_priority=9,
            transport_speculate=2.5,
            transport_max_workers=16,
            serve_host="10.1.2.3",
            serve_port=9999,
            serve_max_inflight=2,
            cache_tiers=("/tiers/elsewhere",),
            cache_remote="10.1.2.3:7401",
            spool_payloads=False,
            docking_batch=False,
            quantum_compiled_plans=False,
            expectation_cache_entries=32,
            bench_repeats=9,
            bench_pose_batch=64,
        )
    )
    for base_job, tweaked_job in zip(_mixed_jobs(engine), _mixed_jobs(tweaked)):
        assert base_job.content_hash() == tweaked_job.content_hash()
