"""Tests for the docking engine: ligands, pockets, scoring, search, multi-seed runs."""

import numpy as np
import pytest

from repro.bio.geometry import random_rotation
from repro.bio.reference import ReferenceStructureGenerator
from repro.docking.ligand import Ligand, SyntheticLigandGenerator
from repro.docking.pocket import find_pocket, find_pockets
from repro.docking.scoring import CUTOFF, ScoringWeights, VinaScoringFunction
from repro.docking.search import MonteCarloPoseSearch, walker_rngs
from repro.docking.vina import DockingEngine, pose_rmsd_lower, pose_rmsd_upper
from repro.exceptions import DockingError


@pytest.fixture(scope="module")
def reference_record():
    return ReferenceStructureGenerator().generate("3eax", "RYRDV")


@pytest.fixture(scope="module")
def ligand(reference_record):
    return SyntheticLigandGenerator().generate(reference_record)


# -- ligand model -----------------------------------------------------------------


def test_ligand_validation():
    with pytest.raises(DockingError):
        Ligand("bad", np.zeros((0, 3)), [], np.array([]), np.array([]), np.array([]), np.array([]))
    with pytest.raises(DockingError):
        Ligand(
            "bad",
            np.zeros((2, 3)),
            ["C", "C"],
            np.array([True]),  # wrong length
            np.array([False, False]),
            np.array([False, False]),
            np.array([0.0, 0.0]),
        )


def test_synthetic_ligand_properties(reference_record, ligand):
    assert 3 <= ligand.num_atoms <= 18
    assert ligand.num_rotatable_bonds >= 0
    # Deterministic: regenerating gives the same molecule.
    again = SyntheticLigandGenerator().generate(reference_record)
    assert np.allclose(again.coords, ligand.coords)
    # The ligand does not clash with the reference receptor it was grown in.
    receptor_coords = reference_record.structure.all_coords()
    dist = np.linalg.norm(ligand.coords[:, None, :] - receptor_coords[None, :, :], axis=2)
    assert dist.min() > 3.0


def test_ligand_centered_uses_anchor(ligand):
    centered = ligand.centered()
    assert np.allclose(centered.coords, ligand.coords - ligand.anchor)
    assert np.allclose(centered.anchor, 0.0)


def test_ligand_size_scales_with_fragment_length(reference_record):
    big_ref = ReferenceStructureGenerator().generate("4jpy", "DYLEAYGKGGVKAK")
    small = SyntheticLigandGenerator().generate(reference_record)
    big = SyntheticLigandGenerator().generate(big_ref)
    assert big.num_atoms >= small.num_atoms


# -- pocket detection ---------------------------------------------------------------


def test_find_pocket_outside_receptor(reference_record):
    pocket = find_pocket(reference_record.structure)
    coords = reference_record.structure.all_coords()
    min_dist = np.linalg.norm(coords - pocket.center, axis=1).min()
    assert min_dist > 3.0  # no steric clash
    assert pocket.contact_count > 0


def test_find_pockets_distinct(reference_record):
    sites = find_pockets(reference_record.structure, num_sites=3)
    assert 1 <= len(sites) <= 3
    for i in range(len(sites)):
        for j in range(i + 1, len(sites)):
            assert np.linalg.norm(sites[i].center - sites[j].center) >= 4.0


# -- scoring ---------------------------------------------------------------------------


def test_scoring_clash_is_penalised(reference_record, ligand):
    scorer = VinaScoringFunction(reference_record.structure, ligand)
    good = scorer.score_coords(ligand.coords)
    # Slam the ligand into the receptor centre: heavy steric repulsion.
    clashed = ligand.coords - (ligand.coords.mean(axis=0) - reference_record.structure.centroid())
    bad = scorer.score_coords(clashed)
    assert good < bad


def test_scoring_far_away_is_zero(reference_record, ligand):
    scorer = VinaScoringFunction(reference_record.structure, ligand)
    far = ligand.coords + np.array([500.0, 0.0, 0.0])
    assert scorer.score_coords(far) == pytest.approx(0.0, abs=1e-6)


def test_scoring_rotor_penalty_reduces_magnitude(reference_record, ligand):
    rigid = Ligand(
        ligand.name, ligand.coords, list(ligand.elements), ligand.hydrophobic,
        ligand.donor, ligand.acceptor, ligand.charges, num_rotatable_bonds=0, anchor=ligand.anchor,
    )
    flexible = Ligand(
        ligand.name, ligand.coords, list(ligand.elements), ligand.hydrophobic,
        ligand.donor, ligand.acceptor, ligand.charges, num_rotatable_bonds=10, anchor=ligand.anchor,
    )
    s_rigid = VinaScoringFunction(reference_record.structure, rigid).score_coords(ligand.coords)
    s_flex = VinaScoringFunction(reference_record.structure, flexible).score_coords(ligand.coords)
    assert abs(s_flex) < abs(s_rigid)


def test_scoring_shape_mismatch_raises(reference_record, ligand):
    scorer = VinaScoringFunction(reference_record.structure, ligand)
    with pytest.raises(DockingError):
        scorer.score_coords(np.zeros((2, 3)))


# -- batched scoring ----------------------------------------------------------------------


def _pose_batch(ligand, center, count, seed=0):
    """Random rigid poses: half clustered at the pocket, half scattered wide."""
    rng = np.random.default_rng(seed)
    scales = [2.0 if i % 2 == 0 else 30.0 for i in range(count)]
    return np.stack(
        [
            ligand.transformed(random_rotation(rng), center + rng.normal(scale=scale, size=3))
            for scale in scales
        ]
    )


def _full_matrix_scores(scorer, coords):
    """Reference evaluation: every term on the full (P, A, R) tensor, masked after."""
    w = scorer.weights
    surf = scorer._surface_distances(coords)
    within = surf < CUTOFF
    pair = np.exp(-((surf / 0.5) ** 2)) * w.gauss1
    pair += np.exp(-(((surf - 3.0) / 2.0) ** 2)) * w.gauss2
    pair += np.where(surf < 0.0, surf * surf, 0.0) * w.repulsion
    pair += np.clip(1.5 - surf, 0.0, 1.0) * scorer._hydrophobic_pair * w.hydrophobic
    if w.electrostatic != 0.0:
        pair += np.exp(-((surf / 1.5) ** 2)) * scorer._charge_product * w.electrostatic
    pair_sum = np.where(within, pair, 0.0).reshape(coords.shape[0], -1).sum(axis=1)
    hbond = np.clip(surf / -0.7, 0.0, 1.0) * scorer._hbond_pair
    hbond_sum = np.where(within, hbond, 0.0).max(axis=2).sum(axis=1)
    totals = (pair_sum + w.hbond * hbond_sum) * w.scale
    return totals / (1.0 + w.rotor_penalty * scorer.ligand.num_rotatable_bonds)


def test_batch_scoring_matches_scalar_exactly(reference_record, ligand):
    scorer = VinaScoringFunction(reference_record.structure, ligand.centered())
    pocket = find_pocket(reference_record.structure)
    coords = _pose_batch(ligand.centered(), pocket.center, 17)
    batch = scorer.score_coords_batch(coords)
    scalar = np.array([scorer.score_coords(pose) for pose in coords])
    assert np.array_equal(batch, scalar)


def test_batch_scoring_invariant_to_batch_composition(reference_record, ligand):
    scorer = VinaScoringFunction(reference_record.structure, ligand.centered())
    pocket = find_pocket(reference_record.structure)
    coords = _pose_batch(ligand.centered(), pocket.center, 13)
    whole = scorer.score_coords_batch(coords)
    # Any slicing of the batch — including after the pair-tile caches have
    # grown to the largest batch — scores each pose identically.
    assert np.array_equal(scorer.score_coords_batch(coords[3:8]), whole[3:8])
    assert np.array_equal(scorer.score_coords_batch(coords[::2]), whole[::2])
    fresh = VinaScoringFunction(reference_record.structure, ligand.centered())
    assert np.array_equal(fresh.score_coords_batch(coords[5:6]), whole[5:6])


@pytest.mark.parametrize("electrostatic", [0.0, 0.5])
def test_batch_scoring_matches_full_matrix_reference(reference_record, ligand, electrostatic):
    weights = ScoringWeights(electrostatic=electrostatic)
    scorer = VinaScoringFunction(reference_record.structure, ligand.centered(), weights=weights)
    pocket = find_pocket(reference_record.structure)
    coords = _pose_batch(ligand.centered(), pocket.center, 9, seed=2)
    assert np.array_equal(scorer.score_coords_batch(coords), _full_matrix_scores(scorer, coords))


def test_batch_scoring_shape_validation(reference_record, ligand):
    scorer = VinaScoringFunction(reference_record.structure, ligand)
    with pytest.raises(DockingError):
        scorer.score_coords_batch(np.zeros((4, 2, 3)))
    with pytest.raises(DockingError):
        scorer.score_coords_batch(np.zeros((ligand.num_atoms, 3)))


# -- pose RMSD bounds ---------------------------------------------------------------------


def test_pose_rmsd_bounds_ordering():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(12, 3))
    b = a + rng.normal(scale=1.0, size=a.shape)
    lb, ub = pose_rmsd_lower(a, b), pose_rmsd_upper(a, b)
    assert 0.0 <= lb <= ub + 1e-9


def test_pose_rmsd_identical_poses_zero():
    a = np.random.default_rng(1).normal(size=(8, 3))
    assert pose_rmsd_upper(a, a) == pytest.approx(0.0)
    assert pose_rmsd_lower(a, a) == pytest.approx(0.0)


# -- search and engine ----------------------------------------------------------------------


def test_monte_carlo_search_returns_sorted_poses(reference_record, ligand):
    scorer = VinaScoringFunction(reference_record.structure, ligand.centered())
    pocket = find_pocket(reference_record.structure)
    search = MonteCarloPoseSearch(scorer, pocket.center)
    poses = search.search(60, np.random.default_rng(0), num_poses=5)
    scores = [p.score for p in poses]
    assert scores == sorted(scores)
    assert 1 <= len(poses) <= 5


def test_docking_engine_end_to_end(reference_record, ligand):
    engine = DockingEngine(num_seeds=2, num_poses=4, mc_steps=60)
    result = engine.dock(reference_record.structure, ligand, receptor_id="3eax:REF")
    assert len(result.runs) == 2
    for run in result.runs:
        assert len(run.poses) >= 1
        assert run.poses[0].rmsd_lb == 0.0 and run.poses[0].rmsd_ub == 0.0
        affinities = [p.affinity for p in run.poses]
        assert affinities == sorted(affinities)
    assert result.best_affinity <= result.mean_best_affinity
    assert result.mean_best_affinity < 0.0  # the native-like complex binds favourably
    payload = result.as_dict()
    assert payload["num_runs"] == 2
    assert len(payload["runs"][0]["poses"]) >= 1


def test_docking_engine_deterministic(reference_record, ligand):
    engine = DockingEngine(num_seeds=2, num_poses=3, mc_steps=40)
    r1 = engine.dock(reference_record.structure, ligand, receptor_id="3eax:REF")
    r2 = engine.dock(reference_record.structure, ligand, receptor_id="3eax:REF")
    assert r1.mean_best_affinity == pytest.approx(r2.mean_best_affinity)


def test_docking_engine_validation():
    with pytest.raises(DockingError):
        DockingEngine(num_seeds=0)


# -- batched walkers ----------------------------------------------------------------------


def test_walker_rngs_single_walker_is_callers_generator():
    rng = np.random.default_rng(5)
    assert walker_rngs(rng, 1) == [rng]
    many = walker_rngs(rng, 4)
    assert many[0] is rng and len(many) == 4


def test_search_batch_matches_scalar(reference_record, ligand):
    scorer = VinaScoringFunction(reference_record.structure, ligand.centered())
    pocket = find_pocket(reference_record.structure)
    search = MonteCarloPoseSearch(scorer, pocket.center)
    batched = search.search(80, np.random.default_rng(3), num_poses=5, batch=True)
    scalar = search.search(80, np.random.default_rng(3), num_poses=5, batch=False)
    assert len(batched) == len(scalar)
    for a, b in zip(batched, scalar):
        assert a.score == b.score
        assert np.array_equal(a.rotation, b.rotation)
        assert np.array_equal(a.translation, b.translation)


def test_docking_engine_batch_flag_does_not_change_results(reference_record, ligand):
    on = DockingEngine(num_seeds=2, num_poses=3, mc_steps=40, batch=True)
    off = DockingEngine(num_seeds=2, num_poses=3, mc_steps=40, batch=False)
    r_on = on.dock(reference_record.structure, ligand, receptor_id="3eax:REF")
    r_off = off.dock(reference_record.structure, ligand, receptor_id="3eax:REF")
    assert r_on.as_dict() == r_off.as_dict()


def test_prepared_dock_replays_identically(reference_record, ligand):
    engine = DockingEngine(num_seeds=3, num_poses=3, mc_steps=40)
    direct = engine.dock(reference_record.structure, ligand, receptor_id="3eax:REF")
    prepared = engine.prepare(reference_record.structure, ligand)
    # One preparation serves every seed: replaying it twice changes nothing.
    replay1 = engine.dock_prepared(prepared, "3eax:REF")
    replay2 = engine.dock_prepared(prepared, "3eax:REF")
    assert replay1.as_dict() == direct.as_dict()
    assert replay2.as_dict() == direct.as_dict()
