"""Tests for RMSD evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.bio.geometry import random_rotation
from repro.bio.rmsd import ca_rmsd, per_residue_deviation, rmsd, rmsd_without_superposition
from repro.bio.structure import Structure
from repro.exceptions import StructureError

finite = st.floats(-30, 30, allow_nan=False, allow_infinity=False)
point_sets = arrays(np.float64, st.tuples(st.integers(3, 10), st.just(3)), elements=finite)


def test_rmsd_identical_is_zero():
    pts = np.random.default_rng(0).normal(size=(6, 3))
    assert rmsd(pts, pts) == pytest.approx(0.0, abs=1e-9)


@given(point_sets, st.integers(0, 2**32 - 1))
@settings(max_examples=25, deadline=None)
def test_rmsd_invariant_to_rigid_motion(points, seed):
    rng = np.random.default_rng(seed)
    rot = random_rotation(rng)
    moved = points @ rot.T + rng.normal(size=3)
    assert rmsd(moved, points) == pytest.approx(0.0, abs=1e-6)


@given(point_sets)
@settings(max_examples=25, deadline=None)
def test_superposition_never_increases_rmsd(points):
    rng = np.random.default_rng(1)
    other = points + rng.normal(scale=1.0, size=points.shape)
    assert rmsd(other, points) <= rmsd_without_superposition(other, points) + 1e-9


def test_rmsd_shape_mismatch_raises():
    with pytest.raises(ValueError):
        rmsd(np.zeros((4, 3)), np.zeros((5, 3)))


def test_ca_rmsd_requires_matching_sequences():
    a = Structure.from_ca_coords("AAA", np.eye(3) * 3.8)
    b = Structure.from_ca_coords("AAC", np.eye(3) * 3.8)
    with pytest.raises(StructureError):
        ca_rmsd(a, b)


def test_per_residue_deviation_length_and_positivity():
    rng = np.random.default_rng(2)
    ca = rng.normal(scale=4.0, size=(7, 3))
    a = Structure.from_ca_coords("ACDEFGH", ca)
    b = Structure.from_ca_coords("ACDEFGH", ca + rng.normal(scale=0.5, size=ca.shape))
    dev = per_residue_deviation(a, b)
    assert dev.shape == (7,)
    assert np.all(dev >= 0.0)


def test_known_rmsd_value():
    a = np.zeros((2, 3))
    b = np.zeros((2, 3))
    b[0, 0] = 2.0  # one atom displaced by 2 A, other identical
    assert rmsd_without_superposition(a, b) == pytest.approx(np.sqrt(2.0))
