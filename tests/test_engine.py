"""Tests for the job engine: registry, content hashing, cache, fan-out."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PipelineConfig
from repro.engine import (
    Engine,
    JobResult,
    JobSpec,
    ResultCache,
    backend_names,
    execute_job,
    make_backend,
    register_backend,
)
from repro.engine.registry import registry_snapshot, restore_registry
from repro.exceptions import BackendError, EngineError
from repro.folding.predictor import QuantumFoldingPredictor
from repro.hardware.eagle import EagleEmulatorBackend
from repro.quantum.backend import AutoBackend, MPSBackend, StatevectorBackend
from repro.quantum.circuit import QuantumCircuit


@pytest.fixture(scope="module")
def engine_config() -> PipelineConfig:
    """A minimal configuration keeping fold jobs cheap."""
    return PipelineConfig(
        vqe_iterations=6,
        optimisation_shots=32,
        final_shots=64,
        ansatz_reps=1,
        seed=11,
    )


def _structures_identical(a, b) -> bool:
    return (
        np.array_equal(a.structure.all_coords(), b.structure.all_coords())
        and a.structure.sequence == b.structure.sequence
        and a.metadata == b.metadata
    )


# -- backend registry ---------------------------------------------------------------


def test_registry_knows_all_builtin_backends():
    assert {"statevector", "mps", "auto", "eagle"} <= set(backend_names())


def test_make_backend_types_and_config_wiring(engine_config):
    assert isinstance(make_backend("statevector", engine_config), StatevectorBackend)
    assert isinstance(make_backend("auto", engine_config), AutoBackend)
    mps = make_backend("mps", engine_config.with_updates(mps_bond_dimension=5))
    assert isinstance(mps, MPSBackend)
    assert mps.max_bond_dimension == 5
    eagle = make_backend("eagle", engine_config.with_updates(noise_enabled=False))
    assert isinstance(eagle, EagleEmulatorBackend)
    assert eagle.noise_enabled is False


def test_make_backend_defaults_to_config_backend(engine_config):
    backend = make_backend(config=engine_config.with_updates(backend="mps"))
    assert isinstance(backend, MPSBackend)


def test_make_backend_unknown_name_raises(engine_config):
    with pytest.raises(BackendError):
        make_backend("no_such_backend", engine_config)


def test_register_backend_rejects_duplicates():
    with pytest.raises(BackendError):
        register_backend("auto", lambda config: None)


def test_auto_backend_selection_at_exact_boundary():
    boundary = 9
    auto = AutoBackend(max_statevector_qubits=boundary)
    # Exactly at the limit the exact simulator is still used; one past it
    # falls over to MPS.
    assert auto.chosen_backend(QuantumCircuit(boundary - 1)) == "statevector"
    assert auto.chosen_backend(QuantumCircuit(boundary)) == "statevector"
    assert auto.chosen_backend(QuantumCircuit(boundary + 1)) == "mps"


def test_make_backend_auto_respects_boundary_from_config(engine_config):
    auto = make_backend("auto", engine_config.with_updates(max_statevector_qubits=7))
    assert auto.chosen_backend(QuantumCircuit(7)) == "statevector"
    assert auto.chosen_backend(QuantumCircuit(8)) == "mps"


# -- job hashing --------------------------------------------------------------------


def test_job_hash_is_stable_and_identity_sensitive(engine_config):
    spec = JobSpec(pdb_id="3eax", sequence="RYRDV", config=engine_config)
    assert spec.content_hash() == spec.content_hash()
    assert JobSpec(pdb_id="3EAX", sequence="RYRDV", config=engine_config).content_hash() == spec.content_hash()
    assert JobSpec(pdb_id="3ckz", sequence="RYRDV", config=engine_config).content_hash() != spec.content_hash()
    assert JobSpec(pdb_id="3eax", sequence="VKDRS", config=engine_config).content_hash() != spec.content_hash()


def test_job_hash_covers_fold_knobs_only(engine_config):
    base = JobSpec(pdb_id="3eax", sequence="RYRDV", config=engine_config)
    # Orchestration and docking knobs must not invalidate cached folds ...
    for irrelevant in (
        engine_config.with_updates(docking_seeds=99),
        engine_config.with_updates(engine_workers=8),
        engine_config.with_updates(cache_dir="/somewhere/else"),
    ):
        assert JobSpec("3eax", "RYRDV", config=irrelevant).content_hash() == base.content_hash()
    # ... while anything that changes the fold result must.
    for relevant in (
        engine_config.with_updates(seed=12),
        engine_config.with_updates(backend="mps"),
        engine_config.with_updates(final_shots=128),
    ):
        assert JobSpec("3eax", "RYRDV", config=relevant).content_hash() != base.content_hash()


def test_job_hash_rejects_unserialisable_extra(engine_config):
    good = JobSpec("3eax", "RYRDV", config=engine_config.with_updates(extra={"note": 1}))
    assert good.content_hash() == good.content_hash()
    bad = JobSpec("3eax", "RYRDV", config=engine_config.with_updates(extra={"obj": object()}))
    with pytest.raises(EngineError):
        bad.content_hash()


def test_content_hash_memo_is_dropped_on_pickle(engine_config):
    """Journal spec pickles can outlive a schema bump: the memoized hash must
    not ride along, or stale hashes would match stale cache payloads."""
    import pickle

    spec = JobSpec(pdb_id="3eax", sequence="RYRDV", config=engine_config)
    first = spec.content_hash()
    assert "_hash_memo" in spec.__dict__  # memoized on the live object ...
    clone = pickle.loads(pickle.dumps(spec))
    assert "_hash_memo" not in clone.__dict__  # ... but re-derived after unpickling
    assert clone.content_hash() == first


def test_registry_snapshot_roundtrips_through_restore():
    snapshot = registry_snapshot()
    assert "auto" in snapshot
    restore_registry(snapshot)  # idempotent merge of the worker initializer
    assert registry_snapshot() == snapshot


# -- cache --------------------------------------------------------------------------


def test_result_cache_roundtrip_and_stats(tmp_path, engine_config):
    cache = ResultCache(tmp_path / "cache")
    spec = JobSpec(pdb_id="3eax", sequence="RYRDV", config=engine_config)
    key = spec.content_hash()
    assert cache.get(key) is None
    result = execute_job(spec)
    cache.put(key, result.to_payload())
    assert key in cache
    assert len(cache) == 1
    restored = JobResult.from_payload(cache.get(key))
    assert restored.from_cache
    assert _structures_identical(restored.prediction, result.prediction)
    assert cache.stats.as_dict() == {
        "hits": 1, "misses": 1, "writes": 1, "evictions": 0, "hit_rate": 0.5,
    }
    assert cache.clear() == 1
    assert cache.get(key) is None


def test_verify_flags_truncated_payload_and_wrong_hash(tmp_path, engine_config):
    cache = ResultCache(tmp_path)
    key = JobSpec(pdb_id="3eax", sequence="RYRDV", config=engine_config).content_hash()
    payload = {
        "spec_hash": key,
        "schema": "fold/v1",
        "conformation_coords": [[0.0, 0.0, float(i)] for i in range(16)],
    }
    cache.put(key, payload)
    assert cache.verify() == ([key], [])

    # Truncated payload (a torn write or a partially synced disk).
    path = cache._path(key)
    text = path.read_text()
    path.write_text(text[: len(text) // 2])
    valid, corrupt = cache.verify()
    assert valid == []
    assert corrupt[0][0] == key and "unreadable" in corrupt[0][1]
    assert cache.get(key) is None  # a lookup degrades to a miss, never an error
    assert cache.peek(key) is None

    # Valid JSON whose spec_hash does not match the file name.
    import json as _json

    path.write_text(_json.dumps({**payload, "spec_hash": "f" * 64}))
    valid, corrupt = cache.verify()
    assert valid == []
    assert corrupt == [(key, "spec_hash does not match file name")]
    assert cache.get(key) is None

    cache.verify(delete=True)
    assert key not in cache
    assert cache.verify() == ([], [])


def test_cache_peek_is_stat_and_recency_neutral(tmp_path, engine_config):
    cache = ResultCache(tmp_path)
    key = JobSpec(pdb_id="3eax", sequence="RYRDV", config=engine_config).content_hash()
    cache.put(key, {"spec_hash": key, "schema": "fold/v1"})
    before = cache.entries()[0].mtime
    assert cache.peek(key) is not None
    assert cache.peek("0" * 64) is None
    assert cache.stats.lookups == 0  # no hit, no miss
    assert cache.entries()[0].mtime == before  # no LRU refresh either


def test_result_cache_treats_corrupt_entry_as_miss(tmp_path, engine_config):
    cache = ResultCache(tmp_path)
    key = JobSpec(pdb_id="3eax", sequence="RYRDV", config=engine_config).content_hash()
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("{ not json")
    assert cache.get(key) is None
    path.write_text('{"spec_hash": "someone-else"}')
    assert cache.get(key) is None
    assert cache.stats.misses == 2


def test_picklable_warns_once_per_entry_name():
    import logging

    from repro.engine import core

    class _Capture(logging.Handler):
        def __init__(self):
            super().__init__()
            self.messages: list[str] = []

        def emit(self, record):
            self.messages.append(record.getMessage())

    capture = _Capture()
    target = logging.getLogger("repro.engine.core")
    target.addHandler(capture)
    try:
        mapping = {"unpicklable_entry_for_test": lambda config: None}
        # Repeated fan-outs must not re-warn about the same entry ...
        core._picklable(mapping, "backend")
        core._picklable(mapping, "backend")
        core._picklable(mapping, "backend")
        backend_warnings = [m for m in capture.messages if "unpicklable_entry_for_test" in m]
        assert len(backend_warnings) == 1
        # ... but the same name in the *other* registry is a separate warning.
        core._picklable(mapping, "executor")
        both = [m for m in capture.messages if "unpicklable_entry_for_test" in m]
        assert len(both) == 2
        # The entry is still dropped silently on later calls.
        assert core._picklable(mapping, "backend") == {}
    finally:
        target.removeHandler(capture)


# -- engine -------------------------------------------------------------------------


def test_engine_warm_cache_performs_zero_vqe_executions(tmp_path, engine_config):
    engine = Engine(config=engine_config, cache=tmp_path / "cache")
    specs = [engine.spec("3eax", "RYRDV"), engine.spec("3ckz", "VKDRS", start_seq_id=149)]

    cold = engine.run(specs)
    stats = engine.stats()
    assert stats["executed_jobs"] == 2
    assert stats["cache"] == {
        "hits": 0, "misses": 2, "writes": 2, "evictions": 0, "hit_rate": 0.0,
    }
    assert not any(r.from_cache for r in cold)

    warm = engine.run(specs)
    stats = engine.stats()
    assert stats["executed_jobs"] == 2  # unchanged: no new VQE executions
    assert stats["cache"]["hits"] == 2
    assert all(r.from_cache for r in warm)
    for a, b in zip(cold, warm):
        assert a.spec_hash == b.spec_hash
        assert _structures_identical(a.prediction, b.prediction)

    # A brand-new engine over the same cache directory also executes nothing.
    fresh = Engine(config=engine_config, cache=tmp_path / "cache")
    again = fresh.run(specs)
    assert fresh.stats()["executed_jobs"] == 0
    assert all(r.from_cache for r in again)


def test_engine_serial_and_parallel_runs_are_bit_identical(engine_config):
    engine = Engine(config=engine_config)
    specs = [
        engine.spec("3eax", "RYRDV"),
        engine.spec("3ckz", "VKDRS"),
        engine.spec("4mo4", "NIGGF"),
    ]
    serial = engine.run(specs, processes=0)
    parallel = engine.run(specs, processes=2)
    assert [r.pdb_id for r in parallel] == [r.pdb_id for r in serial]
    for a, b in zip(serial, parallel):
        assert a.spec_hash == b.spec_hash
        assert np.array_equal(a.conformation_coords, b.conformation_coords)
        assert _structures_identical(a.prediction, b.prediction)


def test_engine_deduplicates_identical_jobs_within_a_batch(engine_config):
    engine = Engine(config=engine_config)
    spec = engine.spec("3eax", "RYRDV")
    results = engine.run([spec, spec, spec])
    assert engine.stats()["executed_jobs"] == 1
    assert len(results) == 3
    assert _structures_identical(results[0].prediction, results[2].prediction)


def test_engine_cache_dir_from_config(tmp_path, engine_config):
    config = engine_config.with_updates(cache_dir=str(tmp_path / "implicit"))
    engine = Engine(config=config)
    engine.run([engine.spec("3eax", "RYRDV")])
    assert Engine(config=config).stats()["cache"] is not None
    rerun = Engine(config=config).run([JobSpec("3eax", "RYRDV", config=config)])
    assert rerun[0].from_cache


# -- predictor integration ----------------------------------------------------------


def test_predict_many_routes_through_engine_and_matches_predict(engine_config):
    predictor = QuantumFoldingPredictor(config=engine_config)
    fragments = [("3eax", "RYRDV"), ("3ckz", "VKDRS")]
    batch = predictor.predict_many(fragments)
    singles = [predictor.predict(pdb_id, seq) for pdb_id, seq in fragments]
    assert len(batch) == 2
    for got, want in zip(batch, singles):
        assert got.pdb_id == want.pdb_id
        assert _structures_identical(got, want)


def test_predictor_reuses_engine_and_accumulates_stats(engine_config):
    predictor = QuantumFoldingPredictor(config=engine_config)
    predictor.predict("3eax", "RYRDV")
    predictor.predict("3ckz", "VKDRS")
    assert predictor.engine.stats()["completed_jobs"] == 2


def test_predictor_with_explicit_backend_stays_local(engine_config):
    backend = EagleEmulatorBackend(ancilla_margin=2, noise_enabled=False)
    predictor = QuantumFoldingPredictor(config=engine_config, backend=backend)
    prediction = predictor.predict("3eax", "RYRDV")
    # The caller-supplied backend instance actually executed the jobs (and
    # kept its per-job records), i.e. nothing was shipped to the engine.
    assert backend.total_shots() > 0
    assert prediction.metadata["backend"] == "eagle_emulator"
