"""Tests for the quantum substrate: gates, circuits, ansatz, simulators, noise."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import BackendError, CircuitError
from repro.quantum.ansatz import EfficientSU2
from repro.quantum.backend import AutoBackend, MPSBackend, StatevectorBackend, counts_from_samples
from repro.quantum.circuit import Parameter, QuantumCircuit
from repro.quantum.gates import GATES, gate_matrix, is_unitary, rx_matrix, ry_matrix, rz_matrix
from repro.quantum.mps import MPSSimulator
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import StatevectorSimulator

angles = st.floats(-np.pi, np.pi, allow_nan=False)


# -- gates --------------------------------------------------------------------------


def test_all_fixed_gates_unitary():
    for name, matrix in GATES.items():
        assert is_unitary(matrix), name


@given(angles)
@settings(max_examples=30, deadline=None)
def test_rotation_gates_unitary(theta):
    for fn in (rx_matrix, ry_matrix, rz_matrix):
        assert is_unitary(fn(theta))


def test_gate_matrix_parameter_validation():
    with pytest.raises(CircuitError):
        gate_matrix("ry")  # missing parameter
    with pytest.raises(CircuitError):
        gate_matrix("x", (0.3,))  # unexpected parameter
    with pytest.raises(CircuitError):
        gate_matrix("nosuchgate")


# -- circuits ------------------------------------------------------------------------


def test_circuit_depth_and_counts():
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 1).cx(1, 2).rz(0.3, 2)
    assert qc.depth() == 4
    assert qc.count_ops() == {"h": 1, "cx": 2, "rz": 1}
    assert qc.two_qubit_gate_count() == 2


def test_circuit_qubit_validation():
    qc = QuantumCircuit(2)
    with pytest.raises(CircuitError):
        qc.cx(0, 5)
    with pytest.raises(CircuitError):
        qc.cx(1, 1)


def test_parameter_binding():
    qc = QuantumCircuit(1)
    theta = Parameter("theta")
    qc.ry(theta, 0)
    assert qc.num_parameters == 1
    bound = qc.bind([0.5])
    assert bound.is_bound
    with pytest.raises(CircuitError):
        qc.bind([])
    # the original circuit is untouched
    assert not qc.is_bound


def test_compose_width_mismatch():
    with pytest.raises(CircuitError):
        QuantumCircuit(2).compose(QuantumCircuit(3))


# -- ansatz --------------------------------------------------------------------------


def test_efficient_su2_parameter_count():
    for n, reps in [(4, 1), (6, 2), (10, 1)]:
        ansatz = EfficientSU2(n, reps=reps)
        assert ansatz.num_parameters == 2 * n * (reps + 1)


def test_efficient_su2_linear_entanglement_is_nearest_neighbour():
    ansatz = EfficientSU2(5, reps=2)
    for inst in ansatz.circuit.instructions:
        if inst.name == "cx":
            assert abs(inst.qubits[0] - inst.qubits[1]) == 1


def test_efficient_su2_zero_params_gives_all_zero_state():
    ansatz = EfficientSU2(4, reps=1)
    state = StatevectorSimulator().run(ansatz.bound(np.zeros(ansatz.num_parameters)))
    probs = np.abs(state) ** 2
    assert probs[0] == pytest.approx(1.0)


# -- statevector simulator --------------------------------------------------------------


def test_bell_state():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1)
    probs = StatevectorSimulator().probabilities(qc)
    assert probs[0b00] == pytest.approx(0.5)
    assert probs[0b11] == pytest.approx(0.5)


def test_statevector_rejects_unbound():
    qc = QuantumCircuit(1)
    qc.ry(Parameter("t"), 0)
    with pytest.raises(BackendError):
        StatevectorSimulator().run(qc)


def test_statevector_qubit_limit():
    with pytest.raises(BackendError):
        StatevectorSimulator(max_qubits=3).run(QuantumCircuit(4, [ ]))


# -- MPS simulator ------------------------------------------------------------------------


@given(st.integers(2, 6), st.integers(0, 2), st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_mps_matches_statevector_for_efficient_su2(n, reps, seed):
    rng = np.random.default_rng(seed)
    ansatz = EfficientSU2(n, reps=reps)
    circuit = ansatz.bound(rng.normal(size=ansatz.num_parameters))
    sv = StatevectorSimulator().run(circuit)
    mps = MPSSimulator(max_bond_dimension=16).statevector(circuit)
    fidelity = abs(np.vdot(sv, mps)) ** 2
    assert fidelity == pytest.approx(1.0, abs=1e-8)


def test_mps_norm_preserved():
    ansatz = EfficientSU2(30, reps=1)
    rng = np.random.default_rng(0)
    state = MPSSimulator(max_bond_dimension=8).run(ansatz.bound(rng.normal(size=ansatz.num_parameters)))
    assert state.norm_squared() == pytest.approx(1.0, abs=1e-6)


def test_mps_rejects_non_adjacent_two_qubit_gate():
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 2)
    with pytest.raises(BackendError):
        MPSSimulator().run(qc)


def test_mps_sampling_distribution_on_product_state():
    # RY(pi) flips qubit 0 deterministically; qubit 1 stays 0.
    qc = QuantumCircuit(2)
    qc.ry(np.pi, 0)
    samples = MPSSimulator().sample(qc, 200, np.random.default_rng(0))
    assert np.all(samples[:, 0] == 1)
    assert np.all(samples[:, 1] == 0)


def test_mps_scales_to_100_qubits():
    ansatz = EfficientSU2(102, reps=1)
    rng = np.random.default_rng(1)
    samples = MPSSimulator(max_bond_dimension=8).sample(
        ansatz.bound(rng.normal(scale=0.3, size=ansatz.num_parameters)), 32, rng
    )
    assert samples.shape == (32, 102)


# -- backends -----------------------------------------------------------------------------


def test_counts_from_samples():
    samples = np.array([[0, 1], [0, 1], [1, 0]], dtype=np.uint8)
    counts = counts_from_samples(samples)
    assert counts == {"01": 2, "10": 1}


def test_backends_agree_statistically():
    ansatz = EfficientSU2(4, reps=1)
    rng = np.random.default_rng(2)
    circuit = ansatz.bound(rng.normal(size=ansatz.num_parameters))
    sv_mean = StatevectorBackend().sample_array(circuit, 4000, np.random.default_rng(3)).mean(axis=0)
    mps_mean = MPSBackend().sample_array(circuit, 4000, np.random.default_rng(4)).mean(axis=0)
    assert np.allclose(sv_mean, mps_mean, atol=0.06)


def test_auto_backend_selection():
    auto = AutoBackend(max_statevector_qubits=6)
    assert auto.chosen_backend(QuantumCircuit(4)) == "statevector"
    assert auto.chosen_backend(QuantumCircuit(40)) == "mps"


# -- noise --------------------------------------------------------------------------------


def test_noise_model_flip_probability_bounds():
    model = NoiseModel.eagle_r3()
    p_small = model.flip_probability(53, 1.0)
    p_large = model.flip_probability(413, 2.0)
    assert 0.0 < p_small < p_large < 0.45


def test_ideal_noise_model_is_identity():
    samples = np.zeros((50, 8), dtype=np.uint8)
    out = NoiseModel.ideal().apply(samples, np.random.default_rng(0), depth=400, two_qubit_gates_per_qubit=2)
    assert np.array_equal(out, samples)


def test_noise_flips_expected_fraction():
    model = NoiseModel(readout_error=0.25, two_qubit_error=0.0, decoherence_weight=0.0)
    samples = np.zeros((2000, 10), dtype=np.uint8)
    out = model.apply(samples, np.random.default_rng(1))
    assert out.mean() == pytest.approx(0.25, abs=0.03)


# -- compiled plans -----------------------------------------------------------------------


def _random_values(num, seed):
    return np.random.default_rng(seed).normal(scale=0.4, size=num)


@pytest.mark.parametrize("width,reps", [(2, 1), (3, 1), (4, 2), (6, 2)])
def test_compiled_statevector_bit_identical_to_simulator(width, reps):
    ansatz = EfficientSU2(width, reps=reps)
    plan = ansatz.compiled()
    simulator = StatevectorSimulator()
    for seed in range(3):
        values = _random_values(ansatz.num_parameters, seed)
        assert np.array_equal(plan.statevector(values), simulator.run(ansatz.bound(values)))


def test_compiled_sample_matches_simulator_rng_stream():
    ansatz = EfficientSU2(4, reps=2)
    plan = StatevectorSimulator().compile(ansatz.circuit)
    values = _random_values(ansatz.num_parameters, 7)
    direct = StatevectorSimulator().sample(ansatz.bound(values), 64, np.random.default_rng(9))
    replay = plan.sample(values, 64, np.random.default_rng(9))
    assert np.array_equal(direct, replay)


def test_compiled_handles_fixed_and_parameterised_gates():
    theta = Parameter("theta")
    circuit = QuantumCircuit(2)
    circuit.h(0).ry(theta, 0).cx(0, 1).rz(0.3, 1).x(1)
    from repro.quantum.compiled import CompiledCircuit

    plan = CompiledCircuit(circuit)
    assert len(plan) == 5  # barriers excluded, everything else compiled
    values = [0.8]
    assert np.array_equal(plan.statevector(values), StatevectorSimulator().run(circuit.bind(values)))


def test_compiled_circuit_errors():
    from repro.quantum.compiled import CompiledCircuit

    wide = EfficientSU2(6, reps=1)
    with pytest.raises(BackendError):
        CompiledCircuit(wide.circuit, max_qubits=4)
    bogus = QuantumCircuit(2)
    bogus.append("crx", (0, 1), (Parameter("t"),))
    with pytest.raises(CircuitError):
        CompiledCircuit(bogus)
    plan = EfficientSU2(3, reps=1).compiled()
    with pytest.raises(CircuitError):
        plan.statevector([0.1])  # wrong parameter count
    with pytest.raises(BackendError):
        plan.sample(np.zeros(plan.num_parameters), 0, np.random.default_rng(0))


def test_structure_key_shared_across_template_instances():
    from repro.quantum.compiled import circuit_structure_key

    a = EfficientSU2(4, reps=2).circuit
    b = EfficientSU2(4, reps=2).circuit
    assert circuit_structure_key(a) == circuit_structure_key(b)
    assert circuit_structure_key(a) != circuit_structure_key(EfficientSU2(4, reps=1).circuit)
    # Bound parameter values are part of the key.
    values = _random_values(a.num_parameters, 1)
    assert circuit_structure_key(a.bind(values)) != circuit_structure_key(a.bind(values * 0.5))


def test_structure_key_memo_invalidated_by_append():
    from repro.quantum.compiled import circuit_structure_key

    circuit = QuantumCircuit(2).h(0).cx(0, 1)
    key = circuit_structure_key(circuit)
    assert circuit_structure_key(circuit) == key  # memo hit
    circuit.x(1)
    grown = circuit_structure_key(circuit)
    assert grown != key
    assert len(grown) == len(key) + 1


def test_backend_plan_cache_shared_across_instances():
    backend = StatevectorBackend()
    shots, rng_seed = 32, 11
    a, b = EfficientSU2(4, reps=1), EfficientSU2(4, reps=1)
    values = _random_values(a.num_parameters, 3)
    first = backend.sample_parameterised(a.circuit, values, shots, np.random.default_rng(rng_seed))
    second = backend.sample_parameterised(b.circuit, values, shots, np.random.default_rng(rng_seed))
    assert np.array_equal(first, second)
    info = backend.plan_cache_info()
    assert info["entries"] == 1
    assert info["misses"] == 1 and info["hits"] == 1


def test_backend_plan_cache_disabled_is_bit_identical():
    cached = StatevectorBackend(plan_cache_size=64)
    uncached = StatevectorBackend(plan_cache_size=0)
    ansatz = EfficientSU2(5, reps=2)
    values = _random_values(ansatz.num_parameters, 4)
    with_plan = cached.sample_parameterised(ansatz.circuit, values, 48, np.random.default_rng(2))
    without = uncached.sample_parameterised(ansatz.circuit, values, 48, np.random.default_rng(2))
    assert np.array_equal(with_plan, without)
    assert uncached.plan_cache_info()["entries"] == 0
