"""Tests for the quantum substrate: gates, circuits, ansatz, simulators, noise."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import BackendError, CircuitError
from repro.quantum.ansatz import EfficientSU2
from repro.quantum.backend import AutoBackend, MPSBackend, StatevectorBackend, counts_from_samples
from repro.quantum.circuit import Parameter, QuantumCircuit
from repro.quantum.gates import GATES, gate_matrix, is_unitary, rx_matrix, ry_matrix, rz_matrix
from repro.quantum.mps import MPSSimulator
from repro.quantum.noise import NoiseModel
from repro.quantum.statevector import StatevectorSimulator

angles = st.floats(-np.pi, np.pi, allow_nan=False)


# -- gates --------------------------------------------------------------------------


def test_all_fixed_gates_unitary():
    for name, matrix in GATES.items():
        assert is_unitary(matrix), name


@given(angles)
@settings(max_examples=30, deadline=None)
def test_rotation_gates_unitary(theta):
    for fn in (rx_matrix, ry_matrix, rz_matrix):
        assert is_unitary(fn(theta))


def test_gate_matrix_parameter_validation():
    with pytest.raises(CircuitError):
        gate_matrix("ry")  # missing parameter
    with pytest.raises(CircuitError):
        gate_matrix("x", (0.3,))  # unexpected parameter
    with pytest.raises(CircuitError):
        gate_matrix("nosuchgate")


# -- circuits ------------------------------------------------------------------------


def test_circuit_depth_and_counts():
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 1).cx(1, 2).rz(0.3, 2)
    assert qc.depth() == 4
    assert qc.count_ops() == {"h": 1, "cx": 2, "rz": 1}
    assert qc.two_qubit_gate_count() == 2


def test_circuit_qubit_validation():
    qc = QuantumCircuit(2)
    with pytest.raises(CircuitError):
        qc.cx(0, 5)
    with pytest.raises(CircuitError):
        qc.cx(1, 1)


def test_parameter_binding():
    qc = QuantumCircuit(1)
    theta = Parameter("theta")
    qc.ry(theta, 0)
    assert qc.num_parameters == 1
    bound = qc.bind([0.5])
    assert bound.is_bound
    with pytest.raises(CircuitError):
        qc.bind([])
    # the original circuit is untouched
    assert not qc.is_bound


def test_compose_width_mismatch():
    with pytest.raises(CircuitError):
        QuantumCircuit(2).compose(QuantumCircuit(3))


# -- ansatz --------------------------------------------------------------------------


def test_efficient_su2_parameter_count():
    for n, reps in [(4, 1), (6, 2), (10, 1)]:
        ansatz = EfficientSU2(n, reps=reps)
        assert ansatz.num_parameters == 2 * n * (reps + 1)


def test_efficient_su2_linear_entanglement_is_nearest_neighbour():
    ansatz = EfficientSU2(5, reps=2)
    for inst in ansatz.circuit.instructions:
        if inst.name == "cx":
            assert abs(inst.qubits[0] - inst.qubits[1]) == 1


def test_efficient_su2_zero_params_gives_all_zero_state():
    ansatz = EfficientSU2(4, reps=1)
    state = StatevectorSimulator().run(ansatz.bound(np.zeros(ansatz.num_parameters)))
    probs = np.abs(state) ** 2
    assert probs[0] == pytest.approx(1.0)


# -- statevector simulator --------------------------------------------------------------


def test_bell_state():
    qc = QuantumCircuit(2)
    qc.h(0).cx(0, 1)
    probs = StatevectorSimulator().probabilities(qc)
    assert probs[0b00] == pytest.approx(0.5)
    assert probs[0b11] == pytest.approx(0.5)


def test_statevector_rejects_unbound():
    qc = QuantumCircuit(1)
    qc.ry(Parameter("t"), 0)
    with pytest.raises(BackendError):
        StatevectorSimulator().run(qc)


def test_statevector_qubit_limit():
    with pytest.raises(BackendError):
        StatevectorSimulator(max_qubits=3).run(QuantumCircuit(4, [ ]))


# -- MPS simulator ------------------------------------------------------------------------


@given(st.integers(2, 6), st.integers(0, 2), st.integers(0, 10_000))
@settings(max_examples=20, deadline=None)
def test_mps_matches_statevector_for_efficient_su2(n, reps, seed):
    rng = np.random.default_rng(seed)
    ansatz = EfficientSU2(n, reps=reps)
    circuit = ansatz.bound(rng.normal(size=ansatz.num_parameters))
    sv = StatevectorSimulator().run(circuit)
    mps = MPSSimulator(max_bond_dimension=16).statevector(circuit)
    fidelity = abs(np.vdot(sv, mps)) ** 2
    assert fidelity == pytest.approx(1.0, abs=1e-8)


def test_mps_norm_preserved():
    ansatz = EfficientSU2(30, reps=1)
    rng = np.random.default_rng(0)
    state = MPSSimulator(max_bond_dimension=8).run(ansatz.bound(rng.normal(size=ansatz.num_parameters)))
    assert state.norm_squared() == pytest.approx(1.0, abs=1e-6)


def test_mps_rejects_non_adjacent_two_qubit_gate():
    qc = QuantumCircuit(3)
    qc.h(0).cx(0, 2)
    with pytest.raises(BackendError):
        MPSSimulator().run(qc)


def test_mps_sampling_distribution_on_product_state():
    # RY(pi) flips qubit 0 deterministically; qubit 1 stays 0.
    qc = QuantumCircuit(2)
    qc.ry(np.pi, 0)
    samples = MPSSimulator().sample(qc, 200, np.random.default_rng(0))
    assert np.all(samples[:, 0] == 1)
    assert np.all(samples[:, 1] == 0)


def test_mps_scales_to_100_qubits():
    ansatz = EfficientSU2(102, reps=1)
    rng = np.random.default_rng(1)
    samples = MPSSimulator(max_bond_dimension=8).sample(
        ansatz.bound(rng.normal(scale=0.3, size=ansatz.num_parameters)), 32, rng
    )
    assert samples.shape == (32, 102)


# -- backends -----------------------------------------------------------------------------


def test_counts_from_samples():
    samples = np.array([[0, 1], [0, 1], [1, 0]], dtype=np.uint8)
    counts = counts_from_samples(samples)
    assert counts == {"01": 2, "10": 1}


def test_backends_agree_statistically():
    ansatz = EfficientSU2(4, reps=1)
    rng = np.random.default_rng(2)
    circuit = ansatz.bound(rng.normal(size=ansatz.num_parameters))
    sv_mean = StatevectorBackend().sample_array(circuit, 4000, np.random.default_rng(3)).mean(axis=0)
    mps_mean = MPSBackend().sample_array(circuit, 4000, np.random.default_rng(4)).mean(axis=0)
    assert np.allclose(sv_mean, mps_mean, atol=0.06)


def test_auto_backend_selection():
    auto = AutoBackend(max_statevector_qubits=6)
    assert auto.chosen_backend(QuantumCircuit(4)) == "statevector"
    assert auto.chosen_backend(QuantumCircuit(40)) == "mps"


# -- noise --------------------------------------------------------------------------------


def test_noise_model_flip_probability_bounds():
    model = NoiseModel.eagle_r3()
    p_small = model.flip_probability(53, 1.0)
    p_large = model.flip_probability(413, 2.0)
    assert 0.0 < p_small < p_large < 0.45


def test_ideal_noise_model_is_identity():
    samples = np.zeros((50, 8), dtype=np.uint8)
    out = NoiseModel.ideal().apply(samples, np.random.default_rng(0), depth=400, two_qubit_gates_per_qubit=2)
    assert np.array_equal(out, samples)


def test_noise_flips_expected_fraction():
    model = NoiseModel(readout_error=0.25, two_qubit_error=0.0, decoherence_weight=0.0)
    samples = np.zeros((2000, 10), dtype=np.uint8)
    out = model.apply(samples, np.random.default_rng(1))
    assert out.mean() == pytest.approx(0.25, abs=0.03)
