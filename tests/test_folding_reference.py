"""Tests for the reference generator, the quantum predictor and the baselines."""

import numpy as np
import pytest

from repro.bio.reference import ReferenceStructureGenerator
from repro.bio.rmsd import ca_rmsd
from repro.config import PipelineConfig
from repro.folding.baselines import (
    AF2LikePredictor,
    AF3LikePredictor,
    ideal_helix_ca,
    extended_strand_ca,
    secondary_structure_prior,
)
from repro.folding.predictor import ClassicalFoldingPredictor, QuantumFoldingPredictor


@pytest.fixture(scope="module")
def refgen():
    return ReferenceStructureGenerator()


# -- reference generator --------------------------------------------------------------


def test_reference_is_deterministic_and_cached(refgen):
    a = refgen.generate("3eax", "RYRDV")
    b = refgen.generate("3eax", "RYRDV")
    assert a is b  # cached
    fresh = ReferenceStructureGenerator().generate("3eax", "RYRDV")
    assert np.allclose(a.ca_coords, fresh.ca_coords)


def test_reference_differs_between_pdb_ids(refgen):
    a = refgen.generate("2bok", "EDACQGDSGG")
    b = refgen.generate("2vwo", "EDACQGDSGG")  # same sequence, different protein
    assert not np.allclose(a.ca_coords, b.ca_coords)


def test_reference_structure_is_physical(refgen):
    record = refgen.generate("1ppi", "PWWERYQP")
    ca = record.ca_coords
    bond_lengths = np.linalg.norm(np.diff(ca, axis=0), axis=1)
    assert np.all(bond_lengths > 2.3) and np.all(bond_lengths < 6.0)
    assert record.pocket.radius > 0
    assert record.ground_state_energy > 0


# -- baselines ------------------------------------------------------------------------------


def test_secondary_structure_priors():
    assert ideal_helix_ca(8).shape == (8, 3)
    assert extended_strand_ca(8).shape == (8, 3)
    # Poly-alanine is a strong helix former; poly-glycine/proline is not.
    assert np.allclose(secondary_structure_prior("AAAAAA"), ideal_helix_ca(6))
    assert np.allclose(secondary_structure_prior("GPGPGP"), extended_strand_ca(6))


def test_baselines_deterministic_and_distinct(refgen):
    af2 = AF2LikePredictor(reference_generator=refgen)
    af3 = AF3LikePredictor(reference_generator=refgen)
    p2a = af2.predict("2bok", "EDACQGDSGG")
    p2b = af2.predict("2bok", "EDACQGDSGG")
    p3 = af3.predict("2bok", "EDACQGDSGG")
    assert np.allclose(p2a.structure.ca_coords(), p2b.structure.ca_coords())
    assert not np.allclose(p2a.structure.ca_coords(), p3.structure.ca_coords())
    assert p2a.method == "AF2" and p3.method == "AF3"


def test_af3_more_accurate_than_af2_on_average(refgen):
    """The AF3-like profile recovers more of the true structure than AF2-like."""
    af2 = AF2LikePredictor(reference_generator=refgen)
    af3 = AF3LikePredictor(reference_generator=refgen)
    fragments = [("2bok", "EDACQGDSGG"), ("2qbs", "HCSAGIGRSGT"), ("5nkc", "MIITEYMENGAL"), ("1yc4", "ELISNSSDALDKI")]
    rmsd2, rmsd3 = [], []
    for pdb, seq in fragments:
        ref = refgen.generate(pdb, seq).structure
        rmsd2.append(ca_rmsd(af2.predict(pdb, seq).structure, ref))
        rmsd3.append(ca_rmsd(af3.predict(pdb, seq).structure, ref))
    assert np.mean(rmsd3) < np.mean(rmsd2)


def test_baseline_structures_have_no_ca_clashes(refgen):
    af2 = AF2LikePredictor(reference_generator=refgen)
    structure = af2.predict("4jpy", "DYLEAYGKGGVKAK").structure
    ca = structure.ca_coords()
    dist = np.linalg.norm(ca[:, None, :] - ca[None, :, :], axis=2)
    np.fill_diagonal(dist, np.inf)
    assert dist.min() > 3.0


# -- quantum and classical predictors ------------------------------------------------------------


def test_quantum_predictor_small_fragment_close_to_reference(tiny_config, refgen):
    predictor = QuantumFoldingPredictor(config=tiny_config)
    prediction = predictor.predict("3eax", "RYRDV")
    assert prediction.method == "QDock"
    assert prediction.structure.sequence == "RYRDV"
    reference = refgen.generate("3eax", "RYRDV").structure
    assert ca_rmsd(prediction.structure, reference) < 1.5
    # Resource metadata matches the paper's table for a 5-residue fragment.
    assert prediction.metadata["qubits"] == 12
    assert prediction.metadata["circuit_depth"] == 53
    assert prediction.metadata["execution_time_s"] > 0
    assert prediction.metadata["estimated_cost_usd"] > 0


def test_quantum_predictor_beats_af2_on_small_fragments(tiny_config, refgen):
    quantum = QuantumFoldingPredictor(config=tiny_config)
    af2 = AF2LikePredictor(reference_generator=refgen)
    wins = 0
    fragments = [("3eax", "RYRDV"), ("4mo4", "NIGGF"), ("3ckz", "VKDRS"), ("1e2k", "DGPHGM")]
    for pdb, seq in fragments:
        ref = refgen.generate(pdb, seq).structure
        q = ca_rmsd(quantum.predict(pdb, seq).structure, ref)
        a = ca_rmsd(af2.predict(pdb, seq).structure, ref)
        wins += q < a
    assert wins >= 3  # the paper reports 19/20 S-group wins over AF2


def test_classical_predictor_matches_ground_state(tiny_config, refgen):
    classical = ClassicalFoldingPredictor(config=tiny_config)
    prediction = classical.predict("3eax", "RYRDV")
    assert prediction.metadata["exact"]
    reference = refgen.generate("3eax", "RYRDV").structure
    # The reference is the jittered ground state, so the classical solution is very close.
    assert ca_rmsd(prediction.structure, reference) < 1.0
