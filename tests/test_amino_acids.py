"""Unit tests for the amino-acid tables."""

import pytest

from repro.bio import amino_acids as aa
from repro.exceptions import SequenceError


def test_twenty_standard_amino_acids():
    assert len(aa.AMINO_ACIDS) == 20
    assert len(aa.AA_ORDER) == 20
    assert sorted(aa.AA_ORDER) == list(aa.AA_ORDER)


def test_one_three_roundtrip():
    for code in aa.AA_ORDER:
        assert aa.three_to_one(aa.one_to_three(code)) == code


def test_three_letter_codes_unique():
    threes = [a.three for a in aa.AMINO_ACIDS.values()]
    assert len(set(threes)) == 20


def test_lowercase_accepted():
    assert aa.one_to_three("a") == "ALA"
    assert aa.three_to_one("gly") == "G"


def test_unknown_codes_raise():
    with pytest.raises(SequenceError):
        aa.get("B")
    with pytest.raises(SequenceError):
        aa.one_to_three("X")
    with pytest.raises(SequenceError):
        aa.three_to_one("XYZ")


def test_hydrophobicity_signs():
    # Kyte-Doolittle: Ile most hydrophobic, Arg most hydrophilic.
    assert aa.hydrophobicity("I") == pytest.approx(4.5)
    assert aa.hydrophobicity("R") == pytest.approx(-4.5)
    assert aa.is_hydrophobic("L")
    assert not aa.is_hydrophobic("K")


def test_charges():
    assert aa.residue_charge("D") == -1
    assert aa.residue_charge("E") == -1
    assert aa.residue_charge("K") == 1
    assert aa.residue_charge("R") == 1
    assert aa.residue_charge("A") == 0
    assert sum(abs(aa.residue_charge(c)) for c in aa.AA_ORDER) == 4  # D, E, K, R


def test_masses_and_volumes_positive():
    for code in aa.AA_ORDER:
        assert aa.residue_mass(code) > 50.0
        assert aa.residue_volume(code) > 50.0


def test_glycine_is_smallest():
    assert min(aa.AA_ORDER, key=aa.residue_mass) == "G"
    assert min(aa.AA_ORDER, key=aa.residue_volume) == "G"


def test_is_valid_residue():
    assert aa.is_valid_residue("a")
    assert not aa.is_valid_residue("Z")
    assert not aa.is_valid_residue("1")
