"""The executor-transport test battery: registry/capabilities, the serial and
pool transports, and the adversarial file-queue cases — single-winner claims,
lease expiry, stale-lease reclamation, heartbeats, dead-worker replay, poison
tasks and the repro-worker CLI."""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, ClassVar

import pytest

from repro.cli.worker import main as worker_cli_main
from repro.config import PipelineConfig
from repro.engine import (
    Engine,
    FileQueueSpool,
    FileQueueTransport,
    FileQueueWorker,
    JobFailure,
    PoolTransport,
    SerialTransport,
    make_transport,
    register_executor,
    transport_names,
)
from repro.engine.core import execute_baseline_job
from repro.exceptions import EngineError
from repro.utils.io import _NumpyJSONEncoder

# -- a trivial picklable job kind for the local transports ---------------------------


@dataclass(frozen=True)
class EchoSpec:
    """A spec whose executor returns its name (and crashes on ``boom*``)."""

    name: str

    kind: ClassVar[str] = "echo"

    def content_hash(self) -> str:
        return hashlib.sha256(f"echo/v1\x1f{self.name}".encode("utf-8")).hexdigest()


@dataclass
class EchoResult:
    spec_hash: str
    name: str
    from_cache: bool = False
    kind: str = "echo"

    def shallow_copy(self, from_cache: bool | None = None) -> "EchoResult":
        out = replace(self)
        if from_cache is not None:
            out.from_cache = from_cache
        return out


def execute_echo(spec: EchoSpec) -> EchoResult:
    if spec.name.startswith("boom"):
        raise ValueError(f"echo job {spec.name} exploded")
    return EchoResult(spec_hash=spec.content_hash(), name=spec.name)


register_executor("echo", execute_echo, overwrite=True)


@dataclass(frozen=True)
class PoisonHashSpec:
    """Unpickles fine, but fingerprinting it explodes (the crash-loop bug)."""

    name: str

    kind: ClassVar[str] = "echo"

    def content_hash(self) -> str:
        raise RuntimeError(f"hash of {self.name} exploded")


class _FakeOutcome:
    """A minimal result object for injected-execute worker tests."""

    def __init__(self, payload: dict[str, Any]):
        self._payload = payload

    def to_payload(self) -> dict[str, Any]:
        return self._payload


def _fake_execute(spec: EchoSpec) -> _FakeOutcome:
    return _FakeOutcome({"spec_hash": spec.content_hash(), "schema": "echo/v1", "name": spec.name})


BASE_CONFIG = PipelineConfig(seed=5)


def _baseline_spec(pdb_id: str = "3eax", sequence: str = "RYRDV", method: str = "AF2"):
    from repro.engine import BaselineFoldSpec

    return BaselineFoldSpec(pdb_id=pdb_id, sequence=sequence, method=method, config=BASE_CONFIG)


def _canonical(outcome) -> str:
    return json.dumps(outcome.to_payload(), sort_keys=True, cls=_NumpyJSONEncoder)


# -- registry and capability flags ---------------------------------------------------


def test_transport_registry_and_auto_resolution():
    assert {"serial", "pool", "filequeue", "network"} <= set(transport_names())
    config = PipelineConfig()
    assert isinstance(make_transport("auto", config, processes=0), SerialTransport)
    assert isinstance(make_transport("auto", config, processes=4), PoolTransport)
    # None resolves through config.transport (default "auto").
    assert isinstance(make_transport(None, config, processes=0), SerialTransport)
    with pytest.raises(EngineError, match="unknown transport"):
        make_transport("teleport", config)
    with pytest.raises(EngineError, match="spool_dir"):
        make_transport("filequeue", config)  # filequeue is never implicit
    with pytest.raises(EngineError, match="serve_port"):
        make_transport("network", config.with_updates(serve_port=0))  # nor is network


def test_capability_flags_describe_the_transports():
    from repro.engine import NetworkTransport

    assert SerialTransport.capabilities.ordered
    assert not SerialTransport.capabilities.remote
    assert not PoolTransport.capabilities.ordered
    assert PoolTransport.capabilities.shared_registry
    assert FileQueueTransport.capabilities.remote
    assert not FileQueueTransport.capabilities.shared_registry
    assert NetworkTransport.capabilities.remote
    assert not NetworkTransport.capabilities.ordered
    assert not NetworkTransport.capabilities.shared_registry


# -- serial transport ----------------------------------------------------------------


def test_serial_transport_polls_in_submission_order():
    transport = SerialTransport()
    assert transport.submit([EchoSpec("a"), EchoSpec("b"), EchoSpec("c")]) == 3
    completions = []
    while transport.outstanding():
        completions.extend(transport.poll())
    assert [index for index, _, _ in completions] == [0, 1, 2]
    assert [result.name for _, result, _ in completions] == ["a", "b", "c"]
    with pytest.raises(EngineError, match="one batch"):
        transport.submit([EchoSpec("again")])


def test_serial_transport_isolates_exceptions_and_cancels():
    transport = SerialTransport()
    transport.submit([EchoSpec("a"), EchoSpec("boom"), EchoSpec("b")])
    _, result, exc = transport.poll()[0]
    assert result.name == "a" and exc is None
    index, result, exc = transport.poll()[0]
    assert (index, result) == (1, None)
    assert isinstance(exc, ValueError)
    transport.cancel()  # abandon "b"
    assert transport.outstanding() == 0
    assert transport.poll() == []


# -- pool transport ------------------------------------------------------------------


def test_pool_transport_completes_every_item():
    transport = PoolTransport(processes=2)
    specs = [EchoSpec(f"job{i}") for i in range(4)]
    completions = list(transport.stream(specs))
    assert {index for index, _, _ in completions} == {0, 1, 2, 3}
    for index, result, exc in completions:
        assert exc is None
        assert result.name == f"job{index}"
    transport.cancel()  # idempotent after the stream's own teardown


def test_pool_transport_degrades_to_inprocess_for_a_single_job():
    """One pending job (e.g. a resume's last stray) never pays for a pool —
    it runs in the calling process, where runtime registrations stay live."""
    transport = PoolTransport(processes=4)
    completions = list(transport.stream([EchoSpec("only")]))
    assert transport._pool is None  # no ProcessPoolExecutor was ever built
    assert completions[0][1].name == "only"


def test_pool_transport_ships_exceptions_back():
    transport = PoolTransport(processes=2)
    completions = list(transport.stream([EchoSpec("boom0"), EchoSpec("ok")]))
    by_index = {index: (result, exc) for index, result, exc in completions}
    assert isinstance(by_index[0][1], ValueError)
    assert by_index[1][0].name == "ok"


# -- spool mechanics: claims are single-winner atomic renames ------------------------


def test_spool_claim_is_single_winner(tmp_path):
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    assert spool.task_ids() == ["t1"]
    claim = spool.claim("t1")
    assert claim is not None and claim.exists()
    assert spool.task_ids() == []
    assert spool.claim("t1") is None  # the second claimant loses the rename race
    assert spool.claim_ids() == ["t1"]
    spool.release("t1")
    assert spool.claim_ids() == []


def test_fresh_lease_is_not_reclaimed(tmp_path):
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    spool.claim("t1")
    assert spool.reclaim_stale(lease_timeout=30.0) == []
    assert spool.claim_ids() == ["t1"]


def test_stale_lease_is_reclaimed_exactly_once(tmp_path):
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    claim = spool.claim("t1")
    stale = time.time() - 100
    os.utime(claim, (stale, stale))
    assert spool.reclaim_stale(lease_timeout=5.0) == ["t1"]
    assert spool.task_ids() == ["t1"] and spool.claim_ids() == []
    # A second (racing) reclaimer finds nothing left to requeue.
    assert spool.reclaim_stale(lease_timeout=5.0) == []


def test_stale_claim_with_result_is_dropped_not_requeued(tmp_path):
    """A worker that died *after* publishing its result: the result stands."""
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    claim = spool.claim("t1")
    spool.write_result("t1", {"task_id": "t1", "status": "completed", "payload": {}})
    stale = time.time() - 100
    os.utime(claim, (stale, stale))
    assert spool.reclaim_stale(lease_timeout=5.0) == []
    assert spool.task_ids() == [] and spool.claim_ids() == []
    assert spool.read_result("t1")["status"] == "completed"


def test_heartbeat_refreshes_the_lease_mtime(tmp_path):
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    claim = spool.claim("t1")
    stale = time.time() - 100
    os.utime(claim, (stale, stale))
    assert spool.heartbeat("t1")
    assert spool.reclaim_stale(lease_timeout=5.0) == []
    spool.release("t1")
    assert not spool.heartbeat("t1")  # no claim left to refresh


def test_claim_restarts_the_lease_clock(tmp_path):
    """Rename preserves the task file's mtime — the *enqueue* time — so a
    task that queued longer than the lease timeout must be re-stamped at
    claim time, not reclaimed from its live claimant before the first
    heartbeat fires (the born-stale duplicate-execution bug)."""
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    old = time.time() - 100  # waited in the queue far longer than any lease
    os.utime(spool.task_path("t1"), (old, old))
    assert spool.claim("t1", owner="w1") is not None
    assert spool.reclaim_stale(lease_timeout=5.0) == []  # lease is fresh
    assert spool.claim_ids() == ["t1"]
    assert spool.claim_owner("t1") == "w1"


def test_claim_lost_before_the_lease_touch_returns_none(tmp_path, monkeypatch):
    """A reclaimer can steal a just-renamed claim in the window before the
    lease touch lands (the preserved enqueue mtime looks stale).  The
    claimant must see a lost claim — processing the dangling path would
    publish a spurious 'cannot load task envelope' failure for a perfectly
    runnable task."""
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    real_utime = os.utime

    def reclaimed_under_us(path, *args, **kwargs):
        claim = spool.claim_path("t1")
        if Path(path) == claim:
            claim.rename(spool.task_path("t1"))  # the racing reclaimer
            raise FileNotFoundError(path)
        return real_utime(path, *args, **kwargs)

    monkeypatch.setattr(os, "utime", reclaimed_under_us)
    assert spool.claim("t1", owner="w1") is None
    assert spool.task_ids() == ["t1"]  # still runnable for the fleet
    assert spool.read_result("t1") is None  # and nobody poisoned it


def test_reclaimed_lease_belongs_to_its_new_owner(tmp_path):
    """After a reclaim + re-claim, the previous claimant (alive but presumed
    dead) must neither refresh nor unlink the new owner's claim."""
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    claim = spool.claim("t1", owner="w1")
    stale = time.time() - 100
    os.utime(claim, (stale, stale))  # w1 stops heartbeating (or so it looks)
    assert spool.reclaim_stale(lease_timeout=5.0) == ["t1"]
    assert spool.claim("t1", owner="w2") is not None
    assert spool.claim_owner("t1") == "w2"
    assert not spool.heartbeat("t1", owner="w1")  # zombie can't extend it
    assert not spool.release("t1", owner="w1")  # ...or destroy it
    assert spool.claim_ids() == ["t1"]  # w2's live claim is untouched
    assert spool.heartbeat("t1", owner="w2")
    assert spool.release("t1", owner="w2")
    assert spool.claim_ids() == []


# -- the worker loop -----------------------------------------------------------------


def test_worker_executes_and_publishes_result(tmp_path):
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    worker = FileQueueWorker(spool, worker_id="w1", lease_timeout=5.0, execute=_fake_execute)
    assert worker.run_once() == "t1"
    record = spool.read_result("t1")
    assert record["status"] == "completed"
    assert record["worker_id"] == "w1"
    assert record["payload"]["name"] == "a"
    assert spool.claim_ids() == [] and spool.task_ids() == []
    log_lines = (spool.log_dir / "w1.jsonl").read_text().splitlines()
    assert len(log_lines) == 1
    assert json.loads(log_lines[0])["status"] == "completed"
    assert worker.run_once() is None  # queue drained


def test_worker_publishes_failures_with_the_original_error_type(tmp_path):
    def explode(spec):
        raise ValueError("kapow")

    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    worker = FileQueueWorker(spool, worker_id="w1", lease_timeout=5.0, execute=explode)
    assert worker.run_once() == "t1"
    record = spool.read_result("t1")
    assert record["status"] == "failed"
    assert record["error_type"] == "ValueError"
    assert "kapow" in record["error_message"]
    assert worker.failed == 1 and worker.executed == 0
    assert spool.claim_ids() == []  # the lease is released either way


def test_worker_skips_a_task_whose_result_already_exists(tmp_path):
    """The crash window between result write and claim release never re-runs."""
    calls: list[str] = []

    def recording(spec):
        calls.append(spec.name)
        return _fake_execute(spec)

    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    spool.write_result("t1", {"task_id": "t1", "status": "completed", "payload": {"x": 1}})
    worker = FileQueueWorker(spool, worker_id="w1", lease_timeout=5.0, execute=recording)
    assert worker.run_once() is None
    assert calls == []  # nothing re-executed
    assert spool.task_ids() == [] and spool.claim_ids() == []
    assert spool.read_result("t1")["payload"] == {"x": 1}  # the old result stands


def test_worker_poisons_an_unreadable_task_instead_of_looping(tmp_path):
    spool = FileQueueSpool(tmp_path / "spool")
    spool._atomic_write(spool.task_path("bad"), b"this is not a pickle")
    worker = FileQueueWorker(spool, worker_id="w1", lease_timeout=5.0, execute=_fake_execute)
    assert worker.run_once() == "bad"
    record = spool.read_result("bad")
    assert record["status"] == "failed"
    assert "cannot load task envelope" in record["error_message"]
    assert spool.task_ids() == []  # it will not bounce back into the queue


def test_worker_serialises_numpy_payloads_like_the_cache(tmp_path):
    """A payload with numpy scalars/arrays (legal in cache files) must cross
    the spool too, not crash the worker at result-write time."""
    import numpy as np

    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    payload = {"spec_hash": "x", "schema": "echo/v1",
               "value": np.float64(1.5), "coords": np.arange(3.0)}
    worker = FileQueueWorker(spool, worker_id="w1", lease_timeout=5.0,
                             execute=lambda spec: _FakeOutcome(payload))
    assert worker.run_once() == "t1"
    record = spool.read_result("t1")
    assert record["status"] == "completed"
    assert record["payload"]["value"] == 1.5
    assert record["payload"]["coords"] == [0.0, 1.0, 2.0]


def test_worker_turns_an_unserialisable_payload_into_a_failure(tmp_path):
    """A result that cannot be encoded resolves the task as failed instead of
    killing the worker and crash-looping the fleet on the reclaimed lease."""
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    worker = FileQueueWorker(
        spool, worker_id="w1", lease_timeout=5.0,
        execute=lambda spec: _FakeOutcome({"oops": object()}),
    )
    assert worker.run_once() == "t1"
    record = spool.read_result("t1")
    assert record["status"] == "failed"
    assert "not JSON-serialisable" in record["error_message"]
    assert spool.task_ids() == [] and spool.claim_ids() == []


def test_worker_survives_a_spec_whose_content_hash_raises(tmp_path):
    """The fleet crash-loop regression: a spec that unpickles but whose
    ``content_hash()`` raises used to kill the worker before any heartbeat —
    the lease went stale, the next fleet member died the same way, and one
    task burned the entire respawn budget.  It must resolve as a failed
    *result*, exactly like an unpicklable envelope."""
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("1-poison", PoisonHashSpec("p"))
    spool.enqueue("2-good", EchoSpec("a"))
    worker = FileQueueWorker(spool, worker_id="w1", lease_timeout=5.0, execute=_fake_execute)
    assert worker.run_once() == "1-poison"  # no exception escaped
    record = spool.read_result("1-poison")
    assert record["status"] == "failed"
    assert record["error_type"] == "RuntimeError"
    assert "cannot fingerprint task spec" in record["error_message"]
    assert "exploded" in record["error_message"]
    # The same worker keeps serving — no crash, no stale lease left behind.
    assert worker.run_once() == "2-good"
    assert spool.read_result("2-good")["status"] == "completed"
    assert spool.task_ids() == [] and spool.claim_ids() == []
    assert worker.failed == 1 and worker.executed == 1


def test_worker_heartbeat_keeps_a_long_job_leased(tmp_path):
    """Reclamation must never steal a lease whose worker is alive but slow."""
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("slow"))
    finish = threading.Event()

    def slow(spec):
        finish.wait(timeout=5.0)
        return _fake_execute(spec)

    worker = FileQueueWorker(
        spool, worker_id="w1", lease_timeout=0.3, heartbeat_interval=0.05, execute=slow
    )
    thread = threading.Thread(target=worker.run_once, daemon=True)
    thread.start()
    deadline = time.monotonic() + 0.9  # three lease lifetimes
    stolen = []
    while time.monotonic() < deadline:
        stolen.extend(spool.reclaim_stale(lease_timeout=0.3))
        time.sleep(0.05)
    finish.set()
    thread.join(timeout=5.0)
    assert stolen == []  # the heartbeat kept the lease fresh throughout
    assert spool.read_result("t1")["status"] == "completed"


def test_dead_workers_job_is_replayed_exactly_once(tmp_path):
    """SIGKILL mid-job: the stale lease requeues and one survivor re-runs it."""
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    claim = spool.claim("t1")  # a worker claimed it, then died without a result
    stale = time.time() - 100
    os.utime(claim, (stale, stale))

    survivor = FileQueueWorker(spool, worker_id="w2", lease_timeout=5.0, execute=_fake_execute)
    assert survivor.run_once() is None  # still leased until someone reclaims
    assert spool.reclaim_stale(lease_timeout=5.0) == ["t1"]
    assert survivor.run_once() == "t1"
    assert survivor.run_once() is None  # replayed once, not twice
    assert spool.read_result("t1")["status"] == "completed"
    log_lines = (spool.log_dir / "w2.jsonl").read_text().splitlines()
    assert len(log_lines) == 1  # exactly one completed execution on the fleet


def test_zombie_worker_finish_spares_the_new_owners_claim(tmp_path):
    """A worker whose lease was reclaimed mid-job must not unlink the claim
    its replacement now holds — that would invite a third execution."""
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", EchoSpec("a"))
    gate = threading.Event()

    def slow(spec):
        gate.wait(timeout=5.0)
        return _fake_execute(spec)

    zombie = FileQueueWorker(
        spool, worker_id="w1", lease_timeout=5.0, heartbeat_interval=60.0, execute=slow
    )
    thread = threading.Thread(target=zombie.run_once, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5.0
    while not spool.claim_ids() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert spool.claim_owner("t1") == "w1"
    # Mid-job, the lease looks stale (no heartbeat yet) and is stolen:
    stale = time.time() - 100
    os.utime(spool.claim_path("t1"), (stale, stale))
    assert spool.reclaim_stale(lease_timeout=5.0) == ["t1"]
    assert spool.claim("t1", owner="w2") is not None
    gate.set()
    thread.join(timeout=5.0)
    assert spool.read_result("t1")["status"] == "completed"  # w1 published
    assert spool.claim_ids() == ["t1"]  # but left w2's live claim alone
    assert spool.claim_owner("t1") == "w2"


def test_worker_serve_honours_stop_sentinel_and_max_jobs(tmp_path):
    spool = FileQueueSpool(tmp_path / "spool")
    spool.stop_path.touch()
    worker = FileQueueWorker(spool, lease_timeout=5.0, execute=_fake_execute)
    assert worker.serve() == 0  # exits immediately, processes nothing

    spool.stop_path.unlink()
    for i in range(3):
        spool.enqueue(f"t{i}", EchoSpec(f"j{i}"))
    assert worker.serve(max_jobs=2) == 2
    assert len(spool.task_ids()) == 1  # the third task is left for the fleet


# -- the filequeue transport ---------------------------------------------------------


def test_filequeue_transport_poll_times_out_and_cancel_withdraws(tmp_path):
    transport = FileQueueTransport(tmp_path / "spool", workers=0, lease_timeout=5.0,
                                   poll_interval=0.01)
    assert transport.submit([_baseline_spec()]) == 1
    assert transport.poll(timeout=0.05) == []  # no workers: nothing lands
    assert transport.outstanding() == 1
    transport.cancel()
    assert transport.outstanding() == 0
    assert transport.spool.task_ids() == []  # the unclaimed task was withdrawn
    transport.cancel()  # idempotent


def test_filequeue_transport_refuses_a_stopped_spool(tmp_path):
    """Submitting against a spool whose fleet was wound down would hang
    forever (workers=0) or crash-loop respawns — refuse it up front."""
    transport = FileQueueTransport(tmp_path / "spool", workers=0, lease_timeout=5.0)
    transport.spool.stop_path.touch()
    with pytest.raises(EngineError, match="stop"):
        transport.submit([_baseline_spec()])
    assert transport.spool.task_ids() == []  # nothing was enqueued


def test_filequeue_transport_raises_when_spool_stopped_mid_batch(tmp_path):
    """A 'stop' sentinel appearing mid-batch means the rest of the batch can
    never finish; poll must say so instead of burning respawn_limit (spawned
    workers exit 0 on the sentinel) or hanging forever (external fleets)."""
    transport = FileQueueTransport(tmp_path / "spool", workers=0, lease_timeout=5.0,
                                   poll_interval=0.01)
    transport.submit([_baseline_spec()])
    transport.spool.stop_path.touch()
    with pytest.raises(EngineError, match="stopped by an operator"):
        transport.poll(timeout=1.0)
    transport.cancel()


def test_filequeue_transport_warns_on_external_reliance_and_stall(tmp_path, caplog, monkeypatch):
    """workers=0 with no external daemons must not hang silently: submit
    warns about the reliance and poll warns periodically while stalled."""
    import repro.engine.transports.filequeue as fq

    monkeypatch.setattr(fq, "_STALL_WARN_INTERVAL", 0.05)
    monkeypatch.setattr(fq.logger, "propagate", True)  # let caplog see it
    transport = FileQueueTransport(tmp_path / "spool", workers=0, lease_timeout=5.0,
                                   poll_interval=0.01)
    with caplog.at_level("WARNING", logger=fq.logger.name):
        transport.submit([_baseline_spec()])
        assert transport.poll(timeout=0.3) == []
    messages = [record.getMessage() for record in caplog.records]
    assert any("relies entirely on external repro-worker daemons" in m for m in messages)
    assert any("no progress for" in m for m in messages)
    transport.cancel()


def test_filequeue_transport_end_to_end_with_inprocess_worker(tmp_path):
    specs = [_baseline_spec(method="AF2"), _baseline_spec(method="AF3")]
    transport = FileQueueTransport(tmp_path / "spool", workers=0, lease_timeout=5.0,
                                   poll_interval=0.01)
    worker = FileQueueWorker(transport.spool, lease_timeout=5.0, poll_interval=0.01)
    thread = threading.Thread(target=worker.serve, kwargs={"max_jobs": 2}, daemon=True)
    thread.start()
    completions = sorted(transport.stream(specs), key=lambda c: c[0])
    thread.join(timeout=30.0)

    assert [index for index, _, _ in completions] == [0, 1]
    for (index, result, exc), spec in zip(completions, specs):
        assert exc is None
        assert not result.from_cache  # executed remotely, not a cache hit
        assert _canonical(result) == _canonical(execute_baseline_job(spec))


def test_filequeue_transport_reclaims_a_stale_lease_while_polling(tmp_path):
    transport = FileQueueTransport(tmp_path / "spool", workers=0, lease_timeout=0.2,
                                   poll_interval=0.01)
    transport.submit([_baseline_spec()])
    task_id = next(iter(transport._outstanding))
    claim = transport.spool.claim(task_id)  # a doomed worker grabs it and dies
    stale = time.time() - 100
    os.utime(claim, (stale, stale))
    assert transport.poll(timeout=0.3) == []  # maintenance ran while waiting
    assert transport.reclaimed >= 1
    assert transport.spool.task_ids() == [task_id]  # requeued for the fleet
    transport.cancel()


def test_filequeue_quarantines_a_permanently_corrupt_result(tmp_path, monkeypatch):
    """When the transport gives up on an unreadable result file, the file
    must be moved aside (``.json.bad``) and the claim sidecars dropped —
    left in place, a worker's result-exists check would treat the task as
    resolved forever while the submitter just reported it failed."""
    import repro.engine.transports.filequeue as fq

    monkeypatch.setattr(fq, "_MAX_BAD_RESULT_READS", 3)
    transport = FileQueueTransport(tmp_path / "spool", workers=0, lease_timeout=5.0,
                                   poll_interval=0.01)
    transport.submit([_baseline_spec()])
    task_id = next(iter(transport._outstanding))
    spool = transport.spool
    spool.claim(task_id, owner="w1")  # the (doomed) worker held the lease
    spool._atomic_write(spool.result_path(task_id), b"this is not json")

    completions: list = []
    deadline = time.monotonic() + 5.0
    while not completions and time.monotonic() < deadline:
        completions = transport.poll(timeout=0.2)
    (index, result, exc) = completions[0]
    assert result is None
    assert exc.error_type == "SpoolError"
    assert "unreadable result file" in exc.error_message
    # The corrupt file was quarantined, not left masquerading as a result.
    assert spool.read_result(task_id) is None
    assert not spool.result_path(task_id).exists()
    bad = spool.result_path(task_id).with_suffix(".json.bad")
    assert bad.read_bytes() == b"this is not json"
    assert spool.claim_ids() == [] and spool.claim_owner(task_id) is None
    transport.cancel()


def test_spool_clock_offset_protects_live_leases_from_skew(tmp_path, monkeypatch):
    """The clock-skew mass-reclaim regression: claim mtimes are stamped by
    the (possibly remote) filesystem while staleness was judged with the
    worker-local clock — a worker 30 s ahead reclaimed every live lease in
    the spool at once.  The startup probe folds the measured offset into
    lease ages, so a fresh claim stays fresh under ±30 s of skew."""
    real_time = time.time
    monkeypatch.setattr(time, "time", lambda: real_time() + 30.0)
    spool = FileQueueSpool(tmp_path / "spool")  # probe runs under skew
    assert -31.0 < spool.clock_offset < -29.0  # spool clock ≈ local - 30 s
    spool.enqueue("t1", EchoSpec("a"))
    spool.claim("t1", owner="w1")  # mtime stamped by the "file server"
    # Naive staleness (offset forced to zero) would mass-reclaim right now:
    spool.clock_offset = 0.0
    assert spool.lease_age(spool.claim_path("t1").stat().st_mtime) > 25.0
    spool.clock_offset = -30.0
    # ...but judged in spool time, the lease is seconds old and survives.
    assert spool.reclaim_stale(lease_timeout=5.0) == []
    assert spool.claim_ids() == ["t1"]
    # Genuinely stale leases are still reclaimed under the same skew.
    stamp = real_time() - 100
    os.utime(spool.claim_path("t1"), (stamp, stamp))
    assert spool.reclaim_stale(lease_timeout=5.0) == ["t1"]


def test_spool_clock_offset_is_zero_on_a_local_filesystem(tmp_path):
    """Sub-second probe differences are write latency, not skew."""
    spool = FileQueueSpool(tmp_path / "spool")
    assert spool.clock_offset == 0.0
    assert not list(spool.root.glob(".clock-probe-*"))  # probe cleaned up


def test_filequeue_failure_keeps_original_error_type_through_the_engine(tmp_path):
    config = BASE_CONFIG.with_updates(
        transport="filequeue", spool_dir=str(tmp_path / "spool"),
        transport_workers=0, transport_lease_timeout=5.0, transport_poll_interval=0.01,
    )
    engine = Engine(config=config)
    bad = engine.baseline_spec("3eax", "RYRDV", "AF9")  # unknown baseline method
    worker = FileQueueWorker(str(tmp_path / "spool"), lease_timeout=5.0, poll_interval=0.01)
    thread = threading.Thread(target=worker.serve, kwargs={"max_jobs": 1}, daemon=True)
    thread.start()
    outcomes = engine.run([bad], on_error="isolate")
    thread.join(timeout=30.0)

    failure = outcomes[0]
    assert isinstance(failure, JobFailure)
    # The worker's EngineError crossed the spool as data, not as a pickle,
    # and the failure record still names the original type.
    assert failure.error_type == "EngineError"
    assert "AF9" in failure.error_message
    assert engine.stats()["failed_jobs"] == 1


# -- the repro-worker CLI ------------------------------------------------------------


def test_worker_cli_serves_a_task_and_exits(tmp_path, capsys):
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("task-1", _baseline_spec())
    rc = worker_cli_main([
        str(tmp_path / "spool"), "--worker-id", "cli-w", "--max-jobs", "1",
        "--lease-timeout", "5", "--poll-interval", "0.01",
    ])
    assert rc == 0
    assert spool.read_result("task-1")["status"] == "completed"
    assert "processed 1 tasks" in capsys.readouterr().err


def test_worker_cli_stops_on_sentinel(tmp_path, capsys):
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("task-1", _baseline_spec())
    spool.stop_path.touch()
    rc = worker_cli_main([str(tmp_path / "spool"), "--max-jobs", "5"])
    assert rc == 0
    assert spool.read_result("task-1") is None  # wound down before claiming it


def test_worker_cli_rejects_a_bad_preload(tmp_path, capsys):
    rc = worker_cli_main([str(tmp_path / "spool"), "--preload", "no.such.module"])
    assert rc == 2
    assert "cannot preload" in capsys.readouterr().err
