"""Tests for the repro-bench suite, trajectory schema and CLI."""

import json

import pytest

from repro.bench.suite import BENCHMARKS, METRIC_UNITS, derived_metrics, run_suite
from repro.bench.trajectory import (
    BENCH_SCHEMA_VERSION,
    build_report,
    compare_reports,
    find_previous_report,
    load_report,
    machine_fingerprint,
    next_bench_id,
    regressions,
    validate_report,
    write_report,
)
from repro.cli.bench import main
from repro.config import PipelineConfig
from repro.exceptions import ReproError


@pytest.fixture(scope="module")
def scoring_results():
    """One cheap real suite run (docking scoring only, single repeat)."""
    config = PipelineConfig(bench_pose_batch=16)
    return run_suite(config=config, smoke=True, repeats=1, only="docking-scoring")


def _report_from(results, derived, bench_id=3):
    return build_report(
        bench_id=bench_id, results=results, derived=derived,
        repeats=1, pose_batch=16, smoke=True,
    )


# -- suite ------------------------------------------------------------------------


def test_run_suite_docking_scoring_metrics(scoring_results):
    results, derived = scoring_results
    assert set(results) == {
        "docking.poses_scored_per_sec.batch",
        "docking.poses_scored_per_sec.scalar",
    }
    for metric, entry in results.items():
        assert entry["unit"] == METRIC_UNITS[metric]
        assert entry["repeats"] == len(entry["values"]) == 1
        assert entry["median"] > 0
        assert entry["p10"] <= entry["median"] <= entry["p90"]
    assert derived["docking.batch_speedup"] > 1.0


def test_run_suite_unknown_filter_raises():
    with pytest.raises(ReproError):
        run_suite(smoke=True, repeats=1, only="no-such-benchmark")


def test_every_benchmark_has_units_registered():
    assert len(BENCHMARKS) == 7
    names = {name for name, _fn in BENCHMARKS}
    assert names == {
        "docking-scoring", "statevector", "vqe-objective",
        "docking-search", "cache-remote", "dataset-build",
        "transport-overhead",
    }
    # derived_metrics only emits ratios whose inputs exist.
    assert derived_metrics({}) == {}


# -- report schema ----------------------------------------------------------------


def test_build_validate_write_load_roundtrip(scoring_results, tmp_path):
    results, derived = scoring_results
    report = _report_from(results, derived)
    assert report["schema"] == BENCH_SCHEMA_VERSION
    assert report["machine"] == machine_fingerprint()
    assert validate_report(report) == []
    path = write_report(tmp_path / "BENCH_3.json", report)
    assert load_report(path) == report


def test_validate_report_failure_modes(scoring_results):
    results, derived = scoring_results
    good = _report_from(results, derived)
    assert validate_report("not a dict")
    assert validate_report({**good, "schema": "bench/v0"})
    assert validate_report({**good, "benchmarks": {}})
    broken = json.loads(json.dumps(good))
    del broken["benchmarks"]["docking.poses_scored_per_sec.batch"]["median"]
    assert validate_report(broken)
    assert validate_report({**good, "derived": {"docking.batch_speedup": -1.0}})


def test_trajectory_numbering(tmp_path):
    assert find_previous_report(tmp_path) is None
    assert next_bench_id(tmp_path) == 1
    (tmp_path / "BENCH_2.json").write_text("{}")
    (tmp_path / "BENCH_5.json").write_text("{}")
    (tmp_path / "BENCH_x.json").write_text("{}")  # ignored: not a trajectory file
    assert find_previous_report(tmp_path).name == "BENCH_5.json"
    assert find_previous_report(tmp_path, before_id=5).name == "BENCH_2.json"
    assert next_bench_id(tmp_path) == 6


# -- comparison and gating --------------------------------------------------------


def test_compare_reports_same_machine_lists_benchmark_deltas(scoring_results):
    results, derived = scoring_results
    previous = _report_from(results, derived, bench_id=2)
    current = _report_from(results, derived, bench_id=3)
    comparison = compare_reports(current, previous, "BENCH_2.json")
    assert comparison["same_machine"] is True
    deltas = comparison["deltas"]
    assert deltas["docking.poses_scored_per_sec.batch"]["ratio"] == pytest.approx(1.0)
    assert deltas["derived.docking.batch_speedup"]["ratio"] == pytest.approx(1.0)


def test_compare_reports_different_machine_keeps_only_derived(scoring_results):
    results, derived = scoring_results
    previous = _report_from(results, derived, bench_id=2)
    previous["machine"] = {**previous["machine"], "processor": "other-cpu"}
    comparison = compare_reports(_report_from(results, derived), previous, "BENCH_2.json")
    assert comparison["same_machine"] is False
    assert set(comparison["deltas"]) == {"derived.docking.batch_speedup"}


def test_regressions_gate_derived_ratios_on_any_machine(scoring_results):
    results, derived = scoring_results
    current = _report_from(results, derived)
    previous = _report_from(results, {"docking.batch_speedup": derived["docking.batch_speedup"] * 10})
    previous["machine"] = {**previous["machine"], "processor": "other-cpu"}
    failures = regressions(current, previous, max_ratio=2.0)
    assert failures and "derived.docking.batch_speedup" in failures[0]
    # A generous ceiling passes.
    assert regressions(current, previous, max_ratio=20.0) == []


def test_smoke_vs_full_compares_only_derived_even_on_same_machine(scoring_results):
    # A smoke run shrinks the workloads, so its absolute medians must not be
    # gated against a committed full-mode report even on the same hardware.
    results, derived = scoring_results
    previous = _report_from(results, derived, bench_id=2)
    previous["smoke"] = False
    current = _report_from(results, derived, bench_id=3)
    comparison = compare_reports(current, previous, "BENCH_2.json")
    assert comparison["same_machine"] is True
    assert comparison["medians_compared"] is False
    assert set(comparison["deltas"]) == {"derived.docking.batch_speedup"}
    slow = json.loads(json.dumps(results))
    for entry in slow.values():
        entry["median"] = entry["median"] / 10.0
    assert regressions(_report_from(slow, derived), previous, max_ratio=2.0) == []


def test_regressions_gate_medians_only_on_same_machine(scoring_results):
    results, derived = scoring_results
    slow = json.loads(json.dumps(results))
    for entry in slow.values():
        entry["median"] = entry["median"] / 10.0
    current = _report_from(slow, derived)
    previous = _report_from(results, derived, bench_id=2)
    assert regressions(current, previous, max_ratio=2.0)  # same machine: gated
    current["machine"] = {**current["machine"], "processor": "other-cpu"}
    assert regressions(current, previous, max_ratio=2.0) == []  # different: skipped


# -- CLI --------------------------------------------------------------------------


def test_cli_run_writes_valid_report(tmp_path, capsys):
    root = tmp_path / "traj"
    root.mkdir()
    code = main(["--root", str(root), "--smoke", "--repeats", "1", "--only", "docking-scoring"])
    assert code == 0
    report = load_report(root / "BENCH_1.json")
    assert validate_report(report) == []
    assert report["bench_id"] == 1
    assert "comparison" not in report  # nothing to compare against
    assert "docking.batch_speedup" in capsys.readouterr().out


def test_cli_run_embeds_comparison_against_previous(tmp_path, scoring_results):
    results, derived = scoring_results
    write_report(tmp_path / "BENCH_1.json", _report_from(results, derived, bench_id=1))
    code = main(["--root", str(tmp_path), "--smoke", "--repeats", "1", "--only", "docking-scoring"])
    assert code == 0
    report = load_report(tmp_path / "BENCH_2.json")
    assert report["comparison"]["previous"] == "BENCH_1.json"
    assert report["comparison"]["same_machine"] is True


def test_cli_validate_and_gate(tmp_path, scoring_results):
    results, derived = scoring_results
    good = write_report(tmp_path / "BENCH_3.json", _report_from(results, derived))
    previous = write_report(tmp_path / "BENCH_2.json", _report_from(results, derived, bench_id=2))
    assert main(["--validate", str(good)]) == 0
    assert main(["--validate", str(good), "--against", str(previous)]) == 0
    bad = _report_from(results, derived)
    bad["schema"] = "bench/v0"
    bad_path = write_report(tmp_path / "bad.json", bad)
    assert main(["--validate", str(bad_path)]) == 1


def test_cli_gate_failure_exits_nonzero(tmp_path, scoring_results):
    results, derived = scoring_results
    current = write_report(tmp_path / "BENCH_3.json", _report_from(results, derived))
    inflated = _report_from(results, {k: v * 10 for k, v in derived.items()}, bench_id=2)
    previous = write_report(tmp_path / "BENCH_2.json", inflated)
    assert main(["--validate", str(current), "--against", str(previous)]) == 1


def test_cli_usage_errors(tmp_path):
    assert main(["--against", "whatever.json"]) == 2  # --against needs --validate
    assert main(["--root", str(tmp_path / "missing")]) == 2
    assert main(["--root", str(tmp_path), "--only", "no-such-benchmark"]) == 2
    assert main(["--validate", str(tmp_path / "missing.json")]) == 1
