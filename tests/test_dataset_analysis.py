"""Tests for the dataset (fragments, builder, persistence) and the analysis layer."""

import numpy as np
import pytest

from repro.analysis.ascii_plots import deviation_profile, histogram, scatter_plot
from repro.analysis.comparison import compare_methods, per_residue_case_study
from repro.analysis.interactions import interaction_coverage
from repro.analysis.report import (
    PAPER_WIN_RATES,
    build_case_study_table,
    build_group_table,
    dataset_scale_summary,
    format_table,
    winrate_report,
)
from repro.analysis.statistics import aggregate_statistics, encoding_resource_table, resource_gradient
from repro.config import PipelineConfig
from repro.dataset.bank import QDockBank
from repro.dataset.builder import DatasetBuilder
from repro.dataset.fragments import (
    GROUPS,
    PAPER_FRAGMENTS,
    fragment_by_pdb_id,
    fragments_by_group,
)
from repro.exceptions import DatasetError


# -- fragment tables ------------------------------------------------------------------


def test_55_fragments_with_paper_group_sizes():
    assert len(PAPER_FRAGMENTS) == 55
    assert len(fragments_by_group("L")) == 12
    assert len(fragments_by_group("M")) == 23
    assert len(fragments_by_group("S")) == 20


def test_fragment_lengths_match_groups():
    for f in PAPER_FRAGMENTS:
        if f.group == "S":
            assert 5 <= f.length <= 8
        elif f.group == "M":
            assert 9 <= f.length <= 12
        else:
            assert 13 <= f.length <= 14
        assert f.residue_end - f.residue_start + 1 == f.length


def test_paper_energy_ranges_consistent():
    # A couple of rows in the published tables are internally inconsistent
    # (e.g. 4zb8), so require consistency for the overwhelming majority only.
    consistent = sum(
        abs(f.paper.energy_range - (f.paper.highest_energy - f.paper.lowest_energy)) < 1.0
        for f in PAPER_FRAGMENTS
    )
    assert consistent >= 50
    assert all(f.paper.energy_range > 0 for f in PAPER_FRAGMENTS)


def test_fragment_lookup():
    assert fragment_by_pdb_id("4JPY").sequence == "DYLEAYGKGGVKAK"
    with pytest.raises(DatasetError):
        fragment_by_pdb_id("zzzz")


def test_repeated_sequences_present():
    """Sequences like EDACQGDSGG and LLDTGADDTV appear in multiple protein contexts (Sec. 4.1)."""
    seqs = [f.sequence for f in PAPER_FRAGMENTS]
    assert seqs.count("EDACQGDSGG") == 2
    assert seqs.count("LLDTGADDTV") == 3


# -- interaction coverage (Fig. 5) --------------------------------------------------------


def test_interaction_coverage_matches_paper_shape():
    cov = interaction_coverage()
    assert cov.total_pairs == 400
    # Paper: 395/400 (98.75%).  The exact count is a property of the 55
    # sequences, so it reproduces identically here.
    assert cov.covered_pairs >= 380
    assert cov.coverage_fraction >= 0.95
    assert cov.frequency.shape == (20, 20)
    assert np.array_equal(cov.frequency, cov.frequency.T)
    assert 0.9 <= cov.mj_coverage_fraction <= 1.0
    assert len(cov.most_frequent(5)) == 5


def test_interaction_coverage_subset_smaller():
    small = interaction_coverage(list(PAPER_FRAGMENTS[:5]))
    full = interaction_coverage()
    assert small.covered_pairs < full.covered_pairs


# -- resource gradient and tables -----------------------------------------------------------


def test_resource_gradient_from_paper_values():
    gradient = resource_gradient(use_paper_values=True)
    assert set(gradient) == set(GROUPS)
    assert gradient["S"].qubit_mean < gradient["M"].qubit_mean < gradient["L"].qubit_mean
    assert gradient["S"].energy_range_mean < gradient["M"].energy_range_mean < gradient["L"].energy_range_mean
    # Paper text quotes 98.2; its own table averages to 99.5 — accept either.
    assert gradient["L"].qubit_mean == pytest.approx(98.2, abs=2.0)
    assert gradient["M"].qubit_mean == pytest.approx(79.4, abs=15.0)
    assert gradient["S"].qubit_mean == pytest.approx(34.0, abs=15.0)


def test_encoding_resource_table_matches_depth_relation():
    for row in encoding_resource_table():
        assert row["depth"] == 4 * row["qubits"] + 5


def test_group_table_without_bank_uses_paper_values():
    rows = build_group_table("L")
    assert len(rows) == 12
    assert rows[0]["qubits"] == rows[0]["paper_qubits"]
    text = format_table(rows, columns=["pdb_id", "sequence", "qubits", "depth"])
    assert "pdb_id" in text and "1yc4" in text


def test_dataset_scale_summary():
    summary = dataset_scale_summary()
    assert summary["fragments"] == 55
    assert summary["paper_total_exec_time_s"] > 1_000_000


# -- end-to-end mini bank --------------------------------------------------------------------


@pytest.fixture(scope="module")
def mini_bank():
    config = PipelineConfig(
        vqe_iterations=10,
        optimisation_shots=64,
        final_shots=512,
        docking_seeds=2,
        docking_poses=3,
        docking_mc_steps=60,
        seed=7,
    )
    builder = DatasetBuilder(config=config, processes=0)
    fragments = builder.select_fragments(pdb_ids=["3eax", "1e2k", "2bok", "3b26"])
    return builder.build(fragments)


def test_mini_bank_entries_complete(mini_bank):
    assert len(mini_bank) == 4
    for entry in mini_bank:
        assert set(entry.evaluations) == {"QDock", "AF2", "AF3"}
        assert entry.quantum_metadata["qubits"] == entry.fragment.paper.qubits
        assert entry.quantum_metadata["circuit_depth"] == entry.fragment.paper.depth
        for ev in entry.evaluations.values():
            assert ev.ca_rmsd >= 0.0
            assert ev.affinity < 0.0


def test_mini_bank_roundtrip_via_disk(mini_bank, tmp_path):
    root = mini_bank.save(tmp_path / "bank")
    assert (root / "index.json").exists()
    loaded = QDockBank.load(root)
    assert len(loaded) == len(mini_bank)
    original = mini_bank.entry("3eax").evaluation("QDock")
    reloaded = loaded.entry("3eax").evaluation("QDock")
    assert reloaded.ca_rmsd == pytest.approx(original.ca_rmsd, abs=1e-6)
    assert loaded.entry("3eax").predicted_structure is not None


def test_comparison_and_reports_from_mini_bank(mini_bank):
    comparisons = {m: compare_methods(mini_bank, m) for m in ("AF2", "AF3")}
    af2 = comparisons["AF2"]
    wins, total = af2.wins("rmsd", "All")
    assert total == 4
    assert 0 <= wins <= total
    summary = af2.summary()
    assert "rmsd" in summary and "affinity" in summary

    rows = winrate_report(comparisons)
    assert any(r["baseline"] == "AF3" and r["metric"] == "rmsd" for r in rows)
    assert set(PAPER_WIN_RATES) == {"AF2", "AF3"}

    stats = aggregate_statistics(mini_bank)
    assert stats["rmsd"]["QDock"].count == 4
    assert stats["affinity"]["AF3"].mean < 0

    case_rows = build_case_study_table(mini_bank, "2bok", methods=("QDock", "AF3"))
    assert len(case_rows) == 2

    gradient = resource_gradient(mini_bank)
    assert "S" in gradient and "M" in gradient


def test_case_study_and_ascii_plots(mini_bank):
    study = per_residue_case_study(mini_bank, "2bok", methods=("QDock", "AF3"))
    assert set(study.methods) == {"QDock", "AF3"}
    assert study.methods["QDock"].shape[0] == 10

    panel = compare_methods(mini_bank, "AF3").panel("rmsd", "All")
    plot = scatter_plot(panel.baseline_values, panel.reference_values, title="RMSD")
    assert "o" in plot
    hist = histogram(panel.reference_values, bins=4, title="rmsd")
    assert "#" in hist
    profile = deviation_profile(study.methods)
    assert "QDock" in profile


def test_builder_fragment_selection_errors():
    builder = DatasetBuilder()
    with pytest.raises(DatasetError):
        builder.select_fragments(pdb_ids=["doesnotexist"])
    with pytest.raises(DatasetError):
        builder.build(fragments=[])
    subset = builder.select_fragments(groups=["S"], limit_per_group=3)
    assert len(subset) == 3
