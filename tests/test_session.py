"""Tests for streaming engine sessions: failure isolation, journals, resume,
progress events, the streaming BatchProcessor and the repro-session CLI."""

from __future__ import annotations

import hashlib
import json
import random
import shutil
from dataclasses import dataclass, replace
from pathlib import Path
from typing import ClassVar

import pytest

from repro.cli.session import main as session_cli_main
from repro.config import PipelineConfig
from repro.dataset.batch import BatchProcessor
from repro.dataset.builder import DatasetBuilder
from repro.engine import Engine, JobFailure, SessionJournal
from repro.engine.core import execute_fold_job
from repro.engine.registry import register_executor
from repro.exceptions import EngineError

# -- a deliberately crashing job kind ------------------------------------------------
#
# ``flaky`` jobs execute in-process (serial sessions), so the tests can steer
# failures through FAIL_NAMES and observe execution order through EXECUTED.

FAIL_NAMES: set[str] = set()
EXECUTED: list[str] = []


@dataclass(frozen=True)
class FlakySpec:
    """A trivial job spec whose executor crashes when told to."""

    name: str

    kind: ClassVar[str] = "flaky"

    def content_hash(self) -> str:
        return hashlib.sha256(f"flaky/v1\x1f{self.name}".encode("utf-8")).hexdigest()


@dataclass
class FlakyResult:
    spec_hash: str
    name: str
    value: float
    from_cache: bool = False
    kind: str = "flaky"

    def shallow_copy(self, from_cache: bool | None = None) -> "FlakyResult":
        out = replace(self)
        if from_cache is not None:
            out.from_cache = from_cache
        return out


def execute_flaky(spec: FlakySpec) -> FlakyResult:
    EXECUTED.append(spec.name)
    if spec.name in FAIL_NAMES:
        raise ValueError(f"flaky job {spec.name} exploded")
    return FlakyResult(spec_hash=spec.content_hash(), name=spec.name, value=float(len(spec.name)))


register_executor("flaky", execute_flaky, overwrite=True)


@pytest.fixture(autouse=True)
def _reset_flaky_state():
    FAIL_NAMES.clear()
    EXECUTED.clear()
    yield
    FAIL_NAMES.clear()


@pytest.fixture
def session_engine(tmp_path) -> Engine:
    """A serial engine journalling to a tmp session_dir (no result cache)."""
    return Engine(
        config=PipelineConfig(session_dir=str(tmp_path / "sessions")), processes=0
    )


# -- failure isolation ---------------------------------------------------------------


def test_failing_job_is_isolated_and_batch_completes(session_engine):
    FAIL_NAMES.add("bad")
    jobs = [FlakySpec("a"), FlakySpec("bad"), FlakySpec("b")]
    outcomes = session_engine.submit(jobs, session_id="iso").results()

    assert EXECUTED == ["a", "bad", "b"]  # the crash did not stop the batch
    assert isinstance(outcomes[0], FlakyResult) and outcomes[0].name == "a"
    assert isinstance(outcomes[2], FlakyResult) and outcomes[2].name == "b"
    failure = outcomes[1]
    assert isinstance(failure, JobFailure)
    assert failure.spec_hash == FlakySpec("bad").content_hash()
    assert failure.kind == "flaky"
    assert failure.error_type == "ValueError"
    assert "bad exploded" in failure.error_message

    stats = session_engine.stats()
    assert stats["executed_jobs"] == 2
    assert stats["failed_jobs"] == 1
    assert stats["completed_jobs"] == 2


def test_duplicates_of_a_failed_job_share_the_failure_record(session_engine):
    FAIL_NAMES.add("bad")
    session = session_engine.submit(
        [FlakySpec("bad"), FlakySpec("a"), FlakySpec("bad")], session_id="dup"
    )
    outcomes = session.results()
    assert EXECUTED == ["bad", "a"]  # the duplicate never re-executes
    assert isinstance(outcomes[0], JobFailure)
    assert outcomes[2] is outcomes[0]
    assert isinstance(outcomes[1], FlakyResult)
    # failures() reports the shared record once, agreeing with the counter.
    assert len(session.failures()) == 1
    summary = session.summary()
    assert summary["failed"] == 1 and len(summary["failures"]) == 1


def test_on_error_raise_propagates_the_original_exception(session_engine):
    FAIL_NAMES.add("bad")
    session = session_engine.submit(
        [FlakySpec("a"), FlakySpec("bad"), FlakySpec("b")],
        session_id="raise",
        on_error="raise",
    )
    with pytest.raises(ValueError, match="bad exploded"):
        session.results()
    assert EXECUTED == ["a", "bad"]  # fail-fast: the batch stopped at the crash
    # The journal still knows what finished and what crashed.
    journal = SessionJournal.open(session_engine.config.session_dir, "raise")
    assert len(journal.completed) == 1
    assert [r["error_type"] for r in journal.failed.values()] == ["ValueError"]


def test_aborted_stream_closes_the_session_instead_of_none_holes(session_engine):
    """After on_error="raise" aborts the stream (or a transport raises, e.g.
    the filequeue stop sentinel), a later results() call must raise the
    closed-session error — not return a list with silent None holes."""
    FAIL_NAMES.add("bad")
    session = session_engine.submit(
        [FlakySpec("a"), FlakySpec("bad"), FlakySpec("b")],
        session_id="aborted",
        on_error="raise",
    )
    with pytest.raises(ValueError, match="bad exploded"):
        session.results()
    with pytest.raises(EngineError, match="closed before finishing"):
        session.results()
    # resume() still works and completes the remainder.
    FAIL_NAMES.clear()
    outcomes = session.resume().results()
    assert [getattr(o, "name", None) for o in outcomes] == ["a", "bad", "b"]


def test_unknown_on_error_policy_is_rejected(session_engine):
    with pytest.raises(EngineError):
        session_engine.submit([FlakySpec("a")], on_error="explode")


# -- resume: exactly the failed / incomplete jobs re-run ------------------------------


def test_resume_reruns_exactly_the_failed_jobs(session_engine):
    FAIL_NAMES.add("bad")
    jobs = [FlakySpec("a"), FlakySpec("bad"), FlakySpec("b")]
    session = session_engine.submit(jobs, session_id="rerun")
    first = session.results()
    assert isinstance(first[1], JobFailure)

    FAIL_NAMES.clear()
    EXECUTED.clear()
    resumed = session.resume()
    outcomes = resumed.results()

    assert EXECUTED == ["bad"]  # nothing else re-ran
    assert [o.name for o in outcomes] == ["a", "bad", "b"]
    assert outcomes[0].from_cache and outcomes[2].from_cache  # replayed, not re-executed
    assert not outcomes[1].from_cache
    assert resumed.summary()["failed"] == 0


def test_interrupted_stream_resumes_only_incomplete_jobs(session_engine):
    jobs = [FlakySpec(name) for name in ("a", "b", "c", "d")]
    session = session_engine.submit(jobs, session_id="interrupt")
    seen = []
    for spec, outcome in session:
        seen.append(outcome.name)
        if len(seen) == 2:
            break  # simulate Ctrl-C after two completions

    assert EXECUTED == ["a", "b"]
    EXECUTED.clear()
    resumed = session.resume()
    outcomes = resumed.results()
    assert EXECUTED == ["c", "d"]  # only the never-completed jobs executed
    assert [o.name for o in outcomes] == ["a", "b", "c", "d"]
    # Progress statuses confirm the replay/execute split.
    assert resumed.summary()["cached"] == 2
    assert resumed.summary()["executed"] == 2


def test_cache_hits_stream_before_pool_completions(session_engine):
    events = []
    session = session_engine.submit(
        [FlakySpec("a"), FlakySpec("b")], session_id="order1"
    )
    session.results()
    # Resume with two extra fresh jobs via a new session over a superset is a
    # different journal; instead interrupt-style: resume the same session and
    # watch replayed outcomes arrive before executions.
    EXECUTED.clear()
    resumed = session.resume()
    resumed.progress = lambda e: events.append(e.status)
    resumed.results()
    assert events == ["cached", "cached"]

    events.clear()
    mixed = session_engine.submit(
        [FlakySpec("c"), FlakySpec("a")], session_id="order2",
        progress=lambda e: events.append((e.status, e.spec_hash)),
    )
    ordered = [outcome.name for _spec, outcome in mixed]
    # "a" was never journalled under order2 and there is no result cache, so
    # both execute — submission order is preserved serially.
    assert ordered == ["c", "a"]
    assert [s for s, _ in events] == ["executed", "executed"]


def test_progress_events_carry_running_totals(session_engine):
    FAIL_NAMES.add("bad")
    events = []
    session_engine.submit(
        [FlakySpec("a"), FlakySpec("bad"), FlakySpec("a")],
        session_id="progress",
        progress=events.append,
    ).results()
    assert [(e.status, e.done, e.total) for e in events] == [
        ("executed", 1, 3),
        ("duplicate", 2, 3),
        ("failed", 3, 3),
    ]
    last = events[-1]
    assert last.executed == 1 and last.failed == 1 and last.cached == 0
    assert last.fraction == 1.0


def test_partially_consumed_session_is_drainable(session_engine):
    session = session_engine.submit(
        [FlakySpec("a"), FlakySpec("b"), FlakySpec("c")], session_id="drain"
    )
    for _spec, outcome in session:
        assert outcome.name == "a"
        break  # suspends the stream mid-batch
    # results() picks the stream up where the loop stopped — no re-execution,
    # no "already consumed" error.
    outcomes = session.results()
    assert [o.name for o in outcomes] == ["a", "b", "c"]
    assert EXECUTED == ["a", "b", "c"]
    # A finished session re-yields its stored outcomes in submission order.
    assert [outcome.name for _spec, outcome in session] == ["a", "b", "c"]


def test_close_stops_a_partially_consumed_session(session_engine):
    session = session_engine.submit(
        [FlakySpec("a"), FlakySpec("b")], session_id="closed"
    )
    next(iter(session))
    session.close()
    assert EXECUTED == ["a"]  # "b" never ran
    # A closed session refuses to hand out a result list with silent holes.
    with pytest.raises(EngineError, match="closed"):
        session.results()
    # The journal kept what finished; a resume runs only the remainder.
    outcomes = session.resume().results()
    assert EXECUTED == ["a", "b"]
    assert [o.name for o in outcomes] == ["a", "b"]


# -- the journal on disk -------------------------------------------------------------


def test_journal_records_survive_and_tolerate_torn_writes(session_engine):
    FAIL_NAMES.add("bad")
    session_engine.submit(
        [FlakySpec("a"), FlakySpec("bad")], session_id="torn"
    ).results()
    root = session_engine.config.session_dir
    journal = SessionJournal.open(root, "torn")
    assert set(journal.completed) == {FlakySpec("a").content_hash()}
    assert set(journal.failed) == {FlakySpec("bad").content_hash()}

    # A process killed mid-write leaves a torn trailing line; re-open skips it.
    with journal.path.open("a", encoding="utf-8") as fh:
        fh.write('{"record": "job", "spec_hash": "abc", "status": "comp')
    reopened = SessionJournal.open(root, "torn")
    assert set(reopened.completed) == set(journal.completed)
    assert reopened.summary()["failed"] == 1

    # A later completed record for a previously failed job wins.
    reopened.record_job(FlakySpec("bad").content_hash(), "completed", "flaky")
    again = SessionJournal.open(root, "torn")
    assert again.summary() == {
        "session_id": "torn",
        "created_at": again.created_at,
        "total_submitted": 2,
        "total_unique": 2,
        "completed": 2,
        "failed": 0,
        "pending": 0,
        "resumes": 0,
    }


def test_run_never_journals_even_with_session_dir(session_engine):
    """run() is one-shot: journalling its random ids would litter session_dir."""
    results = session_engine.run([FlakySpec("a")])
    assert isinstance(results[0], FlakyResult)
    root = Path(session_engine.config.session_dir)
    assert not root.exists() or list(root.glob("*.jsonl")) == []


def test_empty_session_journal_reopens_cleanly(session_engine):
    assert session_engine.submit([], session_id="empty").results() == []
    journal = SessionJournal.open(session_engine.config.session_dir, "empty")
    assert journal.summary()["total_unique"] == 0
    assert session_engine.submit(session_id="empty").results() == []


def test_submit_rejects_a_mismatched_journal(session_engine):
    session_engine.submit([FlakySpec("a")], session_id="fixed").results()
    with pytest.raises(EngineError, match="different"):
        session_engine.submit([FlakySpec("other")], session_id="fixed")


def test_submit_without_jobs_requires_a_journal(session_engine):
    with pytest.raises(EngineError):
        session_engine.submit(session_id="never-created")
    engine = Engine(config=PipelineConfig())  # no session_dir at all
    with pytest.raises(EngineError):
        engine.submit()


def test_journalled_complete_but_uncached_job_reexecutes(session_engine):
    """The journal is bookkeeping, not storage: no cache => re-execute."""
    session_engine.submit([FlakySpec("a")], session_id="lost").results()
    EXECUTED.clear()
    fresh = Engine(config=session_engine.config, processes=0)
    outcomes = fresh.submit(session_id="lost").results()
    assert EXECUTED == ["a"]  # journalled complete, but there is nothing to replay
    assert isinstance(outcomes[0], FlakyResult)
    assert fresh.stats()["executed_jobs"] == 1


# -- journal fuzzing: torn/garbled tails never crash or re-execute -------------------


def _garble_tail(rng: random.Random, data: bytes, protect: int) -> bytes:
    """Randomly damage the journal's tail (never the first ``protect`` bytes).

    Models everything a dying process / torn filesystem can leave behind:
    truncation mid-record, flipped bytes, appended garbage, a torn JSON
    prefix, and a duplicated partial line.
    """
    tail_start = max(protect, len(data) - 200)
    for _ in range(rng.randrange(1, 4)):
        op = rng.choice(["truncate", "flip", "garbage", "torn_json", "dup_partial"])
        if op == "truncate" and len(data) > tail_start:
            data = data[: rng.randrange(tail_start, len(data))]
        elif op == "flip" and len(data) > tail_start:
            flipped = bytearray(data)
            for _ in range(rng.randrange(1, 6)):
                pos = rng.randrange(tail_start, len(flipped))
                flipped[pos] = rng.randrange(256)
            data = bytes(flipped)
        elif op == "garbage":
            data += bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
        elif op == "torn_json":
            data += b'{"record": "job", "spec_hash": "deadbeef", "status": "comp'
        elif op == "dup_partial" and len(data) > tail_start:
            line = data.splitlines(keepends=True)[-1]
            data += line[: rng.randrange(1, max(2, len(line)))]
    return data


def test_journal_fuzz_resume_never_reexecutes_or_crashes(tmp_path):
    """~50 seeds of tail damage on a real interrupted session's journal:
    re-opening never crashes, resume serves every completed (cached) job
    without re-execution, and the final results stay bit-identical."""
    from repro.utils.io import _NumpyJSONEncoder

    config = PipelineConfig(
        seed=9,
        session_dir=str(tmp_path / "sessions"),
        cache_dir=str(tmp_path / "cache"),
    )
    engine = Engine(config=config)
    jobs = [
        engine.baseline_spec("3eax", "RYRDV", "AF2"),
        engine.baseline_spec("3eax", "RYRDV", "AF3"),
        engine.baseline_spec("3ckz", "VKDRS", "AF2"),
        engine.baseline_spec("3ckz", "VKDRS", "AF3"),
    ]
    session = engine.submit(jobs, session_id="fuzz")
    for done, _pair in enumerate(session, start=1):
        if done == 2:
            break  # interrupt: 2 completed (and cached), 2 never started
    session.close()

    reference_engine = Engine(config=PipelineConfig(seed=9))
    reference = [
        json.dumps(r.to_payload(), sort_keys=True, cls=_NumpyJSONEncoder)
        for r in reference_engine.run(jobs)
    ]

    journal_path = Path(config.session_dir) / "fuzz.jsonl"
    original = journal_path.read_bytes()
    header_end = original.index(b"\n") + 1
    # Snapshot the interrupted run's cache (exactly the 2 completed payloads):
    # every seed resumes against its own copy, so one seed's executions can
    # never warm another seed's lookups.
    cache_snapshot = tmp_path / "cache-snapshot"
    shutil.copytree(config.cache_dir, cache_snapshot)

    for seed in range(50):
        rng = random.Random(seed)
        root = tmp_path / f"fuzz-root-{seed}"
        root.mkdir()
        (root / "fuzz.jsonl").write_bytes(_garble_tail(rng, original, header_end))
        shutil.copy(Path(config.session_dir) / "fuzz.specs.pkl", root / "fuzz.specs.pkl")
        shutil.copytree(cache_snapshot, root / "cache")

        # Re-opening tolerates any tail damage (the header is intact).
        reopened = SessionJournal.open(root, "fuzz")
        assert len(reopened.completed) <= 2

        fresh = Engine(
            config=config.with_updates(
                session_dir=str(root), cache_dir=str(root / "cache")
            )
        )
        resumed = fresh.submit(session_id="fuzz")
        outcomes = resumed.results()
        canonical = [
            json.dumps(o.to_payload(), sort_keys=True, cls=_NumpyJSONEncoder)
            for o in outcomes
        ]
        assert canonical == reference, f"seed {seed}: results diverged"
        # The two completed jobs live in the result cache: whatever the
        # journal's tail claims, they replay without re-executing.
        assert resumed.summary()["cached"] == 2, f"seed {seed}"
        assert fresh.stats()["executed_jobs"] == 2, f"seed {seed}"

    # Destroying the *header* is refused cleanly, never a crash or a re-run.
    root = tmp_path / "fuzz-root-header"
    root.mkdir()
    (root / "fuzz.jsonl").write_bytes(b'{"torn header')
    shutil.copy(Path(config.session_dir) / "fuzz.specs.pkl", root / "fuzz.specs.pkl")
    with pytest.raises(EngineError, match="header"):
        SessionJournal.open(root, "fuzz")
    with pytest.raises(EngineError):
        Engine(config=config.with_updates(session_dir=str(root))).submit(session_id="fuzz")


# -- cross-process resume through the CLI --------------------------------------------


@pytest.fixture
def fold_config(tmp_path) -> PipelineConfig:
    return PipelineConfig(
        vqe_iterations=4,
        optimisation_shots=24,
        final_shots=48,
        ansatz_reps=1,
        seed=9,
        session_dir=str(tmp_path / "sessions"),
        cache_dir=str(tmp_path / "cache"),
    )


def test_cli_resume_executes_only_pending_jobs(fold_config, capsys):
    engine = Engine(config=fold_config)
    jobs = [engine.spec("3eax", "RYRDV"), engine.spec("3ckz", "VKDRS")]
    session = engine.submit(jobs, session_id="cli-sweep")
    for _spec, _outcome in session:
        break  # interrupt after the first fold

    rc = session_cli_main(
        ["resume", fold_config.session_dir, "cli-sweep", "--json", "--quiet"]
    )
    summary = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert summary["total"] == 2
    assert summary["cached"] == 1  # the interrupted run's completed fold replays
    assert summary["executed"] == 1  # only the pending fold executed
    assert summary["failed"] == 0
    assert summary["engine"]["executed_jobs"] == 1

    rc = session_cli_main(
        ["status", fold_config.session_dir, "cli-sweep", "--json"]
    )
    status = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert status["pending"] == 0
    assert status["replayable_from_cache"] == 2

    rc = session_cli_main(["ls", fold_config.session_dir, "--json"])
    sessions = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert [s["session_id"] for s in sessions] == ["cli-sweep"]
    assert sessions[0]["pending"] == 0


def test_cli_rejects_missing_directory_and_journal(tmp_path, capsys):
    with pytest.raises(SystemExit) as exc:
        session_cli_main(["ls", str(tmp_path / "nope")])
    assert exc.value.code == 2
    (tmp_path / "empty").mkdir()
    with pytest.raises(SystemExit) as exc:
        session_cli_main(["status", str(tmp_path / "empty"), "ghost"])
    assert exc.value.code == 2


def test_cli_status_reports_failures_with_exit_code(session_engine, capsys):
    FAIL_NAMES.add("bad")
    session_engine.submit([FlakySpec("a"), FlakySpec("bad")], session_id="sad").results()
    rc = session_cli_main(
        ["status", session_engine.config.session_dir, "sad", "--json"]
    )
    status = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert status["failed"] == 1
    assert status["failures"][0]["error_type"] == "ValueError"


# -- journal compaction --------------------------------------------------------------


def test_journal_compact_keeps_final_state_and_shrinks(tmp_path):
    """A journal accreted over many resumes compacts to its final state: one
    record per unique job (completed beats failed), the resume count folded
    into a single marker, and the reopened state bit-identical."""
    root = tmp_path / "sessions"
    root.mkdir()
    jobs = [FlakySpec("a"), FlakySpec("bad"), FlakySpec("c"), FlakySpec("d")]
    h = {spec.name: spec.content_hash() for spec in jobs}
    journal = SessionJournal.create(root, "long", jobs)
    # Pass 1: two completions, two failures.
    journal.record_job(h["a"], "completed", "flaky")
    journal.record_job(h["bad"], "failed", "flaky", error_type="ValueError", error_message="kapow")
    journal.record_job(h["c"], "completed", "flaky")
    journal.record_job(h["d"], "failed", "flaky", error_type="ValueError", error_message="kapow")
    # Pass 2: "bad" still failing; pass 3: it finally completes.
    journal.mark_resumed()
    journal.record_job(h["bad"], "failed", "flaky", error_type="ValueError", error_message="kapow")
    journal.mark_resumed()
    journal.record_job(h["bad"], "completed", "flaky")

    before = SessionJournal.open(root, "long")
    result = journal.compact()
    assert result["records_after"] < result["records_before"]
    assert result["bytes_after"] < result["bytes_before"]
    assert result["records_after"] == 2 + len(jobs)  # header + compact marker + jobs

    after = SessionJournal.open(root, "long")
    assert set(after.completed) == set(before.completed) == {h["a"], h["bad"], h["c"]}
    assert set(after.failed) == set(before.failed) == {h["d"]}
    assert after.failed[h["d"]]["error_type"] == "ValueError"
    assert after.resumes == before.resumes == 2
    assert after.spec_hashes == before.spec_hashes
    assert after.created_at == before.created_at
    assert after.summary() == before.summary()

    # Compaction is idempotent, and an unopened journal refuses to compact.
    again = after.compact()
    assert again["records_after"] == again["records_before"]
    with pytest.raises(EngineError, match="open\\(\\)ed or create\\(\\)d"):
        SessionJournal(root, "long").compact()


def test_cli_compact_roundtrip(tmp_path, capsys):
    root = tmp_path / "sessions"
    root.mkdir()
    journal = SessionJournal.create(root, "sweep", [FlakySpec("a")])
    key = FlakySpec("a").content_hash()
    for _ in range(3):
        journal.record_job(key, "completed", "flaky")

    rc = session_cli_main(["compact", str(root), "sweep", "--json"])
    out = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert out["session_id"] == "sweep"
    assert out["records_before"] == 4  # header + three passes over one job
    assert out["records_after"] == 2  # header + the job's final record
    assert set(SessionJournal.open(root, "sweep").completed) == {key}

    rc = session_cli_main(["compact", str(root), "sweep"])
    assert rc == 0
    assert "compacted 2 -> 2 records" in capsys.readouterr().out

    with pytest.raises(SystemExit) as exc:
        session_cli_main(["compact", str(root), "ghost"])
    assert exc.value.code == 2


# -- the streaming BatchProcessor ----------------------------------------------------


def _exploding_fold(spec):
    if spec.pdb_id == "1e2k":
        raise RuntimeError("injected fold crash")
    return execute_fold_job(spec)


def test_batch_processor_isolates_a_failed_fragment():
    """One crashing fold drops only its fragment; the rest of the build completes."""
    register_executor("fold", _exploding_fold, overwrite=True)
    try:
        config = PipelineConfig(
            vqe_iterations=4,
            optimisation_shots=24,
            final_shots=48,
            ansatz_reps=1,
            docking_seeds=2,
            docking_poses=2,
            docking_mc_steps=20,
            seed=9,
        )
        fragments = DatasetBuilder.select_fragments(pdb_ids=["3eax", "1e2k"])
        engine = Engine(config=config)
        entries = BatchProcessor(config=config, engine=engine).build_entries(fragments)
        assert [entry.fragment.pdb_id for entry in entries] == ["3eax"]
        assert engine.stats()["failed_jobs"] == 1
        # The surviving fragment was fully evaluated (quantum + 2 baselines)
        # and docked; the crashed fragment never reached the docking phase.
        assert set(entries[0].evaluations) == {"QDock", "AF2", "AF3"}
        assert engine.stats()["executed_by_kind"]["dock"] == 3
    finally:
        register_executor("fold", execute_fold_job, overwrite=True)


def test_batch_processor_on_error_raise_aborts_the_build():
    register_executor("fold", _exploding_fold, overwrite=True)
    try:
        config = PipelineConfig(
            vqe_iterations=4,
            optimisation_shots=24,
            final_shots=48,
            seed=9,
            on_error="raise",
        )
        fragments = DatasetBuilder.select_fragments(pdb_ids=["1e2k"])
        with pytest.raises(RuntimeError, match="injected fold crash"):
            BatchProcessor(config=config, engine=Engine(config=config)).build_entries(fragments)
    finally:
        register_executor("fold", execute_fold_job, overwrite=True)
