"""The ``repro-serve`` battery: wire-protocol framing, admission control
(per-client quota + bounded backlog), the shared result cache, server-side
poison isolation, and the network transport's error paths — server down at
submit, server killed mid-batch, busy re-queueing."""

from __future__ import annotations

import hashlib
import json
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, ClassVar

import pytest

from repro.cli.serve import build_parser, main as serve_cli_main
from repro.config import PipelineConfig
from repro.engine import BaselineFoldSpec, NetworkTransport
from repro.engine.core import execute_baseline_job
from repro.exceptions import EngineError
from repro.serve import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameBuffer,
    ProtocolError,
    ReproServer,
    encode_frame,
    recv_message,
    send_message,
)
from repro.utils.io import _NumpyJSONEncoder

BASE_CONFIG = PipelineConfig(seed=5)


def _baseline_spec(pdb_id: str = "3eax", sequence: str = "RYRDV", method: str = "AF2"):
    return BaselineFoldSpec(pdb_id=pdb_id, sequence=sequence, method=method, config=BASE_CONFIG)


def _canonical(outcome) -> str:
    return json.dumps(outcome.to_payload(), sort_keys=True, cls=_NumpyJSONEncoder)


@dataclass(frozen=True)
class PingSpec:
    """A minimal picklable spec for raw-socket admission-control tests."""

    name: str

    kind: ClassVar[str] = "ping"

    def content_hash(self) -> str:
        return hashlib.sha256(f"ping/v1\x1f{self.name}".encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PoisonSpec:
    """Pickles fine; fingerprinting it explodes."""

    name: str

    kind: ClassVar[str] = "ping"

    def content_hash(self) -> str:
        raise RuntimeError(f"hash of {self.name} exploded")


class _FakeOutcome:
    def __init__(self, payload: dict[str, Any]):
        self._payload = payload

    def to_payload(self) -> dict[str, Any]:
        return self._payload


def _fake_execute(spec: PingSpec) -> _FakeOutcome:
    return _FakeOutcome({"spec_hash": spec.content_hash(), "schema": "ping/v1", "name": spec.name})


def _hello(sock: socket.socket, client_id: str = "raw-test") -> dict[str, Any]:
    send_message(sock, {"type": "hello", "client_id": client_id, "protocol": PROTOCOL_VERSION})
    return recv_message(sock)


# -- the wire protocol ---------------------------------------------------------------


def test_frame_round_trip_through_a_socketpair():
    left, right = socket.socketpair()
    try:
        message = {"type": "job", "index": 3, "spec": PingSpec("a")}
        send_message(left, message)
        received = recv_message(right)
        assert received["type"] == "job" and received["index"] == 3
        assert received["spec"] == PingSpec("a")
        left.close()
        with pytest.raises(ConnectionError, match="closed"):
            recv_message(right)
    finally:
        for sock in (left, right):
            try:
                sock.close()
            except OSError:
                pass


def test_frame_buffer_reassembles_split_frames():
    frame = encode_frame({"type": "result", "index": 0}) + encode_frame({"type": "bye"})
    buffer = FrameBuffer()
    messages = []
    for offset in range(0, len(frame), 3):  # drip-feed 3 bytes at a time
        buffer.feed(frame[offset : offset + 3])
        while (message := buffer.next_message()) is not None:
            messages.append(message)
    assert [m["type"] for m in messages] == ["result", "bye"]
    assert buffer.next_message() is None


def test_protocol_rejects_oversize_and_malformed_frames():
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame({"type": "blob", "data": bytearray(MAX_FRAME_BYTES + 1)})
    buffer = FrameBuffer()
    buffer.feed(b"\xff\xff\xff\xff")  # a 4 GiB frame announcement
    with pytest.raises(ProtocolError, match="cap"):
        buffer.next_message()
    buffer = FrameBuffer()
    buffer.feed(encode_frame({"no-type-key": 1}))
    with pytest.raises(ProtocolError, match="not a message dict"):
        buffer.next_message()


# -- handshake and admission control -------------------------------------------------


def test_server_welcome_advertises_its_admission_window():
    with ReproServer(workers=0, max_inflight=7, execute=_fake_execute) as server:
        with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as sock:
            welcome = _hello(sock)
            assert welcome["type"] == "welcome"
            assert welcome["protocol"] == PROTOCOL_VERSION
            assert welcome["max_inflight"] == 7
            assert welcome["server_id"] == server.server_id


def test_server_rejects_a_protocol_version_mismatch():
    with ReproServer(workers=0, execute=_fake_execute) as server:
        with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as sock:
            send_message(sock, {"type": "hello", "client_id": "old", "protocol": 99})
            reply = recv_message(sock)
            assert reply["type"] == "error"
            assert "version mismatch" in reply["reason"]


def test_server_enforces_the_per_client_quota():
    gate = threading.Event()

    def blocked(spec):
        gate.wait(timeout=10.0)
        return _fake_execute(spec)

    try:
        with ReproServer(workers=0, max_inflight=1, execute=blocked) as server:
            with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as sock:
                assert _hello(sock)["max_inflight"] == 1
                send_message(sock, {"type": "job", "index": 0, "spec": PingSpec("a")})
                send_message(sock, {"type": "job", "index": 1, "spec": PingSpec("b")})
                busy = recv_message(sock)  # the window is full: instant rejection
                assert busy["type"] == "busy" and busy["index"] == 1
                assert "server busy" in busy["reason"] and "quota" in busy["reason"]
                gate.set()
                result = recv_message(sock)
                assert result["type"] == "result" and result["index"] == 0
                assert result["record"]["status"] == "completed"
                assert server.stats()["jobs_rejected"] == 1
    finally:
        gate.set()


def test_server_enforces_the_global_backlog_cap():
    gate = threading.Event()

    def blocked(spec):
        gate.wait(timeout=10.0)
        return _fake_execute(spec)

    try:
        with ReproServer(workers=0, max_inflight=8, max_pending=1, execute=blocked) as server:
            with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as sock:
                _hello(sock)
                send_message(sock, {"type": "job", "index": 0, "spec": PingSpec("a")})
                send_message(sock, {"type": "job", "index": 1, "spec": PingSpec("b")})
                busy = recv_message(sock)
                assert busy["type"] == "busy" and busy["index"] == 1
                assert "queue full" in busy["reason"]
                gate.set()
                assert recv_message(sock)["index"] == 0
    finally:
        gate.set()


def test_server_isolates_a_spec_whose_content_hash_raises():
    """Same lesson as the file-queue crash-loop fix, applied server-side: a
    poison spec resolves as a failed result, the service stays up."""
    with ReproServer(workers=0, execute=_fake_execute) as server:
        with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as sock:
            _hello(sock)
            send_message(sock, {"type": "job", "index": 0, "spec": PoisonSpec("p")})
            result = recv_message(sock)
            assert result["type"] == "result" and result["index"] == 0
            assert result["record"]["status"] == "failed"
            assert result["record"]["error_type"] == "RuntimeError"
            assert "cannot fingerprint job spec" in result["record"]["error_message"]
            # The service survived and still executes good jobs.
            send_message(sock, {"type": "job", "index": 1, "spec": PingSpec("a")})
            assert recv_message(sock)["record"]["status"] == "completed"


def test_server_turns_an_unserialisable_payload_into_a_failure():
    with ReproServer(workers=0, execute=lambda spec: _FakeOutcome({"oops": object()})) as server:
        with socket.create_connection(("127.0.0.1", server.port), timeout=5.0) as sock:
            _hello(sock)
            send_message(sock, {"type": "job", "index": 0, "spec": PingSpec("a")})
            record = recv_message(sock)["record"]
            assert record["status"] == "failed"
            assert "not JSON-serialisable" in record["error_message"]


# -- the network transport -----------------------------------------------------------


def test_transport_raises_immediately_when_no_server_listens():
    # Bind-then-close: the port existed a moment ago, nobody listens now.
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    transport = NetworkTransport("127.0.0.1", port, connect_timeout=2.0)
    with pytest.raises(EngineError, match="cannot reach repro-serve"):
        transport.submit([_baseline_spec()])
    transport.cancel()


def test_transport_end_to_end_matches_local_execution():
    specs = [_baseline_spec(method="AF2"), _baseline_spec(method="AF3")]
    with ReproServer(workers=0) as server:
        transport = NetworkTransport("127.0.0.1", server.port, poll_interval=0.01)
        completions = sorted(transport.stream(specs), key=lambda c: c[0])
    assert [index for index, _, _ in completions] == [0, 1]
    for (index, result, exc), spec in zip(completions, specs):
        assert exc is None
        assert not result.from_cache  # executed remotely, not a local hit
        assert _canonical(result) == _canonical(execute_baseline_job(spec))


def test_transport_serves_a_second_client_from_the_shared_cache(tmp_path):
    spec = _baseline_spec()
    with ReproServer(workers=0, cache=tmp_path / "serve-cache") as server:
        first = NetworkTransport("127.0.0.1", server.port, poll_interval=0.01)
        [(_, result1, _)] = list(first.stream([spec]))
        second = NetworkTransport("127.0.0.1", server.port, poll_interval=0.01)
        [(_, result2, _)] = list(second.stream([spec]))
        stats = server.stats()
    assert stats["jobs_completed"] == 2 and stats["cache_hits"] == 1
    assert _canonical(result1) == _canonical(result2)
    # Server-cache hits still count as remote executions to the *session*,
    # which caches and journals them locally like any other completion.
    assert not result2.from_cache


def test_transport_requeues_after_busy_until_capacity_frees_up():
    gate = threading.Event()

    def gated(spec):
        gate.wait(timeout=10.0)
        return execute_baseline_job(spec)

    specs = [_baseline_spec(method="AF2"), _baseline_spec(method="AF3")]
    try:
        # max_pending=1: the second job is busy-rejected until the first
        # finishes — the client must re-queue it, not fail or hang.
        with ReproServer(workers=0, max_pending=1, execute=gated) as server:
            transport = NetworkTransport("127.0.0.1", server.port, poll_interval=0.01)
            transport.submit(specs)
            time.sleep(0.1)  # let the busy frame land
            gate.set()
            completions = []
            deadline = time.monotonic() + 20.0
            while transport.outstanding() and time.monotonic() < deadline:
                completions.extend(transport.poll(timeout=1.0))
            transport.cancel()
            assert server.stats()["jobs_rejected"] >= 1
    finally:
        gate.set()
    assert sorted(index for index, _, _ in completions) == [0, 1]
    assert all(exc is None for _, _, exc in completions)


def test_busy_backoff_is_scoped_to_the_rejected_job_only():
    """The head-of-line regression: one job's busy backoff used to gate *all*
    sends through a single scalar deadline; it must hold back only the
    rejected index while every other unsent job keeps flowing."""
    transport = NetworkTransport("127.0.0.1", 1, poll_interval=0.01)
    wire = FrameBuffer()

    class _Sock:
        def sendall(self, data: bytes) -> None:
            wire.feed(data)

    transport._sock = _Sock()
    transport._specs = [PingSpec("a"), PingSpec("b"), PingSpec("c")]
    transport._unsent = deque([0, 1, 2])
    transport._window = 8
    transport._retry_at = {0: time.monotonic() + 60.0}  # job 0 is backing off
    transport._pump()
    sent = []
    while (message := wire.next_message()) is not None:
        sent.append(message["index"])
    assert sent == [1, 2]  # unaffected jobs keep flowing
    assert list(transport._unsent) == [0]  # the rejected job is merely held
    assert set(transport._inflight) == {1, 2}
    # Once its deadline passes, the held job goes out too.
    transport._retry_at[0] = 0.0
    transport._pump()
    assert wire.next_message()["index"] == 0
    assert set(transport._inflight) == {0, 1, 2} and not transport._unsent


def test_one_jobs_backoff_does_not_stall_the_rest_against_a_full_server():
    gate = threading.Event()

    def gated(spec):
        if spec.pdb_id == "slow":
            gate.wait(timeout=10.0)
        return execute_baseline_job(spec)

    try:
        # max_pending=1: "slow" fills the only slot, so "b" and "c" are both
        # busy-rejected and land in per-job backoff.
        with ReproServer(workers=0, max_pending=1, execute=gated) as server:
            transport = NetworkTransport("127.0.0.1", server.port, poll_interval=0.01)
            transport.submit([
                _baseline_spec(pdb_id="slow"),
                _baseline_spec(pdb_id="bbbb"),
                _baseline_spec(pdb_id="cccc"),
            ])
            completions = []
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and not (
                {1, 2} <= set(transport._unsent)
            ):
                completions.extend(transport.poll(timeout=0.05))
            assert {1, 2} <= set(transport._unsent)
            # Pin "b" in a long backoff (as if rejected many more times); the
            # transport is driven only by this thread, so the deadline is in
            # force at every subsequent _pump.  A global gate would now stall
            # "c" as well — the pre-fix behaviour.
            transport._retry_at[1] = time.monotonic() + 30.0
            gate.set()
            deadline = time.monotonic() + 10.0
            while len(completions) < 2 and time.monotonic() < deadline:
                completions.extend(transport.poll(timeout=0.2))
            assert sorted(index for index, _, _ in completions) == [0, 2]
            assert transport.outstanding() == 1  # only the pinned job remains
            transport._retry_at[1] = 0.0  # backoff over: it drains too
            deadline = time.monotonic() + 10.0
            while transport.outstanding() and time.monotonic() < deadline:
                completions.extend(transport.poll(timeout=0.2))
            transport.cancel()
            assert server.stats()["jobs_rejected"] >= 2
    finally:
        gate.set()
    assert sorted(index for index, _, _ in completions) == [0, 1, 2]
    assert all(exc is None for _, _, exc in completions)


def test_transport_fails_outstanding_jobs_when_the_server_dies_mid_batch():
    """A SIGKILLed server surfaces as RemoteJobError completions — the batch
    *finishes* (journalled as failures, ready for resume), it never hangs."""
    gate = threading.Event()

    def blocked(spec):
        gate.wait(timeout=10.0)
        return _fake_execute(spec)

    server = ReproServer(workers=0, max_inflight=4, execute=blocked).start()
    try:
        transport = NetworkTransport("127.0.0.1", server.port, poll_interval=0.01)
        assert transport.submit([PingSpec("a"), PingSpec("b"), PingSpec("c")]) == 3
        deadline = time.monotonic() + 5.0
        while server.stats()["jobs_accepted"] < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        server.shutdown()  # the service dies with the whole batch in flight
    finally:
        gate.set()
    completions = []
    deadline = time.monotonic() + 10.0
    while transport.outstanding() and time.monotonic() < deadline:
        completions.extend(transport.poll(timeout=1.0))
    transport.cancel()
    assert len(completions) == 3
    for _, result, exc in completions:
        assert result is None
        assert exc.error_type == "ServerDisconnected"
        assert "unreachable" in exc.error_message


def test_transport_submit_may_only_run_once():
    with ReproServer(workers=0, execute=_fake_execute) as server:
        transport = NetworkTransport("127.0.0.1", server.port)
        assert transport.submit([]) == 0
        with pytest.raises(EngineError, match="one batch"):
            transport.submit([])
        transport.cancel()


# -- the repro-serve CLI -------------------------------------------------------------


def test_serve_cli_parser_defaults():
    args = build_parser().parse_args([])
    assert args.host == "127.0.0.1"
    assert args.port == 7377
    assert args.workers == 0
    assert args.cache_dir is None


def test_serve_cli_rejects_a_bad_preload(capsys):
    rc = serve_cli_main(["--preload", "no.such.module"])
    assert rc == 2
    assert "cannot preload" in capsys.readouterr().err
