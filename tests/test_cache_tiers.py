"""The cache-tier battery: spec parsing and config resolution, the tiered
stack (local-first reads, promotion, write-through, the ``covers``/
``stored_in`` skip), two stacks racing put/prune on one shared local tier,
the remote tier against a live ``repro-serve`` (including a server restart
mid-lookup), and payload-free stub completions end to end through the
file-queue worker and transport."""

from __future__ import annotations

import hashlib
import json
import threading
import time

import pytest

from repro.config import PipelineConfig
from repro.engine import (
    FileQueueSpool,
    FileQueueTransport,
    FileQueueWorker,
    LocalDirTier,
    RemoteTier,
    ResultCache,
    TieredCache,
    parse_tier_spec,
    resolve_cache,
)
from repro.engine.core import execute_baseline_job
from repro.engine.transports.base import RemoteJobError
from repro.exceptions import EngineError
from repro.utils.io import _NumpyJSONEncoder

BASE_CONFIG = PipelineConfig(seed=5)


def _key(seed: str) -> str:
    return hashlib.sha256(seed.encode("utf-8")).hexdigest()


def _payload(key: str, pad: str = "x", size: int = 256) -> dict:
    return {"spec_hash": key, "schema": "echo/v1", "blob": pad * size}


def _baseline_spec(method: str = "AF2"):
    from repro.engine import BaselineFoldSpec

    return BaselineFoldSpec(pdb_id="3eax", sequence="RYRDV", method=method, config=BASE_CONFIG)


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, cls=_NumpyJSONEncoder)


# -- spec parsing and config resolution ----------------------------------------------


def test_parse_tier_spec_local_variants(tmp_path):
    plain = parse_tier_spec(tmp_path / "a")
    assert isinstance(plain, LocalDirTier)
    assert plain.location == ("local", str((tmp_path / "a").resolve()))

    prefixed = parse_tier_spec(f"local:{tmp_path / 'b'}")
    assert isinstance(prefixed, LocalDirTier)
    assert prefixed.root == (tmp_path / "b")

    # With a config, the local tier inherits the session's eviction policy;
    # without one it opens unbounded (worker-side write-through).
    config = PipelineConfig(cache_max_bytes=4096, cache_eviction="fifo")
    bounded = parse_tier_spec(str(tmp_path / "c"), config=config)
    assert bounded.max_bytes == 4096 and bounded.eviction == "fifo"
    assert plain.max_bytes is None


def test_parse_tier_spec_remote_variants():
    tier = parse_tier_spec("remote:10.0.0.9:7377")
    assert isinstance(tier, RemoteTier)
    assert tier.location == ("remote", "10.0.0.9", 7377)
    # URL-ish double-slash form, and a bare port defaulting the host.
    assert parse_tier_spec("remote://10.0.0.9:7377").location == ("remote", "10.0.0.9", 7377)
    assert parse_tier_spec("remote::7377").location == ("remote", "127.0.0.1", 7377)


@pytest.mark.parametrize("spec", ["", "   ", "local:", "remote:", "remote:hostonly", "remote:host:NaN"])
def test_parse_tier_spec_rejects_bad_specs(spec):
    with pytest.raises(EngineError):
        parse_tier_spec(spec)


def test_resolve_cache_maps_config_knobs_onto_tiers(tmp_path):
    # Cacheless stays cacheless.
    assert resolve_cache(PipelineConfig()) is None

    # A single cache_dir resolves to one bare local tier — not a 1-stack.
    single = resolve_cache(PipelineConfig(cache_dir=str(tmp_path / "one")))
    assert isinstance(single, LocalDirTier)

    # cache_tiers wins over cache_dir; cache_remote is appended outermost.
    stacked = resolve_cache(PipelineConfig(
        cache_dir=str(tmp_path / "ignored"),
        cache_tiers=(str(tmp_path / "fast"), str(tmp_path / "slow")),
        cache_remote="10.0.0.9:7377",
    ))
    assert isinstance(stacked, TieredCache)
    assert [type(t).__name__ for t in stacked.tiers] == [
        "LocalDirTier", "LocalDirTier", "RemoteTier",
    ]

    # An explicit instance passes through untouched.
    mine = LocalDirTier(tmp_path / "mine")
    assert resolve_cache(PipelineConfig(cache_dir="/elsewhere"), cache=mine) is mine

    # A sequence of specs/instances becomes a stack in order.
    stack = resolve_cache(PipelineConfig(), cache=[str(tmp_path / "d"), mine])
    assert isinstance(stack, TieredCache) and stack.tiers[1] is mine


# -- the tiered stack ----------------------------------------------------------------


def test_tiered_reads_are_local_first_and_promote_later_hits(tmp_path):
    fast = LocalDirTier(tmp_path / "fast")
    slow = LocalDirTier(tmp_path / "slow")
    stack = TieredCache([fast, slow])
    key = _key("promote")
    slow.put(key, _payload(key))

    assert stack.get(key) == _payload(key)
    # The hit was promoted: the next lookup is served by the fast tier.
    assert fast.peek(key) == _payload(key)
    assert stack.stats.hits == 1 and stack.stats.misses == 0
    assert stack.get(_key("absent")) is None
    assert stack.stats.misses == 1


def test_tiered_write_through_and_covers_semantics(tmp_path):
    fast = LocalDirTier(tmp_path / "fast")
    slow = LocalDirTier(tmp_path / "slow")
    stack = TieredCache([fast, slow])
    key = _key("through")
    assert stack.put(key, _payload(key))
    assert fast.peek(key) == _payload(key) and slow.peek(key) == _payload(key)

    # covers is the *all* quantifier: one member holding the payload is not
    # enough to skip a write-through put of the whole stack.
    assert not stack.covers(fast.location)
    assert not stack.covers(("remote", "h", 1))

    # A stored_in token skips exactly the member it names and fills the rest.
    other = _key("stored-elsewhere")
    assert stack.put(other, _payload(other), stored_in=slow.location)
    assert fast.peek(other) == _payload(other)
    assert slow.peek(other) is None  # skipped: the token says it already holds it
    assert len(slow.entries()) == 1


def test_tiered_put_reports_a_member_that_dropped_the_payload(tmp_path):
    """All-held is the contract: a dead member makes ``put`` return False so
    the caller (the stub-mode worker) can fall back to an embedded payload."""
    stack = TieredCache([LocalDirTier(tmp_path / "ok"), RemoteTier("127.0.0.1", 1, timeout=0.5)])
    key = _key("degraded")
    assert stack.put(key, _payload(key)) is False
    assert stack.tiers[0].peek(key) == _payload(key)  # the live member still filled


def test_two_stacks_racing_put_and_prune_on_one_shared_tier(tmp_path):
    """Two TieredCache instances over the same directory: a key one stack
    rewrites while the other is mid-prune survives (the prune re-validates
    stat identity before unlinking), and nothing is ever torn."""
    shared = tmp_path / "shared"
    stack_a = TieredCache([LocalDirTier(shared)])
    stack_b = TieredCache([LocalDirTier(shared)])
    keys = [_key(f"race-{i}") for i in range(4)]
    for key in keys:
        assert stack_a.put(key, _payload(key))
    assert stack_b.get(keys[0]) == _payload(keys[0])  # shared through the directory

    rewritten = keys[1]
    fresh = _payload(rewritten, pad="y", size=512)  # different size: provably newer

    def interleave(entry):
        if entry.key == rewritten:
            stack_b.put(rewritten, fresh)

    stack_a.tiers[0]._before_evict = interleave
    evicted = stack_a.prune(0)
    assert rewritten not in evicted  # the concurrent rewrite was not destroyed
    assert set(evicted) == set(keys) - {rewritten}
    assert stack_b.get(rewritten) == fresh
    valid, corrupt = stack_b.verify()
    assert corrupt == [] and valid == [rewritten]


def test_concurrent_put_get_prune_threads_never_corrupt_the_shared_tier(tmp_path):
    shared = tmp_path / "shared"
    stack_a = TieredCache([LocalDirTier(shared)])
    stack_b = TieredCache([LocalDirTier(shared)])
    keys = [_key(f"thread-{i}") for i in range(16)]
    stop = threading.Event()
    errors: list[BaseException] = []

    def writer():
        i = 0
        try:
            while not stop.is_set():
                key = keys[i % len(keys)]
                stack_a.put(key, _payload(key))
                got = stack_a.get(key)  # evicted-mid-read is a miss, never a crash
                assert got is None or got == _payload(key)
                i += 1
        except BaseException as exc:  # pragma: no cover - the assertion channel
            errors.append(exc)

    def pruner():
        try:
            while not stop.is_set():
                stack_b.prune(4 * 300)  # keep ~4 entries' worth, evict the rest
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=writer), threading.Thread(target=pruner)]
    for thread in threads:
        thread.start()
    time.sleep(0.4)
    stop.set()
    for thread in threads:
        thread.join(timeout=10)
    assert errors == []
    _, corrupt = TieredCache([LocalDirTier(shared)]).verify()
    assert corrupt == []


# -- the remote tier against a live server -------------------------------------------


def test_remote_tier_roundtrip_against_a_live_server(tmp_path):
    from repro.serve import ReproServer

    key = _key("remote-roundtrip")
    with ReproServer(workers=0, cache=tmp_path / "serve-cache") as server:
        tier = RemoteTier("127.0.0.1", server.port, timeout=5.0)
        try:
            assert tier.get(key) is None  # cold miss
            assert tier.put(key, _payload(key)) is True
            assert tier.get(key) == _payload(key)
            assert tier.peek(key) == _payload(key)  # stat-neutral
            assert key in tier
            assert tier.stats.hits == 1 and tier.stats.misses == 1 and tier.stats.writes == 1

            stats = tier.remote_stats()
            assert stats["entries"] == 1 and stats["total_bytes"] > 0
            # Maintenance is the server's business, not the client's.
            assert tier.entries() == [] and tier.prune(0) == [] and tier.verify() == ([], [])
        finally:
            tier.close()


def test_remote_tier_survives_a_server_restart_mid_lookup(tmp_path):
    """Kill the server between requests: lookups degrade to misses (never an
    exception), puts report False, and the same tier object transparently
    reconnects to a replacement server on the same port."""
    from repro.serve import ReproServer

    cache_dir = tmp_path / "serve-cache"
    key = _key("restart")
    server = ReproServer(workers=0, cache=cache_dir).start()
    port = server.port
    tier = RemoteTier("127.0.0.1", port, timeout=5.0)
    try:
        assert tier.put(key, _payload(key)) is True
        server.shutdown()

        assert tier.get(key) is None  # down: a miss, not a crash
        assert tier.put(key, _payload(key)) is False

        restarted = ReproServer(host="127.0.0.1", port=port, workers=0, cache=cache_dir).start()
        try:
            assert tier.get(key) == _payload(key)  # reconnected, served from disk
        finally:
            restarted.shutdown()
    finally:
        tier.close()


# -- payload-free stub completions through the spool ---------------------------------


def test_worker_stub_mode_writes_the_tier_and_publishes_a_payload_free_stub(tmp_path):
    spec = _baseline_spec()
    tier_dir = tmp_path / "tier"
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", spec, cache_spec=str(tier_dir))
    worker = FileQueueWorker(spool, worker_id="w1", lease_timeout=5.0)
    assert worker.run_once() == "t1"

    record = spool.read_result("t1")
    assert record["status"] == "completed"
    assert "payload" not in record  # the stub carries identity, not bytes
    assert record["stored"] == str(tier_dir)
    assert record["content_hash"] == spec.content_hash()
    stored = LocalDirTier(tier_dir).get(spec.content_hash())
    assert _canonical(stored) == _canonical(execute_baseline_job(spec).to_payload())

    # Harvest: the transport resolves the payload out of the tier and tags
    # the outcome with where it already durably lives.
    transport = FileQueueTransport(tmp_path / "spool", workers=0, cache_spec=str(tier_dir))
    index, outcome, error = transport._completion(0, "t1", record)
    assert error is None and index == 0
    assert outcome.from_cache is False
    assert outcome.stored_in == ("local", str(tier_dir.resolve()))
    assert _canonical(outcome.to_payload()) == _canonical(stored)


def test_stub_whose_payload_vanished_fails_the_job_for_resume(tmp_path):
    spec = _baseline_spec("AF3")
    tier_dir = tmp_path / "tier"
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", spec, cache_spec=str(tier_dir))
    FileQueueWorker(spool, worker_id="w1", lease_timeout=5.0).run_once()
    record = spool.read_result("t1")

    LocalDirTier(tier_dir).prune(0)  # the entry is evicted before the harvest
    transport = FileQueueTransport(tmp_path / "spool", workers=0, cache_spec=str(tier_dir))
    index, outcome, error = transport._completion(0, "t1", record)
    assert outcome is None
    assert isinstance(error, RemoteJobError)
    assert error.error_type == "SpoolError"
    assert "resume the session" in error.error_message


def test_worker_falls_back_to_an_embedded_payload_when_the_tier_is_unreachable(tmp_path):
    """Stub mode degrades to payload mode, never to a lost result: a worker
    that cannot reach the advertised tier embeds the payload in the spool."""
    spec = _baseline_spec()
    spool = FileQueueSpool(tmp_path / "spool")
    spool.enqueue("t1", spec, cache_spec="remote:127.0.0.1:1")  # nothing listens
    worker = FileQueueWorker(spool, worker_id="w1", lease_timeout=5.0)
    assert worker.run_once() == "t1"

    record = spool.read_result("t1")
    assert record["status"] == "completed"
    assert "stored" not in record
    assert record["payload"]["spec_hash"] == spec.content_hash()


def test_filequeue_factory_derives_the_stub_tier_or_refuses(tmp_path):
    from repro.engine import make_transport

    base = PipelineConfig(
        transport="filequeue", spool_dir=str(tmp_path / "spool"), transport_workers=0,
    )
    # Payload mode (the default) never stamps envelopes with a tier.
    assert make_transport("filequeue", base, processes=0).cache_spec is None

    # Stub mode resolves the most widely reachable tier: cache_remote wins,
    # then the last cache_tiers entry, then cache_dir.
    with_dir = base.with_updates(spool_payloads=False, cache_dir=str(tmp_path / "c"))
    assert make_transport("filequeue", with_dir, processes=0).cache_spec == str(tmp_path / "c")
    with_tiers = with_dir.with_updates(cache_tiers=("a", "b"))
    assert make_transport("filequeue", with_tiers, processes=0).cache_spec == "b"
    with_remote = with_tiers.with_updates(cache_remote="10.0.0.9:7377")
    assert make_transport("filequeue", with_remote, processes=0).cache_spec == "remote:10.0.0.9:7377"

    # No reachable tier at all is a configuration error, not silent payloads.
    with pytest.raises(EngineError, match="spool_payloads=False needs a cache tier"):
        make_transport("filequeue", base.with_updates(spool_payloads=False), processes=0)


def test_result_cache_alias_is_the_local_tier():
    """Back-compat: the historical name and the tier are the same class."""
    assert ResultCache is LocalDirTier
