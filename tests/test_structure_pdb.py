"""Tests for the structure model, templates, PDB I/O and the MJ matrix."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bio.amino_acids import AA_ORDER
from repro.bio.miyazawa_jernigan import MJ_MATRIX, contact_energy, interaction_matrix_for_sequence
from repro.bio.pdb import read_pdb, structure_to_pdb_string, write_pdb
from repro.bio.structure import Atom, Structure
from repro.bio.templates import build_backbone_from_ca
from repro.exceptions import PDBFormatError, StructureError

sequences = st.text(alphabet=list(AA_ORDER), min_size=2, max_size=12)


def _zigzag_ca(n: int) -> np.ndarray:
    t = np.arange(n)
    return np.column_stack([3.8 * t, 1.5 * ((-1.0) ** t), 0.1 * t])


# -- MJ matrix -----------------------------------------------------------------


def test_mj_matrix_symmetric_and_complete():
    assert MJ_MATRIX.shape == (20, 20)
    assert np.allclose(MJ_MATRIX, MJ_MATRIX.T)


def test_mj_hydrophobic_pairs_most_favourable():
    assert contact_energy("I", "I") < contact_energy("K", "K")
    assert contact_energy("L", "F") < contact_energy("S", "S")


def test_mj_opposite_charges_attract_more_than_like_charges():
    assert contact_energy("D", "K") < contact_energy("D", "E")


def test_interaction_matrix_for_sequence_shape():
    m = interaction_matrix_for_sequence("RYRDV")
    assert m.shape == (5, 5)
    assert np.allclose(m, m.T)


# -- structure model -----------------------------------------------------------


def test_structure_from_ca_coords():
    s = Structure.from_ca_coords("RYRDV", _zigzag_ca(5))
    assert s.sequence == "RYRDV"
    assert s.ca_coords().shape == (5, 3)
    assert len(s) == 5


def test_structure_translate_and_center():
    s = Structure.from_ca_coords("AAA", _zigzag_ca(3))
    s.center()
    assert np.allclose(s.all_coords().mean(axis=0), 0.0, atol=1e-9)
    s.translate([1.0, 2.0, 3.0])
    assert np.allclose(s.all_coords().mean(axis=0), [1.0, 2.0, 3.0], atol=1e-9)


def test_structure_copy_is_deep():
    s = Structure.from_ca_coords("AAA", _zigzag_ca(3))
    c = s.copy()
    c.translate([5.0, 0.0, 0.0])
    assert not np.allclose(s.ca_coords(), c.ca_coords())


def test_atom_non_finite_coords_raise():
    with pytest.raises(StructureError):
        Atom("CA", "C", (np.nan, 0, 0))


# -- backbone templates -----------------------------------------------------------


@given(sequences)
@settings(max_examples=20, deadline=None)
def test_backbone_template_atom_counts(seq):
    structure = build_backbone_from_ca(seq, _zigzag_ca(len(seq)))
    expected = sum(4 if c == "G" else 5 for c in seq)
    assert len(structure.atoms) == expected
    # Every residue keeps its CA exactly where the trace put it.
    assert np.allclose(structure.ca_coords(), _zigzag_ca(len(seq)))


def test_backbone_bond_lengths_reasonable():
    structure = build_backbone_from_ca("ACDEF", _zigzag_ca(5))
    for res in structure.residues:
        n, ca, c = res.atom("N"), res.atom("CA"), res.atom("C")
        assert 1.3 < n.distance_to(ca) < 1.6
        assert 1.3 < ca.distance_to(c) < 1.7


def test_backbone_single_residue_raises():
    with pytest.raises(StructureError):
        build_backbone_from_ca("A", np.zeros((1, 3)))


# -- PDB round trip -----------------------------------------------------------------


@given(sequences)
@settings(max_examples=20, deadline=None)
def test_pdb_roundtrip_preserves_sequence_and_coords(seq):
    structure = build_backbone_from_ca(seq, _zigzag_ca(len(seq)), structure_id="frag")
    text = structure_to_pdb_string(structure)
    parsed = read_pdb(text)
    assert parsed.sequence == seq
    assert np.allclose(parsed.all_coords(), structure.all_coords(), atol=1e-3)


def test_pdb_write_and_read_file(tmp_path):
    structure = build_backbone_from_ca("RYRDV", _zigzag_ca(5))
    path = write_pdb(structure, tmp_path / "frag.pdb", remarks=["test remark"])
    assert path.exists()
    parsed = read_pdb(path)
    assert parsed.sequence == "RYRDV"


def test_pdb_format_columns():
    structure = build_backbone_from_ca("AC", _zigzag_ca(2))
    lines = [l for l in structure_to_pdb_string(structure).splitlines() if l.startswith("ATOM")]
    for line in lines:
        assert len(line) >= 78
        float(line[30:38]), float(line[38:46]), float(line[46:54])  # coordinates parse


def test_read_pdb_rejects_garbage():
    with pytest.raises(PDBFormatError):
        read_pdb("HEADER only\nEND\n")
