"""Round-trip tests for the ``repro-cache`` command-line tool."""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.cli.cache import main
from repro.config import PipelineConfig
from repro.engine import Engine, ResultCache


@pytest.fixture(scope="module")
def populated_cache_dir(tmp_path_factory):
    """A cache holding one real baseline-fold entry and one real dock entry."""
    cache_dir = tmp_path_factory.mktemp("repro_cache")
    config = PipelineConfig(
        vqe_iterations=6, optimisation_shots=32, final_shots=64,
        docking_seeds=2, docking_poses=3, docking_mc_steps=30, seed=11,
    )
    engine = Engine(config=config, cache=cache_dir)

    from repro.bio.reference import ReferenceStructureGenerator
    from repro.docking.ligand import SyntheticLigandGenerator

    reference = ReferenceStructureGenerator(master_seed=config.seed).generate("3eax", "RYRDV")
    ligand = SyntheticLigandGenerator(master_seed=config.seed).generate(reference)
    engine.run([
        engine.baseline_spec("3eax", "RYRDV", method="AF2"),
        engine.dock_spec("3eax", reference.structure, ligand, receptor_id="3eax:QDock"),
    ])
    return cache_dir


def test_ls_lists_entries_with_kinds(populated_cache_dir, capsys):
    assert main(["ls", str(populated_cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "baseline_fold" in out
    assert "dock" in out
    assert "3eax" in out
    assert "2 entries shown" in out


def test_ls_respects_limit(populated_cache_dir, capsys):
    assert main(["ls", str(populated_cache_dir), "--limit", "1"]) == 0
    assert "1 entries shown" in capsys.readouterr().out


def test_stats_reports_counts_and_bytes(populated_cache_dir, capsys):
    assert main(["stats", str(populated_cache_dir), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 2
    assert stats["total_bytes"] > 0
    assert stats["by_kind"] == {"baseline_fold": 1, "dock": 1}


def test_missing_cache_dir_exits_2(tmp_path, capsys):
    with pytest.raises(SystemExit) as exc:
        main(["stats", str(tmp_path / "nope")])
    assert exc.value.code == 2
    assert "does not exist" in capsys.readouterr().err


def test_verify_then_corrupt_then_delete_roundtrip(populated_cache_dir, capsys):
    # Pristine cache: everything valid, exit 0.
    assert main(["verify", str(populated_cache_dir)]) == 0
    assert "0 corrupt" in capsys.readouterr().out

    # Corrupt one entry: verify flags it and exits 1 without deleting.
    cache = ResultCache(populated_cache_dir)
    victim = cache.entries()[0]
    victim.path.write_text("{ torn write")
    assert main(["verify", str(populated_cache_dir)]) == 1
    assert "1 corrupt" in capsys.readouterr().out
    assert victim.path.exists()

    # --delete removes it and exits 0; the survivor still verifies.
    assert main(["verify", str(populated_cache_dir), "--delete"]) == 0
    out = capsys.readouterr().out
    assert "deleted" in out
    assert not victim.path.exists()
    assert main(["verify", str(populated_cache_dir)]) == 0


def _misplaced_cache(tmp_path):
    """A cache with one well-placed entry and one hand-moved into a foreign shard."""
    cache_dir = tmp_path / "sharded"
    cache = ResultCache(cache_dir)
    keys = [hashlib.sha256(str(i).encode()).hexdigest() for i in range(2)]
    for key in keys:
        cache.put(key, {"spec_hash": key, "schema": "fold/v1", "pad": "x" * 64})
    victim = cache.entries()[0]
    foreign = cache_dir / ("zz" if victim.key[:2] != "zz" else "qq")
    foreign.mkdir()
    victim.path.rename(foreign / victim.path.name)
    return cache_dir, victim.key


def test_ls_shows_the_shard_and_warns_on_misplaced_entries(tmp_path, capsys):
    cache_dir, misplaced_key = _misplaced_cache(tmp_path)
    assert main(["ls", str(cache_dir)]) == 0
    captured = capsys.readouterr()
    assert "shard" in captured.out  # the column header
    assert "2 entries shown" in captured.out
    assert misplaced_key[:2] in captured.err  # names the shard it should be in
    assert "lookups will miss it" in captured.err


def test_stats_skips_misplaced_entries_with_a_warning(tmp_path, capsys):
    cache_dir, _ = _misplaced_cache(tmp_path)
    assert main(["stats", str(cache_dir), "--json"]) == 0
    captured = capsys.readouterr()
    stats = json.loads(captured.out)
    assert stats["entries"] == 1  # the misplaced file serves no lookups
    assert "skipping" in captured.err and "move or delete it" in captured.err


def test_stats_reaches_a_remote_tier_and_local_subcommands_refuse_one(tmp_path, capsys):
    from repro.serve import ReproServer

    key = hashlib.sha256(b"remote-cli").hexdigest()
    ResultCache(tmp_path / "serve-cache").put(
        key, {"spec_hash": key, "schema": "fold/v1", "pad": "x" * 64}
    )
    with ReproServer(workers=0, cache=tmp_path / "serve-cache") as server:
        spec = f"remote:127.0.0.1:{server.port}"
        assert main(["stats", spec, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["tier"] == spec
        assert stats["entries"] == 1 and stats["total_bytes"] > 0

        # Maintenance needs local files: remote specs are a usage error.
        with pytest.raises(SystemExit) as exc:
            main(["ls", spec])
        assert exc.value.code == 2
        assert "only 'stats' works" in capsys.readouterr().err

    # An unreachable server is exit 2, not a stack trace.
    with pytest.raises(SystemExit) as exc:
        main(["stats", "remote:127.0.0.1:1"])
    assert exc.value.code == 2
    assert "cannot reach" in capsys.readouterr().err


def test_prune_rejects_negative_max_bytes(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    ResultCache(cache_dir)  # create the directory
    assert main(["prune", str(cache_dir), "--max-bytes", "-5"]) == 2
    assert "must be >= 0" in capsys.readouterr().err


def test_prune_round_trip(tmp_path, capsys):
    cache_dir = tmp_path / "prune_cache"
    cache = ResultCache(cache_dir)
    keys = [hashlib.sha256(str(i).encode()).hexdigest() for i in range(4)]
    for key in keys:
        cache.put(key, {"spec_hash": key, "schema": "fold/v1", "pad": "x" * 128})
    entry_size = cache.entries()[0].size_bytes

    assert main(["prune", str(cache_dir), "--max-bytes", str(int(2.5 * entry_size))]) == 0
    assert "evicted 2 entries" in capsys.readouterr().out
    assert len(ResultCache(cache_dir)) == 2

    # Pruning to zero empties the cache; a second prune is a no-op.
    assert main(["prune", str(cache_dir), "--max-bytes", "0"]) == 0
    assert len(ResultCache(cache_dir)) == 0
    assert main(["prune", str(cache_dir), "--max-bytes", "0"]) == 0
    assert "evicted 0 entries" in capsys.readouterr().out
