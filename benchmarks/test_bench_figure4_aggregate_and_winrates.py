"""Benchmarks for Figure 4 (per-method metric distributions) and the Sec. 6.2 win rates."""

from __future__ import annotations

import numpy as np

from repro.analysis.ascii_plots import histogram
from repro.analysis.report import PAPER_WIN_RATES, format_table, winrate_report
from repro.analysis.statistics import aggregate_statistics


def _figure4(bank) -> dict:
    stats = aggregate_statistics(bank)
    for metric in ("affinity", "rmsd"):
        print(f"\n=== Figure 4: {metric} distributions ===")
        rows = [s.as_dict() for s in stats[metric].values()]
        print(format_table(rows, columns=["method", "mean", "median", "std", "min", "max", "count"]))
        for method, summary in stats[metric].items():
            values = [
                e.evaluation(method).affinity if metric == "affinity" else e.evaluation(method).ca_rmsd
                for e in bank.entries
            ]
            print(histogram(np.asarray(values), bins=6, title=f"{metric} / {method}"))
    return stats


def test_bench_figure4_aggregate_stats(benchmark, bench_bank):
    stats = benchmark(_figure4, bench_bank)
    # Fig. 4's qualitative statement: QDock's mean RMSD is the lowest of the three methods.
    rmsd_means = {m: s.mean for m, s in stats["rmsd"].items()}
    assert rmsd_means["QDock"] <= min(rmsd_means["AF2"], rmsd_means["AF3"]) + 0.75
    assert all(s.mean < 0 for s in stats["affinity"].values())


def _winrates(comparisons) -> list[dict]:
    rows = winrate_report(comparisons)
    print("\n=== Sec. 6.2 win rates: measured vs paper ===")
    print(format_table(rows, columns=["baseline", "metric", "group", "wins", "total", "win_rate", "paper_win_rate"]))
    return rows


def test_bench_winrates(benchmark, bench_comparisons):
    rows = benchmark(_winrates, bench_comparisons)
    assert len(rows) >= 8
    measured = {
        (r["baseline"], r["metric"], r["group"]): r["win_rate"] for r in rows
    }
    # Shape check against the paper's ordering: QDock's RMSD advantage over AF2
    # is at least as large as over AF3 (paper: 92.7% vs 80%).
    assert measured[("AF2", "rmsd", "All")] >= measured[("AF3", "rmsd", "All")] - 1e-9
    assert set(PAPER_WIN_RATES) == {"AF2", "AF3"}
